#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and lint-clean
# clippy. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (inline background)"
cargo test -q

echo "==> LSM_BACKGROUND=threaded cargo test -q"
LSM_BACKGROUND=threaded cargo test -q

echo "==> cargo test -q -p lsm-obs (both background modes)"
cargo test -q -p lsm-obs
LSM_BACKGROUND=threaded cargo test -q -p lsm-obs

echo "==> parallel-compaction differential battery (both background modes)"
cargo test -q -p lsm-core --test parallel_compaction
LSM_BACKGROUND=threaded cargo test -q -p lsm-core --test parallel_compaction

echo "==> server suite: protocol fuzz + differential + crash (both background modes)"
cargo test -q -p lsm-server
LSM_BACKGROUND=threaded cargo test -q -p lsm-server

echo "==> replication failover crash sweep (both background modes, seed ${LSM_SEED:-default})"
cargo test -q --test replication_crash -- --nocapture
LSM_BACKGROUND=threaded cargo test -q --test replication_crash -- --nocapture

echo "==> live-split migration crash sweep (both background modes, seed ${LSM_SEED:-default})"
cargo test -q --test migration_crash -- --nocapture
LSM_BACKGROUND=threaded cargo test -q --test migration_crash -- --nocapture

echo "==> transaction-commit crash sweep (both background modes, seed ${LSM_SEED:-default})"
cargo test -q --test txn_crash -- --nocapture
LSM_BACKGROUND=threaded cargo test -q --test txn_crash -- --nocapture

echo "==> self-tuner suite (both background modes)"
cargo test -q -p lsm-tuner
LSM_BACKGROUND=threaded cargo test -q -p lsm-tuner

echo "==> retune crash sweep (both background modes, seed ${LSM_SEED:-default})"
cargo test -q --test retune_crash -- --nocapture
LSM_BACKGROUND=threaded cargo test -q --test retune_crash -- --nocapture

echo "==> allocation-regression battery (counting allocator + borrowed-vs-owned differential)"
cargo test -q -p lsm-core --release --test alloc_regression
LSM_BACKGROUND=threaded cargo test -q -p lsm-core --release --test alloc_regression

echo "==> bench smoke run with metrics artifact"
LSM_BENCH_N=3000 cargo run -q -p lsm-bench --release --bin e18_write_stalls -- --metrics
cargo run -q -p lsm-bench --release --bin metrics_lint results/e18_write_stalls.metrics.jsonl
LSM_BENCH_N=3000 cargo run -q -p lsm-bench --release --bin e19_parallel_compaction -- --metrics
cargo run -q -p lsm-bench --release --bin metrics_lint results/e19_parallel_compaction.metrics.jsonl
LSM_BENCH_N=3000 cargo run -q -p lsm-bench --release --bin e20_server_throughput -- --metrics
cargo run -q -p lsm-bench --release --bin metrics_lint results/e20_server_throughput.metrics.jsonl
LSM_BENCH_N=3000 cargo run -q -p lsm-bench --release --bin e21_hot_path -- --metrics
cargo run -q -p lsm-bench --release --bin metrics_lint results/e21_hot_path.metrics.jsonl
LSM_BENCH_N=3000 cargo run -q -p lsm-bench --release --bin e22_replication -- --metrics
cargo run -q -p lsm-bench --release --bin metrics_lint results/e22_replication.metrics.jsonl
LSM_BENCH_N=3000 cargo run -q -p lsm-bench --release --bin e23_elastic -- --metrics
cargo run -q -p lsm-bench --release --bin metrics_lint results/e23_elastic.metrics.jsonl
LSM_BENCH_N=3000 cargo run -q -p lsm-bench --release --bin e24_transactions -- --metrics
cargo run -q -p lsm-bench --release --bin metrics_lint results/e24_transactions.metrics.jsonl
# e25 floors its own scale at DEFAULT_N (it asserts adaptive-beats-static,
# which needs a real tree), so no LSM_BENCH_N shrink here
cargo run -q -p lsm-bench --release --bin e25_self_tuning -- --metrics
cargo run -q -p lsm-bench --release --bin metrics_lint results/e25_self_tuning.metrics.jsonl

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "OK: build, tests (both modes), obs + server suites, metrics artifacts, clippy all clean"
