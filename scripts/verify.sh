#!/usr/bin/env bash
# Tier-1 verification: release build, full test suite, and lint-clean
# clippy. CI runs exactly this script; run it locally before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (inline background)"
cargo test -q

echo "==> LSM_BACKGROUND=threaded cargo test -q"
LSM_BACKGROUND=threaded cargo test -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "OK: build, tests (both background modes), and clippy all clean"
