//! # lsm-bench
//!
//! The experiment harness. One binary per experiment in DESIGN.md's index
//! (`cargo run -p lsm-bench --release --bin e01_rw_tradeoff`, …); each
//! regenerates one tradeoff curve from the tutorial and prints the series
//! as an aligned table. Criterion micro-benches live in `benches/`.
//!
//! The shared helpers here load engines with deterministic workloads and
//! measure the quantities the tutorial's cost models are stated in:
//! blocks read per lookup, write amplification, hit rates, and simulated
//! device time.

use lsm_core::{Db, FilterAllocation, LsmConfig, MergeLayout};
use lsm_model::{Candidate, MergePolicy, WorkloadProfile};
use lsm_storage::IoCategory;
use lsm_tuner::WorkloadEstimate;
use lsm_workload::{encode_key, Operation, Trace, ZipfSampler, KEY_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Standard experiment scale: enough data for a 3-4 level tree with the
/// default experiment config, small enough that a full sweep runs in
/// seconds.
pub const DEFAULT_N: u64 = 80_000;

/// A baseline engine configuration shared by experiments (each experiment
/// overrides the axis it sweeps).
pub fn base_config() -> LsmConfig {
    LsmConfig {
        block_size: 1024,
        buffer_bytes: 64 << 10,
        size_ratio: 4,
        l0_run_cap: 4,
        target_table_bytes: 64 << 10,
        cache_bytes: 0, // experiments measure raw I/O unless stated
        wal: false,     // WAL traffic would blur write-amp attribution
        ..LsmConfig::default()
    }
}

/// Experiment scale: `LSM_BENCH_N` overrides [`DEFAULT_N`], so smoke
/// runs (CI, `verify.sh`) can shrink every experiment without touching
/// the binaries.
pub fn bench_n() -> u64 {
    std::env::var("LSM_BENCH_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_N)
}

/// Whether the experiment was invoked with `--metrics` (or
/// `LSM_BENCH_METRICS=1`): opt-in because the artifact drains the
/// engine's event trace.
pub fn metrics_enabled() -> bool {
    std::env::args().any(|a| a == "--metrics")
        || std::env::var("LSM_BENCH_METRICS").is_ok_and(|v| v == "1")
}

/// Files already written by this process, so one experiment appending
/// several engines' metrics truncates stale artifacts exactly once.
static METRICS_FILES: std::sync::OnceLock<std::sync::Mutex<std::collections::HashSet<String>>> =
    std::sync::OnceLock::new();

/// When metrics are enabled, appends raw JSON lines to
/// `results/<bin>.metrics.jsonl`. The first write per process truncates
/// the file; later writes append. No-op otherwise. This is the generic
/// sink — [`write_metrics_artifact`] is the engine-shaped convenience
/// over it; benches with non-engine sources (e.g. a server's own
/// registry) call this directly.
pub fn write_metrics_lines(bin: &str, lines: &[String]) {
    use std::io::Write;
    if !metrics_enabled() {
        return;
    }
    let path = format!("results/{bin}.metrics.jsonl");
    let first = METRICS_FILES
        .get_or_init(Default::default)
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .insert(path.clone());
    let _ = std::fs::create_dir_all("results");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(first)
        .append(!first)
        .open(&path)
        .expect("open metrics artifact");
    let mut out = String::new();
    for line in lines {
        out.push_str(line);
        out.push('\n');
    }
    f.write_all(out.as_bytes()).expect("write metrics artifact");
}

/// When metrics are enabled, appends one metrics-snapshot JSON line
/// (tagged with `tags`) plus the drained event trace to
/// `results/<bin>.metrics.jsonl`. No-op otherwise.
pub fn write_metrics_artifact(db: &Db, bin: &str, tags: &[(&str, &str)]) {
    if !metrics_enabled() {
        return;
    }
    let mut lines = vec![db.metrics().to_json_line_tagged(tags)];
    for e in db.drain_events() {
        lines.push(e.to_json_line());
    }
    write_metrics_lines(bin, &lines);
}

/// Deterministic value payload.
pub fn value_of(id: u64, len: usize) -> Vec<u8> {
    lsm_workload::keyspace::make_value(id, len)
}

/// The modeled per-entry footprint used when mapping navigator designs
/// onto engine configurations (key + value + per-entry overhead).
pub const MODEL_ENTRY_BYTES: usize = 80;

/// Maps a navigator candidate onto a runnable engine configuration
/// (shared by E11, E12, and E25 so the model→engine translation cannot
/// drift between experiments).
pub fn engine_for(c: &Candidate) -> LsmConfig {
    let mut cfg = base_config();
    cfg.layout = match c.design.policy {
        MergePolicy::Leveling => MergeLayout::Leveled,
        MergePolicy::Tiering => MergeLayout::Tiered,
        MergePolicy::LazyLeveling => MergeLayout::LazyLeveled,
    };
    cfg.size_ratio = c.design.size_ratio as usize;
    cfg.buffer_bytes = (c.design.buffer_entries as usize * MODEL_ENTRY_BYTES).max(cfg.block_size * 4);
    cfg.bits_per_key = c.design.bits_per_key;
    cfg.filter_allocation = if c.design.monkey {
        FilterAllocation::Monkey
    } else {
        FilterAllocation::Uniform
    };
    cfg
}

/// Synthesizes a deterministic operation trace matching a workload
/// profile: the golden-ratio stride walks the mix fractions exactly
/// (no sampling noise), ids stride the key space, and absent keys are a
/// real key plus a `'!'` suffix so fences cannot prune them.
pub fn synth_trace(w: &WorkloadProfile, ops: u64, n_keyspace: u64, value_len: usize) -> Trace {
    let wn = w.normalized();
    let mut out = Vec::with_capacity(ops as usize);
    for i in 0..ops {
        let r = (i as f64 * 0.61803398875) % 1.0;
        let id = i.wrapping_mul(48271) % n_keyspace;
        if r < wn.writes {
            out.push(Operation::Put {
                key: encode_key(id),
                value: value_of(id, value_len),
            });
        } else if r < wn.writes + wn.point_reads {
            out.push(Operation::Get { key: encode_key(id) });
        } else if r < wn.writes + wn.point_reads + wn.empty_point_reads {
            let mut k = encode_key(id);
            k.push(b'!');
            out.push(Operation::Get { key: k });
        } else {
            out.push(Operation::Scan {
                start: encode_key(id),
                limit: wn.range_entries.max(1.0) as usize,
            });
        }
    }
    Trace::from_ops(out)
}

/// The shared offline estimate of a trace: the same
/// [`WorkloadEstimate`] the online tuner builds from metrics, here
/// classified by key shape (fixed-width keys were loaded; suffixed keys
/// are the synthesized absent probes).
pub fn estimate_of(trace: &Trace) -> WorkloadEstimate {
    WorkloadEstimate::from_trace_with(trace, |k| k.len() == KEY_LEN)
}

/// Replays a trace against an engine (scan end bound chosen past the
/// loaded key space, matching the synthesized scans).
pub fn replay_trace(db: &Db, trace: &Trace, n_keyspace: u64) {
    for op in trace.ops() {
        match op {
            Operation::Put { key, value } => db.put(key.clone(), value.clone()).unwrap(),
            Operation::Delete { key } => db.delete(key.clone()).unwrap(),
            Operation::Get { key } => {
                db.get(key).unwrap();
            }
            Operation::Scan { start, limit } => {
                let mut end = encode_key(n_keyspace * 2);
                end.push(b'z');
                db.scan(start.clone()..end, *limit).unwrap();
            }
            Operation::ReadModifyWrite { key, value } => {
                db.get(key).unwrap();
                db.put(key.clone(), value.clone()).unwrap();
            }
        }
    }
}

/// Builds a candidate's engine, loads `n_keyspace` keys, replays the
/// trace, and returns total device blocks moved per operation — the
/// measured counterpart of the navigator's modeled cost.
pub fn measured_trace_cost(c: &Candidate, trace: &Trace, n_keyspace: u64) -> f64 {
    let db = Db::open_in_memory(engine_for(c)).unwrap();
    fill_scattered(&db, n_keyspace, 64);
    let io0 = db.io_stats();
    replay_trace(&db, trace, n_keyspace);
    let io = db.io_stats().delta_since(&io0);
    (io.total_read_blocks() + io.total_written_blocks()) as f64
        / trace.ops().len().max(1) as f64
}

/// Loads `n` keys in scattered (hash) order with `value_len`-byte values.
pub fn fill_scattered(db: &Db, n: u64, value_len: usize) {
    for i in 0..n {
        let id = i.wrapping_mul(2654435761) % n;
        db.put(encode_key(id), value_of(id, value_len)).unwrap();
    }
    // measurements start from a quiescent tree (no-op in `Inline` mode)
    db.wait_background_idle();
}

/// Write amplification so far: device bytes written / user bytes ingested.
pub fn write_amp(db: &Db) -> f64 {
    // in-flight background maintenance would under-count written blocks
    db.wait_background_idle();
    let written = db.io_stats().total_written_blocks() as f64 * db.config().block_size as f64;
    let ingested = db.stats().snapshot().bytes_ingested as f64;
    if ingested == 0.0 {
        0.0
    } else {
        written / ingested
    }
}

/// Measured read cost of a batch of operations.
#[derive(Clone, Copy, Debug, Default)]
pub struct ReadCost {
    /// Data + filter + index blocks read per operation.
    pub blocks_per_op: f64,
    /// Data blocks only.
    pub data_blocks_per_op: f64,
    /// Sorted runs probed per operation.
    pub runs_per_op: f64,
    /// Filter prunes per operation.
    pub prunes_per_op: f64,
    /// Simulated device nanoseconds per operation (0 with a free profile).
    pub sim_ns_per_op: f64,
    /// Wall-clock nanoseconds per operation.
    pub wall_ns_per_op: f64,
}

/// Runs `ops` operations through `f`, measuring per-op read cost.
pub fn measure_reads(db: &Db, ops: u64, mut f: impl FnMut(u64)) -> ReadCost {
    let io0 = db.io_stats();
    let s0 = db.stats().snapshot();
    let t0 = db.device().latency().clock().now_ns();
    let w0 = std::time::Instant::now();
    for i in 0..ops {
        f(i);
    }
    let wall = w0.elapsed().as_nanos() as f64;
    let io = db.io_stats().delta_since(&io0);
    let s = db.stats().snapshot().delta_since(&s0);
    let t = db.device().latency().clock().now_ns() - t0;
    let n = ops.max(1) as f64;
    ReadCost {
        blocks_per_op: io.total_read_blocks() as f64 / n,
        data_blocks_per_op: io.category(IoCategory::Data).read_blocks as f64 / n,
        runs_per_op: s.runs_probed as f64 / n,
        prunes_per_op: s.filter_prunes as f64 / n,
        sim_ns_per_op: t as f64 / n,
        wall_ns_per_op: wall / n,
    }
}

/// Zero-result point lookups: present-looking keys that were never
/// inserted (inside the key range, so fences cannot prune them).
pub fn measure_empty_gets(db: &Db, n_keyspace: u64, probes: u64) -> ReadCost {
    measure_reads(db, probes, |i| {
        let id = i.wrapping_mul(48271) % n_keyspace;
        let mut k = encode_key(id);
        k.push(b'!'); // just after a real key, never inserted
        db.get(&k).unwrap();
    })
}

/// Present-key point lookups, uniform over the key space.
pub fn measure_present_gets(db: &Db, n_keyspace: u64, probes: u64) -> ReadCost {
    measure_reads(db, probes, |i| {
        let id = i.wrapping_mul(48271) % n_keyspace;
        let got = db.get(&encode_key(id)).unwrap();
        assert!(got.is_some(), "present key lost");
    })
}

/// Zipfian present-key lookups (for cache experiments).
pub fn measure_zipf_gets(db: &Db, n_keyspace: u64, probes: u64, theta: f64, seed: u64) -> ReadCost {
    let zipf = ZipfSampler::new(n_keyspace, theta);
    let mut rng = StdRng::seed_from_u64(seed);
    measure_reads(db, probes, |_| {
        let rank = zipf.sample(&mut rng);
        let id = rank.wrapping_mul(2654435761) % n_keyspace;
        db.get(&encode_key(id)).unwrap();
    })
}

/// Short range scans starting at existing keys.
pub fn measure_scans(db: &Db, n_keyspace: u64, probes: u64, scan_len: usize) -> ReadCost {
    measure_reads(db, probes, |i| {
        let id = i.wrapping_mul(48271) % n_keyspace;
        let start = encode_key(id);
        let mut end = encode_key(n_keyspace.saturating_mul(2));
        end.extend_from_slice(b"zzz");
        db.scan(start..end, scan_len).unwrap();
    })
}

/// Prints an aligned table row.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a table with a header, auto-widths, and a rule.
pub struct TablePrinter {
    widths: Vec<usize>,
}

impl TablePrinter {
    /// Prints the header and remembers column widths.
    pub fn new(header: &[&str]) -> Self {
        let widths: Vec<usize> = header.iter().map(|h| h.len().max(9)).collect();
        let line = row(
            &header.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
            &widths,
        );
        println!("{line}");
        println!("{}", "-".repeat(line.len()));
        TablePrinter { widths }
    }

    /// Prints one row.
    pub fn print(&self, cells: &[String]) {
        println!("{}", row(cells, &self.widths));
    }
}

/// Format helper: fixed-point, two decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Format helper: 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format helper: percentage.
pub fn pct(v: f64) -> String {
    format!("{:.1}%", v * 100.0)
}

/// Generates `n` keys that are definitely absent from an id-encoded key
/// space (used by standalone filter experiments).
pub fn absent_byte_keys(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("absent-{i:012}").into_bytes()).collect()
}

/// Deterministic seed derived from a label.
pub fn seed_for(label: &str) -> u64 {
    label.bytes().fold(0xcbf29ce484222325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100000001b3)
    })
}

/// Uniform random u64 sampler with a fixed seed (shared by experiments).
pub fn uniform_ids(n: usize, max: u64, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(0..max)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_roundtrip() {
        let db = Db::open_in_memory(base_config()).unwrap();
        fill_scattered(&db, 2000, 32);
        let present = measure_present_gets(&db, 2000, 200);
        assert!(present.runs_per_op > 0.0);
        let empty = measure_empty_gets(&db, 2000, 200);
        assert!(empty.runs_per_op >= 0.0);
        // part of the data may still sit in the memtable, so the floor is
        // below 1.0 at this tiny scale
        assert!(write_amp(&db) > 0.5, "write amp {}", write_amp(&db));
    }

    #[test]
    fn scans_measure() {
        let db = Db::open_in_memory(base_config()).unwrap();
        fill_scattered(&db, 2000, 32);
        let c = measure_scans(&db, 2000, 50, 20);
        assert!(c.blocks_per_op > 0.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(f2(1.005), "1.00");
        assert_eq!(f3(0.1234), "0.123");
        assert_eq!(pct(0.5), "50.0%");
        assert_ne!(seed_for("a"), seed_for("b"));
        assert_eq!(uniform_ids(5, 100, 1), uniform_ids(5, 100, 1));
    }
}
