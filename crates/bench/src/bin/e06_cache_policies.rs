//! E6 — Block-cache policies and compaction invalidation (tutorial
//! Module II.1; Leaper, VLDB '20).
//!
//! Part A sweeps cache size × eviction policy under a zipfian read
//! workload and reports hit rate. Part B interleaves read phases with
//! write bursts that trigger compactions, showing the hit-rate dip caused
//! by cache invalidation and how Leaper-style prefetch recovers it.

use lsm_bench::*;
use lsm_core::{CachePolicy, Db};
use lsm_workload::encode_key;

fn main() {
    let n = 40_000u64;
    println!("E6a: cache policy × size — {n} keys, zipfian(0.99) reads\n");
    let t = TablePrinter::new(&["cache KiB", "lru", "lfu", "clock", "fifo"]);
    for cache_kib in [64usize, 256, 1024, 4096] {
        let mut cells = vec![cache_kib.to_string()];
        for policy in CachePolicy::ALL {
            let mut cfg = base_config();
            cfg.cache_bytes = cache_kib << 10;
            cfg.cache_policy = policy;
            let db = Db::open_in_memory(cfg).unwrap();
            fill_scattered(&db, n, 64);
            // warm
            measure_zipf_gets(&db, n, 20_000, 0.99, 7);
            let (h0, m0) = db.cache_stats().unwrap();
            measure_zipf_gets(&db, n, 30_000, 0.99, 8);
            let (h1, m1) = db.cache_stats().unwrap();
            let hits = (h1 - h0) as f64;
            let total = hits + (m1 - m0) as f64;
            cells.push(pct(hits / total.max(1.0)));
        }
        t.print(&cells);
    }
    println!();

    println!("E6b: compaction invalidation and Leaper-style prefetch\n");
    let t = TablePrinter::new(&["prefetch", "hit rate (steady)", "hit rate (after compactions)", "prefetched"]);
    for prefetch in [false, true] {
        let mut cfg = base_config();
        cfg.cache_bytes = 1 << 20;
        cfg.prefetch_after_compaction = prefetch;
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 64);
        // steady state: hot zipfian reads fill the cache and the heat map
        measure_zipf_gets(&db, n, 30_000, 0.99, 7);
        let (h0, m0) = db.cache_stats().unwrap();
        measure_zipf_gets(&db, n, 10_000, 0.99, 8);
        let (h1, m1) = db.cache_stats().unwrap();
        let steady = (h1 - h0) as f64 / ((h1 - h0) + (m1 - m0)).max(1) as f64;
        // write burst: rewrites the hot data, compactions invalidate blocks
        for i in 0..n {
            let id = i.wrapping_mul(2654435761) % n;
            db.put(encode_key(id), value_of(id ^ 1, 64)).unwrap();
        }
        let (h2, m2) = db.cache_stats().unwrap();
        measure_zipf_gets(&db, n, 10_000, 0.99, 9);
        let (h3, m3) = db.cache_stats().unwrap();
        let after = (h3 - h2) as f64 / ((h3 - h2) + (m3 - m2)).max(1) as f64;
        t.print(&[
            prefetch.to_string(),
            pct(steady),
            pct(after),
            db.stats().snapshot().prefetched_blocks.to_string(),
        ]);
    }
    println!("\nexpected shape: recency/frequency policies beat fifo at every");
    println!("size; compaction bursts crater the hit rate, and post-compaction");
    println!("prefetch recovers part of the dip by re-admitting hot blocks.");
}
