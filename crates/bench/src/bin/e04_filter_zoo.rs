//! E4 — The point-filter zoo (tutorial Module II.2).
//!
//! Builds every filter family over the same key set at (roughly) equal
//! memory and measures actual bits/key, empirical FPR, probe latency, and
//! construction time. Expected shape: blocked Bloom probes fastest but
//! pays FPR; xor/ribbon are smaller than Bloom at equal FPR but cost more
//! construction CPU; cuckoo is competitive and supports deletes.

use std::time::Instant;

use lsm_bench::*;
use lsm_filters::bloom::empirical_fpr;
use lsm_filters::FilterKind;

fn main() {
    let n = 200_000usize;
    let budget = 10.0;
    println!("E4: point-filter comparison — {n} keys, ~{budget} bits/key budget\n");
    let keys: Vec<Vec<u8>> = (0..n).map(|i| format!("user{i:012}").into_bytes()).collect();
    let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let absent: Vec<Vec<u8>> = (0..100_000)
        .map(|i| format!("user{:012}", 10_000_000 + i * 7).into_bytes())
        .collect();

    let t = TablePrinter::new(&[
        "filter",
        "bits/key",
        "FPR",
        "probe ns",
        "build ms",
        "probes/q",
    ]);
    for kind in FilterKind::ALL {
        let t0 = Instant::now();
        let filter = kind.build_refs(&key_refs, budget).unwrap();
        let build_ms = t0.elapsed().as_secs_f64() * 1e3;
        let fpr = empirical_fpr(filter.as_ref(), &absent);
        // probe latency over a mix of present and absent keys
        let t1 = Instant::now();
        let mut found = 0usize;
        for _rep in 0..4 {
            for k in keys.iter().step_by(8) {
                if filter.may_contain(k) {
                    found += 1;
                }
            }
            for k in absent.iter().step_by(8) {
                if filter.may_contain(k) {
                    found += 1;
                }
            }
        }
        let probes = 4 * (keys.len() / 8 + absent.len() / 8);
        let probe_ns = t1.elapsed().as_nanos() as f64 / probes as f64;
        std::hint::black_box(found);
        let probes_per_query = match kind {
            FilterKind::Bloom => "k=7".to_string(),
            FilterKind::BlockedBloom => "1 line".to_string(),
            FilterKind::Cuckoo => "2 bkts".to_string(),
            FilterKind::Xor => "3 slots".to_string(),
            FilterKind::Ribbon => "1 band".to_string(),
            FilterKind::None => "-".to_string(),
        };
        t.print(&[
            kind.label().to_string(),
            f2(filter.bits_per_key()),
            format!("{:.4}%", fpr * 100.0),
            f2(probe_ns),
            f2(build_ms),
            probes_per_query,
        ]);
    }
    println!("\nexpected shape: bloom ≈0.8% FPR at 10 b/key; blocked bloom");
    println!("slightly worse FPR, fastest probes; xor ≈0.39% at ~9.8 b/key;");
    println!("ribbon near xor's FPR at the smallest footprint with the most");
    println!("construction work; cuckoo in between, deletable.");
}
