//! E21 — zero-copy hot path: engine borrowed views and served reads.
//!
//! Two sections gate the allocation work end to end:
//!
//! 1. **Engine micro** (no server): warm-cache point reads and scans
//!    through the owned APIs (`get` → `Vec` per value, `scan` → two
//!    `Vec`s per entry) against the borrowed ones (`get_with`/`get_into`
//!    run on the cached block bytes in place, `scan_with` streams views
//!    off the merge cursor). The ratio is pure allocator + memcpy
//!    savings: both paths decode the same blocks.
//!
//! 2. **Served reads** (TCP loopback, 1 shard): pipelined GETs and
//!    SCANs against the full serving stack — borrowed frame decode
//!    ([`lsm_server`]'s `next_frame_ref`/`decode_request_ref`), engine
//!    views copied straight into pooled response buffers, and recycled
//!    write batches. Every scan response is byte-compared against the
//!    engine's owned `scan` oracle (the shard handle is shared with the
//!    server), so the zero-copy plumbing is proven identical while it is
//!    being timed.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Instant;

use lsm_bench::*;
use lsm_core::{BackgroundMode, Db, LsmConfig};
use lsm_server::{Client, Request, Response, Server, ServerConfig};
use lsm_workload::encode_key;

const VALUE_LEN: usize = 64;

fn hot_config() -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Inline,
        wal: true,
        cache_bytes: 64 << 20, // everything cache-resident: the hot path
        ..base_config()
    }
}

/// Fills `db` with `n` scattered keys, flushes to quiescence, and warms
/// every block the reads will touch.
fn fill_and_warm(db: &Db, n: u64) {
    fill_scattered(db, n, VALUE_LEN);
    db.flush_all().unwrap();
    let mut buf = Vec::with_capacity(VALUE_LEN + 16);
    for id in 0..n {
        db.get_into(&encode_key(id), &mut buf).unwrap();
    }
}

struct Micro {
    ops_per_s: f64,
    bytes: u64,
}

fn time_ops(ops: u64, mut f: impl FnMut(u64) -> u64) -> Micro {
    let t0 = Instant::now();
    let mut bytes = 0u64;
    for i in 0..ops {
        bytes += f(i);
    }
    let wall = t0.elapsed().as_secs_f64();
    Micro {
        ops_per_s: ops as f64 / wall,
        bytes,
    }
}

fn engine_micro(n: u64) -> (Db, f64, f64) {
    let db = Db::open_in_memory(hot_config()).unwrap();
    fill_and_warm(&db, n);
    let probes = (n * 4).max(1);
    let ids = uniform_ids(probes as usize, n, seed_for("e21-get"));

    let owned_get = time_ops(probes, |i| {
        db.get(&encode_key(ids[i as usize])).unwrap().map_or(0, |v| v.len() as u64)
    });
    let borrowed_get = time_ops(probes, |i| {
        db.get_with(&encode_key(ids[i as usize]), |v| v.len() as u64)
            .unwrap()
            .unwrap_or(0)
    });
    assert_eq!(owned_get.bytes, borrowed_get.bytes, "get paths must see the same data");

    let scan_len = 256usize;
    let scans = (n / 16).max(1);
    let owned_scan = time_ops(scans, |i| {
        let lo = (i * 37) % n;
        let entries = db
            .scan(encode_key(lo)..encode_key(n), scan_len)
            .unwrap();
        entries.iter().map(|(k, v)| (k.len() + v.len()) as u64).sum()
    });
    let borrowed_scan = time_ops(scans, |i| {
        let lo = (i * 37) % n;
        let mut bytes = 0u64;
        db.scan_with(&encode_key(lo), &encode_key(n), scan_len, |k, v| {
            bytes += (k.len() + v.len()) as u64;
        })
        .unwrap();
        bytes
    });
    assert_eq!(owned_scan.bytes, borrowed_scan.bytes, "scan paths must see the same data");

    println!("engine micro (warm cache, {n} keys, {VALUE_LEN}B values):");
    let t = TablePrinter::new(&["path", "owned kops/s", "borrowed kops/s", "speedup"]);
    t.print(&[
        "get".into(),
        format!("{:.1}", owned_get.ops_per_s / 1000.0),
        format!("{:.1}", borrowed_get.ops_per_s / 1000.0),
        f2(borrowed_get.ops_per_s / owned_get.ops_per_s),
    ]);
    t.print(&[
        format!("scan({scan_len})"),
        format!("{:.1}", owned_scan.ops_per_s / 1000.0),
        format!("{:.1}", borrowed_scan.ops_per_s / 1000.0),
        f2(borrowed_scan.ops_per_s / owned_scan.ops_per_s),
    ]);
    (
        db,
        borrowed_get.ops_per_s / owned_get.ops_per_s,
        borrowed_scan.ops_per_s / owned_scan.ops_per_s,
    )
}

/// Pipelined GETs on one connection; returns (acked ops, hit count).
fn drive_gets(addr: SocketAddr, conn: u64, ops: u64, keyspace: u64, window: usize) -> (u64, u64) {
    let mut c = Client::connect(addr).expect("bench client connect");
    let mut pending: HashMap<u64, u64> = HashMap::new();
    let (mut acked, mut hits) = (0u64, 0u64);
    let mut state = conn.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut recv_one = |c: &mut Client, pending: &mut HashMap<u64, u64>| {
        let (rid, resp) = c.recv().expect("bench recv");
        pending.remove(&rid);
        acked += 1;
        if matches!(resp, Response::Value(_)) {
            hits += 1;
        }
    };
    for _ in 0..ops {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let id = state.wrapping_mul(0x2545F4914F6CDD1D) % keyspace;
        let rid = c.send(&Request::Get { key: encode_key(id) }).expect("bench send");
        pending.insert(rid, id);
        while pending.len() >= window {
            recv_one(&mut c, &mut pending);
        }
    }
    while !pending.is_empty() {
        recv_one(&mut c, &mut pending);
    }
    (acked, hits)
}

/// SCANs over the server, each byte-compared against the owned-path
/// oracle on the shared shard handle. Returns (scans done, entries).
fn drive_scans(addr: SocketAddr, oracle: &Db, scans: u64, keyspace: u64, limit: usize) -> (u64, u64) {
    let mut c = Client::connect(addr).expect("bench client connect");
    let mut entries = 0u64;
    for i in 0..scans {
        let lo = (i * 131) % keyspace;
        let (start, end) = (encode_key(lo), encode_key(keyspace));
        let rid = c
            .send(&Request::Scan {
                start: start.clone(),
                end: end.clone(),
                limit: limit as u32,
            })
            .expect("bench send");
        let (got_rid, resp) = c.recv().expect("bench recv");
        assert_eq!(got_rid, rid);
        let got = match resp {
            Response::Entries(e) => e,
            other => panic!("scan answered {other:?}"),
        };
        // the gate: the served zero-copy path must be byte-identical to
        // the engine's owned scan
        let expect = oracle.scan(start..end, limit).expect("oracle scan");
        assert_eq!(got, expect, "served scan diverged from owned oracle at lo={lo}");
        entries += got.len() as u64;
    }
    (scans, entries)
}

fn main() {
    let n = bench_n();
    println!("E21: zero-copy hot path — {n} keys\n");

    let (micro_db, get_speedup, scan_speedup) = engine_micro(n);

    // served reads: one shard, shared with the oracle checks
    let shard = Db::open_in_memory(hot_config()).unwrap();
    fill_and_warm(&shard, n);
    let server = Server::start(vec![shard.clone()], ServerConfig::default()).expect("start server");
    let addr = server.addr();

    let conns = 2usize;
    let per_conn = (n * 2 / conns as u64).max(1);
    let t0 = Instant::now();
    let drivers: Vec<_> = (0..conns)
        .map(|t| std::thread::spawn(move || drive_gets(addr, t as u64, per_conn, n, 32)))
        .collect();
    let (mut acked, mut hits) = (0u64, 0u64);
    for d in drivers {
        let (a, h) = d.join().expect("driver thread");
        acked += a;
        hits += h;
    }
    let get_wall = t0.elapsed().as_secs_f64();
    let served_get_ops = acked as f64 / get_wall;

    let t0 = Instant::now();
    let (scans, scan_entries) = drive_scans(addr, &shard, (n / 8).max(8), n, 200);
    let scan_wall = t0.elapsed().as_secs_f64();

    println!("\nserved reads (1 shard, loopback, window 32, {conns} conns):");
    let t = TablePrinter::new(&["op", "kops/s", "acked", "hits/entries"]);
    t.print(&[
        "get".into(),
        format!("{:.1}", served_get_ops / 1000.0),
        acked.to_string(),
        hits.to_string(),
    ]);
    t.print(&[
        "scan(200)".into(),
        format!("{:.1}", scans as f64 / scan_wall / 1000.0),
        scans.to_string(),
        scan_entries.to_string(),
    ]);
    println!("  every served scan byte-matched the owned-path oracle");

    let metrics = server.metrics();
    let server_snap = metrics.snapshot();
    let mut lines = Vec::new();
    lines.push(server_snap.to_json_line_tagged(&[
        ("experiment", "e21_hot_path"),
        ("scope", "server"),
        ("config", "served_reads"),
    ]));
    for e in metrics.drain_events() {
        lines.push(e.to_json_line());
    }
    let dbs = server.shutdown().expect("graceful shutdown");
    for db in &dbs {
        lines.push(db.metrics().to_json_line_tagged(&[
            ("experiment", "e21_hot_path"),
            ("scope", "shard"),
            ("config", "served_reads"),
        ]));
    }
    lines.push(micro_db.metrics().to_json_line_tagged(&[
        ("experiment", "e21_hot_path"),
        ("scope", "engine"),
        ("config", "micro"),
    ]));
    write_metrics_lines("e21_hot_path", &lines);

    println!("\nexpected shape: borrowed get/scan beat the owned paths (both");
    println!("decode the same cached blocks; the delta is per-entry Vec");
    println!("allocations and copies — speedups here: get {:.2}x, scan {:.2}x).", get_speedup, scan_speedup);
    println!("Served GETs ride the same plumbing end to end: frames decode");
    println!("borrowed, values copy once from the cached block into a pooled");
    println!("response buffer, and the writer recycles buffers, so steady-state");
    println!("serving allocates nothing per request on the read path.");
}
