//! E2 — Bloom filters bound point-lookup cost (tutorial Module II.2).
//!
//! Sweeps bits/key and reports zero-result and present-key lookup I/O plus
//! the measured filter footprint. Expected shape: zero-result I/O decays
//! exponentially with bits/key (≈ runs × 0.6185^bits); present-key cost
//! converges to ~1 data block.

use lsm_bench::*;
use lsm_core::{Db, FilterKind, MergeLayout};

fn main() {
    let n = DEFAULT_N;
    println!("E2: bits-per-key sweep — {n} keys, tiered layout (many runs)\n");
    let t = TablePrinter::new(&[
        "bits/key",
        "runs",
        "filter MiB",
        "0-result IO",
        "prunes/op",
        "point IO",
    ]);
    for bits in [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 16.0] {
        let mut cfg = base_config();
        cfg.layout = MergeLayout::Tiered;
        cfg.bits_per_key = bits;
        cfg.filter = if bits == 0.0 {
            FilterKind::None
        } else {
            FilterKind::Bloom
        };
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 64);
        let empty = measure_empty_gets(&db, n, 3000);
        let present = measure_present_gets(&db, n, 2000);
        t.print(&[
            format!("{bits:.0}"),
            db.total_runs().to_string(),
            f2(db.total_filter_bits() as f64 / 8.0 / 1048576.0),
            f3(empty.data_blocks_per_op),
            f2(empty.prunes_per_op),
            f3(present.data_blocks_per_op),
        ]);
    }
    println!("\nexpected shape: zero-result I/O falls ~exponentially with");
    println!("bits/key and saturates near zero by ~10 bits (the production");
    println!("default); present-key I/O stays ≈1 block throughout.");
    println!();

    // Part B: partitioned filters (RocksDB partitioned index/filter).
    // Same pruning power, but partitions are fetched through the block
    // cache on demand instead of pinned per table.
    println!("E2b: monolithic vs partitioned filters (10 bits/key, 4 MiB cache)\n");
    let t = TablePrinter::new(&[
        "filters",
        "resident KiB",
        "0-result IO",
        "prunes/op",
        "point IO",
    ]);
    for partitioned in [false, true] {
        let mut cfg = base_config();
        cfg.layout = MergeLayout::Tiered;
        cfg.partitioned_filters = partitioned;
        cfg.cache_bytes = 4 << 20;
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 64);
        // warm the partition working set
        measure_empty_gets(&db, n, 2000);
        let empty = measure_empty_gets(&db, n, 3000);
        let present = measure_present_gets(&db, n, 2000);
        t.print(&[
            if partitioned { "partitioned" } else { "monolithic" }.to_string(),
            f2(db.total_filter_bits() as f64 / 8.0 / 1024.0),
            f3(empty.data_blocks_per_op),
            f2(empty.prunes_per_op),
            f3(present.data_blocks_per_op),
        ]);
    }
    println!("\nexpected shape: identical pruning (same prunes/op and data");
    println!("I/O) with zero resident filter memory — the partitions live in");
    println!("the cache, admitted at block granularity like Module II.1's");
    println!("partitioned index/filter design.");
}
