//! E16 (ablation) — access granularity: the block size.
//!
//! The tutorial's cost models express everything in "storage accesses";
//! the block size decides what one access carries. Expected shape: large
//! blocks favor long scans (fewer seeks per entry) and hurt point lookups
//! (more wasted bytes per access, fewer blocks fit in cache); small
//! blocks the reverse, plus more fence-pointer memory per key.

use lsm_bench::*;
use lsm_core::{Db, LsmConfig};
use lsm_storage::DeviceProfile;

fn main() {
    let n = 60_000u64;
    println!("E16: block-size ablation — {n} keys, 64 B values, NVMe latency model\n");
    let t = TablePrinter::new(&[
        "block B",
        "point µs",
        "scan-500 µs",
        "index KiB",
        "cache hit",
    ]);
    for block_size in [512usize, 1024, 4096, 16384] {
        let cfg = LsmConfig {
            block_size,
            buffer_bytes: 64 << 10,
            size_ratio: 4,
            l0_run_cap: 4,
            target_table_bytes: 128 << 10,
            cache_bytes: 512 << 10, // fixed small cache: granularity matters
            wal: false,
            ..LsmConfig::default()
        };
        let db = Db::open_simulated(cfg, DeviceProfile::nvme_ssd()).unwrap();
        fill_scattered(&db, n, 64);
        db.compact().unwrap();
        let point = measure_zipf_gets(&db, n, 10_000, 0.99, 7);
        let scan = measure_scans(&db, n, 200, 500);
        let (h, m) = db.cache_stats().unwrap();
        t.print(&[
            block_size.to_string(),
            f2(point.sim_ns_per_op / 1000.0),
            f2(scan.sim_ns_per_op / 1000.0),
            f2(db.total_index_bits() as f64 / 8.0 / 1024.0),
            pct(h as f64 / (h + m).max(1) as f64),
        ]);
    }
    println!("\nexpected shape: point-lookup time rises with block size (each");
    println!("miss transfers more, and the fixed cache holds fewer distinct");
    println!("blocks → lower hit rate); long scans get cheaper per entry with");
    println!("bigger blocks; fence memory shrinks with bigger blocks.");
}
