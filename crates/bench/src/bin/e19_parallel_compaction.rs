//! E19 — parallel sub-compactions vs write-stall tails (RocksDB's
//! `max_subcompactions`; the scheduler/parallelism axis of the design
//! space).
//!
//! A threaded engine under sustained load stalls a put whenever L0
//! reaches the stall line and the writer must wait for compaction to
//! drain it. Sharding each merge across the worker pool shortens the
//! critical section that the stalled writer waits on, so the put tail
//! (p99 and up) should fall — or at worst stay flat — as
//! `max_subcompactions` goes 1 → 2 → 4 with the same worker pool.
//! Medians stay put: most writes never see a stall, and the sharded
//! merge writes byte-identical tables (that equivalence is enforced by
//! `crates/core/tests/parallel_compaction.rs`, so this experiment is
//! purely about the tail).
//!
//! Wall-clock timing on a real threaded engine is noisy; run with a
//! larger `LSM_BENCH_N` for stable tails.

use std::sync::Arc;
use std::time::Instant;

use lsm_bench::*;
use lsm_core::{BackgroundMode, Db, LsmConfig};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};
use lsm_workload::encode_key;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p) as usize;
    sorted[idx]
}

fn config(subcompactions: usize) -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 4,
        max_subcompactions: subcompactions,
        // small tables + tight stall line keep compactions (and stalls)
        // frequent enough to measure at bench scale
        buffer_bytes: 16 << 10,
        target_table_bytes: 32 << 10,
        l0_run_cap: 4,
        l0_slowdown_runs: 6,
        l0_stall_runs: 8,
        ..base_config()
    }
}

fn run(subcompactions: usize, n: u64, t: &TablePrinter) {
    let cfg = config(subcompactions);
    let device: Arc<dyn StorageDevice> =
        Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
    let db = Db::open(device, cfg).unwrap();
    let mut lat: Vec<u64> = Vec::with_capacity(n as usize);
    let wall = Instant::now();
    for i in 0..n {
        let id = i.wrapping_mul(2654435761) % n;
        let t0 = Instant::now();
        db.put(encode_key(id), value_of(id, 64)).unwrap();
        lat.push(t0.elapsed().as_nanos() as u64);
    }
    db.wait_background_idle();
    let elapsed = wall.elapsed();
    lat.sort_unstable();
    let s = db.stats().snapshot();
    let io = db.device().stats().snapshot();
    write_metrics_artifact(
        &db,
        "e19_parallel_compaction",
        &[
            ("experiment", "e19_parallel_compaction"),
            ("config", &format!("subcompactions{subcompactions}")),
        ],
    );
    t.print(&[
        subcompactions.to_string(),
        format!("{:.1}", percentile(&lat, 0.50) as f64 / 1000.0),
        format!("{:.1}", percentile(&lat, 0.99) as f64 / 1000.0),
        format!("{:.0}", percentile(&lat, 0.999) as f64 / 1000.0),
        format!("{:.0}", *lat.last().unwrap() as f64 / 1000.0),
        io.write_stalls.to_string(),
        s.compactions.to_string(),
        f2(write_amp(&db)),
        format!("{:.0}", n as f64 / elapsed.as_secs_f64() / 1000.0),
    ]);
}

fn main() {
    let n = bench_n();
    println!("E19: put tail latency vs max_subcompactions (threaded, 4 workers) — {n} keys\n");
    let t = TablePrinter::new(&[
        "subcompactions",
        "p50 µs",
        "p99 µs",
        "p99.9 µs",
        "max µs",
        "stalls",
        "compactions",
        "write-amp",
        "kops/s",
    ]);
    for subcompactions in [1, 2, 4] {
        run(subcompactions, n, &t);
    }
    println!("\nexpected shape: identical p50 (the bare memtable insert) and");
    println!("identical write-amp (sharded merges write byte-identical");
    println!("tables); the tail (p99 and up) falls or stays flat as the");
    println!("fan-out grows, because a stalled writer waits on a merge whose");
    println!("critical path is divided across the worker pool. The *max*");
    println!("stall drops even on a single-core host (the longest merge is");
    println!("interleaved with the drain instead of serializing ahead of");
    println!("it), but true p99/throughput gains need real cores — on one");
    println!("core the extra scheduling shows up as more (shorter) stalls.");
}
