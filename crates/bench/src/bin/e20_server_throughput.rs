//! E20 — serving-layer throughput: shard scaling and group commit.
//!
//! Two sweeps over the `lsm-server` stack (TCP loopback, real threads):
//!
//! 1. **Shard sweep** (1 → 2 → 4 shards, fixed pipeline depth): an
//!    open-loop Poisson load offered *above* single-shard capacity. Each
//!    shard is an independent engine on a [`WallLatencyDevice`], which
//!    converts the device profile's cost model into real `thread::sleep`s
//!    — so while one shard's committer waits out a WAL append, other
//!    shards' I/O proceeds, exactly like independent disks. Throughput
//!    is acked writes per wall second; latency is measured from the
//!    *scheduled* arrival (coordinated omission stays in the numbers).
//!
//! 2. **Depth sweep** (pipeline depth 1 → 4 → 16, one shard): a
//!    closed-loop window drives the group-commit batcher. The committer
//!    folds whatever queued while the previous batch was in flight into
//!    one `Db::write_batch` → one logical WAL append, so
//!    `wal_appends / put` falls below 1.0 as soon as the window lets
//!    writes queue (depth ≥ 4).

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsm_bench::*;
use lsm_core::{BackgroundMode, Db, LsmConfig};
use lsm_server::{Client, Request, Response, Server, ServerConfig};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice, WallLatencyDevice};
use lsm_workload::{encode_key, Arrivals, OpenLoopSchedule};

/// The modeled disk behind every shard: WAL appends and table writes
/// cost real wall time (slept, not spun), reads stay cheap.
fn disk_profile() -> DeviceProfile {
    DeviceProfile {
        random_read_ns: 20_000,
        random_write_ns: 250_000,
        read_block_ns: 1_000,
        write_block_ns: 2_000,
    }
}

fn shard_config() -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 2,
        wal: true, // the whole point: group commit amortizes WAL syncs
        ..base_config()
    }
}

fn open_shards(n: usize) -> Vec<Db> {
    let cfg = shard_config();
    (0..n)
        .map(|_| {
            let mem: Arc<dyn StorageDevice> =
                Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
            let dev: Arc<dyn StorageDevice> =
                Arc::new(WallLatencyDevice::new(mem, disk_profile()));
            Db::open(dev, cfg.clone()).unwrap()
        })
        .collect()
}

/// Drives one connection: sends PUTs at the scheduled arrival times
/// (immediately when behind — open loop), keeping at most `window`
/// unacknowledged. `arrivals` of all zeros degenerates to a closed loop
/// at that window. Returns (latencies ns from scheduled arrival, oks,
/// errors).
fn drive(
    addr: SocketAddr,
    conn: u64,
    arrivals: Vec<u64>,
    window: usize,
    keyspace: u64,
    start: Instant,
) -> (Vec<u64>, u64, u64) {
    let mut c = Client::connect(addr).expect("bench client connect");
    let mut pending: HashMap<u64, u64> = HashMap::new();
    let mut lats = Vec::with_capacity(arrivals.len());
    let (mut oks, mut errs) = (0u64, 0u64);
    let mut state = conn.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut recv_one = |c: &mut Client, pending: &mut HashMap<u64, u64>| {
        let (rid, resp) = c.recv().expect("bench recv");
        let done = start.elapsed().as_nanos() as u64;
        if let Some(at) = pending.remove(&rid) {
            lats.push(done.saturating_sub(at));
        }
        match resp {
            Response::Ok => oks += 1,
            _ => errs += 1,
        }
    };
    for &at in &arrivals {
        loop {
            let now = start.elapsed().as_nanos() as u64;
            if now >= at {
                break;
            }
            std::thread::sleep(Duration::from_nanos((at - now).min(500_000)));
        }
        // deterministic uniform key choice (xorshift*)
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let id = state.wrapping_mul(0x2545F4914F6CDD1D) % keyspace;
        let rid = c
            .send(&Request::Put {
                key: encode_key(id),
                value: value_of(id, 64),
            })
            .expect("bench send");
        // open loop: latency counts from the *scheduled* arrival even
        // when sends fall behind; closed loop (at == 0): from the send
        let t_ref = if at > 0 { at } else { start.elapsed().as_nanos() as u64 };
        pending.insert(rid, t_ref);
        while pending.len() >= window {
            recv_one(&mut c, &mut pending);
        }
    }
    while !pending.is_empty() {
        recv_one(&mut c, &mut pending);
    }
    (lats, oks, errs)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() as f64 - 1.0) * p) as usize]
}

struct RunResult {
    throughput: f64,
    p50_us: f64,
    p99_us: f64,
    oks: u64,
    errs: u64,
    wal_appends: u64,
    puts: u64,
    batches: u64,
    mean_batch: f64,
}

/// One server run: `conns` driver threads against `shards` shards.
/// `rate_per_sec == 0` means closed loop (windows only).
fn run_server(
    shards: usize,
    conns: usize,
    window: usize,
    total_ops: u64,
    rate_per_sec: f64,
    tag: &str,
) -> RunResult {
    let server_cfg = ServerConfig {
        pipeline_depth: window.max(1),
        // shedding off for the sweep: saturation must queue into the
        // batcher (the engine's own backpressure still applies), so the
        // configs are compared on completed work, not on refused work
        shed_l0_runs: Some(usize::MAX),
        ..ServerConfig::default()
    };
    let server = Server::start(open_shards(shards), server_cfg).expect("start server");
    let addr = server.addr();
    let keyspace = total_ops.max(1);
    let per_conn = (total_ops / conns as u64).max(1);
    let start = Instant::now();
    let drivers: Vec<_> = (0..conns)
        .map(|t| {
            let arrivals = if rate_per_sec > 0.0 {
                OpenLoopSchedule::new(rate_per_sec / conns as f64, Arrivals::Poisson, 77 + t as u64)
                    .take(per_conn as usize)
            } else {
                vec![0u64; per_conn as usize]
            };
            std::thread::spawn(move || drive(addr, t as u64, arrivals, window, keyspace, start))
        })
        .collect();
    let mut lats = Vec::new();
    let (mut oks, mut errs) = (0u64, 0u64);
    for d in drivers {
        let (l, o, e) = d.join().expect("driver thread");
        lats.extend(l);
        oks += o;
        errs += e;
    }
    let wall = start.elapsed().as_secs_f64();
    lats.sort_unstable();

    let metrics = server.metrics();
    let server_snap = metrics.snapshot();
    let batches = server_snap.counters.get("server.batches").copied().unwrap_or(0);
    let dbs = server.shutdown().expect("graceful shutdown");
    let (mut wal_appends, mut puts) = (0u64, 0u64);
    let mut lines = Vec::new();
    lines.push(server_snap.to_json_line_tagged(&[
        ("experiment", "e20_server_throughput"),
        ("scope", "server"),
        ("config", tag),
    ]));
    for e in metrics.drain_events() {
        lines.push(e.to_json_line());
    }
    for (s, db) in dbs.iter().enumerate() {
        let snap = db.stats().snapshot();
        wal_appends += snap.wal_appends;
        puts += snap.puts;
        lines.push(db.metrics().to_json_line_tagged(&[
            ("experiment", "e20_server_throughput"),
            ("scope", "shard"),
            ("shard", &s.to_string()),
            ("config", tag),
        ]));
    }
    write_metrics_lines("e20_server_throughput", &lines);

    RunResult {
        throughput: oks as f64 / wall,
        p50_us: percentile(&lats, 0.50) as f64 / 1000.0,
        p99_us: percentile(&lats, 0.99) as f64 / 1000.0,
        oks,
        errs,
        wal_appends,
        puts,
        batches,
        mean_batch: if batches == 0 { 0.0 } else { puts as f64 / batches as f64 },
    }
}

fn main() {
    let n = bench_n();
    let conns = 4;

    println!("E20: serving-layer throughput — {n} puts per config, {conns} connections\n");

    println!("shard sweep (open-loop Poisson, offered well above 1-shard capacity, window 16):");
    let t = TablePrinter::new(&[
        "shards",
        "kops/s",
        "p50 ms",
        "p99 ms",
        "acked",
        "errors",
        "appends/put",
        "mean batch",
    ]);
    let mut by_shards = Vec::new();
    for shards in [1usize, 2, 4] {
        let r = run_server(shards, conns, 16, n, 60_000.0, &format!("shards{shards}"));
        t.print(&[
            shards.to_string(),
            format!("{:.1}", r.throughput / 1000.0),
            format!("{:.2}", r.p50_us / 1000.0),
            format!("{:.2}", r.p99_us / 1000.0),
            r.oks.to_string(),
            r.errs.to_string(),
            f3(r.wal_appends as f64 / r.puts.max(1) as f64),
            f2(r.mean_batch),
        ]);
        by_shards.push((shards, r.throughput));
    }
    if let (Some((_, t1)), Some((_, t4))) = (by_shards.first(), by_shards.last()) {
        println!("\n  1 → 4 shard speedup: {:.2}x", t4 / t1);
    }

    println!("\ndepth sweep (closed loop, 1 shard — group commit vs pipeline depth):");
    let t = TablePrinter::new(&[
        "depth",
        "kops/s",
        "appends/put",
        "mean batch",
        "batches",
    ]);
    for depth in [1usize, 4, 16] {
        // one connection, so the pipeline window alone sets queue depth
        let r = run_server(1, 1, depth, n / 2, 0.0, &format!("depth{depth}"));
        t.print(&[
            depth.to_string(),
            format!("{:.1}", r.throughput / 1000.0),
            f3(r.wal_appends as f64 / r.puts.max(1) as f64),
            f2(r.mean_batch),
            r.batches.to_string(),
        ]);
    }

    println!("\nexpected shape: the shard sweep scales because each shard's WAL");
    println!("and compaction I/O is slept wall time on its own device — while");
    println!("one shard's committer waits out an append, the other shards'");
    println!("committers sleep through theirs concurrently, like independent");
    println!("disks. One shard serializes every batch behind one WAL, so");
    println!("throughput roughly multiplies with shards (≥1.5x at 4) until");
    println!("the single core saturates on protocol + memtable work. In the");
    println!("depth sweep, depth 1 commits singles (appends/put ≈ 1.0); any");
    println!("depth ≥ 4 lets writes queue while a batch commits, so the");
    println!("committer folds them into one WAL append (appends/put < 1.0,");
    println!("mean batch > 1) — the group-commit curve.");
}
