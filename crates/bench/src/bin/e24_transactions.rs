//! E24 — optimistic transaction throughput and conflict rate vs
//! contention skew.
//!
//! Four client connections each run read-modify-write transactions over
//! the wire against a two-shard hash-routed server: begin, read two
//! zipf-drawn keys, overwrite both, commit. The zipf skew is the swept
//! axis — uniform traffic almost never collides on a 10k-key pool, while
//! `theta = 1.4` concentrates most transactions on a handful of keys, so
//! first-committer-wins validation kills an increasing share of commits.
//!
//! Reported per skew level: committed-transaction throughput, the
//! conflict rate (`conflicts / attempts`), and commit latency from the
//! server's own `txn_commit_ns` histogram. Conflicted transactions are
//! *not* retried — the point is to measure the validation pressure
//! itself, not a retry policy. Expected shape: throughput falls and the
//! conflict rate climbs monotonically with skew; at uniform skew the
//! conflict rate should be near zero, proving validation is not charging
//! innocent transactions.

use std::sync::Arc;
use std::time::Instant;

use lsm_bench::*;
use lsm_core::{BackgroundMode, Db, LsmConfig};
use lsm_server::{Client, Server, ServerConfig, TxnCommitStatus};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice};
use lsm_workload::{encode_key, ZipfSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARDS: usize = 2;
const CONNS: usize = 4;
const KEY_SPACE: u64 = 10_000;
/// Keys read-then-written per transaction.
const RMW_KEYS: usize = 2;

fn shard_config() -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 2,
        wal: true,
        ..base_config()
    }
}

fn open_shards(n: usize) -> Vec<Db> {
    let cfg = shard_config();
    (0..n)
        .map(|_| {
            let dev: Arc<dyn StorageDevice> =
                Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
            Db::open(dev, cfg.clone()).unwrap()
        })
        .collect()
}

/// One connection's slice: `txns` RMW transactions, zipf-keyed.
/// Returns `(committed, conflicted)`.
fn drive(addr: std::net::SocketAddr, conn: u64, theta: f64, txns: u64) -> (u64, u64) {
    let mut c = Client::connect(addr).expect("bench client connect");
    let zipf = ZipfSampler::new(KEY_SPACE, theta.max(1e-3));
    let mut rng = StdRng::seed_from_u64(0xE24_0001 ^ (conn << 32) ^ theta.to_bits());
    let (mut committed, mut conflicted) = (0u64, 0u64);
    for n in 0..txns {
        c.txn_begin().expect("txn begin");
        for _ in 0..RMW_KEYS {
            let key = encode_key(zipf.sample(&mut rng) - 1);
            let cur = c.txn_get(&key).expect("txn get");
            let mut next = cur.unwrap_or_default();
            next.extend_from_slice(format!("+c{conn}n{n}").as_bytes());
            next.truncate(64);
            c.txn_put(&key, &next).expect("txn put");
        }
        match c.txn_commit().expect("txn commit rpc") {
            TxnCommitStatus::Committed(_) => committed += 1,
            TxnCommitStatus::Conflict(_) => conflicted += 1,
        }
    }
    (committed, conflicted)
}

struct RunResult {
    committed_per_s: f64,
    committed: u64,
    conflicted: u64,
    conflict_rate: f64,
    commit_p50_us: f64,
    commit_p99_us: f64,
}

fn run_level(theta: f64, label: &str, total_txns: u64) -> RunResult {
    let server =
        Server::start(open_shards(SHARDS), ServerConfig::default()).expect("start server");
    let addr = server.addr();
    // preload so every transactional read hits a real value
    let mut loader = Client::connect(addr).expect("loader connect");
    for i in 0..KEY_SPACE {
        loader
            .put(&encode_key(i), format!("seed{i}").as_bytes())
            .expect("preload put");
    }
    drop(loader);

    let per_conn = (total_txns / CONNS as u64).max(1);
    let start = Instant::now();
    let drivers: Vec<_> = (0..CONNS)
        .map(|t| std::thread::spawn(move || drive(addr, t as u64, theta, per_conn)))
        .collect();
    let (mut committed, mut conflicted) = (0u64, 0u64);
    for d in drivers {
        let (ok, lost) = d.join().expect("driver thread");
        committed += ok;
        conflicted += lost;
    }
    let wall = start.elapsed().as_secs_f64();

    let metrics = server.metrics();
    let snap = metrics.snapshot();
    let commit_hist = snap.histograms.get("server.txn_commit_ns");
    let (p50, p99) = commit_hist.map(|h| (h.p50(), h.p99())).unwrap_or((0, 0));
    let mut lines = Vec::new();
    lines.push(snap.to_json_line_tagged(&[
        ("experiment", "e24_transactions"),
        ("scope", "server"),
        ("config", label),
    ]));
    for e in metrics.drain_events() {
        lines.push(e.to_json_line());
    }
    let dbs = server.shutdown().expect("graceful shutdown");
    for (s, db) in dbs.iter().enumerate() {
        lines.push(db.metrics().to_json_line_tagged(&[
            ("experiment", "e24_transactions"),
            ("scope", "shard"),
            ("shard", &s.to_string()),
            ("config", label),
        ]));
    }
    write_metrics_lines("e24_transactions", &lines);

    let attempts = committed + conflicted;
    RunResult {
        committed_per_s: committed as f64 / wall,
        committed,
        conflicted,
        conflict_rate: conflicted as f64 / attempts.max(1) as f64,
        commit_p50_us: p50 as f64 / 1e3,
        commit_p99_us: p99 as f64 / 1e3,
    }
}

fn main() {
    // a transaction is 2 RMW round-trips + commit; scale the count down
    // from the raw-op budget so E24 runs in the same ballpark as E20-E23
    let txns = (bench_n() / 8).max(CONNS as u64);
    let levels: [(f64, &str); 4] = [
        (0.001, "uniform"),
        (0.8, "zipf-0.8"),
        (0.99, "zipf-0.99"),
        (1.4, "zipf-1.4"),
    ];

    println!(
        "E24: optimistic transactions — {txns} RMW txns per skew level \
         ({RMW_KEYS} read-modify-writes each), {CONNS} connections, \
         {SHARDS} hash shards, {KEY_SPACE}-key pool\n"
    );
    let t = TablePrinter::new(&[
        "contention",
        "txns/s",
        "committed",
        "conflicted",
        "conflict %",
        "commit p50 us",
        "commit p99 us",
    ]);
    let mut rates = Vec::new();
    for (theta, label) in levels {
        let r = run_level(theta, label, txns);
        t.print(&[
            label.to_string(),
            format!("{:.0}", r.committed_per_s),
            r.committed.to_string(),
            r.conflicted.to_string(),
            format!("{:.1}", r.conflict_rate * 100.0),
            format!("{:.0}", r.commit_p50_us),
            format!("{:.0}", r.commit_p99_us),
        ]);
        rates.push((label, r.conflict_rate));
    }

    println!("\nexpected shape: the conflict rate climbs monotonically with skew");
    println!("(first-committer-wins kills the loser of every same-key race) while");
    println!("committed throughput falls — conflicted work is wasted validation.");
    println!("uniform traffic over a 10k-key pool should conflict near 0%, the");
    println!("proof that validation charges only genuine read-write races.");
}
