//! E14 — The in-block hash index (tutorial Module II.4; RocksDB's
//! data-block hash index).
//!
//! Point lookups with and without the per-block hash index. Expected
//! shape: identical I/O (the index lives inside the block) but lower
//! CPU per get — the binary search over restart points is replaced by one
//! hash probe — at a small space overhead per block.

use lsm_bench::*;
use lsm_core::Db;
use lsm_workload::encode_key;

fn main() {
    let n = DEFAULT_N;
    println!("E14: in-block hash index — {n} keys, warm cache (CPU-bound gets)\n");
    let t = TablePrinter::new(&[
        "hash index",
        "get wall ns",
        "0-result wall ns",
        "data KiB/1k keys",
    ]);
    for hash_index in [false, true] {
        let mut cfg = base_config();
        cfg.block_hash_index = hash_index;
        cfg.restart_interval = 16;
        cfg.cache_bytes = 64 << 20; // everything cached: isolate CPU
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 64);
        db.major_compact().unwrap();
        // warm the cache fully
        measure_present_gets(&db, n, n);
        // measured passes (several, to stabilize wall times)
        let mut best_present = f64::MAX;
        let mut best_empty = f64::MAX;
        for _ in 0..3 {
            let p = measure_reads(&db, 30_000, |i| {
                let id = i.wrapping_mul(48271) % n;
                db.get(&encode_key(id)).unwrap();
            });
            let e = measure_reads(&db, 30_000, |i| {
                let id = i.wrapping_mul(48271) % n;
                let mut k = encode_key(id);
                k.push(b'!');
                db.get(&k).unwrap();
            });
            best_present = best_present.min(p.wall_ns_per_op);
            best_empty = best_empty.min(e.wall_ns_per_op);
        }
        let data_bytes = db.device().live_blocks() * db.config().block_size as u64;
        t.print(&[
            hash_index.to_string(),
            format!("{best_present:.0}"),
            format!("{best_empty:.0}"),
            f2(data_bytes as f64 / 1024.0 / (n as f64 / 1000.0)),
        ]);
    }
    println!("\nexpected shape: same I/O and near-same storage footprint, with");
    println!("lower wall-clock time per (cache-hit) get when the hash index");
    println!("replaces the in-block binary search — Wu's RocksDB result.");
}
