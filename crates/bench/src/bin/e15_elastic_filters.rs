//! E15 — ElasticBF: hotness-aware filter-unit allocation (tutorial
//! Module II.2; Li et al., ATC '19).
//!
//! Simulates many sorted runs under a skewed access pattern. A *static*
//! deployment holds the same number of filter units per run; the
//! *elastic* deployment rebalances units toward hot runs under the same
//! total memory. Expected shape: at equal memory, elastic serves fewer
//! false positives per access (the weighted FPR drops), because hot runs
//! get low-FPR filters and cold runs give theirs up.

use lsm_bench::*;
use lsm_filters::elastic::rebalance_one_step;
use lsm_filters::ElasticFilterGroup;
use lsm_workload::ZipfSampler;
use rand::rngs::StdRng;
use rand::SeedableRng;

const RUNS: usize = 16;
const KEYS_PER_RUN: usize = 20_000;
const UNITS: usize = 4;
const BITS_PER_UNIT: f64 = 2.5;

fn make_groups(initial_enabled: usize) -> Vec<ElasticFilterGroup> {
    (0..RUNS)
        .map(|r| {
            let keys: Vec<Vec<u8>> = (0..KEYS_PER_RUN)
                .map(|i| format!("run{r:02}-key{i:08}").into_bytes())
                .collect();
            let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
            ElasticFilterGroup::build(&refs, UNITS, BITS_PER_UNIT, initial_enabled)
        })
        .collect()
}

/// Runs `accesses` zipfian-skewed zero-result probes; returns
/// (false positives, resident memory bits).
fn run(groups: &mut [ElasticFilterGroup], accesses: u64, rebalance: bool, budget_bits: usize) -> (u64, usize) {
    let zipf = ZipfSampler::new(RUNS as u64, 1.2);
    let mut rng = StdRng::seed_from_u64(42);
    let mut false_positives = 0u64;
    for i in 0..accesses {
        let run = (zipf.sample(&mut rng) - 1) as usize;
        // zero-result probe: a key that was never inserted into this run
        let probe = format!("run{run:02}-absent{i:010}");
        if groups[run].may_contain_counted(probe.as_bytes()) {
            false_positives += 1;
        }
        if rebalance && i % 2000 == 1999 {
            rebalance_one_step(groups, budget_bits);
            for g in groups.iter_mut() {
                g.take_accesses();
            }
        }
    }
    let resident = groups.iter().map(|g| g.resident_bits()).sum();
    (false_positives, resident)
}

fn main() {
    println!(
        "E15: ElasticBF — {RUNS} runs × {KEYS_PER_RUN} keys, {UNITS} units × {BITS_PER_UNIT} b/k, zipf(1.2) accesses\n"
    );
    let accesses = 200_000u64;
    // static: 2 of 4 units resident everywhere
    let mut static_groups = make_groups(2);
    let budget: usize = static_groups.iter().map(|g| g.resident_bits()).sum();
    let (fp_static, mem_static) = run(&mut static_groups, accesses, false, budget);
    // elastic: same budget, units migrate toward hot runs
    let mut elastic_groups = make_groups(2);
    let (fp_elastic, mem_elastic) = run(&mut elastic_groups, accesses, true, budget);
    let t = TablePrinter::new(&["deployment", "resident KiB", "false positives", "weighted FPR"]);
    t.print(&[
        "static (2/4 units)".into(),
        f2(mem_static as f64 / 8.0 / 1024.0),
        fp_static.to_string(),
        pct(fp_static as f64 / accesses as f64),
    ]);
    t.print(&[
        "elastic".into(),
        f2(mem_elastic as f64 / 8.0 / 1024.0),
        fp_elastic.to_string(),
        pct(fp_elastic as f64 / accesses as f64),
    ]);
    let units: Vec<usize> = elastic_groups.iter().map(|g| g.enabled_units()).collect();
    println!("\nfinal elastic units per run (run 0 hottest by zipf rank): {units:?}");
    println!(
        "\nexpected shape: at (≤) equal resident memory, the elastic\n\
         deployment's weighted FPR is lower — hot runs end with more units,\n\
         cold runs with fewer — ElasticBF's headline result. improvement:\n\
         {:.2}x fewer false positives",
        fp_static as f64 / fp_elastic.max(1) as f64
    );
}
