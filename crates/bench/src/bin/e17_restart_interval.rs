//! E17 (ablation) — restart interval: prefix compression vs in-block CPU.
//!
//! Expected shape: a larger restart interval compresses shared key
//! prefixes harder (smaller files) but makes the in-block search walk a
//! longer run of delta-encoded entries (more CPU per lookup); interval 1
//! stores full keys — largest files, cheapest in-block search.

use lsm_bench::*;
use lsm_core::{Db, LsmConfig};

fn main() {
    let n = 60_000u64;
    println!("E17: restart-interval ablation — {n} keys with 12-byte shared prefixes\n");
    let t = TablePrinter::new(&[
        "interval",
        "data KiB",
        "bytes/entry",
        "warm get ns",
    ]);
    for interval in [1usize, 4, 16, 64] {
        let cfg = LsmConfig {
            restart_interval: interval,
            cache_bytes: 64 << 20, // warm cache: isolate in-block CPU
            wal: false,
            buffer_bytes: 64 << 10,
            size_ratio: 4,
            block_size: 4096,
            target_table_bytes: 256 << 10,
            ..LsmConfig::default()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 24);
        db.major_compact().unwrap();
        // warm
        measure_present_gets(&db, n, n);
        let mut best = f64::MAX;
        for _ in 0..3 {
            let c = measure_present_gets(&db, n, 20_000);
            best = best.min(c.wall_ns_per_op);
        }
        let data_bytes = db.device().live_blocks() * db.config().block_size as u64;
        t.print(&[
            interval.to_string(),
            f2(data_bytes as f64 / 1024.0),
            f2(data_bytes as f64 / n as f64),
            format!("{best:.0}"),
        ]);
    }
    println!("\nexpected shape: storage per entry falls as the interval grows");
    println!("(prefix compression amortizes over more entries) while warm-get");
    println!("CPU is U-shaped: interval 1 pays a deep restart binary search");
    println!("(every entry is a restart), large intervals pay long delta-decode");
    println!("walks; the sweet spot sits at small intervals, which is why");
    println!("production engines default to ~16.");
}
