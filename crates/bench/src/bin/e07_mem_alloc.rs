//! E7 — Buffer-vs-filter memory split (tutorial Module II.5; Monkey's
//! second knob, Luo & Carey's memory walls).
//!
//! A fixed memory budget is split between the write buffer and the Bloom
//! filters; the same mixed workload runs at every split. Expected shape:
//! a U-curve — all-buffer starves the filters (lookups probe every run),
//! all-filter starves the buffer (more levels, more merging); the optimum
//! sits in between and shifts with the workload's read share.

use lsm_bench::*;
use lsm_core::Db;
use lsm_workload::encode_key;

fn run_split(frac_buffer: f64, total_bytes: u64, n: u64, read_share: f64) -> (f64, f64, f64) {
    let mut cfg = base_config();
    cfg.buffer_bytes = ((total_bytes as f64 * frac_buffer) as usize).max(cfg.block_size * 4);
    let filter_bits = (total_bytes as f64 * (1.0 - frac_buffer)) * 8.0;
    cfg.bits_per_key = (filter_bits / n as f64).max(0.0);
    let db = Db::open_simulated(cfg, lsm_storage::DeviceProfile::nvme_ssd()).unwrap();
    fill_scattered(&db, n, 64);
    let t0 = db.device().latency().clock().now_ns();
    let io0 = db.io_stats();
    let ops = 20_000u64;
    for i in 0..ops {
        let r = (i as f64 * 0.61803398875) % 1.0;
        if r < read_share {
            // half the reads hit, half miss
            let id = i.wrapping_mul(48271) % n;
            if i % 2 == 0 {
                db.get(&encode_key(id)).unwrap();
            } else {
                let mut k = encode_key(id);
                k.push(b'!');
                db.get(&k).unwrap();
            }
        } else {
            let id = i.wrapping_mul(2654435761) % n;
            db.put(encode_key(id), value_of(id, 64)).unwrap();
        }
    }
    let sim_us_per_op =
        (db.device().latency().clock().now_ns() - t0) as f64 / ops as f64 / 1000.0;
    let io = db.io_stats().delta_since(&io0);
    (
        sim_us_per_op,
        io.total_read_blocks() as f64 / ops as f64,
        io.total_written_blocks() as f64 / ops as f64,
    )
}

fn main() {
    let n = 60_000u64;
    let total = 192u64 << 10; // tight budget so the split matters
    println!("E7: buffer-vs-filter split — {n} keys, {} KiB total memory\n", total >> 10);
    for (wl, read_share) in [("read-heavy (80% reads)", 0.8), ("write-heavy (20% reads)", 0.2)] {
        println!("workload: {wl}");
        let t = TablePrinter::new(&["buffer %", "sim µs/op", "read blk/op", "write blk/op"]);
        for pct_buf in [5u32, 15, 30, 50, 70, 90] {
            let (us, r, w) = run_split(pct_buf as f64 / 100.0, total, n, read_share);
            t.print(&[format!("{pct_buf}%"), f2(us), f3(r), f3(w)]);
        }
        println!();
    }
    println!("expected shape: a U-curve in sim time per op; the read-heavy");
    println!("optimum allocates more to filters, the write-heavy optimum");
    println!("more to the buffer — Monkey/Luo&Carey's memory tuning result.");
}
