//! E11 — Navigating the design space with cost models (tutorial
//! Module III.1; design continuum / Cosine).
//!
//! For each workload, a deterministic operation trace is synthesized,
//! the *shared* workload estimator ([`lsm_tuner::WorkloadEstimate`] —
//! the same code path the online tuner runs over metrics deltas)
//! recovers the mix from the trace, the analytical navigator ranks a
//! candidate grid over that estimate, and every candidate is then
//! *built and measured* on the same trace. Expected shape: the model's
//! ranking agrees with the measured ranking at the top (the navigator
//! picks a measured-near-optimal design), even though absolute modeled
//! I/O differs from measured I/O.

use lsm_bench::*;
use lsm_model::navigator::Environment;
use lsm_model::{navigate, DesignSpace, MergePolicy, WorkloadProfile};

const N: u64 = 50_000;

fn main() {
    println!("E11: model-guided navigation vs measurement — {N} keys\n");
    let env = Environment {
        num_entries: N,
        entry_bytes: MODEL_ENTRY_BYTES as u64,
        entries_per_block: 1024 / MODEL_ENTRY_BYTES as u64,
        total_memory_bytes: 256 << 10,
    };
    // a small candidate grid (kept coarse so every cell can be measured)
    let space = DesignSpace {
        policies: vec![
            MergePolicy::Leveling,
            MergePolicy::Tiering,
            MergePolicy::LazyLeveling,
        ],
        size_ratios: vec![4, 8],
        buffer_fractions: vec![0.25],
        try_monkey: false,
    };
    let workloads = [
        ("write-heavy", WorkloadProfile {
            writes: 0.9,
            point_reads: 0.05,
            empty_point_reads: 0.05,
            range_reads: 0.0,
            range_entries: 0.0,
        }),
        ("read-heavy", WorkloadProfile {
            writes: 0.1,
            point_reads: 0.45,
            empty_point_reads: 0.45,
            range_reads: 0.0,
            range_entries: 0.0,
        }),
        ("scan-heavy", WorkloadProfile {
            writes: 0.2,
            point_reads: 0.1,
            empty_point_reads: 0.1,
            range_reads: 0.6,
            range_entries: 200.0,
        }),
    ];
    for (name, intended) in workloads {
        println!("workload: {name}");
        // synthesize the trace from the intended mix, then let the
        // shared estimator recover the profile the navigator consumes —
        // exactly what the online tuner does with a metrics delta
        let trace = synth_trace(&intended, 20_000, N, 64);
        let est = estimate_of(&trace);
        let w = est.profile();
        let ranked = navigate(&space, &env, &w);
        let t = TablePrinter::new(&["design", "T", "model cost", "measured blk/op"]);
        let mut measured: Vec<(String, f64, f64)> = Vec::new();
        for c in &ranked {
            let m = measured_trace_cost(c, &trace, N);
            measured.push((
                c.design.policy.label().to_string(),
                c.cost,
                m,
            ));
            t.print(&[
                c.design.policy.label().to_string(),
                c.design.size_ratio.to_string(),
                format!("{:.4}", c.cost),
                f3(m),
            ]);
        }
        let model_best = &measured[0];
        let measured_best = measured
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        println!(
            "  estimated mix: {:.0}% writes / {:.0}% reads / {:.0}% scans ({:.0}% of lookups empty)",
            w.writes * 100.0,
            (w.point_reads + w.empty_point_reads) * 100.0,
            w.range_reads * 100.0,
            est.empty_read_fraction() * 100.0,
        );
        println!(
            "  model picked {} ({:.3} blk/op); measured best {} ({:.3}); regret {:.1}%\n",
            model_best.0,
            model_best.2,
            measured_best.0,
            measured_best.2,
            (model_best.2 / measured_best.2 - 1.0) * 100.0
        );
    }
    println!("expected shape: per workload, the model's #1 is at or near the");
    println!("measured optimum (single-digit regret), and the model's relative");
    println!("ordering of designs matches the measured ordering.");
}
