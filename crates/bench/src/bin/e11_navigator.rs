//! E11 — Navigating the design space with cost models (tutorial
//! Module III.1; design continuum / Cosine).
//!
//! For each workload, the analytical navigator ranks a candidate grid;
//! every candidate is then *built and measured* on the same trace.
//! Expected shape: the model's ranking agrees with the measured ranking at
//! the top (the navigator picks a measured-near-optimal design), even
//! though absolute modeled I/O differs from measured I/O.

use lsm_bench::*;
use lsm_core::{Db, FilterAllocation, LsmConfig, MergeLayout};
use lsm_model::navigator::Environment;
use lsm_model::{navigate, Candidate, DesignSpace, MergePolicy, WorkloadProfile};
use lsm_workload::encode_key;

const N: u64 = 50_000;

fn engine_for(c: &Candidate) -> LsmConfig {
    let mut cfg = base_config();
    cfg.layout = match c.design.policy {
        MergePolicy::Leveling => MergeLayout::Leveled,
        MergePolicy::Tiering => MergeLayout::Tiered,
        MergePolicy::LazyLeveling => MergeLayout::LazyLeveled,
    };
    cfg.size_ratio = c.design.size_ratio as usize;
    cfg.buffer_bytes = (c.design.buffer_entries as usize * 80).max(cfg.block_size * 4);
    cfg.bits_per_key = c.design.bits_per_key;
    cfg.filter_allocation = if c.design.monkey {
        FilterAllocation::Monkey
    } else {
        FilterAllocation::Uniform
    };
    cfg
}

/// Measured cost of one candidate on a workload trace, in device blocks
/// per operation.
fn measured_cost(c: &Candidate, w: &WorkloadProfile) -> f64 {
    let db = Db::open_in_memory(engine_for(c)).unwrap();
    fill_scattered(&db, N, 64);
    let io0 = db.io_stats();
    let ops = 20_000u64;
    let wn = w.normalized();
    for i in 0..ops {
        let r = (i as f64 * 0.61803398875) % 1.0;
        let id = i.wrapping_mul(48271) % N;
        if r < wn.writes {
            db.put(encode_key(id), value_of(id, 64)).unwrap();
        } else if r < wn.writes + wn.point_reads {
            db.get(&encode_key(id)).unwrap();
        } else if r < wn.writes + wn.point_reads + wn.empty_point_reads {
            let mut k = encode_key(id);
            k.push(b'!');
            db.get(&k).unwrap();
        } else {
            let mut end = encode_key(N * 2);
            end.push(b'z');
            db.scan(encode_key(id)..end, wn.range_entries as usize)
                .unwrap();
        }
    }
    let io = db.io_stats().delta_since(&io0);
    (io.total_read_blocks() + io.total_written_blocks()) as f64 / ops as f64
}

fn main() {
    println!("E11: model-guided navigation vs measurement — {N} keys\n");
    let env = Environment {
        num_entries: N,
        entry_bytes: 80,
        entries_per_block: 1024 / 80,
        total_memory_bytes: 256 << 10,
    };
    // a small candidate grid (kept coarse so every cell can be measured)
    let space = DesignSpace {
        policies: vec![
            MergePolicy::Leveling,
            MergePolicy::Tiering,
            MergePolicy::LazyLeveling,
        ],
        size_ratios: vec![4, 8],
        buffer_fractions: vec![0.25],
        try_monkey: false,
    };
    let workloads = [
        ("write-heavy", WorkloadProfile {
            writes: 0.9,
            point_reads: 0.05,
            empty_point_reads: 0.05,
            range_reads: 0.0,
            range_entries: 0.0,
        }),
        ("read-heavy", WorkloadProfile {
            writes: 0.1,
            point_reads: 0.45,
            empty_point_reads: 0.45,
            range_reads: 0.0,
            range_entries: 0.0,
        }),
        ("scan-heavy", WorkloadProfile {
            writes: 0.2,
            point_reads: 0.1,
            empty_point_reads: 0.1,
            range_reads: 0.6,
            range_entries: 200.0,
        }),
    ];
    for (name, w) in workloads {
        println!("workload: {name}");
        let ranked = navigate(&space, &env, &w);
        let t = TablePrinter::new(&["design", "T", "model cost", "measured blk/op"]);
        let mut measured: Vec<(String, f64, f64)> = Vec::new();
        for c in &ranked {
            let m = measured_cost(c, &w);
            measured.push((
                c.design.policy.label().to_string(),
                c.cost,
                m,
            ));
            t.print(&[
                c.design.policy.label().to_string(),
                c.design.size_ratio.to_string(),
                format!("{:.4}", c.cost),
                f3(m),
            ]);
        }
        let model_best = &measured[0];
        let measured_best = measured
            .iter()
            .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap())
            .unwrap();
        println!(
            "  model picked {} ({:.3} blk/op); measured best {} ({:.3}); regret {:.1}%\n",
            model_best.0,
            model_best.2,
            measured_best.0,
            measured_best.2,
            (model_best.2 / measured_best.2 - 1.0) * 100.0
        );
    }
    println!("expected shape: per workload, the model's #1 is at or near the");
    println!("measured optimum (single-digit regret), and the model's relative");
    println!("ordering of designs matches the measured ordering.");
}
