//! E25 — self-driving tuning under workload drift (tutorial Module
//! III; Monkey + Dostoevsky + Endure closed into an online loop).
//!
//! A `MixShift` workload flips its operation mix at fixed op counts —
//! write-heavy → read-heavy → scan-heavy — so every *static*
//! configuration is wrong for at least one phase: tiering pays in the
//! read and scan phases, leveling pays in the write phase, and a fixed
//! filter budget is either wasted early or missing late. The adaptive
//! engine runs the same schedule with an [`lsm_tuner::Tuner`] ticked
//! every few thousand operations; it estimates the live mix from the
//! metrics registry, re-navigates the design space, and actuates
//! through the dynamic-config overlay (staged, never eager rewrites).
//!
//! Expected shape: each static engine wins (or nearly wins) its home
//! phase, but the adaptive engine's *total* cost beats every static
//! config — the whole point of self-driving tuning. The retune trail
//! (policy switches, bloom reallocations, predicted vs observed gain)
//! is printed and, with `--metrics`, written to the artifact.

use lsm_bench::*;
use lsm_core::{Db, EventKind, FilterAllocation, LsmConfig, MergeLayout};
use lsm_obs::Event;
use lsm_tuner::{Tuner, TunerConfig};
use lsm_workload::mixshift::{MixShift, MixShiftSpec};
use lsm_workload::{encode_key, Operation};

const BIN: &str = "e25_self_tuning";

fn spec(phase_ops: u64, key_space: u64) -> MixShiftSpec {
    let mut s = MixShiftSpec::default();
    for p in &mut s.phases {
        p.ops = phase_ops;
    }
    s.key_space = key_space;
    s
}

/// The online tuner over the bench geometry: memory budget covers the
/// 64 KiB write buffer plus a filter budget worth fighting over.
fn tuner_cfg(db: &Db) -> TunerConfig {
    TunerConfig {
        min_gain_milli: 30,
        cooldown_ticks: 1,
        min_ops_per_tick: 150,
        seed: 0,
        ..TunerConfig::for_db(db, MODEL_ENTRY_BYTES as u64, 128 << 10)
    }
}

fn apply(db: &Db, op: &Operation, key_space: u64) {
    match op {
        Operation::Put { key, value } => db.put(key.clone(), value.clone()).unwrap(),
        Operation::Delete { key } => db.delete(key.clone()).unwrap(),
        Operation::Get { key } => {
            db.get(key).unwrap();
        }
        Operation::Scan { start, limit } => {
            let mut end = encode_key(key_space * 2);
            end.push(b'z');
            db.scan(start.clone()..end, *limit).unwrap();
        }
        Operation::ReadModifyWrite { key, value } => {
            db.get(key).unwrap();
            db.put(key.clone(), value.clone()).unwrap();
        }
    }
}

struct RunResult {
    per_phase: Vec<f64>,
    total: f64,
    decisions: u64,
    events: Vec<Event>,
    metrics_line: String,
}

/// Runs the full MixShift schedule on one engine. `adaptive` attaches a
/// tuner ticked every `tick_every` ops; statics run the identical
/// stream untouched.
fn run_engine(
    cfg: LsmConfig,
    adaptive: bool,
    phase_ops: u64,
    key_space: u64,
    tick_every: u64,
    tags: &[(&str, &str)],
) -> RunResult {
    let db = Db::open_in_memory(cfg).unwrap();
    let mut tuner = adaptive.then(|| Tuner::new(db.clone(), tuner_cfg(&db)));
    let mut gen = MixShift::new(spec(phase_ops, key_space));
    let mut per_phase = Vec::new();
    let mut io_prev = db.io_stats();
    for _ in 0..3 {
        for i in 0..phase_ops {
            apply(&db, &gen.next_op(), key_space);
            if (i + 1) % tick_every == 0 {
                if let Some(t) = tuner.as_mut() {
                    t.tick();
                }
            }
        }
        db.wait_background_idle();
        let io = db.io_stats();
        let d = io.delta_since(&io_prev);
        per_phase
            .push((d.total_read_blocks() + d.total_written_blocks()) as f64 / phase_ops as f64);
        io_prev = io;
    }
    let total = per_phase.iter().sum::<f64>() / 3.0;
    RunResult {
        per_phase,
        total,
        decisions: tuner.as_ref().map_or(0, |t| t.decisions()),
        events: db.drain_events(),
        metrics_line: db.metrics().to_json_line_tagged(tags),
    }
}

fn main() {
    // this experiment asserts its own expected shape (adaptive beats
    // every static, with at least one policy switch), which only holds
    // once the tree is deep enough for layout to matter — so the scale
    // floors at DEFAULT_N instead of degrading under small LSM_BENCH_N
    let n = bench_n().max(DEFAULT_N);
    let phase_ops = (n / 4).max(1_500);
    let key_space = n.max(2_000);
    let tick_every = (phase_ops / 8).max(250);
    println!(
        "E25: self-driving tuning under MixShift drift — {key_space} key space, \
         3 phases x {phase_ops} ops, tuner ticked every {tick_every} ops\n"
    );

    let statics: Vec<(&str, LsmConfig)> = vec![
        ("static leveled T=4", base_config()),
        ("static tiered T=4", LsmConfig {
            layout: MergeLayout::Tiered,
            ..base_config()
        }),
        ("static lazy-leveled T=4", LsmConfig {
            layout: MergeLayout::LazyLeveled,
            ..base_config()
        }),
        ("static leveled monkey b=16", LsmConfig {
            bits_per_key: 16.0,
            filter_allocation: FilterAllocation::Monkey,
            ..base_config()
        }),
    ];

    let t = TablePrinter::new(&[
        "engine",
        "write blk/op",
        "read blk/op",
        "scan blk/op",
        "total blk/op",
    ]);
    let mut artifact = Vec::new();
    let mut best_static = f64::INFINITY;
    for (label, cfg) in &statics {
        let r = run_engine(
            cfg.clone(),
            false,
            phase_ops,
            key_space,
            tick_every,
            &[("experiment", "e25"), ("engine", label)],
        );
        t.print(&[
            label.to_string(),
            f3(r.per_phase[0]),
            f3(r.per_phase[1]),
            f3(r.per_phase[2]),
            f3(r.total),
        ]);
        best_static = best_static.min(r.total);
        artifact.push(r.metrics_line);
    }
    let adaptive = run_engine(
        base_config(),
        true,
        phase_ops,
        key_space,
        tick_every,
        &[("experiment", "e25"), ("engine", "adaptive")],
    );
    t.print(&[
        "adaptive (tuner)".to_string(),
        f3(adaptive.per_phase[0]),
        f3(adaptive.per_phase[1]),
        f3(adaptive.per_phase[2]),
        f3(adaptive.total),
    ]);

    println!("\nretune trail ({} decisions):", adaptive.decisions);
    let mut policy_switches = 0usize;
    let mut bloom_reallocs = 0usize;
    let mut audits = 0usize;
    for e in &adaptive.events {
        match &e.kind {
            EventKind::Retune {
                decision,
                knob,
                from,
                to,
                predicted_gain_milli,
            } => {
                if *knob == "layout" {
                    policy_switches += 1;
                }
                if *knob == "bloom_bits" {
                    bloom_reallocs += 1;
                }
                println!(
                    "  #{decision} {knob}: {from} -> {to}  (predicted {:+.1}%)",
                    *predicted_gain_milli as f64 / 10.0
                );
            }
            EventKind::RetuneObserved {
                decision,
                knob,
                predicted_gain_milli,
                observed_gain_milli,
            } => {
                audits += 1;
                println!(
                    "  #{decision} {knob}: observed {:+.1}% vs predicted {:+.1}%",
                    *observed_gain_milli as f64 / 10.0,
                    *predicted_gain_milli as f64 / 10.0
                );
            }
            _ => {}
        }
    }
    artifact.push(adaptive.metrics_line.clone());
    artifact.extend(adaptive.events.iter().map(|e| e.to_json_line()));
    write_metrics_lines(BIN, &artifact);

    println!(
        "\nadaptive {:.3} blk/op vs best static {:.3} blk/op ({:+.1}%)",
        adaptive.total,
        best_static,
        (adaptive.total - best_static) / best_static * 100.0
    );
    assert!(
        policy_switches >= 1,
        "adaptive run never switched merge policy"
    );
    assert!(
        bloom_reallocs >= 1,
        "adaptive run never reallocated its filter budget"
    );
    assert!(audits >= 1, "no observed-gain audit landed");
    assert!(
        adaptive.total < best_static,
        "adaptive ({:.3} blk/op) must beat every static config (best {best_static:.3})",
        adaptive.total
    );
    println!("expected shape: each static wins its home phase, but only the");
    println!("self-tuning engine is cheapest across the whole drift schedule.");
}
