//! E23 — elastic range sharding vs static topologies under a shifting
//! hotspot.
//!
//! One open-loop Poisson workload — 80% puts / 20% short scans whose
//! keys concentrate (90%) in a contiguous hot window that jumps to a
//! far-away region of the keyspace twice per run — is offered at the
//! same rate to three four-shard topologies:
//!
//! 1. **hash4** — the static FNV hash router. Point writes scatter
//!    evenly (hash is immune to key skew), but every scan must visit
//!    *all* shards and k-way merge, paying four shards' worth of read
//!    I/O per scan.
//! 2. **range4** — a static range map. Scans touch only the owning
//!    shard(s), but the hot window lands on one shard, which serializes
//!    ~90% of the writes behind a single WAL.
//! 3. **elastic** — the same range map plus the rebalancer: per-shard
//!    write-rate gauges trigger online splits of whichever shard the
//!    hot window currently occupies (up to 8 shards), migrating half
//!    its range to a fresh engine while serving continues.
//!
//! Latency is measured from the *scheduled* arrival (coordinated
//! omission stays in the numbers), on a [`WallLatencyDevice`] so WAL
//! appends and reads cost real wall time per shard, like independent
//! disks. Expected shape: range4 beats hash4 on scans but loses its
//! advantage to write queueing on the hot shard; elastic keeps the scan
//! routing *and* splits the hot range, so it should post the best p99.
//! Smoke-scale runs (`LSM_BENCH_N` small) are too short for scan cost
//! to accumulate, so their ordering is noise; the full-scale numbers
//! live in EXPERIMENTS.md.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsm_bench::*;
use lsm_core::{BackgroundMode, Db, LsmConfig};
use lsm_server::{
    Client, ElasticOptions, RebalancePolicy, Request, Response, Server, ServerConfig, ShardMap,
};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice, WallLatencyDevice};
use lsm_workload::hotspot::{HotspotSpec, ShiftingHotspot};
use lsm_workload::{decode_key, encode_key, Arrivals, OpMix, OpenLoopSchedule, Operation};

/// The modeled disk behind every shard: appends and reads cost real
/// (slept) wall time, so shards behave like independent devices.
fn disk_profile() -> DeviceProfile {
    DeviceProfile {
        random_read_ns: 20_000,
        random_write_ns: 250_000,
        read_block_ns: 1_000,
        write_block_ns: 2_000,
    }
}

fn shard_config() -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 2,
        wal: true,
        ..base_config()
    }
}

fn shard_device() -> Arc<dyn StorageDevice> {
    let cfg = shard_config();
    let mem: Arc<dyn StorageDevice> =
        Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
    Arc::new(WallLatencyDevice::new(mem, disk_profile()))
}

fn open_shards(n: usize) -> Vec<Db> {
    (0..n)
        .map(|_| Db::open(shard_device(), shard_config()).unwrap())
        .collect()
}

#[derive(Clone, Copy, PartialEq)]
enum Topo {
    Hash4,
    Range4,
    Elastic,
}

impl Topo {
    fn tag(self) -> &'static str {
        match self {
            Topo::Hash4 => "hash4",
            Topo::Range4 => "range4",
            Topo::Elastic => "elastic",
        }
    }
}

const START_SHARDS: usize = 4;
const KEY_SPACE: u64 = 200_000;
const SCAN_SPAN: u64 = 2_000;

fn hotspot_spec(total_ops: u64, conns: u64, seed: u64) -> HotspotSpec {
    HotspotSpec {
        key_space: KEY_SPACE,
        hot_fraction: 0.9,
        hot_width: 8_000,
        // three windows per run; window position is a pure function of
        // the phase, so every connection chases the same hot range
        phase_ops: (total_ops / conns / 3).max(1),
        mix: OpMix {
            insert: 0.8,
            update: 0.0,
            read: 0.0,
            scan: 0.2,
            delete: 0.0,
            rmw: 0.0,
        },
        value_len: 64,
        scan_len: 100,
        seed,
    }
}

/// Drives one connection: shifting-hotspot ops at scheduled open-loop
/// arrivals, at most `window` unacknowledged. Returns (latencies ns
/// from scheduled arrival, oks, errors).
fn drive(
    addr: SocketAddr,
    conn: u64,
    arrivals: Vec<u64>,
    window: usize,
    start: Instant,
) -> (Vec<u64>, u64, u64) {
    let mut c = Client::connect(addr).expect("bench client connect");
    let mut gen = ShiftingHotspot::new(hotspot_spec(
        arrivals.len() as u64,
        1,
        0xE23_0001 + conn,
    ));
    let mut pending: HashMap<u64, u64> = HashMap::new();
    let mut lats = Vec::with_capacity(arrivals.len());
    let (mut oks, mut errs) = (0u64, 0u64);
    let mut recv_one = |c: &mut Client, pending: &mut HashMap<u64, u64>| {
        let (rid, resp) = c.recv().expect("bench recv");
        let done = start.elapsed().as_nanos() as u64;
        if let Some(at) = pending.remove(&rid) {
            lats.push(done.saturating_sub(at));
        }
        match resp {
            Response::Ok | Response::Entries(_) => oks += 1,
            _ => errs += 1,
        }
    };
    for &at in &arrivals {
        loop {
            let now = start.elapsed().as_nanos() as u64;
            if now >= at {
                break;
            }
            std::thread::sleep(Duration::from_nanos((at - now).min(500_000)));
        }
        let req = match gen.next_op() {
            Operation::Put { key, value } => Request::Put { key, value },
            Operation::Scan { start: lo, limit } => {
                let id = decode_key(&lo).unwrap_or(0);
                Request::Scan {
                    start: lo,
                    end: encode_key(id + SCAN_SPAN),
                    limit: limit as u32,
                }
            }
            // the put/scan mix generates no gets, deletes, or rmws
            Operation::Get { key } | Operation::Delete { key } => Request::Get { key },
            Operation::ReadModifyWrite { key, .. } => Request::Get { key },
        };
        let rid = c.send(&req).expect("bench send");
        pending.insert(rid, at);
        while pending.len() >= window {
            recv_one(&mut c, &mut pending);
        }
    }
    while !pending.is_empty() {
        recv_one(&mut c, &mut pending);
    }
    (lats, oks, errs)
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() as f64 - 1.0) * p) as usize]
}

struct RunResult {
    throughput: f64,
    p50_ms: f64,
    p99_ms: f64,
    oks: u64,
    errs: u64,
    shards_final: usize,
    map_version: u64,
}

fn run_topology(topo: Topo, conns: usize, window: usize, total_ops: u64, rate: f64) -> RunResult {
    let server_cfg = ServerConfig {
        pipeline_depth: window.max(1),
        // compare completed work, not refused work
        shed_l0_runs: Some(usize::MAX),
        ..ServerConfig::default()
    };
    let server = match topo {
        Topo::Hash4 => Server::start(open_shards(START_SHARDS), server_cfg).expect("start hash"),
        Topo::Range4 | Topo::Elastic => {
            let policy = (topo == Topo::Elastic).then_some(RebalancePolicy {
                interval_ms: 50,
                split_puts_per_interval: 600,
                merge_puts_per_interval: 20,
                max_shards: 8,
                min_shards: START_SHARDS,
            });
            Server::start_elastic(
                open_shards(START_SHARDS),
                ShardMap::uniform(START_SHARDS),
                ElasticOptions {
                    meta_dev: Arc::new(MemDevice::new(
                        shard_config().block_size,
                        DeviceProfile::free(),
                    )),
                    factory: Box::new(|_shard_id| shard_device()),
                    policy,
                },
                server_cfg,
            )
            .expect("start elastic")
        }
    };
    let addr = server.addr();
    let per_conn = (total_ops / conns as u64).max(1);
    let start = Instant::now();
    let drivers: Vec<_> = (0..conns)
        .map(|t| {
            let arrivals =
                OpenLoopSchedule::new(rate / conns as f64, Arrivals::Poisson, 0xE23 + t as u64)
                    .take(per_conn as usize);
            std::thread::spawn(move || drive(addr, t as u64, arrivals, window, start))
        })
        .collect();
    let mut lats = Vec::new();
    let (mut oks, mut errs) = (0u64, 0u64);
    for d in drivers {
        let (l, o, e) = d.join().expect("driver thread");
        lats.extend(l);
        oks += o;
        errs += e;
    }
    let wall = start.elapsed().as_secs_f64();
    lats.sort_unstable();

    let (shards_final, map_version) = server
        .shard_map()
        .map(|m| (m.len(), m.version))
        .unwrap_or((START_SHARDS, 0));
    let metrics = server.metrics();
    let server_snap = metrics.snapshot();
    let mut lines = Vec::new();
    lines.push(server_snap.to_json_line_tagged(&[
        ("experiment", "e23_elastic"),
        ("scope", "server"),
        ("config", topo.tag()),
    ]));
    for e in metrics.drain_events() {
        lines.push(e.to_json_line());
    }
    let dbs = server.shutdown().expect("graceful shutdown");
    for (s, db) in dbs.iter().enumerate() {
        lines.push(db.metrics().to_json_line_tagged(&[
            ("experiment", "e23_elastic"),
            ("scope", "shard"),
            ("shard", &s.to_string()),
            ("config", topo.tag()),
        ]));
    }
    write_metrics_lines("e23_elastic", &lines);

    RunResult {
        throughput: oks as f64 / wall,
        p50_ms: percentile(&lats, 0.50) as f64 / 1e6,
        p99_ms: percentile(&lats, 0.99) as f64 / 1e6,
        oks,
        errs,
        shards_final,
        map_version,
    }
}

fn main() {
    let n = bench_n();
    let conns = 4;
    let window = 16;
    let rate = 40_000.0;

    println!(
        "E23: elastic range sharding — {n} shifting-hotspot ops per topology, \
         {conns} connections, offered {:.0} kops/s\n",
        rate / 1000.0
    );
    let t = TablePrinter::new(&[
        "topology",
        "kops/s",
        "p50 ms",
        "p99 ms",
        "acked",
        "errors",
        "shards",
        "map ver",
    ]);
    let mut results = Vec::new();
    for topo in [Topo::Hash4, Topo::Range4, Topo::Elastic] {
        let r = run_topology(topo, conns, window, n, rate);
        t.print(&[
            topo.tag().to_string(),
            format!("{:.1}", r.throughput / 1000.0),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p99_ms),
            r.oks.to_string(),
            r.errs.to_string(),
            r.shards_final.to_string(),
            r.map_version.to_string(),
        ]);
        results.push((topo, r));
    }
    if let (Some((_, hash)), Some((_, elastic))) = (
        results.iter().find(|(t, _)| *t == Topo::Hash4),
        results.iter().find(|(t, _)| *t == Topo::Elastic),
    ) {
        println!(
            "\n  hash4 → elastic p99: {:.2} ms → {:.2} ms ({:.2}x)",
            hash.p99_ms,
            elastic.p99_ms,
            hash.p99_ms / elastic.p99_ms.max(1e-9)
        );
    }

    println!("\nexpected shape: hash4 pays every scan four shards of read I/O");
    println!("(a scan must visit all shards and k-way merge); range topologies");
    println!("route each scan to the 1-2 shards owning the window. range4 gives");
    println!("that back on writes — the hot window lands on one shard and ~90%");
    println!("of the puts queue behind its single WAL. elastic keeps the scan");
    println!("routing and splits whichever shard the window occupies (watch the");
    println!("map-ver column advance), so it should post the best p99 at full");
    println!("scale. Smoke-scale runs are too short for scan cost to");
    println!("accumulate, so their ordering is noise.");
}
