//! E8 — Compaction granularity and file picking (tutorial Module I.2;
//! Sarkar et al.'s data-movement-policy primitive).
//!
//! Full-level merges vs partial (one file at a time) with each picking
//! policy. Expected shape: similar total write amplification, but partial
//! compaction's *largest single compaction* — the tail-latency driver —
//! is an order of magnitude smaller; min-overlap picking writes the least.

use lsm_bench::*;
use lsm_core::{CompactionGranularity, Db, FilePicker};

fn main() {
    let n = DEFAULT_N;
    println!("E8: compaction granularity × picker — {n} keys, leveled T=4\n");
    let t = TablePrinter::new(&[
        "granularity",
        "write-amp",
        "compactions",
        "avg entries",
        "largest",
        "stall proxy",
    ]);
    let mut variants: Vec<(String, CompactionGranularity)> =
        vec![("full".into(), CompactionGranularity::Full)];
    for p in FilePicker::ALL {
        variants.push((
            format!("partial/{}", p.label()),
            CompactionGranularity::Partial(p),
        ));
    }
    for (name, granularity) in variants {
        let mut cfg = base_config();
        cfg.granularity = granularity;
        cfg.target_table_bytes = 32 << 10; // small files so picking matters
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 64);
        // update churn to keep compactions coming
        fill_scattered(&db, n / 2, 64);
        let s = db.stats().snapshot();
        let avg = s.compaction_entries as f64 / s.compactions.max(1) as f64;
        // stall proxy: entries of the largest single (synchronous)
        // compaction — the longest write stall a client put saw
        t.print(&[
            name,
            f2(write_amp(&db)),
            s.compactions.to_string(),
            format!("{avg:.0}"),
            s.largest_compaction_entries.to_string(),
            format!(
                "{:.1}x avg",
                s.largest_compaction_entries as f64 / avg.max(1.0)
            ),
        ]);
    }
    println!("\nexpected shape: partial compaction runs many more, much");
    println!("smaller compactions (smaller largest = shorter stalls) at a");
    println!("similar or slightly higher total write-amp; min-overlap picks");
    println!("the cheapest files and lands the lowest write-amp among pickers.");
    println!();

    // Part B: delete-aware picking (Lethe). Under a delete-heavy phase the
    // most-tombstones picker drives tombstones to the bottom faster, so
    // more of them are GC'd and less dead space remains.
    println!("E8b: delete-aware picking under 50% deletes\n");
    let t = TablePrinter::new(&[
        "picker",
        "tombstones GC'd",
        "live blocks",
        "write-amp",
    ]);
    for picker in [FilePicker::RoundRobin, FilePicker::Oldest, FilePicker::MostTombstones] {
        let mut cfg = base_config();
        cfg.granularity = CompactionGranularity::Partial(picker);
        cfg.target_table_bytes = 32 << 10;
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 64);
        // delete half the key space, then keep writing the other half so
        // partial compactions keep running
        for i in (0..n).step_by(2) {
            db.delete(lsm_workload::encode_key(i)).unwrap();
        }
        for i in (1..n).step_by(2).take((n / 4) as usize) {
            db.put(lsm_workload::encode_key(i), value_of(i, 64)).unwrap();
        }
        let s = db.stats().snapshot();
        t.print(&[
            picker.label().to_string(),
            s.tombstones_dropped.to_string(),
            db.device().live_blocks().to_string(),
            f2(write_amp(&db)),
        ]);
    }
    println!("\nexpected shape: the Lethe-style most-tombstones picker GCs");
    println!("more tombstones and leaves fewer live blocks (less dead space)");
    println!("than delete-blind pickers.");
}
