//! E12 — Robust tuning under workload drift (tutorial Module III.2;
//! Endure, VLDB '22).
//!
//! The nominal navigator tunes for the expected workload; the robust
//! navigator minimizes worst-case modeled cost over a drift
//! neighborhood. Both tunings are then measured on the expected
//! workload *and* on drifted workloads, each synthesized as a
//! deterministic trace and estimated through the *shared* workload
//! estimator (the same [`lsm_tuner::WorkloadEstimate`] code path the
//! online tuner runs). Expected shape: nominal wins (slightly) when the
//! forecast holds; robust loses less when it doesn't.

use lsm_bench::*;
use lsm_model::navigator::Environment;
use lsm_model::robust::{robust_navigate, WorkloadNeighborhood};
use lsm_model::{DesignSpace, MergePolicy, WorkloadProfile};

const N: u64 = 50_000;

fn main() {
    println!("E12: robust vs nominal tuning under drift — {N} keys\n");
    // expectation: write-heavy with occasional scans; reality may drift
    // toward the scans (tiering's weak spot). The forecast itself is a
    // synthesized trace run through the shared estimator, so the
    // navigator here and the online tuner consume identical inputs.
    let intended = WorkloadProfile {
        writes: 0.93,
        point_reads: 0.03,
        empty_point_reads: 0.03,
        range_reads: 0.01,
        range_entries: 300.0,
    };
    let forecast_trace = synth_trace(&intended, 15_000, N, 64);
    let center = estimate_of(&forecast_trace).profile();
    let env = Environment {
        num_entries: N,
        entry_bytes: MODEL_ENTRY_BYTES as u64,
        entries_per_block: 1024 / MODEL_ENTRY_BYTES as u64,
        total_memory_bytes: 256 << 10,
    };
    let space = DesignSpace {
        policies: vec![
            MergePolicy::Leveling,
            MergePolicy::Tiering,
            MergePolicy::LazyLeveling,
        ],
        size_ratios: vec![4, 8],
        buffer_fractions: vec![0.25],
        try_monkey: false,
    };
    let neighborhood = WorkloadNeighborhood::new(center, 0.6);
    let (robust, nominal) = robust_navigate(&space, &env, &neighborhood);
    println!(
        "nominal tuning: {} T={}   robust tuning: {} T={}\n",
        nominal.design.policy.label(),
        nominal.design.size_ratio,
        robust.design.policy.label(),
        robust.design.size_ratio
    );
    let drifted = [
        ("as forecast (93% writes)", intended),
        ("drift: balanced", WorkloadProfile {
            writes: 0.5,
            point_reads: 0.15,
            empty_point_reads: 0.15,
            range_reads: 0.2,
            range_entries: 300.0,
        }),
        ("drift: scan-heavy (15% writes)", WorkloadProfile {
            writes: 0.15,
            point_reads: 0.1,
            empty_point_reads: 0.1,
            range_reads: 0.65,
            range_entries: 300.0,
        }),
    ];
    let t = TablePrinter::new(&["observed workload", "nominal blk/op", "robust blk/op"]);
    let mut worst_nominal = 0.0f64;
    let mut worst_robust = 0.0f64;
    for (name, w) in drifted {
        let trace = synth_trace(&w, 15_000, N, 64);
        let cn = measured_trace_cost(&nominal, &trace, N);
        let cr = measured_trace_cost(&robust, &trace, N);
        worst_nominal = worst_nominal.max(cn);
        worst_robust = worst_robust.max(cr);
        t.print(&[name.to_string(), f3(cn), f3(cr)]);
    }
    println!(
        "\nworst case: nominal {:.3} vs robust {:.3} blk/op",
        worst_nominal, worst_robust
    );
    println!("expected shape: nominal is best when the forecast holds; under");
    println!("drift the robust tuning's worst case is lower — Endure's tradeoff.");
}
