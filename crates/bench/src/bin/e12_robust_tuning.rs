//! E12 — Robust tuning under workload drift (tutorial Module III.2;
//! Endure, VLDB '22).
//!
//! The nominal navigator tunes for the expected workload; the robust
//! navigator minimizes worst-case modeled cost over a drift neighborhood.
//! Both tunings are then measured on the expected workload *and* on
//! drifted workloads. Expected shape: nominal wins (slightly) when the
//! forecast holds; robust loses less when it doesn't.

use lsm_bench::*;
use lsm_core::{Db, FilterAllocation, LsmConfig, MergeLayout};
use lsm_model::navigator::Environment;
use lsm_model::robust::{robust_navigate, WorkloadNeighborhood};
use lsm_model::{Candidate, DesignSpace, MergePolicy, WorkloadProfile};
use lsm_workload::encode_key;

const N: u64 = 50_000;

fn engine_for(c: &Candidate) -> LsmConfig {
    let mut cfg = base_config();
    cfg.layout = match c.design.policy {
        MergePolicy::Leveling => MergeLayout::Leveled,
        MergePolicy::Tiering => MergeLayout::Tiered,
        MergePolicy::LazyLeveling => MergeLayout::LazyLeveled,
    };
    cfg.size_ratio = c.design.size_ratio as usize;
    cfg.buffer_bytes = (c.design.buffer_entries as usize * 80).max(cfg.block_size * 4);
    cfg.bits_per_key = c.design.bits_per_key;
    cfg.filter_allocation = if c.design.monkey {
        FilterAllocation::Monkey
    } else {
        FilterAllocation::Uniform
    };
    cfg
}

fn measured_cost(c: &Candidate, w: &WorkloadProfile) -> f64 {
    let db = Db::open_in_memory(engine_for(c)).unwrap();
    fill_scattered(&db, N, 64);
    let io0 = db.io_stats();
    let ops = 15_000u64;
    let wn = w.normalized();
    for i in 0..ops {
        let r = (i as f64 * 0.61803398875) % 1.0;
        let id = i.wrapping_mul(48271) % N;
        if r < wn.writes {
            db.put(encode_key(id), value_of(id, 64)).unwrap();
        } else if r < wn.writes + wn.point_reads {
            db.get(&encode_key(id)).unwrap();
        } else if r < wn.writes + wn.point_reads + wn.empty_point_reads {
            let mut k = encode_key(id);
            k.push(b'!');
            db.get(&k).unwrap();
        } else {
            let mut end = encode_key(N * 2);
            end.push(b'z');
            db.scan(encode_key(id)..end, wn.range_entries.max(1.0) as usize)
                .unwrap();
        }
    }
    let io = db.io_stats().delta_since(&io0);
    (io.total_read_blocks() + io.total_written_blocks()) as f64 / ops as f64
}

fn main() {
    println!("E12: robust vs nominal tuning under drift — {N} keys\n");
    // expectation: write-heavy with occasional scans; reality may drift
    // toward the scans (tiering's weak spot)
    let center = WorkloadProfile {
        writes: 0.93,
        point_reads: 0.03,
        empty_point_reads: 0.03,
        range_reads: 0.01,
        range_entries: 300.0,
    };
    let env = Environment {
        num_entries: N,
        entry_bytes: 80,
        entries_per_block: 1024 / 80,
        total_memory_bytes: 256 << 10,
    };
    let space = DesignSpace {
        policies: vec![
            MergePolicy::Leveling,
            MergePolicy::Tiering,
            MergePolicy::LazyLeveling,
        ],
        size_ratios: vec![4, 8],
        buffer_fractions: vec![0.25],
        try_monkey: false,
    };
    let neighborhood = WorkloadNeighborhood::new(center, 0.6);
    let (robust, nominal) = robust_navigate(&space, &env, &neighborhood);
    println!(
        "nominal tuning: {} T={}   robust tuning: {} T={}\n",
        nominal.design.policy.label(),
        nominal.design.size_ratio,
        robust.design.policy.label(),
        robust.design.size_ratio
    );
    let drifted = [
        ("as forecast (93% writes)", center),
        ("drift: balanced", WorkloadProfile {
            writes: 0.5,
            point_reads: 0.15,
            empty_point_reads: 0.15,
            range_reads: 0.2,
            range_entries: 300.0,
        }),
        ("drift: scan-heavy (15% writes)", WorkloadProfile {
            writes: 0.15,
            point_reads: 0.1,
            empty_point_reads: 0.1,
            range_reads: 0.65,
            range_entries: 300.0,
        }),
    ];
    let t = TablePrinter::new(&["observed workload", "nominal blk/op", "robust blk/op"]);
    let mut worst_nominal = 0.0f64;
    let mut worst_robust = 0.0f64;
    for (name, w) in drifted {
        let cn = measured_cost(&nominal, &w);
        let cr = measured_cost(&robust, &w);
        worst_nominal = worst_nominal.max(cn);
        worst_robust = worst_robust.max(cr);
        t.print(&[name.to_string(), f3(cn), f3(cr)]);
    }
    println!(
        "\nworst case: nominal {:.3} vs robust {:.3} blk/op",
        worst_nominal, worst_robust
    );
    println!("expected shape: nominal is best when the forecast holds; under");
    println!("drift the robust tuning's worst case is lower — Endure's tradeoff.");
}
