//! E5 — Range filters vs range length (tutorial Module II.3).
//!
//! Builds each range-filter family over one key set (raw 8-byte
//! big-endian integer keys, the encoding these filters are designed for)
//! and measures empirical FPR on *empty* ranges of increasing length,
//! plus memory. Expected shape: prefix Bloom only helps while ranges stay
//! inside few prefixes; Rosetta is strongest on short ranges and degrades
//! as ranges outgrow its dyadic hierarchy; SuRF and SNARF hold up on long
//! ranges.

use std::ops::Bound;

use lsm_bench::*;
use lsm_filters::{RangeFilter, RangeFilterKind};

/// Keys spaced 2^20 apart in the u64 domain, encoded as raw 8-byte
/// big-endian strings, so empty ranges of every probed length exist
/// between adjacent keys.
fn make_keys(n: u64) -> Vec<Vec<u8>> {
    (1..=n).map(|i| (i << 20).to_be_bytes().to_vec()).collect()
}

fn empty_range_fpr(filter: &dyn RangeFilter, n: u64, len: u64, trials: u64) -> f64 {
    let mut fp = 0;
    for t in 0..trials {
        // start just past key (t % n): the 2^20 gap guarantees emptiness
        // for len < 2^20 - margin
        let base = ((t % n) + 1) << 20;
        let lo = base + 1024 + (t % 7) * 131;
        let hi = lo + len - 1;
        let lo_k = lo.to_be_bytes();
        let hi_k = hi.to_be_bytes();
        if filter.may_overlap(Bound::Included(&lo_k[..]), Bound::Included(&hi_k[..])) {
            fp += 1;
        }
    }
    fp as f64 / trials as f64
}

fn main() {
    let n = 50_000u64;
    let budget = 18.0;
    println!("E5: range filters — {n} u64 keys, ~{budget} bits/key, empty-range FPR\n");
    let keys = make_keys(n);
    let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
    let kinds = [
        RangeFilterKind::PrefixBloom { prefix_len: 7 },
        RangeFilterKind::Surf { suffix_bits: 8 },
        RangeFilterKind::Rosetta,
        RangeFilterKind::Snarf,
    ];
    let lens: [u64; 6] = [1, 16, 256, 4096, 65536, 262144];
    let header: Vec<String> = ["filter".to_string(), "bits/key".to_string()]
        .into_iter()
        .chain(lens.iter().map(|l| format!("R={l}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let t = TablePrinter::new(&header_refs);
    for kind in kinds {
        let filter = kind.build(&key_refs, budget).unwrap();
        // sanity: no false negatives on point probes
        for k in keys.iter().step_by(997) {
            assert!(filter.may_contain_point(k), "{} lost a key", kind.label());
        }
        let mut cells = vec![
            kind.label().to_string(),
            f2(filter.size_bits() as f64 / n as f64),
        ];
        for &len in &lens {
            cells.push(pct(empty_range_fpr(filter.as_ref(), n, len, 2000)));
        }
        t.print(&cells);
    }
    println!("\nexpected shape: rosetta ≈0% on short ranges, degrading to");
    println!("'maybe' once ranges outgrow its dyadic hierarchy; surf and");
    println!("snarf stay low across lengths; prefix-bloom prunes short");
    println!("ranges only while they stay within few enumerable prefixes.");
}
