//! E3 — Monkey's filter-memory allocation vs the uniform default
//! (tutorial Module II.5; Dayan et al., SIGMOD '17).
//!
//! At equal total filter memory, compares uniform bits/key against
//! Monkey's optimal per-level allocation on zero-result lookups. Expected
//! shape: Monkey wins at every budget; the advantage is largest when
//! memory is tight.

use lsm_bench::*;
use lsm_core::{Db, FilterAllocation, MergeLayout};

fn run(alloc: FilterAllocation, bits: f64, n: u64) -> (f64, f64, usize) {
    let mut cfg = base_config();
    cfg.layout = MergeLayout::Leveled;
    cfg.size_ratio = 5;
    cfg.filter_allocation = alloc;
    cfg.bits_per_key = bits;
    let db = Db::open_in_memory(cfg).unwrap();
    fill_scattered(&db, n, 64);
    let empty = measure_empty_gets(&db, n, 4000);
    (
        empty.data_blocks_per_op,
        db.total_filter_bits() as f64 / n as f64,
        db.total_runs(),
    )
}

fn main() {
    let n = DEFAULT_N;
    println!("E3: Monkey vs uniform filter allocation — {n} keys, leveled T=5\n");
    let t = TablePrinter::new(&[
        "budget b/key",
        "uniform IO",
        "monkey IO",
        "uniform b/key",
        "monkey b/key",
        "improvement",
    ]);
    for bits in [2.0, 3.0, 4.0, 6.0, 8.0, 10.0] {
        let (io_u, bpk_u, _) = run(FilterAllocation::Uniform, bits, n);
        let (io_m, bpk_m, _) = run(FilterAllocation::Monkey, bits, n);
        t.print(&[
            format!("{bits:.0}"),
            f3(io_u),
            f3(io_m),
            f2(bpk_u),
            f2(bpk_m),
            if io_m > 0.0 {
                format!("{:.1}x", io_u / io_m)
            } else {
                "inf".into()
            },
        ]);
    }
    println!("\nexpected shape: at equal memory Monkey's zero-result I/O is");
    println!("lower at every budget; the gap is widest at tight budgets,");
    println!("where uniform wastes bits on the huge last level.");
}
