//! E10 — Fence pointers vs learned indexes (tutorial Module II.4; the
//! Google production study, Bourbon, RadixSpline).
//!
//! Same engine, four block-index families. Expected shape: learned
//! indexes shrink index memory by 5-50× at equal lookup I/O (ε small);
//! sparse fences shrink memory linearly but pay a widening I/O window.

use lsm_bench::*;
use lsm_core::{Db, IndexKind};

fn main() {
    let n = DEFAULT_N;
    println!("E10: block-index families — {n} keys, leveled T=4\n");
    let t = TablePrinter::new(&[
        "index",
        "index KiB",
        "point IO",
        "0-result IO",
        "get wall ns",
    ]);
    let kinds: Vec<(String, IndexKind)> = vec![
        ("fence".into(), IndexKind::Fence),
        ("sparse r=4".into(), IndexKind::Sparse { rate: 4 }),
        ("sparse r=16".into(), IndexKind::Sparse { rate: 16 }),
        ("pla ε=2".into(), IndexKind::Pla { epsilon: 2 }),
        ("pla ε=8".into(), IndexKind::Pla { epsilon: 8 }),
        (
            "radix-spline ε=2".into(),
            IndexKind::RadixSpline {
                radix_bits: 12,
                epsilon: 2,
            },
        ),
    ];
    for (name, index) in kinds {
        let mut cfg = base_config();
        cfg.index = index;
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 64);
        let present = measure_present_gets(&db, n, 3000);
        let empty = measure_empty_gets(&db, n, 3000);
        t.print(&[
            name,
            f2(db.total_index_bits() as f64 / 8.0 / 1024.0),
            f3(present.data_blocks_per_op),
            f3(empty.data_blocks_per_op),
            format!("{:.0}", present.wall_ns_per_op),
        ]);
    }
    println!("\nexpected shape: learned indexes use a small fraction of fence");
    println!("memory at nearly the same I/O for small ε; sparse fences trade");
    println!("memory for extra candidate blocks per lookup (window = rate).");
}
