//! E13 — Key-value separation (tutorial Module I.2; WiscKey).
//!
//! Sweeps value size with separation on/off under update churn. Expected
//! shape: write amplification grows with value size without separation
//! (values are re-copied by every merge) but stays flat with it; scans
//! pay extra value-log I/O with separation — the documented tradeoff.

use lsm_bench::*;
use lsm_core::config::KvSeparation;
use lsm_core::Db;
use lsm_workload::encode_key;

fn run(value_len: usize, sep: bool, n: u64) -> (f64, f64, f64) {
    let mut cfg = base_config();
    cfg.kv_separation = sep.then_some(KvSeparation {
        min_value_bytes: 128,
    });
    let db = Db::open_in_memory(cfg).unwrap();
    // load + 2 rounds of update churn
    for round in 0..3u64 {
        for i in 0..n {
            let id = i.wrapping_mul(2654435761) % n;
            db.put(encode_key(id), value_of(id ^ round, value_len)).unwrap();
        }
    }
    let wa = write_amp(&db);
    let scan = measure_scans(&db, n, 100, 100);
    let point = measure_present_gets(&db, n, 1000);
    (wa, scan.blocks_per_op, point.blocks_per_op)
}

fn main() {
    println!("E13: key-value separation — update churn (3 rounds), 128 B threshold\n");
    let t = TablePrinter::new(&[
        "value B",
        "wa plain",
        "wa kv-sep",
        "scan plain",
        "scan kv-sep",
        "get plain",
        "get kv-sep",
    ]);
    for value_len in [64usize, 256, 1024, 4096] {
        // shrink n as values grow so runtime stays bounded
        let n = (16 << 20) / (value_len as u64 + 16) / 8;
        let (wa_p, scan_p, get_p) = run(value_len, false, n);
        let (wa_s, scan_s, get_s) = run(value_len, true, n);
        t.print(&[
            value_len.to_string(),
            f2(wa_p),
            f2(wa_s),
            f2(scan_p),
            f2(scan_s),
            f2(get_p),
            f2(get_s),
        ]);
    }
    println!("\nexpected shape: without separation write-amp grows with value");
    println!("size; with it write-amp stays near 1-2x past the threshold (the");
    println!("LSM moves 21-byte pointers) while scans and gets pay extra");
    println!("value-log reads — WiscKey's tradeoff. 64 B values are below the");
    println!("threshold, so both columns match there.");
}
