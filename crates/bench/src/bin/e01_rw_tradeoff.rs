//! E1 — The read/write tradeoff (tutorial Module I.2).
//!
//! Sweeps merge policy × size ratio and reports write amplification,
//! zero-result point-lookup I/O, present-key lookup I/O, and short-scan
//! I/O. Expected shape: leveling reads cheap / writes dear; tiering the
//! reverse; larger T moves each policy along its own curve in opposite
//! directions.

use lsm_bench::*;
use lsm_core::{Db, MergeLayout};

fn main() {
    let n = DEFAULT_N;
    println!("E1: read/write tradeoff — {n} keys, 64 B values\n");
    let t = TablePrinter::new(&[
        "layout",
        "T",
        "runs",
        "write-amp",
        "space-amp",
        "0-result IO",
        "point IO",
        "scan IO",
    ]);
    for layout in [
        MergeLayout::Leveled,
        MergeLayout::Tiered,
        MergeLayout::LazyLeveled,
    ] {
        for size_ratio in [2usize, 4, 6, 8, 10] {
            let mut cfg = base_config();
            cfg.layout = layout.clone();
            cfg.size_ratio = size_ratio;
            let db = Db::open_in_memory(cfg).unwrap();
            fill_scattered(&db, n, 64);
            // update churn: half the keys again, so obsolete versions
            // accumulate (tiering retains them until its lazy merges)
            fill_scattered(&db, n / 2, 64);
            let wa = write_amp(&db);
            // space amplification: live device bytes over unique logical data
            let logical = n as f64 * (16.0 + 64.0);
            let sa = db.device().live_blocks() as f64 * db.config().block_size as f64 / logical;
            let empty = measure_empty_gets(&db, n, 2000);
            let present = measure_present_gets(&db, n, 2000);
            let scan = measure_scans(&db, n, 300, 32);
            t.print(&[
                layout.label().to_string(),
                size_ratio.to_string(),
                db.total_runs().to_string(),
                f2(wa),
                f2(sa),
                f3(empty.data_blocks_per_op),
                f3(present.data_blocks_per_op),
                f2(scan.data_blocks_per_op),
            ]);
        }
    }
    println!("\nexpected shape: tiering minimizes write-amp and maximizes read");
    println!("cost and space-amp (overlapping runs retain obsolete versions);");
    println!("leveling the reverse; lazy leveling sits between on writes");
    println!("while keeping leveled-like scans. Larger T lowers leveled read");
    println!("cost (fewer levels) but raises leveled write-amp.");
}
