//! E9 — Hybrid shapes: the Dostoevsky cost triangle (tutorial Modules I.2
//! and II.4).
//!
//! Measures all four cost dimensions for leveled, tiered, lazy-leveled,
//! and an explicit hybrid shape. Expected shape: lazy leveling keeps
//! tiering-like write cost while retaining leveling-like point and long
//! range costs — dominating pure tiering for mixed workloads.

use lsm_bench::*;
use lsm_core::{Db, MergeLayout};

fn main() {
    let n = DEFAULT_N;
    println!("E9: the cost triangle — {n} keys, T=6\n");
    let t = TablePrinter::new(&[
        "layout",
        "write-amp",
        "0-result IO",
        "point IO",
        "short-scan IO",
        "long-scan IO",
    ]);
    for layout in [
        MergeLayout::Leveled,
        MergeLayout::Tiered,
        MergeLayout::LazyLeveled,
        MergeLayout::Hybrid(vec![5, 3, 1]),
    ] {
        let mut cfg = base_config();
        cfg.layout = layout.clone();
        cfg.size_ratio = 6;
        let db = Db::open_in_memory(cfg).unwrap();
        fill_scattered(&db, n, 64);
        let wa = write_amp(&db);
        let empty = measure_empty_gets(&db, n, 2000);
        let present = measure_present_gets(&db, n, 2000);
        let short = measure_scans(&db, n, 300, 8);
        let long = measure_scans(&db, n, 60, 2000);
        t.print(&[
            layout.label().to_string(),
            f2(wa),
            f3(empty.data_blocks_per_op),
            f3(present.data_blocks_per_op),
            f2(short.data_blocks_per_op),
            f2(long.data_blocks_per_op),
        ]);
    }
    println!("\nexpected shape: tiered wins writes but pays on every read");
    println!("metric; leveled the reverse; lazy-leveled ≈ tiered writes with");
    println!("≈ leveled long scans and point reads (its last level is one");
    println!("run) — the Dostoevsky result. The hybrid interpolates.");
}
