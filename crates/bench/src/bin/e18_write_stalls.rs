//! E18 — write-stall tail latencies (tutorial Modules I.2 and III.2:
//! "for tail latency sensitive applications, many LSM engines have
//! adopted a partial compaction strategy"; SILK/CruiseDB motivation).
//!
//! Measures the simulated latency of every individual put under full vs
//! partial compaction. Maintenance runs synchronously inside the
//! triggering put, so a put's latency *is* the stall its client sees.
//! Expected shape: similar medians (most puts just hit the memtable), but
//! full compaction's p99.9/max stalls are an order of magnitude above
//! partial compaction's — the whole reason partial compaction exists.

use lsm_bench::*;
use lsm_core::{CompactionGranularity, Db, FilePicker, LsmConfig, MergeLayout, PartitionedDb};
use lsm_storage::DeviceProfile;
use lsm_workload::encode_key;

fn percentile(sorted: &[u64], p: f64) -> u64 {
    let idx = ((sorted.len() as f64 - 1.0) * p) as usize;
    sorted[idx]
}

fn run(name: &str, cfg: LsmConfig, n: u64, t: &TablePrinter) {
    let db = Db::open_simulated(cfg, DeviceProfile::nvme_ssd()).unwrap();
    let clock = db.device().latency().clock();
    let mut lat: Vec<u64> = Vec::with_capacity(n as usize);
    for i in 0..n {
        let id = i.wrapping_mul(2654435761) % n;
        let t0 = clock.now_ns();
        db.put(encode_key(id), value_of(id, 64)).unwrap();
        lat.push(clock.now_ns() - t0);
    }
    lat.sort_unstable();
    write_metrics_artifact(
        &db,
        "e18_write_stalls",
        &[("experiment", "e18_write_stalls"), ("config", name)],
    );
    let s = db.stats().snapshot();
    t.print(&[
        name.to_string(),
        format!("{:.1}", percentile(&lat, 0.50) as f64 / 1000.0),
        format!("{:.1}", percentile(&lat, 0.99) as f64 / 1000.0),
        format!("{:.0}", percentile(&lat, 0.999) as f64 / 1000.0),
        format!("{:.0}", *lat.last().unwrap() as f64 / 1000.0),
        s.compactions.to_string(),
        f2(write_amp(&db)),
    ]);
}

fn main() {
    let n = bench_n();
    println!("E18: per-put stall latency (simulated NVMe) — {n} keys, leveled T=4\n");
    let t = TablePrinter::new(&[
        "granularity",
        "p50 µs",
        "p99 µs",
        "p99.9 µs",
        "max µs",
        "compactions",
        "write-amp",
    ]);
    let mut full = base_config();
    full.layout = MergeLayout::Leveled;
    full.granularity = CompactionGranularity::Full;
    full.target_table_bytes = 32 << 10;
    run("full", full, n, &t);
    let mut partial = base_config();
    partial.layout = MergeLayout::Leveled;
    partial.granularity = CompactionGranularity::Partial(FilePicker::MinOverlap);
    partial.target_table_bytes = 32 << 10;
    run("partial/min-overlap", partial, n, &t);
    let mut tiered = base_config();
    tiered.layout = MergeLayout::Tiered;
    tiered.target_table_bytes = 32 << 10;
    run("tiered (lazy merges)", tiered, n, &t);
    // key-space partitioning: 4 trees, each a quarter of the data
    {
        let mut cfg = base_config();
        cfg.layout = MergeLayout::Leveled;
        cfg.granularity = CompactionGranularity::Full;
        cfg.target_table_bytes = 32 << 10;
        let pdb = PartitionedDb::open_simulated(
            cfg,
            (1..4)
                .map(|i| format!("user{:012}", n * i / 4).into_bytes())
                .collect(),
            lsm_storage::DeviceProfile::nvme_ssd(),
        )
        .unwrap();
        let mut lat: Vec<u64> = Vec::with_capacity(n as usize);
        for i in 0..n {
            let id = i.wrapping_mul(2654435761) % n;
            let t0 = pdb.sim_now_total_ns();
            pdb.put(encode_key(id), value_of(id, 64)).unwrap();
            lat.push(pdb.sim_now_total_ns() - t0);
        }
        lat.sort_unstable();
        let s = pdb.stats();
        let written: u64 = 0; // write-amp across devices reported as n/a
        let _ = written;
        t.print(&[
            "full × 4 partitions".to_string(),
            format!("{:.1}", percentile(&lat, 0.50) as f64 / 1000.0),
            format!("{:.1}", percentile(&lat, 0.99) as f64 / 1000.0),
            format!("{:.0}", percentile(&lat, 0.999) as f64 / 1000.0),
            format!("{:.0}", *lat.last().unwrap() as f64 / 1000.0),
            s.compactions.to_string(),
            "-".to_string(),
        ]);
    }
    println!("\nexpected shape: p50 is the bare memtable insert everywhere");
    println!("(the p99.9 is the flush); the *max* stall is where the designs");
    println!("separate: full compaction's worst put absorbs a whole-level");
    println!("merge, partial compaction caps the worst stall at one file's");
    println!("merge, tiering sits between, and key-space partitioning");
    println!("divides every stall by the partition count — the tutorial's");
    println!("load-balancing motivation for partitioned trees.");
}
