//! E22 — replication: read scaling across a replica set, quorum-write
//! cost, and failover time.
//!
//! Three measurements over the `lsm-server` replication stack (real TCP
//! loopback, real threads, [`WallLatencyDevice`] disks):
//!
//! 1. **Read scaling** (1 node → 3 nodes): load `n` keys through the
//!    primary with `ack_quorum = replicas` (every acked write is applied
//!    *and synced* on every replica before the client sees `Ok`), then
//!    offer an open-loop Poisson GET load well above one node's service
//!    capacity. Each node serves its connections from its own disk, so a
//!    3-node set (primary + 2 replicas) approaches 3× the acked read
//!    throughput of the primary alone — the replica-set read story.
//!    Latency is measured from the *scheduled* arrival, so the 1-node
//!    backlog shows up as the p99 cliff it really is.
//!
//! 2. **Quorum-write cost**: the load phase itself is the measurement —
//!    with replicas, every group-commit batch waits for the slowest
//!    replica's apply+sync before acking, so load throughput vs the
//!    1-node run prices the quorum, and `server.repl_ack_ns` p99 is the
//!    per-batch replication lag.
//!
//! 3. **Failover**: kill the primary (abort — no drain), promote a
//!    replica ([`promote_replica`] replays its WAL tail and adopts the
//!    replication watermark), and time abort → first acked write on the
//!    promoted server: the write-unavailability window.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::Arc;
use std::time::{Duration, Instant};

use lsm_bench::*;
use lsm_core::{BackgroundMode, Db, LsmConfig};
use lsm_server::{
    promote_replica, Client, PrimaryReplication, ReplicationRole, Request, Response, Server,
    ServerConfig,
};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice, WallLatencyDevice};
use lsm_workload::{encode_key, Arrivals, OpenLoopSchedule};

/// Service lanes per node: each node is read through this many
/// connections, and a connection's reads execute sequentially in its
/// reader thread — so a node's read capacity is `lanes / read-cost`,
/// and adding replicas adds lanes backed by *their own* disks.
const CONNS_PER_NODE: usize = 2;

/// The modeled disk behind every node (same as E20): reads cost tens of
/// microseconds of real wall time, writes hundreds.
fn disk_profile() -> DeviceProfile {
    DeviceProfile {
        random_read_ns: 20_000,
        random_write_ns: 250_000,
        read_block_ns: 1_000,
        write_block_ns: 2_000,
    }
}

fn node_config() -> LsmConfig {
    LsmConfig {
        background: BackgroundMode::Threaded,
        background_workers: 2,
        wal: true, // replication ships the WAL's contents; it must exist
        ..base_config()
    }
}

fn node_device() -> Arc<dyn StorageDevice> {
    let cfg = node_config();
    let mem: Arc<dyn StorageDevice> =
        Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
    Arc::new(WallLatencyDevice::new(mem, disk_profile()))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[((sorted.len() as f64 - 1.0) * p) as usize]
}

/// One replica node: its server and the device it can be promoted from.
struct ReplicaNode {
    server: Server,
    devices: Vec<Arc<dyn StorageDevice>>,
}

fn start_replica() -> ReplicaNode {
    let dev = node_device();
    let db = Db::open(Arc::clone(&dev), node_config()).expect("open replica shard");
    let server_cfg = ServerConfig {
        role: ReplicationRole::Replica,
        shed_l0_runs: Some(usize::MAX),
        ..ServerConfig::default()
    };
    let server = Server::start(vec![db], server_cfg).expect("start replica");
    ReplicaNode {
        server,
        devices: vec![dev],
    }
}

/// Loads `n` distinct keys through one pipelined connection (closed
/// loop, window 32). With replicas, each batch's ack waits for the
/// quorum, so the returned wall time prices quorum writes.
fn load_keys(addr: SocketAddr, n: u64) -> f64 {
    let mut c = Client::connect(addr).expect("load client connect");
    let start = Instant::now();
    let mut pending: Vec<u64> = Vec::with_capacity(32);
    for i in 0..n {
        let id = c
            .send(&Request::Put {
                key: encode_key(i),
                value: value_of(i, 64),
            })
            .expect("load send");
        pending.push(id);
        if pending.len() >= 32 {
            for id in pending.drain(..) {
                match c.wait_for(id).expect("load ack") {
                    Response::Ok => {}
                    other => panic!("load put rejected: {other:?}"),
                }
            }
        }
    }
    for id in pending.drain(..) {
        match c.wait_for(id).expect("load ack") {
            Response::Ok => {}
            other => panic!("load put rejected: {other:?}"),
        }
    }
    start.elapsed().as_secs_f64()
}

/// Drives one read connection at its share of the open-loop schedule:
/// uniform GETs over the loaded keyspace, window-16 pipeline, latency
/// from the scheduled arrival. Returns (latencies ns, hits, misses).
fn drive_reads(
    addr: SocketAddr,
    conn: u64,
    arrivals: Vec<u64>,
    keyspace: u64,
    start: Instant,
) -> (Vec<u64>, u64, u64) {
    const WINDOW: usize = 16;
    let mut c = Client::connect(addr).expect("read client connect");
    let mut pending: HashMap<u64, u64> = HashMap::new();
    let mut lats = Vec::with_capacity(arrivals.len());
    let (mut hits, mut misses) = (0u64, 0u64);
    let mut state = conn.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut recv_one = |c: &mut Client, pending: &mut HashMap<u64, u64>| {
        let (rid, resp) = c.recv().expect("read recv");
        let done = start.elapsed().as_nanos() as u64;
        if let Some(at) = pending.remove(&rid) {
            lats.push(done.saturating_sub(at));
        }
        match resp {
            Response::Value(_) => hits += 1,
            _ => misses += 1,
        }
    };
    for &at in &arrivals {
        loop {
            let now = start.elapsed().as_nanos() as u64;
            if now >= at {
                break;
            }
            std::thread::sleep(Duration::from_nanos((at - now).min(500_000)));
        }
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let id = state.wrapping_mul(0x2545F4914F6CDD1D) % keyspace;
        let rid = c.send(&Request::Get { key: encode_key(id) }).expect("read send");
        pending.insert(rid, at);
        while pending.len() >= WINDOW {
            recv_one(&mut c, &mut pending);
        }
    }
    while !pending.is_empty() {
        recv_one(&mut c, &mut pending);
    }
    (lats, hits, misses)
}

struct ClusterResult {
    load_kops: f64,
    read_kops: f64,
    p50_ms: f64,
    p99_ms: f64,
    misses: u64,
    repl_ack_p99_us: f64,
    /// abort → first acked write on the promoted replica (replica runs only).
    failover_ms: Option<f64>,
    adopted_seq: u64,
}

/// One full cluster run: start `replicas` replica nodes and a primary
/// with `ack_quorum = replicas`, load `n` keys, saturate the read path
/// across all nodes, then (with replicas) kill the primary and promote.
fn run_cluster(replicas: usize, n: u64, rate_per_sec: f64, tag: &str) -> ClusterResult {
    let mut replica_nodes: Vec<ReplicaNode> = (0..replicas).map(|_| start_replica()).collect();
    let role = if replicas == 0 {
        ReplicationRole::None
    } else {
        ReplicationRole::Primary(PrimaryReplication {
            replicas: replica_nodes.iter().map(|r| r.server.addr()).collect(),
            ack_quorum: replicas,
            ack_timeout_ms: 10_000,
            drain_timeout_ms: 5_000,
        })
    };
    let primary_dev = node_device();
    let db = Db::open(Arc::clone(&primary_dev), node_config()).expect("open primary shard");
    let server_cfg = ServerConfig {
        pipeline_depth: 32,
        shed_l0_runs: Some(usize::MAX),
        role,
        ..ServerConfig::default()
    };
    let primary = Server::start(vec![db], server_cfg).expect("start primary");

    let load_secs = load_keys(primary.addr(), n);

    // every node — primary included — serves CONNS_PER_NODE read lanes
    let mut node_addrs = vec![primary.addr()];
    node_addrs.extend(replica_nodes.iter().map(|r| r.server.addr()));
    let conns = node_addrs.len() * CONNS_PER_NODE;
    let per_conn = (n / conns as u64).max(1);
    let start = Instant::now();
    let drivers: Vec<_> = (0..conns)
        .map(|t| {
            let addr = node_addrs[t % node_addrs.len()];
            let arrivals =
                OpenLoopSchedule::new(rate_per_sec / conns as f64, Arrivals::Poisson, 131 + t as u64)
                    .take(per_conn as usize);
            std::thread::spawn(move || drive_reads(addr, t as u64, arrivals, n, start))
        })
        .collect();
    let mut lats = Vec::new();
    let (mut hits, mut misses) = (0u64, 0u64);
    for d in drivers {
        let (l, h, m) = d.join().expect("read driver");
        lats.extend(l);
        hits += h;
        misses += m;
    }
    let read_wall = start.elapsed().as_secs_f64();
    lats.sort_unstable();

    let metrics = primary.metrics();
    let repl_ack_p99_us = metrics.repl_ack_ns.snapshot().p99() as f64 / 1000.0;
    let snap = metrics.snapshot();
    let mut lines = vec![snap.to_json_line_tagged(&[
        ("experiment", "e22_replication"),
        ("scope", "primary"),
        ("config", tag),
    ])];
    for e in metrics.drain_events() {
        lines.push(e.to_json_line());
    }

    // failover: abort the primary mid-flight, promote replica 0, and
    // time the write-unavailability window to the first acked PUT
    let (failover_ms, adopted_seq) = if replicas > 0 {
        let t0 = Instant::now();
        drop(primary.abort());
        let node = replica_nodes.remove(0);
        drop(node.server.abort());
        let promoted = promote_replica(&node.devices, &node_config(), ServerConfig::default())
            .expect("promotion");
        let mut c = Client::connect(promoted.server.addr()).expect("connect promoted");
        c.put(b"e22-failover-sentinel", b"promoted").expect("promoted write");
        let window = t0.elapsed().as_secs_f64() * 1000.0;
        assert_eq!(
            c.get(b"e22-failover-sentinel").expect("promoted read"),
            Some(b"promoted".to_vec())
        );
        drop(c);
        let pmetrics = promoted.server.metrics();
        lines.push(pmetrics.snapshot().to_json_line_tagged(&[
            ("experiment", "e22_replication"),
            ("scope", "promoted"),
            ("config", tag),
        ]));
        for e in pmetrics.drain_events() {
            lines.push(e.to_json_line());
        }
        drop(promoted.server.shutdown().expect("promoted shutdown"));
        (Some(window), promoted.adopted_seq)
    } else {
        drop(primary.shutdown().expect("primary shutdown"));
        (None, 0)
    };
    for node in replica_nodes {
        drop(node.server.shutdown().expect("replica shutdown"));
    }
    write_metrics_lines("e22_replication", &lines);

    ClusterResult {
        load_kops: n as f64 / load_secs / 1000.0,
        read_kops: (hits + misses) as f64 / read_wall / 1000.0,
        p50_ms: percentile(&lats, 0.50) as f64 / 1e6,
        p99_ms: percentile(&lats, 0.99) as f64 / 1e6,
        misses,
        repl_ack_p99_us,
        failover_ms,
        adopted_seq,
    }
}

fn main() {
    let n = bench_n();
    // offered well above one node's read capacity (two ~25–40 µs lanes),
    // so the 1-node run saturates and the 3-node run absorbs the load
    let rate = 150_000.0;

    println!("E22: replication — {n} keys loaded, open-loop GETs at {rate:.0}/s offered\n");
    let t = TablePrinter::new(&[
        "nodes",
        "read kops/s",
        "p50 ms",
        "p99 ms",
        "misses",
        "load kops/s",
        "repl p99 us",
        "failover ms",
    ]);
    let mut by_nodes = Vec::new();
    for replicas in [0usize, 2] {
        let nodes = replicas + 1;
        let r = run_cluster(replicas, n, rate, &format!("nodes{nodes}"));
        assert_eq!(r.misses, 0, "every acked key must be readable on every node");
        if replicas > 0 {
            assert!(r.adopted_seq > 0, "promotion must adopt a replicated watermark");
        }
        t.print(&[
            nodes.to_string(),
            format!("{:.1}", r.read_kops),
            format!("{:.2}", r.p50_ms),
            format!("{:.2}", r.p99_ms),
            r.misses.to_string(),
            format!("{:.1}", r.load_kops),
            format!("{:.0}", r.repl_ack_p99_us),
            r.failover_ms.map_or("-".into(), |ms| format!("{ms:.0}")),
        ]);
        by_nodes.push((nodes, r.read_kops));
    }
    if let (Some((_, t1)), Some((_, t3))) = (by_nodes.first(), by_nodes.last()) {
        println!("\n  1 → 3 node read speedup: {:.2}x", t3 / t1);
    }

    println!("\nexpected shape: reads scale because each node answers its own");
    println!("connections from its own disk — the 1-node run saturates two");
    println!("service lanes and its open-loop p99 explodes into backlog,");
    println!("while 3 nodes serve six lanes and hold latency near the disk");
    println!("cost (≥1.7x acked reads at 3 nodes). The price appears in the");
    println!("load column: with ack_quorum = 2, every group-commit batch");
    println!("waits for both replicas' apply+sync, so quorum writes cost a");
    println!("replication round-trip (repl p99). Failover is the promotion");
    println!("cost: WAL-tail replay plus server start, a bounded write-");
    println!("unavailability window with zero acked-write loss (misses = 0).");
}
