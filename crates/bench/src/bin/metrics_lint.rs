//! Validates metrics artifacts (`results/*.metrics.jsonl`): every line
//! must be a well-formed JSON object. Used by `scripts/verify.sh` after
//! the bench smoke run, so the artifact contract is enforced without any
//! external tooling.
//!
//! Usage: `metrics_lint <file.jsonl>...` — exits nonzero listing the
//! first offending line per file.

use lsm_obs::json::validate_json_lines;

fn main() {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: metrics_lint <file.jsonl>...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(text) => match validate_json_lines(&text) {
                Ok(n) => println!("{path}: {n} valid JSON lines"),
                Err(e) => {
                    eprintln!("{path}: INVALID: {e}");
                    failed = true;
                }
            },
            Err(e) => {
                eprintln!("{path}: unreadable: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
