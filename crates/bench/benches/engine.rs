//! Criterion micro-benches for the engine's hot paths: block
//! encode/decode, memtable operations, the k-way merge, point lookups,
//! and learned-index prediction.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lsm_core::entry::ValueKind;
use lsm_core::memtable::Memtable;
use lsm_core::sstable::{BlockBuilder, BlockIter};
use lsm_core::{Db, LsmConfig};
use lsm_index::{BlockLocator, FencePointers, PlaIndex};

fn bench_block_codec(c: &mut Criterion) {
    let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..64)
        .map(|i| {
            (
                format!("user{i:012}").into_bytes(),
                format!("value-payload-{i:08}").into_bytes(),
            )
        })
        .collect();
    c.bench_function("block_encode_64_entries", |b| {
        b.iter(|| {
            let mut builder = BlockBuilder::new(16, false);
            for (k, v) in &entries {
                builder.add(k, 1, ValueKind::Put, v);
            }
            builder.finish()
        })
    });
    let mut builder = BlockBuilder::new(16, false);
    for (k, v) in &entries {
        builder.add(k, 1, ValueKind::Put, v);
    }
    let block = builder.finish();
    c.bench_function("block_decode_64_entries", |b| {
        b.iter(|| {
            let mut it = BlockIter::new(block.as_slice()).unwrap();
            let mut n = 0;
            while it.next_entry().is_some() {
                n += 1;
            }
            n
        })
    });
    // same walk through borrowed views — the zero-copy cursor the read
    // path uses; the gap vs `block_decode_64_entries` is the per-entry
    // key/value Vec churn the owned API pays
    c.bench_function("block_decode_64_entries_ref", |b| {
        b.iter(|| {
            let mut it = BlockIter::new(block.as_slice()).unwrap();
            let mut n = 0u64;
            while it.advance().unwrap() {
                n += it.value().len() as u64;
            }
            n
        })
    });
    c.bench_function("block_seek", |b| {
        b.iter(|| {
            let mut it = BlockIter::new(block.as_slice()).unwrap();
            it.seek(b"user000000000032").unwrap().then(|| it.seqno())
        })
    });
}

fn bench_memtable(c: &mut Criterion) {
    // FloDB's two-level buffer wins on *hot-key updates against a large
    // sorted level*: the hash front absorbs them in O(1) and (since
    // replacements don't grow it) never spills. Unique-key ingest is the
    // counter-case where the front is pure overhead.
    let mut group = c.benchmark_group("memtable_hot_updates_vs_100k");
    for (name, front) in [("single_level", 0usize), ("two_level", 64 << 10)] {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let mut m = Memtable::with_front(front);
                    for i in 0..100_000u32 {
                        m.insert(
                            format!("key{i:08}").as_bytes(),
                            i as u64,
                            ValueKind::Put,
                            &[0u8; 32],
                        );
                    }
                    if front > 0 {
                        m.drain_into_sorted_for_bench();
                    }
                    m
                },
                |mut m| {
                    // 4k updates over 64 hot keys
                    for i in 0..4096u32 {
                        let hot = (i * 7919) % 64;
                        m.insert(
                            format!("key{hot:08}").as_bytes(),
                            1_000_000 + i as u64,
                            ValueKind::Put,
                            &[1u8; 32],
                        );
                    }
                    m
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
    c.bench_function("memtable_insert_1k", |b| {
        b.iter_batched(
            Memtable::new,
            |mut m| {
                for i in 0..1000u32 {
                    m.insert(
                        format!("key{i:08}").as_bytes(),
                        i as u64,
                        ValueKind::Put,
                        &[0u8; 64],
                    );
                }
                m
            },
            BatchSize::SmallInput,
        )
    });
    let mut m = Memtable::new();
    for i in 0..10_000u32 {
        m.insert(
            format!("key{i:08}").as_bytes(),
            i as u64,
            ValueKind::Put,
            &[0u8; 64],
        );
    }
    c.bench_function("memtable_get", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = (i + 7919) % 10_000;
            m.get(format!("key{i:08}").as_bytes())
        })
    });
}

fn bench_engine_ops(c: &mut Criterion) {
    let cfg = LsmConfig {
        wal: false,
        ..LsmConfig::default()
    };
    let db = Db::open_in_memory(cfg).unwrap();
    for i in 0..100_000u64 {
        db.put(
            format!("user{i:012}").into_bytes(),
            format!("value-{i:08}").into_bytes(),
        )
        .unwrap();
    }
    let mut group = c.benchmark_group("engine");
    group.sample_size(20);
    group.bench_function("get_present_cached", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 48271) % 100_000;
            db.get(format!("user{i:012}").as_bytes()).unwrap()
        })
    });
    group.bench_function("get_absent", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 48271) % 100_000;
            db.get(format!("user{i:012}?").as_bytes()).unwrap()
        })
    });
    group.bench_function("scan_100", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 48271) % 90_000;
            db.scan(
                format!("user{i:012}").into_bytes()..format!("user{:012}", i + 1000).into_bytes(),
                100,
            )
            .unwrap()
        })
    });
    group.bench_function("put", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            db.put(
                format!("user{:012}", i % 100_000).into_bytes(),
                vec![1u8; 32],
            )
            .unwrap()
        })
    });
    group.finish();
}

fn bench_learned_index(c: &mut Criterion) {
    let fences: Vec<Vec<u8>> = (0..10_000u64)
        .map(|i| format!("user{:012}", i * 50 + 49).into_bytes())
        .collect();
    let fence_idx = FencePointers::new(b"user000000000000".to_vec(), fences.clone());
    let pla_idx = PlaIndex::build(&fences, 8);
    // probe keys precomputed so the loop times locate(), not format!()
    let probes: Vec<Vec<u8>> = {
        let mut i = 0u64;
        (0..1024)
            .map(|_| {
                i = (i + 48271) % 500_000;
                format!("user{i:012}").into_bytes()
            })
            .collect()
    };
    let mut group = c.benchmark_group("block_locate");
    group.bench_function("fence_pointers", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            fence_idx.locate(&probes[i])
        })
    });
    group.bench_function("pla", |b| {
        let mut i = 0usize;
        b.iter(|| {
            i = (i + 1) % probes.len();
            pla_idx.locate(&probes[i])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_block_codec,
    bench_memtable,
    bench_engine_ops,
    bench_learned_index
);
criterion_main!(benches);
