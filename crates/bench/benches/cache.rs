//! Criterion micro-benches for the block cache: per-policy get/insert
//! throughput and the heat-map update path.

use criterion::{criterion_group, criterion_main, Criterion};
use lsm_cache::{CacheKey, CachePolicy, HeatMap, ShardedCache};

fn bench_cache_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_get_hit");
    for policy in CachePolicy::ALL {
        let cache: ShardedCache<u64> = ShardedCache::new(policy, 1 << 20, 8);
        for i in 0..1000u64 {
            cache.insert(CacheKey::new(1, i), i, 512);
        }
        group.bench_function(policy.label(), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 7919) % 1000;
                cache.get(&CacheKey::new(1, i))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("cache_insert_evict");
    for policy in CachePolicy::ALL {
        let cache: ShardedCache<u64> = ShardedCache::new(policy, 256 << 10, 8);
        group.bench_function(policy.label(), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                cache.insert(CacheKey::new(2, i), i, 512);
            })
        });
    }
    group.finish();
}

fn bench_heat_map(c: &mut Criterion) {
    let mut heat = HeatMap::new(1024, 100_000);
    c.bench_function("heat_record", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(0x9E3779B97F4A7C15);
            heat.record(i);
        })
    });
    for i in 0..100_000u64 {
        heat.record(i.wrapping_mul(0x9E3779B97F4A7C15));
    }
    c.bench_function("heat_range_query", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = i.wrapping_add(1 << 54);
            heat.range_heat(i, i.wrapping_add(1 << 53))
        })
    });
}

criterion_group!(benches, bench_cache_ops, bench_heat_map);
criterion_main!(benches);
