//! Criterion micro-benches: filter construction and probe throughput
//! (supports experiment E4 with statistically-rigorous timings).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lsm_filters::{FilterKind, RangeFilterKind};

fn keys(n: usize) -> Vec<Vec<u8>> {
    (0..n).map(|i| format!("user{i:012}").into_bytes()).collect()
}

fn bench_point_filters(c: &mut Criterion) {
    let owned = keys(50_000);
    let key_refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
    let mut group = c.benchmark_group("filter_build_50k");
    group.sample_size(10);
    for kind in FilterKind::ALL {
        group.bench_function(kind.label(), |b| {
            b.iter(|| kind.build_refs(&key_refs, 10.0).unwrap())
        });
    }
    group.finish();

    let mut group = c.benchmark_group("filter_probe");
    for kind in FilterKind::ALL {
        let filter = kind.build_refs(&key_refs, 10.0).unwrap();
        let probes: Vec<Vec<u8>> = (0..1024)
            .map(|i| format!("user{:012}", i * 97).into_bytes())
            .collect();
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for p in &probes {
                    if filter.may_contain(p) {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_range_filters(c: &mut Criterion) {
    let owned: Vec<Vec<u8>> = (1..=20_000u64).map(|i| (i << 16).to_be_bytes().to_vec()).collect();
    let key_refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
    let mut group = c.benchmark_group("range_filter_probe");
    group.sample_size(10);
    for kind in [
        RangeFilterKind::PrefixBloom { prefix_len: 7 },
        RangeFilterKind::Surf { suffix_bits: 8 },
        RangeFilterKind::Rosetta,
        RangeFilterKind::Snarf,
    ] {
        let filter = kind.build(&key_refs, 16.0).unwrap();
        group.bench_function(kind.label(), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for t in 0..256u64 {
                    let lo = ((t % 20_000) + 1) << 16 | 512;
                    let hi = lo + 128;
                    let lo_k = lo.to_be_bytes();
                    let hi_k = hi.to_be_bytes();
                    if filter.may_overlap(
                        std::ops::Bound::Included(&lo_k[..]),
                        std::ops::Bound::Included(&hi_k[..]),
                    ) {
                        hits += 1;
                    }
                }
                hits
            })
        });
    }
    group.finish();
}

fn bench_monkey_allocation(c: &mut Criterion) {
    let sizes = lsm_filters::monkey::geometric_level_sizes(100_000, 10, 7);
    c.bench_function("monkey_allocation_7_levels", |b| {
        b.iter_batched(
            || sizes.clone(),
            |s| lsm_filters::monkey_allocation(&s, 10.0 * s.iter().sum::<u64>() as f64),
            BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_point_filters,
    bench_range_filters,
    bench_monkey_allocation
);
criterion_main!(benches);
