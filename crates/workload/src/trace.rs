//! Operation traces: record a generated stream once, replay it against
//! every engine configuration under comparison, so measured differences
//! come from the configuration and not from sampling noise.

use crate::generator::{Operation, WorkloadGenerator, WorkloadSpec};

/// A recorded sequence of operations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    ops: Vec<Operation>,
}

impl Trace {
    /// Records `n` operations from a fresh generator over `spec`.
    pub fn record(spec: WorkloadSpec, n: usize) -> Self {
        Trace {
            ops: WorkloadGenerator::new(spec).take(n),
        }
    }

    /// Wraps an explicit operation list.
    pub fn from_ops(ops: Vec<Operation>) -> Self {
        Trace { ops }
    }

    /// The operations, in order.
    pub fn ops(&self) -> &[Operation] {
        &self.ops
    }

    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Splits into a load phase (first `n`) and a run phase (rest) — the
    /// YCSB load/run protocol.
    pub fn split_at(&self, n: usize) -> (Trace, Trace) {
        let n = n.min(self.ops.len());
        (
            Trace {
                ops: self.ops[..n].to_vec(),
            },
            Trace {
                ops: self.ops[n..].to_vec(),
            },
        )
    }

    /// Concatenates two traces.
    pub fn chain(mut self, other: Trace) -> Trace {
        self.ops.extend(other.ops);
        self
    }
}

impl IntoIterator for Trace {
    type Item = Operation;
    type IntoIter = std::vec::IntoIter<Operation>;

    fn into_iter(self) -> Self::IntoIter {
        self.ops.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_is_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(Trace::record(spec.clone(), 200), Trace::record(spec, 200));
    }

    #[test]
    fn split_and_chain_roundtrip() {
        let t = Trace::record(WorkloadSpec::default(), 100);
        let (a, b) = t.split_at(30);
        assert_eq!(a.len(), 30);
        assert_eq!(b.len(), 70);
        assert_eq!(a.chain(b), t);
    }

    #[test]
    fn split_beyond_len_is_clamped() {
        let t = Trace::record(WorkloadSpec::default(), 10);
        let (a, b) = t.split_at(99);
        assert_eq!(a.len(), 10);
        assert!(b.is_empty());
    }

    #[test]
    fn iteration_preserves_order() {
        let t = Trace::record(WorkloadSpec::default(), 50);
        let collected: Vec<_> = t.clone().into_iter().collect();
        assert_eq!(collected.as_slice(), t.ops());
    }
}
