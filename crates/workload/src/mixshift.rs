//! Workload-drift generator: the operation *mix* flips at fixed op
//! counts while the key distribution stays put.
//!
//! [`crate::hotspot::ShiftingHotspot`] moves *where* the load lands;
//! `MixShift` moves *what* the load does — e.g. write-heavy →
//! read-heavy → scan-heavy — which is exactly the drift a self-tuning
//! engine must chase: each phase has a different optimal (size ratio,
//! merge policy, filter budget) point, so no static configuration wins
//! every phase. Phase boundaries are fixed op counts and the stream is
//! a pure function of (spec, seed), so experiments are reproducible and
//! a tuner's decisions can be asserted byte-for-byte.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{OpMix, Operation};
use crate::keyspace::{encode_key, make_value};

/// One phase of a [`MixShiftSpec`]: an operation mix held for a fixed
/// number of operations.
#[derive(Clone, Debug)]
pub struct MixPhase {
    /// Short label for reporting (`"write_heavy"`, ...).
    pub name: &'static str,
    /// Operation mix during the phase.
    pub mix: OpMix,
    /// Operations before the next phase takes over.
    pub ops: u64,
}

/// Full description of a mix-shift workload.
#[derive(Clone, Debug)]
pub struct MixShiftSpec {
    /// Size of the id space keys draw from (uniformly).
    pub key_space: u64,
    /// The phase schedule, applied in order; the last phase repeats
    /// forever once reached.
    pub phases: Vec<MixPhase>,
    /// Value size in bytes.
    pub value_len: usize,
    /// Scan length in entries.
    pub scan_len: usize,
    /// RNG seed: identical specs + seeds generate identical streams.
    pub seed: u64,
}

impl Default for MixShiftSpec {
    /// The E25 drift schedule: write-heavy → read-heavy → scan-heavy.
    fn default() -> Self {
        MixShiftSpec {
            key_space: 100_000,
            phases: vec![
                MixPhase {
                    name: "write_heavy",
                    mix: OpMix {
                        insert: 0.85,
                        update: 0.0,
                        read: 0.10,
                        scan: 0.0,
                        delete: 0.05,
                        rmw: 0.0,
                    },
                    ops: 20_000,
                },
                MixPhase {
                    name: "read_heavy",
                    mix: OpMix {
                        insert: 0.05,
                        update: 0.0,
                        read: 0.90,
                        scan: 0.05,
                        delete: 0.0,
                        rmw: 0.0,
                    },
                    ops: 20_000,
                },
                MixPhase {
                    name: "scan_heavy",
                    mix: OpMix {
                        insert: 0.05,
                        update: 0.0,
                        read: 0.15,
                        scan: 0.80,
                        delete: 0.0,
                        rmw: 0.0,
                    },
                    ops: 20_000,
                },
            ],
            value_len: 64,
            scan_len: 50,
            seed: 0x5E1F_D21E,
        }
    }
}

/// An infinite, deterministic mix-shift operation stream.
pub struct MixShift {
    spec: MixShiftSpec,
    rng: StdRng,
    emitted: u64,
}

impl MixShift {
    /// Creates a generator from a spec (which must have ≥ 1 phase).
    pub fn new(spec: MixShiftSpec) -> Self {
        assert!(!spec.phases.is_empty(), "mix-shift needs at least one phase");
        let rng = StdRng::seed_from_u64(spec.seed);
        MixShift {
            spec,
            rng,
            emitted: 0,
        }
    }

    /// The spec this generator runs.
    pub fn spec(&self) -> &MixShiftSpec {
        &self.spec
    }

    /// Operations emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Index of the phase the *next* operation belongs to (the last
    /// phase repeats once the schedule is exhausted).
    pub fn phase(&self) -> usize {
        let mut seen = 0u64;
        for (i, p) in self.spec.phases.iter().enumerate() {
            seen += p.ops.max(1);
            if self.emitted < seen {
                return i;
            }
        }
        self.spec.phases.len() - 1
    }

    /// The phase the *next* operation belongs to.
    pub fn current_phase(&self) -> &MixPhase {
        &self.spec.phases[self.phase()]
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> Operation {
        let mix = self.spec.phases[self.phase()].mix;
        self.emitted += 1;
        let id = self.rng.gen_range(0..self.spec.key_space.max(1));
        let total = mix.insert + mix.update + mix.read + mix.scan + mix.delete;
        debug_assert!(total > 0.0, "operation mix must have positive weight");
        let r = self.rng.gen::<f64>() * total;
        if r < mix.insert + mix.update {
            Operation::Put {
                key: encode_key(id),
                value: make_value(id, self.spec.value_len),
            }
        } else if r < mix.insert + mix.update + mix.read {
            Operation::Get {
                key: encode_key(id),
            }
        } else if r < mix.insert + mix.update + mix.read + mix.scan {
            Operation::Scan {
                start: encode_key(id),
                limit: self.spec.scan_len,
            }
        } else {
            Operation::Delete {
                key: encode_key(id),
            }
        }
    }

    /// Generates a batch of `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count(ops: &[Operation]) -> (usize, usize, usize) {
        let puts = ops
            .iter()
            .filter(|o| matches!(o, Operation::Put { .. }))
            .count();
        let gets = ops
            .iter()
            .filter(|o| matches!(o, Operation::Get { .. }))
            .count();
        let scans = ops
            .iter()
            .filter(|o| matches!(o, Operation::Scan { .. }))
            .count();
        (puts, gets, scans)
    }

    #[test]
    fn deterministic_streams() {
        let spec = MixShiftSpec::default();
        let a = MixShift::new(spec.clone()).take(30_000);
        let b = MixShift::new(spec).take(30_000);
        assert_eq!(a, b);
    }

    #[test]
    fn phases_flip_at_fixed_op_counts() {
        let mut gen = MixShift::new(MixShiftSpec::default());
        assert_eq!(gen.current_phase().name, "write_heavy");
        let (puts, _, _) = count(&gen.take(20_000));
        assert!(puts * 10 > 20_000 * 7, "{puts} puts in write phase");
        assert_eq!(gen.phase(), 1);
        assert_eq!(gen.current_phase().name, "read_heavy");
        let (_, gets, _) = count(&gen.take(20_000));
        assert!(gets * 10 > 20_000 * 8, "{gets} gets in read phase");
        assert_eq!(gen.current_phase().name, "scan_heavy");
        let (_, _, scans) = count(&gen.take(20_000));
        assert!(scans * 10 > 20_000 * 7, "{scans} scans in scan phase");
    }

    #[test]
    fn last_phase_repeats_forever() {
        let spec = MixShiftSpec {
            phases: vec![
                MixPhase {
                    name: "w",
                    mix: OpMix::write_only(),
                    ops: 10,
                },
                MixPhase {
                    name: "r",
                    mix: OpMix::read_only(),
                    ops: 10,
                },
            ],
            ..Default::default()
        };
        let mut gen = MixShift::new(spec);
        let _ = gen.take(1000);
        assert_eq!(gen.phase(), 1);
        assert!(matches!(gen.next_op(), Operation::Get { .. }));
    }

    #[test]
    fn different_seeds_differ() {
        let a = MixShift::new(MixShiftSpec::default()).take(100);
        let b = MixShift::new(MixShiftSpec {
            seed: 7,
            ..Default::default()
        })
        .take(100);
        assert_ne!(a, b);
    }
}
