//! Key encoding between u64 ids and fixed-width byte keys.
//!
//! Keys are 16-byte strings `user<12-digit-zero-padded-id>` — order
//! preserving, YCSB-style, and long enough to exercise prefix compression
//! in the SSTable block format.

/// Encoded key length in bytes.
pub const KEY_LEN: usize = 16;

/// Encodes an id as an order-preserving 16-byte key.
pub fn encode_key(id: u64) -> Vec<u8> {
    format!("user{id:012}").into_bytes()
}

/// Decodes a key produced by [`encode_key`]; `None` for foreign keys.
pub fn decode_key(key: &[u8]) -> Option<u64> {
    let rest = key.strip_prefix(b"user")?;
    std::str::from_utf8(rest).ok()?.parse().ok()
}

/// Fixed-size value payload of `len` bytes, deterministic per id so
/// verification can recompute expected values.
pub fn make_value(id: u64, len: usize) -> Vec<u8> {
    let mut v = Vec::with_capacity(len);
    let seed = id.wrapping_mul(0x9E3779B97F4A7C15).to_le_bytes();
    while v.len() < len {
        v.extend_from_slice(&seed);
    }
    v.truncate(len);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for id in [0u64, 1, 999, 123_456_789_012] {
            assert_eq!(decode_key(&encode_key(id)), Some(id));
        }
    }

    #[test]
    fn encoding_preserves_order() {
        let mut ids: Vec<u64> = (0..1000).map(|i| i * 7919 % 100_000).collect();
        ids.sort_unstable();
        let keys: Vec<Vec<u8>> = ids.iter().map(|&i| encode_key(i)).collect();
        for w in keys.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn key_length_fixed() {
        assert_eq!(encode_key(0).len(), KEY_LEN);
        assert_eq!(encode_key(999_999_999_999).len(), KEY_LEN);
    }

    #[test]
    fn foreign_keys_decode_to_none() {
        assert_eq!(decode_key(b"not-a-user-key!!"), None);
        assert_eq!(decode_key(b"user12ab34"), None);
        assert_eq!(decode_key(b""), None);
    }

    #[test]
    fn values_are_deterministic_and_sized() {
        assert_eq!(make_value(7, 100), make_value(7, 100));
        assert_ne!(make_value(7, 100), make_value(8, 100));
        assert_eq!(make_value(7, 100).len(), 100);
        assert_eq!(make_value(7, 0).len(), 0);
        assert_eq!(make_value(7, 3).len(), 3);
    }
}
