//! Seeded operation-stream generation: key distributions × operation
//! mixes, the raw material of every experiment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::keyspace::{encode_key, make_value};
use crate::zipf::ZipfSampler;

/// How keys are drawn from the id space.
#[derive(Clone, Debug, PartialEq)]
pub enum KeyDistribution {
    /// Uniform over `[0, n)`.
    Uniform,
    /// Zipfian with the given theta (YCSB default 0.99), hottest id first.
    /// Ranks are scattered over the id space so hot keys are not adjacent.
    Zipfian {
        /// Skew parameter.
        theta: f64,
    },
    /// Monotonically increasing ids (time-series ingest).
    Sequential,
    /// Most recently inserted ids are hottest (YCSB "latest").
    Latest {
        /// Skew of the recency bias.
        theta: f64,
    },
}

/// Relative operation frequencies; need not sum to 1.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpMix {
    /// Blind writes.
    pub insert: f64,
    /// Updates of existing keys (also writes, but drawn from live keys).
    pub update: f64,
    /// Point lookups.
    pub read: f64,
    /// Range scans.
    pub scan: f64,
    /// Deletes.
    pub delete: f64,
    /// Read-modify-writes (YCSB-F): read a key, write a derived value
    /// back. Transactional runners execute these atomically (read +
    /// conditional write in one txn); plain runners as get-then-put.
    pub rmw: f64,
}

impl OpMix {
    /// A write-only mix.
    pub fn write_only() -> Self {
        OpMix {
            insert: 1.0,
            update: 0.0,
            read: 0.0,
            scan: 0.0,
            delete: 0.0,
            rmw: 0.0,
        }
    }

    /// A read-only mix.
    pub fn read_only() -> Self {
        OpMix {
            insert: 0.0,
            update: 0.0,
            read: 1.0,
            scan: 0.0,
            delete: 0.0,
            rmw: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.insert + self.update + self.read + self.scan + self.delete + self.rmw
    }
}

/// A single generated operation.
#[derive(Clone, Debug, PartialEq)]
pub enum Operation {
    /// Write `key = value`.
    Put {
        /// The key.
        key: Vec<u8>,
        /// The value.
        value: Vec<u8>,
    },
    /// Point lookup.
    Get {
        /// The key.
        key: Vec<u8>,
    },
    /// Range scan of at most `limit` entries from `start`.
    Scan {
        /// Scan start key (inclusive).
        start: Vec<u8>,
        /// Maximum entries to return.
        limit: usize,
    },
    /// Delete a key.
    Delete {
        /// The key.
        key: Vec<u8>,
    },
    /// Read `key`, then write `value` back to it. A transactional runner
    /// executes both inside one optimistic transaction (retrying on
    /// conflict); a plain runner degrades to get-then-put.
    ReadModifyWrite {
        /// The key to read and rewrite.
        key: Vec<u8>,
        /// The replacement value.
        value: Vec<u8>,
    },
}

/// Full description of a workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Size of the id space reads draw from.
    pub key_space: u64,
    /// Key distribution.
    pub distribution: KeyDistribution,
    /// Operation mix.
    pub mix: OpMix,
    /// Value size in bytes.
    pub value_len: usize,
    /// Scan length in entries.
    pub scan_len: usize,
    /// RNG seed: identical specs + seeds generate identical streams.
    pub seed: u64,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec {
            key_space: 100_000,
            distribution: KeyDistribution::Uniform,
            mix: OpMix::write_only(),
            value_len: 64,
            scan_len: 100,
            seed: 0xC0FFEE,
        }
    }
}

/// An infinite, deterministic operation stream.
pub struct WorkloadGenerator {
    spec: WorkloadSpec,
    rng: StdRng,
    zipf: Option<ZipfSampler>,
    next_sequential: u64,
    inserted: u64,
}

impl WorkloadGenerator {
    /// Creates a generator from a spec.
    pub fn new(spec: WorkloadSpec) -> Self {
        let zipf = match spec.distribution {
            KeyDistribution::Zipfian { theta } | KeyDistribution::Latest { theta } => {
                Some(ZipfSampler::new(spec.key_space.max(1), theta))
            }
            _ => None,
        };
        let rng = StdRng::seed_from_u64(spec.seed);
        WorkloadGenerator {
            spec,
            rng,
            zipf,
            next_sequential: 0,
            inserted: 0,
        }
    }

    /// The spec this generator runs.
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// Scatters a zipf rank over the id space so hot ids are spread out
    /// (multiplicative hashing, order-destroying, deterministic).
    fn scatter(&self, rank: u64) -> u64 {
        rank.wrapping_mul(0x9E3779B97F4A7C15) % self.spec.key_space.max(1)
    }

    fn draw_id(&mut self) -> u64 {
        match self.spec.distribution {
            KeyDistribution::Uniform => self.rng.gen_range(0..self.spec.key_space.max(1)),
            KeyDistribution::Zipfian { .. } => {
                let rank = self.zipf.as_ref().unwrap().sample(&mut self.rng);
                self.scatter(rank)
            }
            KeyDistribution::Sequential => {
                let id = self.next_sequential;
                self.next_sequential = (self.next_sequential + 1) % self.spec.key_space.max(1);
                id
            }
            KeyDistribution::Latest { theta } => {
                // YCSB "latest": zipf over the records inserted so far, so
                // the hot set tracks the insertion frontier. The sampler is
                // O(1) to construct, so building one per draw is cheap.
                let newest = self.inserted.max(1).min(self.spec.key_space);
                let back = ZipfSampler::new(newest, theta).sample(&mut self.rng);
                newest - back
            }
        }
    }

    fn draw_insert_id(&mut self) -> u64 {
        match self.spec.distribution {
            KeyDistribution::Sequential | KeyDistribution::Latest { .. } => {
                let id = self.inserted % self.spec.key_space.max(1);
                self.inserted += 1;
                id
            }
            _ => {
                self.inserted += 1;
                self.draw_id()
            }
        }
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> Operation {
        let mix = self.spec.mix;
        let total = mix.total();
        debug_assert!(total > 0.0, "operation mix must have positive weight");
        let r = self.rng.gen::<f64>() * total;
        if r < mix.insert {
            let id = self.draw_insert_id();
            Operation::Put {
                key: encode_key(id),
                value: make_value(id, self.spec.value_len),
            }
        } else if r < mix.insert + mix.update {
            let id = self.draw_id();
            Operation::Put {
                key: encode_key(id),
                value: make_value(id ^ 0xDEAD, self.spec.value_len),
            }
        } else if r < mix.insert + mix.update + mix.read {
            Operation::Get {
                key: encode_key(self.draw_id()),
            }
        } else if r < mix.insert + mix.update + mix.read + mix.scan {
            Operation::Scan {
                start: encode_key(self.draw_id()),
                limit: self.spec.scan_len,
            }
        } else if r < mix.insert + mix.update + mix.read + mix.scan + mix.delete {
            Operation::Delete {
                key: encode_key(self.draw_id()),
            }
        } else {
            let id = self.draw_id();
            Operation::ReadModifyWrite {
                key: encode_key(id),
                value: make_value(id ^ 0xBEEF, self.spec.value_len),
            }
        }
    }

    /// Generates a batch of `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_kinds(ops: &[Operation]) -> (usize, usize, usize, usize) {
        let mut p = 0;
        let mut g = 0;
        let mut s = 0;
        let mut d = 0;
        for op in ops {
            match op {
                Operation::Put { .. } => p += 1,
                Operation::Get { .. } => g += 1,
                Operation::Scan { .. } => s += 1,
                Operation::Delete { .. } => d += 1,
                Operation::ReadModifyWrite { .. } => {}
            }
        }
        (p, g, s, d)
    }

    #[test]
    fn deterministic_streams() {
        let spec = WorkloadSpec {
            mix: OpMix {
                insert: 0.3,
                update: 0.1,
                read: 0.4,
                scan: 0.1,
                delete: 0.1,
                rmw: 0.0,
            },
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            ..Default::default()
        };
        let a = WorkloadGenerator::new(spec.clone()).take(500);
        let b = WorkloadGenerator::new(spec).take(500);
        assert_eq!(a, b);
    }

    #[test]
    fn mix_ratios_are_respected() {
        let spec = WorkloadSpec {
            mix: OpMix {
                insert: 0.5,
                update: 0.0,
                read: 0.5,
                scan: 0.0,
                delete: 0.0,
                rmw: 0.0,
            },
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).take(10_000);
        let (p, g, s, d) = count_kinds(&ops);
        assert!(s == 0 && d == 0);
        assert!((4000..6000).contains(&p), "{p} puts");
        assert!((4000..6000).contains(&g), "{g} gets");
    }

    #[test]
    fn sequential_inserts_ascend() {
        let spec = WorkloadSpec {
            distribution: KeyDistribution::Sequential,
            mix: OpMix::write_only(),
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).take(100);
        let keys: Vec<&Vec<u8>> = ops
            .iter()
            .map(|op| match op {
                Operation::Put { key, .. } => key,
                _ => panic!(),
            })
            .collect();
        for w in keys.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn zipfian_reads_are_skewed() {
        use std::collections::HashMap;
        let spec = WorkloadSpec {
            distribution: KeyDistribution::Zipfian { theta: 0.99 },
            mix: OpMix::read_only(),
            key_space: 10_000,
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).take(50_000);
        let mut counts: HashMap<Vec<u8>, usize> = HashMap::new();
        for op in &ops {
            if let Operation::Get { key } = op {
                *counts.entry(key.clone()).or_default() += 1;
            }
        }
        let max = counts.values().max().copied().unwrap_or(0);
        // the hottest key should appear far more often than average
        let avg = 50_000 / counts.len().max(1);
        assert!(max > avg * 20, "max {max}, avg {avg}");
    }

    #[test]
    fn latest_prefers_recent_inserts() {
        let spec = WorkloadSpec {
            distribution: KeyDistribution::Latest { theta: 0.99 },
            mix: OpMix {
                insert: 0.5,
                update: 0.0,
                read: 0.5,
                scan: 0.0,
                delete: 0.0,
                rmw: 0.0,
            },
            key_space: 1_000_000,
            ..Default::default()
        };
        let mut gen = WorkloadGenerator::new(spec);
        let ops = gen.take(20_000);
        // reads should cluster near the insertion frontier
        let mut near_frontier = 0;
        let mut total_reads = 0;
        let mut frontier = 0u64;
        for op in &ops {
            match op {
                Operation::Put { key, .. } => {
                    frontier = crate::keyspace::decode_key(key).unwrap().max(frontier);
                }
                Operation::Get { key } => {
                    total_reads += 1;
                    let id = crate::keyspace::decode_key(key).unwrap();
                    if frontier.saturating_sub(id) < 100 {
                        near_frontier += 1;
                    }
                }
                _ => {}
            }
        }
        assert!(
            near_frontier * 2 > total_reads,
            "{near_frontier}/{total_reads} near frontier"
        );
    }

    #[test]
    fn scan_ops_carry_limit() {
        let spec = WorkloadSpec {
            mix: OpMix {
                insert: 0.0,
                update: 0.0,
                read: 0.0,
                scan: 1.0,
                delete: 0.0,
                rmw: 0.0,
            },
            scan_len: 42,
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).take(10);
        for op in ops {
            match op {
                Operation::Scan { limit, .. } => assert_eq!(limit, 42),
                _ => panic!("expected scan"),
            }
        }
    }

    #[test]
    fn values_have_requested_length() {
        let spec = WorkloadSpec {
            value_len: 256,
            ..Default::default()
        };
        let ops = WorkloadGenerator::new(spec).take(20);
        for op in ops {
            if let Operation::Put { value, .. } = op {
                assert_eq!(value.len(), 256);
            }
        }
    }
}
