//! Open-loop arrival schedules for load generation.
//!
//! A *closed-loop* client issues the next request only after the
//! previous response arrives, so a slow server silently throttles its
//! own load and latency numbers look flattering (coordinated omission).
//! An *open-loop* generator fixes the arrival times up front — requests
//! arrive on schedule whether or not the server has kept up — so queueing
//! delay shows up in the measured latency instead of disappearing into a
//! slowed-down generator.
//!
//! [`OpenLoopSchedule`] produces deterministic arrival timestamps (ns
//! since test start) for a target rate, either uniformly spaced or with
//! exponential (Poisson-process) gaps from a seeded generator, so two
//! runs at the same rate replay the identical schedule.

/// Inter-arrival law for an open-loop schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Arrivals {
    /// Fixed gaps: one request every `period_ns`.
    Uniform,
    /// Exponential gaps with mean `period_ns` (Poisson process) — the
    /// classic open-system model; bursts are part of the offered load.
    Poisson,
}

/// Deterministic open-loop arrival schedule.
#[derive(Clone, Debug)]
pub struct OpenLoopSchedule {
    period_ns: f64,
    arrivals: Arrivals,
    state: u64,
    /// Next arrival time, ns since schedule start.
    next_ns: f64,
}

impl OpenLoopSchedule {
    /// A schedule offering `rate_per_sec` requests per second; `seed`
    /// only matters for [`Arrivals::Poisson`].
    pub fn new(rate_per_sec: f64, arrivals: Arrivals, seed: u64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "offered rate must be positive"
        );
        OpenLoopSchedule {
            period_ns: 1.0e9 / rate_per_sec,
            arrivals,
            // splitmix-style scramble so adjacent seeds give unrelated
            // streams (a bare `| 1` would alias seeds 2k and 2k+1)
            state: (seed.wrapping_add(0x9E3779B97F4A7C15))
                .wrapping_mul(0xBF58476D1CE4E5B9)
                | 1,
            next_ns: 0.0,
        }
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift*; deterministic, dependency-free
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in (0, 1]: never exactly zero, so `ln` stays finite.
    fn unit(&mut self) -> f64 {
        ((self.next_u64() >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    }

    /// The next arrival timestamp, in ns since schedule start.
    pub fn next_arrival_ns(&mut self) -> u64 {
        let at = self.next_ns;
        let gap = match self.arrivals {
            Arrivals::Uniform => self.period_ns,
            Arrivals::Poisson => -self.unit().ln() * self.period_ns,
        };
        self.next_ns = at + gap;
        at as u64
    }

    /// The first `n` arrival timestamps (consumes them from the schedule).
    pub fn take(&mut self, n: usize) -> Vec<u64> {
        (0..n).map(|_| self.next_arrival_ns()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_schedule_is_exact() {
        let mut s = OpenLoopSchedule::new(1000.0, Arrivals::Uniform, 7);
        let at = s.take(5);
        assert_eq!(at, vec![0, 1_000_000, 2_000_000, 3_000_000, 4_000_000]);
    }

    #[test]
    fn poisson_schedule_is_deterministic_with_mean_near_period() {
        let a = OpenLoopSchedule::new(10_000.0, Arrivals::Poisson, 42).take(5000);
        let b = OpenLoopSchedule::new(10_000.0, Arrivals::Poisson, 42).take(5000);
        assert_eq!(a, b, "same seed must replay the same schedule");
        let c = OpenLoopSchedule::new(10_000.0, Arrivals::Poisson, 43).take(5000);
        assert_ne!(a, c, "different seeds must differ");
        // 5000 arrivals at 10k/s should span ~0.5s; allow wide slack
        let span = *a.last().unwrap() as f64 / 1e9;
        assert!(
            (0.35..0.7).contains(&span),
            "5000 poisson arrivals at 10k/s spanned {span}s"
        );
        // arrivals are sorted by construction
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "offered rate must be positive")]
    fn zero_rate_is_rejected() {
        OpenLoopSchedule::new(0.0, Arrivals::Uniform, 1);
    }
}
