//! # lsm-workload
//!
//! Deterministic workload generation for the experiment suite — the
//! synthetic stand-in for the YCSB workloads production LSM papers
//! evaluate on (see the substitution table in DESIGN.md):
//!
//! - [`zipf`]: a rejection-inversion Zipf sampler (self-implemented;
//!   no external distribution crates);
//! - [`keyspace`]: key encodings between u64 ids and fixed-width byte keys;
//! - [`generator`]: seeded operation streams over key distributions ×
//!   operation mixes;
//! - [`hotspot`]: a shifting contiguous hot range — the adversarial
//!   pattern for static range partitioning;
//! - [`mixshift`]: the operation mix flips at fixed op counts — the
//!   workload-drift pattern a self-tuning engine must chase;
//! - [`ycsb`]: the YCSB A–F presets;
//! - [`trace`]: record/replay so an identical operation sequence can be
//!   run against different engine configurations;
//! - [`openloop`]: deterministic open-loop arrival schedules (uniform and
//!   Poisson), so offered load is fixed up front and queueing delay is
//!   measured instead of coordinated away.

pub mod generator;
pub mod hotspot;
pub mod keyspace;
pub mod mixshift;
pub mod openloop;
pub mod trace;
pub mod ycsb;
pub mod zipf;

pub use generator::{KeyDistribution, Operation, OpMix, WorkloadGenerator, WorkloadSpec};
pub use hotspot::{HotspotSpec, ShiftingHotspot};
pub use keyspace::{decode_key, encode_key, KEY_LEN};
pub use mixshift::{MixPhase, MixShift, MixShiftSpec};
pub use openloop::{Arrivals, OpenLoopSchedule};
pub use trace::Trace;
pub use ycsb::YcsbWorkload;
pub use zipf::ZipfSampler;
