//! YCSB core workload presets (A–F), the de-facto benchmark mixes for
//! key-value stores and the workloads the tutorial's cited systems
//! evaluate on.

use crate::generator::{KeyDistribution, OpMix, WorkloadSpec};

/// The six YCSB core workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum YcsbWorkload {
    /// A: update heavy — 50% reads, 50% updates, zipfian.
    A,
    /// B: read mostly — 95% reads, 5% updates, zipfian.
    B,
    /// C: read only — 100% reads, zipfian.
    C,
    /// D: read latest — 95% reads, 5% inserts, latest distribution.
    D,
    /// E: short ranges — 95% scans, 5% inserts, zipfian.
    E,
    /// F: read-modify-write — 50% reads, 50% RMW, zipfian.
    F,
}

impl YcsbWorkload {
    /// All presets in order.
    pub const ALL: [YcsbWorkload; 6] = [
        YcsbWorkload::A,
        YcsbWorkload::B,
        YcsbWorkload::C,
        YcsbWorkload::D,
        YcsbWorkload::E,
        YcsbWorkload::F,
    ];

    /// Letter label.
    pub fn label(self) -> &'static str {
        match self {
            YcsbWorkload::A => "A",
            YcsbWorkload::B => "B",
            YcsbWorkload::C => "C",
            YcsbWorkload::D => "D",
            YcsbWorkload::E => "E",
            YcsbWorkload::F => "F",
        }
    }

    /// The workload spec for this preset over `key_space` keys.
    pub fn spec(self, key_space: u64, seed: u64) -> WorkloadSpec {
        let zipf = KeyDistribution::Zipfian { theta: 0.99 };
        let (mix, distribution) = match self {
            YcsbWorkload::A => (
                OpMix {
                    insert: 0.0,
                    update: 0.5,
                    read: 0.5,
                    scan: 0.0,
                    delete: 0.0,
                    rmw: 0.0,
                },
                zipf,
            ),
            YcsbWorkload::B => (
                OpMix {
                    insert: 0.0,
                    update: 0.05,
                    read: 0.95,
                    scan: 0.0,
                    delete: 0.0,
                    rmw: 0.0,
                },
                zipf,
            ),
            YcsbWorkload::C => (OpMix::read_only(), zipf),
            YcsbWorkload::D => (
                OpMix {
                    insert: 0.05,
                    update: 0.0,
                    read: 0.95,
                    scan: 0.0,
                    delete: 0.0,
                    rmw: 0.0,
                },
                KeyDistribution::Latest { theta: 0.99 },
            ),
            YcsbWorkload::E => (
                OpMix {
                    insert: 0.05,
                    update: 0.0,
                    read: 0.0,
                    scan: 0.95,
                    delete: 0.0,
                    rmw: 0.0,
                },
                zipf,
            ),
            YcsbWorkload::F => (
                OpMix {
                    insert: 0.0,
                    update: 0.0,
                    read: 0.5,
                    scan: 0.0,
                    delete: 0.0,
                    rmw: 0.5,
                },
                zipf,
            ),
        };
        WorkloadSpec {
            key_space,
            distribution,
            mix,
            value_len: 100, // YCSB default field layout, compacted
            scan_len: 100,
            seed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{Operation, WorkloadGenerator};

    #[test]
    fn c_is_read_only() {
        let spec = YcsbWorkload::C.spec(1000, 1);
        let ops = WorkloadGenerator::new(spec).take(1000);
        assert!(ops.iter().all(|op| matches!(op, Operation::Get { .. })));
    }

    #[test]
    fn e_is_scan_heavy() {
        let spec = YcsbWorkload::E.spec(1000, 1);
        let ops = WorkloadGenerator::new(spec).take(2000);
        let scans = ops
            .iter()
            .filter(|op| matches!(op, Operation::Scan { .. }))
            .count();
        assert!(scans > 1800, "{scans} scans");
    }

    #[test]
    fn a_is_half_updates() {
        let spec = YcsbWorkload::A.spec(1000, 1);
        let ops = WorkloadGenerator::new(spec).take(4000);
        let puts = ops
            .iter()
            .filter(|op| matches!(op, Operation::Put { .. }))
            .count();
        assert!((1700..2300).contains(&puts), "{puts} puts");
    }

    #[test]
    fn f_is_half_read_modify_write() {
        let spec = YcsbWorkload::F.spec(1000, 1);
        let ops = WorkloadGenerator::new(spec).take(4000);
        let rmws = ops
            .iter()
            .filter(|op| matches!(op, Operation::ReadModifyWrite { .. }))
            .count();
        let reads = ops
            .iter()
            .filter(|op| matches!(op, Operation::Get { .. }))
            .count();
        assert!((1700..2300).contains(&rmws), "{rmws} rmws");
        assert_eq!(rmws + reads, 4000, "F generates only reads and RMWs");
    }

    #[test]
    fn d_uses_latest_distribution() {
        let spec = YcsbWorkload::D.spec(1000, 1);
        assert!(matches!(spec.distribution, KeyDistribution::Latest { .. }));
    }

    #[test]
    fn labels_distinct() {
        let mut labels: Vec<_> = YcsbWorkload::ALL.iter().map(|w| w.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }
}
