//! Shifting-hotspot workload: a contiguous hot key range that jumps to
//! a new region of the keyspace every phase.
//!
//! This is the adversarial access pattern for *static* partitioning —
//! whichever shard owns the hot range absorbs almost the whole write
//! load until the window moves — and exactly the pattern an elastic
//! range-sharded topology is built to chase with online splits and
//! merges. Unlike [`crate::generator::KeyDistribution::Zipfian`], the
//! hot set here is contiguous in key order, so it lands on one range
//! shard instead of scattering across all of them.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::generator::{OpMix, Operation};
use crate::keyspace::{encode_key, make_value};

/// Full description of a shifting-hotspot workload.
#[derive(Clone, Debug)]
pub struct HotspotSpec {
    /// Size of the id space keys draw from.
    pub key_space: u64,
    /// Probability an operation targets the current hot window.
    pub hot_fraction: f64,
    /// Width of the hot window in ids.
    pub hot_width: u64,
    /// Operations per phase; the window jumps when a phase ends.
    pub phase_ops: u64,
    /// Operation mix.
    pub mix: OpMix,
    /// Value size in bytes.
    pub value_len: usize,
    /// Scan length in entries.
    pub scan_len: usize,
    /// RNG seed: identical specs + seeds generate identical streams.
    pub seed: u64,
}

impl Default for HotspotSpec {
    fn default() -> Self {
        HotspotSpec {
            key_space: 100_000,
            hot_fraction: 0.9,
            hot_width: 5_000,
            phase_ops: 20_000,
            mix: OpMix::write_only(),
            value_len: 64,
            scan_len: 100,
            seed: 0xFACADE,
        }
    }
}

/// An infinite, deterministic shifting-hotspot operation stream.
pub struct ShiftingHotspot {
    spec: HotspotSpec,
    rng: StdRng,
    emitted: u64,
}

impl ShiftingHotspot {
    /// Creates a generator from a spec.
    pub fn new(spec: HotspotSpec) -> Self {
        let rng = StdRng::seed_from_u64(spec.seed);
        ShiftingHotspot {
            spec,
            rng,
            emitted: 0,
        }
    }

    /// The spec this generator runs.
    pub fn spec(&self) -> &HotspotSpec {
        &self.spec
    }

    /// The phase the *next* operation belongs to.
    pub fn phase(&self) -> u64 {
        self.emitted / self.spec.phase_ops.max(1)
    }

    /// First id of the hot window in `phase` (golden-ratio hop, so
    /// consecutive windows land in far-apart regions of the keyspace).
    pub fn window_start(&self, phase: u64) -> u64 {
        let span = self.spec.key_space.saturating_sub(self.spec.hot_width).max(1);
        (phase + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) % span
    }

    /// The current hot range as encoded `[start, end)` keys.
    pub fn hot_range(&self) -> (Vec<u8>, Vec<u8>) {
        let lo = self.window_start(self.phase());
        (encode_key(lo), encode_key(lo + self.spec.hot_width))
    }

    fn draw_id(&mut self) -> u64 {
        let phase = self.phase();
        if self.rng.gen::<f64>() < self.spec.hot_fraction {
            let lo = self.window_start(phase);
            self.rng.gen_range(lo..lo + self.spec.hot_width.max(1))
        } else {
            self.rng.gen_range(0..self.spec.key_space.max(1))
        }
    }

    /// Generates the next operation.
    pub fn next_op(&mut self) -> Operation {
        let id = self.draw_id();
        self.emitted += 1;
        let mix = self.spec.mix;
        let total = mix.insert + mix.update + mix.read + mix.scan + mix.delete;
        debug_assert!(total > 0.0, "operation mix must have positive weight");
        let r = self.rng.gen::<f64>() * total;
        if r < mix.insert + mix.update {
            Operation::Put {
                key: encode_key(id),
                value: make_value(id, self.spec.value_len),
            }
        } else if r < mix.insert + mix.update + mix.read {
            Operation::Get {
                key: encode_key(id),
            }
        } else if r < mix.insert + mix.update + mix.read + mix.scan {
            Operation::Scan {
                start: encode_key(id),
                limit: self.spec.scan_len,
            }
        } else {
            Operation::Delete {
                key: encode_key(id),
            }
        }
    }

    /// Generates a batch of `n` operations.
    pub fn take(&mut self, n: usize) -> Vec<Operation> {
        (0..n).map(|_| self.next_op()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keyspace::decode_key;

    #[test]
    fn deterministic_streams() {
        let spec = HotspotSpec::default();
        let a = ShiftingHotspot::new(spec.clone()).take(1000);
        let b = ShiftingHotspot::new(spec).take(1000);
        assert_eq!(a, b);
    }

    #[test]
    fn most_ops_fall_in_the_current_window() {
        let spec = HotspotSpec {
            hot_fraction: 0.9,
            phase_ops: 10_000,
            ..Default::default()
        };
        let mut gen = ShiftingHotspot::new(spec);
        let lo = gen.window_start(0);
        let hi = lo + gen.spec().hot_width;
        let ops = gen.take(5_000);
        let hot = ops
            .iter()
            .filter_map(|op| match op {
                Operation::Put { key, .. } => decode_key(key),
                _ => None,
            })
            .filter(|&id| id >= lo && id < hi)
            .count();
        assert!(hot * 10 > ops.len() * 8, "{hot}/{} ops in window", ops.len());
    }

    #[test]
    fn window_shifts_between_phases() {
        let spec = HotspotSpec {
            phase_ops: 100,
            ..Default::default()
        };
        let gen = ShiftingHotspot::new(spec);
        let starts: Vec<u64> = (0..4).map(|p| gen.window_start(p)).collect();
        for w in starts.windows(2) {
            let gap = w[0].abs_diff(w[1]);
            assert!(
                gap > gen.spec().hot_width,
                "consecutive windows {w:?} overlap or touch"
            );
        }
    }

    #[test]
    fn mixed_ops_respect_ratios() {
        let spec = HotspotSpec {
            mix: OpMix {
                insert: 0.5,
                update: 0.0,
                read: 0.5,
                scan: 0.0,
                delete: 0.0,
                rmw: 0.0,
            },
            ..Default::default()
        };
        let ops = ShiftingHotspot::new(spec).take(10_000);
        let puts = ops
            .iter()
            .filter(|o| matches!(o, Operation::Put { .. }))
            .count();
        assert!((4000..6000).contains(&puts), "{puts} puts");
    }
}
