//! Zipf-distributed sampling by rejection inversion (Hörmann & Derflinger,
//! "Rejection-inversion to generate variates from monotone discrete
//! distributions") — O(1) per sample with no precomputed CDF, so key
//! spaces of hundreds of millions of keys cost no memory.

use rand::Rng;

/// Samples ranks in `[1, n]` with probability ∝ `1 / rank^theta`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    h_x1: f64,
    h_n: f64,
    s: f64,
}

impl ZipfSampler {
    /// New sampler over `n` ranks with skew `theta > 0` (YCSB uses 0.99).
    ///
    /// # Panics
    /// Panics if `n == 0` or `theta <= 0` or `theta == 1` is not handled —
    /// any positive theta except exactly 1.0 is supported; theta == 1.0 is
    /// nudged to 0.9999999.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "n must be positive");
        assert!(theta > 0.0, "theta must be positive");
        let theta = if (theta - 1.0).abs() < 1e-9 {
            0.999_999_9
        } else {
            theta
        };
        let h = |x: f64| -> f64 { (x.powf(1.0 - theta) - 1.0) / (1.0 - theta) };
        ZipfSampler {
            n,
            theta,
            h_x1: h(1.5) - 1.0,
            h_n: h(n as f64 + 0.5),
            s: 2.0 - Self::h_inv_static(theta, Self::h_static(theta, 2.5) - 0.5f64.powf(-theta)),
        }
    }

    fn h_static(theta: f64, x: f64) -> f64 {
        (x.powf(1.0 - theta) - 1.0) / (1.0 - theta)
    }

    fn h_inv_static(theta: f64, x: f64) -> f64 {
        (1.0 + x * (1.0 - theta)).powf(1.0 / (1.0 - theta))
    }

    fn h(&self, x: f64) -> f64 {
        Self::h_static(self.theta, x)
    }

    fn h_inv(&self, x: f64) -> f64 {
        Self::h_inv_static(self.theta, x)
    }

    /// Draws one rank in `[1, n]`, rank 1 most likely.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        loop {
            let u = self.h_x1 + rng.gen::<f64>() * (self.h_n - self.h_x1);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().clamp(1.0, self.n as f64);
            if k - x <= self.s || u >= self.h(k + 0.5) - k.powf(-self.theta) {
                return k as u64;
            }
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The skew parameter.
    pub fn theta(&self) -> f64 {
        self.theta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn histogram(n: u64, theta: f64, samples: usize) -> Vec<u64> {
        let z = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0u64; n as usize];
        for _ in 0..samples {
            let k = z.sample(&mut rng);
            assert!((1..=n).contains(&k));
            counts[(k - 1) as usize] += 1;
        }
        counts
    }

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(10, 0.99);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let k = z.sample(&mut rng);
            assert!((1..=10).contains(&k));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let counts = histogram(1000, 0.99, 100_000);
        assert!(counts[0] > counts[9] && counts[9] > counts[99]);
        // for theta≈1, P(1) ≈ 1/H(n) ≈ 1/7.48 ≈ 13%
        let p1 = counts[0] as f64 / 100_000.0;
        assert!((0.08..0.20).contains(&p1), "p1 = {p1}");
    }

    #[test]
    fn frequency_follows_power_law() {
        let counts = histogram(10_000, 0.99, 400_000);
        // ratio of P(1)/P(10) should be ≈ 10^0.99 ≈ 9.8
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((5.0..18.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn low_theta_is_flatter() {
        let skewed = histogram(100, 1.2, 100_000);
        let flat = histogram(100, 0.2, 100_000);
        let top_skewed = skewed[0] as f64 / 100_000.0;
        let top_flat = flat[0] as f64 / 100_000.0;
        assert!(top_skewed > top_flat * 2.0, "{top_skewed} vs {top_flat}");
    }

    #[test]
    fn theta_exactly_one_is_nudged() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.theta() < 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=100).contains(&k));
        }
    }

    #[test]
    fn single_rank() {
        let z = ZipfSampler::new(1, 0.99);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn deterministic_with_seed() {
        let z = ZipfSampler::new(500, 0.9);
        let a: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..100).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "n must be positive")]
    fn zero_n_panics() {
        let _ = ZipfSampler::new(0, 0.99);
    }

    #[test]
    fn huge_n_is_cheap() {
        // no CDF precompute: constructing over a billion ranks is instant
        let z = ZipfSampler::new(1_000_000_000, 0.99);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let k = z.sample(&mut rng);
            assert!((1..=1_000_000_000).contains(&k));
        }
    }
}
