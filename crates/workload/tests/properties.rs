//! Property-based checks for workload generation: determinism, domain
//! bounds, and approximate mix fidelity over the whole parameter space.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use lsm_workload::{
    decode_key, KeyDistribution, OpMix, Operation, Trace, WorkloadGenerator, WorkloadSpec,
    ZipfSampler,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The same (spec, seed) always produces the same stream.
    #[test]
    fn generator_is_deterministic(
        seed in any::<u64>(),
        key_space in 1u64..100_000,
        theta in 0.1f64..1.5,
        n in 1usize..300,
    ) {
        let spec = WorkloadSpec {
            key_space,
            distribution: KeyDistribution::Zipfian { theta },
            mix: OpMix {
                insert: 0.4,
                update: 0.1,
                read: 0.3,
                scan: 0.1,
                delete: 0.1,
                rmw: 0.0,
            },
            value_len: 16,
            scan_len: 10,
            seed,
        };
        let a = WorkloadGenerator::new(spec.clone()).take(n);
        let b = WorkloadGenerator::new(spec).take(n);
        prop_assert_eq!(a, b);
    }

    /// Every generated key decodes to an id inside the configured space.
    #[test]
    fn keys_stay_in_the_id_space(
        seed in any::<u64>(),
        key_space in 1u64..50_000,
        dist_idx in 0usize..4,
    ) {
        let distribution = match dist_idx {
            0 => KeyDistribution::Uniform,
            1 => KeyDistribution::Zipfian { theta: 0.99 },
            2 => KeyDistribution::Sequential,
            _ => KeyDistribution::Latest { theta: 0.99 },
        };
        let spec = WorkloadSpec {
            key_space,
            distribution,
            mix: OpMix {
                insert: 0.5,
                update: 0.1,
                read: 0.3,
                scan: 0.05,
                delete: 0.05,
                rmw: 0.0,
            },
            seed,
            ..WorkloadSpec::default()
        };
        for op in WorkloadGenerator::new(spec).take(200) {
            let key = match &op {
                Operation::Put { key, .. }
                | Operation::Get { key }
                | Operation::Delete { key }
                | Operation::ReadModifyWrite { key, .. } => key,
                Operation::Scan { start, .. } => start,
            };
            let id = decode_key(key).expect("generated keys must decode");
            prop_assert!(id < key_space, "id {id} out of space {key_space}");
        }
    }

    /// Zipf samples always land in [1, n], for any skew.
    #[test]
    fn zipf_domain(
        n in 1u64..10_000_000,
        theta in 0.05f64..3.0,
        seed in any::<u64>(),
    ) {
        let z = ZipfSampler::new(n, theta);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..200 {
            let k = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&k));
        }
    }

    /// Trace split/chain is the identity.
    #[test]
    fn trace_split_chain_identity(
        seed in any::<u64>(),
        n in 1usize..200,
        at in 0usize..250,
    ) {
        let spec = WorkloadSpec { seed, ..WorkloadSpec::default() };
        let t = Trace::record(spec, n);
        let (a, b) = t.split_at(at);
        prop_assert_eq!(a.chain(b), t);
    }
}

#[test]
fn mix_fidelity_over_long_streams() {
    let spec = WorkloadSpec {
        mix: OpMix {
            insert: 0.25,
            update: 0.05,
            read: 0.5,
            scan: 0.1,
            delete: 0.1,
            rmw: 0.0,
        },
        ..WorkloadSpec::default()
    };
    let ops = WorkloadGenerator::new(spec).take(40_000);
    let mut counts = [0usize; 5];
    for op in &ops {
        match op {
            Operation::Put { .. } => counts[0] += 1,
            Operation::Get { .. } => counts[1] += 1,
            Operation::Scan { .. } => counts[2] += 1,
            Operation::Delete { .. } => counts[3] += 1,
            Operation::ReadModifyWrite { .. } => counts[4] += 1,
        }
    }
    let frac = |c: usize| c as f64 / 40_000.0;
    assert!((frac(counts[0]) - 0.30).abs() < 0.02, "puts {}", frac(counts[0]));
    assert!((frac(counts[1]) - 0.50).abs() < 0.02, "gets {}", frac(counts[1]));
    assert!((frac(counts[2]) - 0.10).abs() < 0.02, "scans {}", frac(counts[2]));
    assert!((frac(counts[3]) - 0.10).abs() < 0.02, "deletes {}", frac(counts[3]));
}
