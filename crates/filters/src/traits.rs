//! Common traits over all filter families, so the engine can treat the
//! filter choice as a single configuration axis.

use std::ops::Bound;

/// An approximate-membership (point) filter over a fixed key set.
///
/// Contract: [`PointFilter::may_contain`] must return `true` for every key
/// that was inserted at build time (no false negatives); it may return
/// `true` for other keys with some false-positive probability.
pub trait PointFilter: Send + Sync {
    /// Whether `key` may be in the underlying set.
    fn may_contain(&self, key: &[u8]) -> bool;

    /// Size of the filter in bits (its memory footprint).
    fn size_bits(&self) -> usize;

    /// Number of keys the filter was built over.
    fn num_keys(&self) -> usize;

    /// Serializes the filter to bytes (stored in the SSTable filter block).
    fn to_bytes(&self) -> Vec<u8>;

    /// Effective bits per key.
    fn bits_per_key(&self) -> f64 {
        if self.num_keys() == 0 {
            0.0
        } else {
            self.size_bits() as f64 / self.num_keys() as f64
        }
    }
}

/// An approximate range-emptiness filter.
///
/// Contract: [`RangeFilter::may_overlap`] must return `true` for every query
/// range that intersects the built key set (no false negatives).
pub trait RangeFilter: Send + Sync {
    /// Whether any built key may fall within `(lo, hi)` bounds.
    fn may_overlap(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> bool;

    /// Point-query convenience: whether `key` itself may be present.
    fn may_contain_point(&self, key: &[u8]) -> bool {
        self.may_overlap(Bound::Included(key), Bound::Included(key))
    }

    /// Size of the filter in bits.
    fn size_bits(&self) -> usize;

    /// Number of keys the filter was built over.
    fn num_keys(&self) -> usize;
}

/// Which point-filter implementation to use — one axis of the LSM design
/// space (tutorial Module II.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FilterKind {
    /// No filter: every lookup probes the run.
    None,
    /// Standard Bloom filter.
    Bloom,
    /// Register-blocked (cache-efficient) Bloom filter.
    BlockedBloom,
    /// Cuckoo filter (supports deletion, used by SlimDB/Chucky).
    Cuckoo,
    /// Xor filter (static, smaller than Bloom).
    Xor,
    /// Ribbon filter (near space-optimal, more construction CPU).
    Ribbon,
}

impl FilterKind {
    /// All concrete kinds (excluding `None`).
    pub const ALL: [FilterKind; 5] = [
        FilterKind::Bloom,
        FilterKind::BlockedBloom,
        FilterKind::Cuckoo,
        FilterKind::Xor,
        FilterKind::Ribbon,
    ];

    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            FilterKind::None => "none",
            FilterKind::Bloom => "bloom",
            FilterKind::BlockedBloom => "blocked-bloom",
            FilterKind::Cuckoo => "cuckoo",
            FilterKind::Xor => "xor",
            FilterKind::Ribbon => "ribbon",
        }
    }

    /// Builds a filter of this kind over `keys` at roughly `bits_per_key`.
    /// Returns `None` for [`FilterKind::None`].
    pub fn build(
        self,
        keys: &[Vec<u8>],
        bits_per_key: f64,
    ) -> Option<Box<dyn PointFilter>> {
        let key_refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        self.build_refs(&key_refs, bits_per_key)
    }

    /// Like [`FilterKind::build`] but over borrowed keys.
    pub fn build_refs(
        self,
        keys: &[&[u8]],
        bits_per_key: f64,
    ) -> Option<Box<dyn PointFilter>> {
        match self {
            FilterKind::None => None,
            FilterKind::Bloom => Some(Box::new(crate::bloom::BloomFilter::build(keys, bits_per_key))),
            FilterKind::BlockedBloom => Some(Box::new(
                crate::blocked_bloom::BlockedBloomFilter::build(keys, bits_per_key),
            )),
            FilterKind::Cuckoo => Some(Box::new(crate::cuckoo::CuckooFilter::build(
                keys,
                bits_per_key,
            ))),
            FilterKind::Xor => Some(Box::new(crate::xor::XorFilter::build(keys))),
            FilterKind::Ribbon => Some(Box::new(crate::ribbon::RibbonFilter::build(
                keys,
                bits_per_key,
            ))),
        }
    }
}

/// Which range-filter implementation to use (tutorial Module II.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RangeFilterKind {
    /// No range filter.
    None,
    /// Fixed-length prefix Bloom filter.
    PrefixBloom {
        /// Prefix length in bytes.
        prefix_len: usize,
    },
    /// SuRF-style truncated trie.
    Surf {
        /// Number of suffix bits stored per key.
        suffix_bits: usize,
    },
    /// Rosetta dyadic Bloom hierarchy over u64-encoded keys.
    Rosetta,
    /// SNARF-style spline-model filter over u64-encoded keys.
    Snarf,
}

impl RangeFilterKind {
    /// Human-readable label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            RangeFilterKind::None => "none",
            RangeFilterKind::PrefixBloom { .. } => "prefix-bloom",
            RangeFilterKind::Surf { .. } => "surf",
            RangeFilterKind::Rosetta => "rosetta",
            RangeFilterKind::Snarf => "snarf",
        }
    }

    /// Builds a range filter of this kind over sorted `keys` at roughly
    /// `bits_per_key`. Returns `None` for [`RangeFilterKind::None`].
    pub fn build(self, keys: &[&[u8]], bits_per_key: f64) -> Option<Box<dyn RangeFilter>> {
        match self {
            RangeFilterKind::None => None,
            RangeFilterKind::PrefixBloom { prefix_len } => Some(Box::new(
                crate::prefix::PrefixBloomFilter::build(keys, prefix_len, bits_per_key),
            )),
            RangeFilterKind::Surf { suffix_bits } => Some(Box::new(crate::surf::SurfFilter::build(
                keys,
                if suffix_bits == 0 {
                    crate::surf::SuffixMode::None
                } else {
                    crate::surf::SuffixMode::Real(suffix_bits)
                },
            ))),
            RangeFilterKind::Rosetta => Some(Box::new(crate::rosetta::RosettaFilter::build(
                keys,
                bits_per_key,
            ))),
            RangeFilterKind::Snarf => {
                Some(Box::new(crate::snarf::SnarfFilter::build(keys, bits_per_key)))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("key{i:06}").into_bytes()).collect()
    }

    #[test]
    fn every_kind_builds_and_has_no_false_negatives() {
        let keys = sample_keys(500);
        for kind in FilterKind::ALL {
            let f = kind.build(&keys, 10.0).unwrap();
            for k in &keys {
                assert!(f.may_contain(k), "{} lost {:?}", kind.label(), k);
            }
            assert_eq!(f.num_keys(), 500, "{}", kind.label());
            assert!(f.size_bits() > 0, "{}", kind.label());
            assert!(f.bits_per_key() > 0.0, "{}", kind.label());
        }
    }

    #[test]
    fn none_kind_builds_nothing() {
        assert!(FilterKind::None.build(&sample_keys(5), 10.0).is_none());
        assert!(RangeFilterKind::None.build(&[], 10.0).is_none());
    }

    #[test]
    fn labels_are_distinct() {
        let mut labels: Vec<_> = FilterKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), FilterKind::ALL.len());
    }

    #[test]
    fn range_kinds_build_and_answer_point_queries() {
        let owned = sample_keys(200);
        let keys: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let kinds = [
            RangeFilterKind::PrefixBloom { prefix_len: 6 },
            RangeFilterKind::Surf { suffix_bits: 8 },
            RangeFilterKind::Rosetta,
            RangeFilterKind::Snarf,
        ];
        for kind in kinds {
            let f = kind.build(&keys, 14.0).unwrap();
            for k in &keys {
                assert!(f.may_contain_point(k), "{} lost {:?}", kind.label(), k);
            }
        }
    }
}
