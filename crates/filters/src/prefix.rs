//! Prefix Bloom filter (RocksDB's "prefix bloom", tutorial Module II.3).
//!
//! Inserts a fixed-length prefix of every key into a Bloom filter. Range
//! queries whose endpoints share one prefix — the `prefix_same_as_start`
//! scan RocksDB optimizes — cost a single probe; ranges spanning a few
//! prefixes are answered by enumerating them; wide ranges fall back to
//! "maybe" (the filter cannot help, which is exactly its documented
//! limitation versus SuRF/Rosetta).

use std::ops::Bound;

use crate::bloom::BloomFilter;
use crate::traits::{PointFilter, RangeFilter};

/// Maximum number of candidate prefixes a range probe will enumerate
/// before giving up and answering "maybe".
const MAX_ENUMERATED_PREFIXES: u64 = 128;

/// A Bloom filter over fixed-length key prefixes.
pub struct PrefixBloomFilter {
    bloom: BloomFilter,
    prefix_len: usize,
    num_keys: usize,
}

impl PrefixBloomFilter {
    /// Builds over `keys`, inserting each key's first `prefix_len` bytes
    /// (whole key if shorter). `bits_per_key` is the memory budget per
    /// *key* (not per distinct prefix), matching how engines configure it.
    pub fn build(keys: &[&[u8]], prefix_len: usize, bits_per_key: f64) -> Self {
        assert!(prefix_len > 0, "prefix length must be positive");
        let mut prefixes: Vec<&[u8]> = keys
            .iter()
            .map(|k| &k[..k.len().min(prefix_len)])
            .collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        let total_bits = (keys.len() as f64 * bits_per_key).max(64.0);
        let bits_per_prefix = if prefixes.is_empty() {
            bits_per_key
        } else {
            total_bits / prefixes.len() as f64
        };
        PrefixBloomFilter {
            bloom: BloomFilter::build(&prefixes, bits_per_prefix),
            prefix_len,
            num_keys: keys.len(),
        }
    }

    /// The configured prefix length.
    pub fn prefix_len(&self) -> usize {
        self.prefix_len
    }

    fn prefix_of<'a>(&self, key: &'a [u8]) -> &'a [u8] {
        &key[..key.len().min(self.prefix_len)]
    }

    /// Interprets a prefix as a big-endian integer for enumeration.
    /// Only well-defined for prefixes up to 8 bytes.
    fn prefix_to_u64(&self, key: &[u8]) -> Option<u64> {
        if self.prefix_len > 8 {
            return None;
        }
        let p = self.prefix_of(key);
        let mut buf = [0u8; 8];
        buf[..p.len()].copy_from_slice(p);
        Some(u64::from_be_bytes(buf) >> (8 * (8 - self.prefix_len)))
    }

    /// Serializes into `out` (bloom bytes length-prefixed, then params).
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let bloom = crate::traits::PointFilter::to_bytes(&self.bloom);
        out.extend_from_slice(&(bloom.len() as u32).to_le_bytes());
        out.extend_from_slice(&bloom);
        out.extend_from_slice(&(self.prefix_len as u32).to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
    }

    /// Deserializes [`Self::serialize_into`] output.
    pub fn deserialize(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 4 {
            return None;
        }
        let blen = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let bloom = crate::bloom::BloomFilter::from_bytes(bytes.get(4..4 + blen)?)?;
        let rest = bytes.get(4 + blen..)?;
        if rest.len() < 8 {
            return None;
        }
        let prefix_len = u32::from_le_bytes(rest[0..4].try_into().ok()?) as usize;
        let num_keys = u32::from_le_bytes(rest[4..8].try_into().ok()?) as usize;
        if prefix_len == 0 {
            return None;
        }
        Some(PrefixBloomFilter {
            bloom,
            prefix_len,
            num_keys,
        })
    }

    fn u64_to_prefix(&self, v: u64) -> Vec<u8> {
        let shifted = v << (8 * (8 - self.prefix_len));
        shifted.to_be_bytes()[..self.prefix_len].to_vec()
    }
}

impl RangeFilter for PrefixBloomFilter {
    fn may_overlap(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> bool {
        let lo_key = match lo {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => return true,
        };
        let hi_key = match hi {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => return true,
        };
        let lo_p = self.prefix_of(lo_key);
        let hi_p = self.prefix_of(hi_key);
        if lo_p == hi_p {
            return self.bloom.may_contain(lo_p);
        }
        // try enumerating the prefixes covering the range
        match (self.prefix_to_u64(lo_key), self.prefix_to_u64(hi_key)) {
            (Some(a), Some(b)) if b >= a && b - a < MAX_ENUMERATED_PREFIXES => {
                for v in a..=b {
                    if self.bloom.may_contain(&self.u64_to_prefix(v)) {
                        return true;
                    }
                }
                false
            }
            // too wide or non-enumerable: the filter cannot prune
            _ => true,
        }
    }

    fn size_bits(&self) -> usize {
        self.bloom.size_bits()
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
        range.map(|i| format!("{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    fn inc(k: &[u8]) -> Bound<&[u8]> {
        Bound::Included(k)
    }

    #[test]
    fn point_queries_have_no_false_negatives() {
        let present = keys(0..5000);
        let f = PrefixBloomFilter::build(&refs(&present), 6, 10.0);
        for k in &present {
            assert!(f.may_contain_point(k));
        }
    }

    #[test]
    fn same_prefix_range_is_pruned() {
        // keys 00000000..00004999 — query a range in an absent prefix region
        let present = keys(0..5000);
        let f = PrefixBloomFilter::build(&refs(&present), 6, 12.0);
        // range entirely within prefix "990000xx"
        let lo = b"99000000".to_vec();
        let hi = b"99000099".to_vec();
        let mut fp = 0;
        let trials = 200;
        for t in 0..trials {
            let lo_t = format!("99{t:04}00").into_bytes();
            let hi_t = format!("99{t:04}99").into_bytes();
            if f.may_overlap(inc(&lo_t), inc(&hi_t)) {
                fp += 1;
            }
        }
        let _ = (lo, hi);
        assert!(fp < trials / 5, "{fp}/{trials} false positives");
    }

    #[test]
    fn present_range_is_found() {
        let present = keys(0..5000);
        let f = PrefixBloomFilter::build(&refs(&present), 6, 12.0);
        let lo = b"00001000".to_vec();
        let hi = b"00001099".to_vec();
        assert!(f.may_overlap(inc(&lo), inc(&hi)));
    }

    #[test]
    fn cross_prefix_range_enumerates() {
        let present = keys(0..100); // prefixes "000000".."000000" basically
        let f = PrefixBloomFilter::build(&refs(&present), 6, 12.0);
        // spans a handful of absent prefixes: enumeration should prune
        let lo = b"50000000".to_vec();
        let hi = b"50000300".to_vec(); // prefixes 500000..500003
        let overlap = f.may_overlap(inc(&lo), inc(&hi));
        // likely false; tolerate a bloom false positive
        if overlap {
            // at 12 bits/key this should be rare; just ensure no panic
        }
    }

    #[test]
    fn wide_range_answers_maybe() {
        let present = keys(0..100);
        let f = PrefixBloomFilter::build(&refs(&present), 6, 12.0);
        let lo = b"00000000".to_vec();
        let hi = b"99999999".to_vec();
        assert!(f.may_overlap(inc(&lo), inc(&hi)));
    }

    #[test]
    fn unbounded_ranges_answer_maybe() {
        let present = keys(0..100);
        let f = PrefixBloomFilter::build(&refs(&present), 6, 12.0);
        assert!(f.may_overlap(Bound::Unbounded, inc(b"5")));
        assert!(f.may_overlap(inc(b"5"), Bound::Unbounded));
    }

    #[test]
    fn long_prefix_falls_back_conservatively() {
        let present = keys(0..100);
        let f = PrefixBloomFilter::build(&refs(&present), 12, 12.0);
        // prefix longer than 8 bytes: cross-prefix enumeration impossible
        let lo = b"500000000000".to_vec();
        let hi = b"600000000000".to_vec();
        assert!(f.may_overlap(inc(&lo), inc(&hi)));
    }

    #[test]
    fn short_keys_are_handled() {
        let present: Vec<Vec<u8>> = vec![b"ab".to_vec(), b"c".to_vec()];
        let f = PrefixBloomFilter::build(&refs(&present), 6, 12.0);
        assert!(f.may_contain_point(b"ab"));
        assert!(f.may_contain_point(b"c"));
    }

    #[test]
    #[should_panic(expected = "prefix length must be positive")]
    fn zero_prefix_panics() {
        let _ = PrefixBloomFilter::build(&[], 0, 10.0);
    }
}
