//! # lsm-filters
//!
//! Every filter family the tutorial's Module II surveys, implemented from
//! scratch behind common traits:
//!
//! **Point filters** ([`PointFilter`]): standard Bloom ([`bloom`]),
//! register-blocked Bloom ([`blocked_bloom`], Putze et al.), cuckoo
//! ([`cuckoo`], Fan et al.), xor ([`xor`]), and ribbon ([`ribbon`],
//! Dillinger & Walzer). All guarantee zero false negatives and trade
//! memory, FPR, and CPU differently — experiment `filter_zoo` measures the
//! tradeoff.
//!
//! **Range filters** ([`RangeFilter`]): prefix Bloom ([`prefix`], RocksDB),
//! SuRF-style truncated tries ([`surf`]), Rosetta's dyadic Bloom hierarchy
//! ([`rosetta`]), and SNARF-style model-based filtering ([`snarf`]).
//!
//! **Allocation**: [`monkey`] implements Monkey's optimal bits-per-key
//! assignment across LSM levels; [`elastic`] implements ElasticBF-style
//! hotness-aware filter-unit activation.

pub mod blocked_bloom;
pub mod bloom;
pub mod cuckoo;
pub mod elastic;
pub mod hash;
pub mod monkey;
pub mod prefix;
pub mod ribbon;
pub mod rosetta;
pub mod serialize;
pub mod snarf;
pub mod surf;
pub mod traits;
pub mod xor;

pub use blocked_bloom::BlockedBloomFilter;
pub use bloom::BloomFilter;
pub use cuckoo::CuckooFilter;
pub use elastic::ElasticFilterGroup;
pub use monkey::{monkey_allocation, uniform_allocation, MonkeyAllocation};
pub use prefix::PrefixBloomFilter;
pub use ribbon::RibbonFilter;
pub use rosetta::RosettaFilter;
pub use serialize::{FilterDecodeError, SerializableRangeFilter};
pub use snarf::SnarfFilter;
pub use surf::{SuffixMode, SurfFilter};
pub use traits::{FilterKind, PointFilter, RangeFilter, RangeFilterKind};
pub use xor::XorFilter;
