//! SuRF-style succinct range filter (Zhang et al., SIGMOD '18; tutorial
//! Module II.3).
//!
//! A trie over key bytes, truncated at the shortest prefix that uniquely
//! distinguishes each key, optionally extended with a few *suffix bits*
//! per key (SuRF-Real) that cut false positives on both point and range
//! queries. Supports variable-length keys — the property that makes SuRF
//! preferable to prefix Bloom filters for long-range queries.
//!
//! **Substitution note (see DESIGN.md):** the original encodes the trie
//! with LOUDS-DS succinct bitmaps; we use a pointer-based trie with the
//! same shape and truncation semantics and report the *serialized* size
//! (which is close to the succinct footprint) as the memory cost. FPR
//! behaviour — the quantity the tutorial's comparison is about — is
//! identical, since it depends only on trie shape and suffix bits.

use std::collections::BTreeMap;
use std::ops::Bound;

use crate::hash::hash64;
use crate::traits::RangeFilter;

/// How leaf suffixes are stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SuffixMode {
    /// No suffix bits (SuRF-Base): smallest, highest FPR.
    None,
    /// `n` bits of the key hash (SuRF-Hash): helps point queries only.
    Hash(usize),
    /// `n` bits of the real key tail (SuRF-Real): helps point *and* range
    /// queries.
    Real(usize),
}

#[derive(Debug, Default)]
struct TrieNode {
    children: BTreeMap<u8, TrieNode>,
    /// Set if a key terminates here (after truncation). Holds the suffix
    /// bits and the true tail length (capped at 255), which bounds how many
    /// suffix bytes are real key bytes rather than zero padding.
    leaf: Option<(u64, u8)>,
}

/// A SuRF-style truncated-trie range filter.
pub struct SurfFilter {
    root: TrieNode,
    mode: SuffixMode,
    num_keys: usize,
    /// Count of trie nodes, for the size estimate.
    node_count: usize,
}

impl SurfFilter {
    /// Builds over **sorted, deduplicated** `keys`.
    ///
    /// Each key is truncated at the shortest prefix that distinguishes it
    /// from its sorted neighbours (plus its terminator), which is what
    /// bounds SuRF's size.
    pub fn build(keys: &[&[u8]], mode: SuffixMode) -> Self {
        let mut filter = SurfFilter {
            root: TrieNode::default(),
            mode,
            num_keys: keys.len(),
            node_count: 1,
        };
        for (i, key) in keys.iter().enumerate() {
            // shortest distinguishing prefix: one byte past the longest
            // common prefix with either neighbour
            let lcp_prev = if i > 0 { lcp(keys[i - 1], key) } else { 0 };
            let lcp_next = if i + 1 < keys.len() {
                lcp(key, keys[i + 1])
            } else {
                0
            };
            let cut = (lcp_prev.max(lcp_next) + 1).min(key.len());
            let suffix = filter.suffix_bits(key, cut);
            let tail_len = (key.len() - cut).min(255) as u8;
            filter.insert(&key[..cut], suffix, tail_len);
        }
        filter
    }

    fn suffix_bits(&self, key: &[u8], cut: usize) -> u64 {
        match self.mode {
            SuffixMode::None => 0,
            SuffixMode::Hash(bits) => {
                let b = bits.min(63);
                hash64(key) & ((1u64 << b) - 1)
            }
            SuffixMode::Real(bits) => {
                let b = bits.min(63);
                real_suffix(&key[cut..], b)
            }
        }
    }

    fn insert(&mut self, prefix: &[u8], suffix: u64, tail_len: u8) {
        let mut node = &mut self.root;
        let mut created = 0usize;
        for &b in prefix {
            node = node.children.entry(b).or_insert_with(|| {
                created += 1;
                TrieNode::default()
            });
        }
        // a node can be both an internal node and a leaf (shorter key is a
        // prefix of a longer one); keep the first suffix — collisions only
        // widen the filter's answer, never narrow it
        if node.leaf.is_none() {
            node.leaf = Some((suffix, tail_len));
        }
        self.node_count += created;
    }

    /// Point query.
    fn point(&self, key: &[u8]) -> bool {
        let mut node = &self.root;
        for (depth, &b) in key.iter().enumerate() {
            if let Some((suffix, _)) = node.leaf {
                // a stored key was truncated here; if its suffix bits match
                // we are done, otherwise a longer stored key may still match
                // via the children (the prefix-key case)
                if self.suffix_matches(suffix, key, depth) {
                    return true;
                }
            }
            match node.children.get(&b) {
                Some(child) => node = child,
                None => return false,
            }
        }
        // walked the whole key: present iff some stored key starts with it
        node.leaf.is_some() || !node.children.is_empty()
    }

    fn suffix_matches(&self, stored: u64, key: &[u8], depth: usize) -> bool {
        match self.mode {
            SuffixMode::None => true,
            // hash suffixes compare hashes of the whole key
            SuffixMode::Hash(bits) => {
                let b = bits.min(63);
                stored == hash64(key) & ((1u64 << b) - 1)
            }
            SuffixMode::Real(bits) => {
                let b = bits.min(63);
                // stored bits are a prefix of the stored key's tail; the
                // query matches if its own tail starts with the same bits
                stored == real_suffix(&key[depth.min(key.len())..], b)
            }
        }
    }

    /// Smallest stored (truncated) key ≥ `from`, as a byte vector, with
    /// its suffix bits and tail length. Used for range queries.
    fn successor(&self, from: &[u8]) -> Option<(Vec<u8>, u64, u8)> {
        let mut path: Vec<u8> = Vec::new();
        Self::succ_rec(&self.root, from, 0, &mut path, self.mode)
    }

    fn succ_rec(
        node: &TrieNode,
        from: &[u8],
        depth: usize,
        path: &mut Vec<u8>,
        mode: SuffixMode,
    ) -> Option<(Vec<u8>, u64, u8)> {
        if depth >= from.len() {
            // anything in this subtree qualifies; take the minimum
            return Self::min_leaf(node, path);
        }
        let target = from[depth];
        // a leaf at this node represents a truncated key equal to `path`;
        // `path` < `from` here (it is a strict prefix), but with Real
        // suffix bits the stored key may still be ≥ from — be conservative
        // and treat a leaf as a candidate only via suffix comparison
        if let Some((suffix, tail_len)) = node.leaf {
            match mode {
                SuffixMode::Real(bits) => {
                    let b = bits.min(63);
                    let stored_tail = suffix;
                    let query_tail = real_suffix(&from[depth..], b);
                    if stored_tail >= query_tail {
                        return Some((path.clone(), suffix, tail_len));
                    }
                }
                // without real suffixes we cannot rule the stored key out
                _ => return Some((path.clone(), suffix, tail_len)),
            }
        }
        // children with byte == target: recurse constrained
        if let Some(child) = node.children.get(&target) {
            path.push(target);
            if let Some(hit) = Self::succ_rec(child, from, depth + 1, path, mode) {
                return Some(hit);
            }
            path.pop();
        }
        // children with byte > target: unconstrained minimum
        for (&b, child) in node.children.range((Bound::Excluded(target), Bound::Unbounded)) {
            path.push(b);
            if let Some(hit) = Self::min_leaf(child, path) {
                return Some(hit);
            }
            path.pop();
        }
        None
    }

    /// Serializes the trie (preorder) into `out`.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let mode = match self.mode {
            SuffixMode::None => (0u8, 0u32),
            SuffixMode::Hash(b) => (1u8, b as u32),
            SuffixMode::Real(b) => (2u8, b as u32),
        };
        out.push(mode.0);
        out.extend_from_slice(&mode.1.to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
        out.extend_from_slice(&(self.node_count as u32).to_le_bytes());
        Self::serialize_node(&self.root, out);
    }

    fn serialize_node(node: &TrieNode, out: &mut Vec<u8>) {
        match node.leaf {
            Some((suffix, tail_len)) => {
                out.push(1);
                out.extend_from_slice(&suffix.to_le_bytes());
                out.push(tail_len);
            }
            None => out.push(0),
        }
        out.extend_from_slice(&(node.children.len() as u16).to_le_bytes());
        for (&b, child) in &node.children {
            out.push(b);
            Self::serialize_node(child, out);
        }
    }

    /// Deserializes [`Self::serialize_into`] output.
    pub fn deserialize(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 13 {
            return None;
        }
        let suffix_bits = u32::from_le_bytes(bytes[1..5].try_into().ok()?) as usize;
        let mode = match bytes[0] {
            0 => SuffixMode::None,
            1 => SuffixMode::Hash(suffix_bits),
            2 => SuffixMode::Real(suffix_bits),
            _ => return None,
        };
        let num_keys = u32::from_le_bytes(bytes[5..9].try_into().ok()?) as usize;
        let node_count = u32::from_le_bytes(bytes[9..13].try_into().ok()?) as usize;
        let mut off = 13usize;
        let root = Self::deserialize_node(bytes, &mut off, 0)?;
        Some(SurfFilter {
            root,
            mode,
            num_keys,
            node_count,
        })
    }

    fn deserialize_node(bytes: &[u8], off: &mut usize, depth: usize) -> Option<TrieNode> {
        if depth > 4096 {
            return None; // corrupt input guard
        }
        let mut node = TrieNode::default();
        let flag = *bytes.get(*off)?;
        *off += 1;
        if flag == 1 {
            let suffix = u64::from_le_bytes(bytes.get(*off..*off + 8)?.try_into().ok()?);
            *off += 8;
            let tail_len = *bytes.get(*off)?;
            *off += 1;
            node.leaf = Some((suffix, tail_len));
        } else if flag != 0 {
            return None;
        }
        let n_children = u16::from_le_bytes(bytes.get(*off..*off + 2)?.try_into().ok()?) as usize;
        *off += 2;
        for _ in 0..n_children {
            let byte = *bytes.get(*off)?;
            *off += 1;
            let child = Self::deserialize_node(bytes, off, depth + 1)?;
            node.children.insert(byte, child);
        }
        Some(node)
    }

    fn min_leaf(node: &TrieNode, path: &mut Vec<u8>) -> Option<(Vec<u8>, u64, u8)> {
        if let Some((suffix, tail_len)) = node.leaf {
            return Some((path.clone(), suffix, tail_len));
        }
        for (&b, child) in &node.children {
            path.push(b);
            if let Some(hit) = Self::min_leaf(child, path) {
                return Some(hit);
            }
            path.pop();
        }
        None
    }
}

fn lcp(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

/// First `bits` bits of `tail`, left-aligned into the low bits of a u64.
fn real_suffix(tail: &[u8], bits: usize) -> u64 {
    let mut v = 0u64;
    let nbytes = bits.div_ceil(8).min(8);
    for i in 0..nbytes {
        v = (v << 8) | *tail.get(i).unwrap_or(&0) as u64;
    }
    let total = nbytes * 8;
    v >> (total.saturating_sub(bits))
}

impl RangeFilter for SurfFilter {
    fn may_overlap(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> bool {
        if self.num_keys == 0 {
            return false;
        }
        let lo_key: &[u8] = match lo {
            Bound::Included(k) | Bound::Excluded(k) => k,
            Bound::Unbounded => b"",
        };
        let Some((mut prefix, suffix, tail_len)) = self.successor(lo_key) else {
            return false;
        };
        // With Real suffixes we know the next `bits` of the stored key's
        // tail; appending the *real* bytes of that suffix (never the zero
        // padding past the true tail) tightens the lower bound on the
        // stored key while remaining ≤ it — still sound.
        if let SuffixMode::Real(bits) = self.mode {
            let b = bits.min(63);
            let full_bytes = (b / 8).min(tail_len as usize);
            if full_bytes > 0 {
                let aligned = suffix >> (b % 8); // drop any partial byte
                let bytes = aligned.to_be_bytes();
                prefix.extend_from_slice(&bytes[8 - (b / 8)..8 - (b / 8) + full_bytes]);
            }
        }
        // the found key is ≥ `prefix`; it overlaps the query iff prefix ≤ hi
        // (conservatively inclusive)
        match hi {
            Bound::Unbounded => true,
            Bound::Included(h) | Bound::Excluded(h) => prefix.as_slice() <= h,
        }
    }

    fn may_contain_point(&self, key: &[u8]) -> bool {
        self.point(key)
    }

    fn size_bits(&self) -> usize {
        // serialized estimate: ~12 bits per node for the LOUDS encoding
        // plus suffix bits per key (matches the SuRF paper's accounting)
        let suffix_bits = match self.mode {
            SuffixMode::None => 0,
            SuffixMode::Hash(b) | SuffixMode::Real(b) => b,
        };
        self.node_count * 12 + self.num_keys * suffix_bits
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(keys: &[&str], mode: SuffixMode) -> SurfFilter {
        let mut owned: Vec<&[u8]> = keys.iter().map(|k| k.as_bytes()).collect();
        owned.sort_unstable();
        owned.dedup();
        SurfFilter::build(&owned, mode)
    }

    fn sorted_keys(n: usize) -> Vec<Vec<u8>> {
        let mut v: Vec<Vec<u8>> = (0..n)
            .map(|i| format!("user{:07}", i * 37 % n).into_bytes())
            .collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn point_no_false_negatives_all_modes() {
        let owned = sorted_keys(3000);
        let keys: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        for mode in [SuffixMode::None, SuffixMode::Hash(8), SuffixMode::Real(8)] {
            let f = SurfFilter::build(&keys, mode);
            for k in &owned {
                assert!(f.may_contain_point(k), "{mode:?} lost {:?}", String::from_utf8_lossy(k));
            }
        }
    }

    #[test]
    fn range_no_false_negatives() {
        let owned = sorted_keys(1000);
        let keys: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let f = SurfFilter::build(&keys, SuffixMode::Real(8));
        for k in owned.iter().step_by(13) {
            assert!(f.may_overlap(Bound::Included(k.as_slice()), Bound::Included(k.as_slice())));
            let mut hi = k.clone();
            hi.push(b'~');
            assert!(f.may_overlap(Bound::Included(k.as_slice()), Bound::Included(hi.as_slice())));
        }
    }

    #[test]
    fn distant_ranges_are_pruned() {
        let f = build(&["apple", "banana", "cherry"], SuffixMode::Real(8));
        assert!(!f.may_overlap(Bound::Included(b"dog"), Bound::Included(b"egg")));
        assert!(!f.may_overlap(Bound::Included(b"aa"), Bound::Included(b"ab")));
        assert!(f.may_overlap(Bound::Included(b"apple"), Bound::Included(b"apricot")));
        assert!(f.may_overlap(Bound::Included(b"a"), Bound::Included(b"z")));
    }

    #[test]
    fn hash_suffix_cuts_point_fpr() {
        let owned = sorted_keys(5000);
        let keys: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let base = SurfFilter::build(&keys, SuffixMode::None);
        let hashed = SurfFilter::build(&keys, SuffixMode::Hash(8));
        let mut fp_base = 0;
        let mut fp_hash = 0;
        let mut trials = 0;
        for i in 0..5000usize {
            let probe = format!("user{:07}", 2_000_000 + i * 11);
            if owned.iter().any(|k| k.as_slice() == probe.as_bytes()) {
                continue;
            }
            trials += 1;
            if base.may_contain_point(probe.as_bytes()) {
                fp_base += 1;
            }
            if hashed.may_contain_point(probe.as_bytes()) {
                fp_hash += 1;
            }
        }
        assert!(trials > 0);
        assert!(fp_hash <= fp_base, "hash {fp_hash} vs base {fp_base}");
    }

    #[test]
    fn prefix_key_of_another_key() {
        for mode in [SuffixMode::None, SuffixMode::Hash(8), SuffixMode::Real(8)] {
            let f = build(&["abc", "abcdef"], mode);
            assert!(f.may_contain_point(b"abc"), "{mode:?}");
            assert!(f.may_contain_point(b"abcdef"), "{mode:?}");
        }
    }

    #[test]
    fn empty_filter() {
        let f = SurfFilter::build(&[], SuffixMode::Real(8));
        assert!(!f.may_contain_point(b"x"));
        assert!(!f.may_overlap(Bound::Unbounded, Bound::Unbounded));
    }

    #[test]
    fn single_key_ranges() {
        let f = build(&["middle"], SuffixMode::Real(8));
        assert!(f.may_overlap(Bound::Included(b"a"), Bound::Included(b"z")));
        assert!(f.may_overlap(Bound::Included(b"m"), Bound::Unbounded));
        assert!(f.may_overlap(Bound::Unbounded, Bound::Included(b"n")));
        assert!(!f.may_overlap(Bound::Included(b"n"), Bound::Included(b"z")));
    }

    #[test]
    fn truncation_keeps_filter_small() {
        // long keys sharing little prefix truncate to very short trie paths
        let owned: Vec<Vec<u8>> = (0..1000u64)
            .map(|i| {
                format!("{:08x}-{}", i.wrapping_mul(2654435761) % (1 << 30), "x".repeat(50))
                    .into_bytes()
            })
            .collect();
        let mut sorted = owned.clone();
        sorted.sort();
        sorted.dedup();
        let keys: Vec<&[u8]> = sorted.iter().map(|k| k.as_slice()).collect();
        let f = SurfFilter::build(&keys, SuffixMode::None);
        // far fewer nodes than total key bytes
        let total_bytes: usize = sorted.iter().map(|k| k.len()).sum();
        assert!(
            f.size_bits() / 12 < total_bytes / 4,
            "{} nodes vs {} key bytes",
            f.size_bits() / 12,
            total_bytes
        );
    }

    #[test]
    fn real_suffix_helper() {
        assert_eq!(real_suffix(b"\xFF", 4), 0xF);
        assert_eq!(real_suffix(b"\xAB\xCD", 16), 0xABCD);
        assert_eq!(real_suffix(b"", 8), 0);
        assert_eq!(real_suffix(b"\x80", 1), 1);
    }

    #[test]
    fn unbounded_lo_starts_at_minimum() {
        let f = build(&["kiwi", "mango"], SuffixMode::Real(8));
        assert!(f.may_overlap(Bound::Unbounded, Bound::Included(b"l")));
        assert!(!f.may_overlap(Bound::Unbounded, Bound::Included(b"a")));
    }
}
