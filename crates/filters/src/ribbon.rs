//! Ribbon filter (Dillinger & Walzer, "Ribbon filter: practically smaller
//! than Bloom and Xor").
//!
//! Solves a banded linear system over GF(2): each key contributes one
//! equation whose 64-bit coefficient band starts at a hashed position and
//! whose right-hand side is an `r`-bit fingerprint. A query recomputes the
//! band and xors the touched solution slots; equality with the fingerprint
//! means "maybe present". Space overhead is a few percent over the
//! information-theoretic minimum — smaller than Bloom at equal FPR — at the
//! cost of extra construction CPU, exactly the tradeoff the tutorial
//! attributes to ribbon (Module II.2).

use crate::hash::{hash64_seed, mix64};
use crate::traits::PointFilter;

const BAND_WIDTH: usize = 64;
/// Fractional extra slots beyond the key count; ~5% suffices for w=64.
const OVERHEAD: f64 = 0.05;

/// A standard ribbon filter with `r`-bit fingerprints.
#[derive(Clone, Debug)]
pub struct RibbonFilter {
    /// Solution vector: `num_slots` entries of `r` meaningful bits.
    solution: Vec<u16>,
    num_slots: usize,
    result_bits: u32,
    seed: u64,
    num_keys: usize,
}

impl RibbonFilter {
    /// Builds over `keys` with roughly `bits_per_key` bits of memory.
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        let r = (bits_per_key / (1.0 + OVERHEAD)).round().clamp(1.0, 16.0) as u32;
        Self::build_with_result_bits(keys, r)
    }

    /// Builds with an explicit fingerprint width `r` (1..=16 bits).
    pub fn build_with_result_bits(keys: &[&[u8]], r: u32) -> Self {
        let r = r.clamp(1, 16);
        let n = keys.len();
        if n == 0 {
            return RibbonFilter {
                solution: vec![0],
                num_slots: 1,
                result_bits: r,
                seed: 0,
                num_keys: 0,
            };
        }
        let mut num_slots = ((n as f64 * (1.0 + OVERHEAD)).ceil() as usize).max(BAND_WIDTH * 2);
        let mut seed = 0xdb4f_0b91_u64;
        loop {
            if let Some(solution) = Self::try_build(keys, seed, num_slots, r) {
                return RibbonFilter {
                    solution,
                    num_slots,
                    result_bits: r,
                    seed,
                    num_keys: n,
                };
            }
            // failed banding: retry with a fresh seed, growing slowly
            seed = mix64(seed);
            num_slots += num_slots / 50 + 1;
        }
    }

    /// (start, coefficient band, fingerprint) for a key hash.
    #[inline]
    fn equation(h: u64, num_slots: usize, r: u32) -> (usize, u64, u16) {
        let start_range = num_slots - BAND_WIDTH + 1;
        let start = ((h as u128 * start_range as u128) >> 64) as usize;
        let mut coeff = mix64(h);
        coeff |= 1; // the band must begin with a set coefficient
        let fp_mask = ((1u32 << r) - 1) as u16;
        let fp = ((mix64(h ^ 0xf00d) >> 24) as u16) & fp_mask;
        (start, coeff, fp)
    }

    fn try_build(keys: &[&[u8]], seed: u64, num_slots: usize, r: u32) -> Option<Vec<u16>> {
        // banded Gaussian elimination (the "banding" phase)
        let mut rows: Vec<u64> = vec![0; num_slots];
        let mut rhs: Vec<u16> = vec![0; num_slots];
        for key in keys {
            let h = hash64_seed(key, seed);
            let (mut i, mut c, mut b) = Self::equation(h, num_slots, r);
            loop {
                debug_assert!(c & 1 == 1);
                // every stored row has its diagonal bit set, so a zero row
                // word means the slot is free
                if rows[i] == 0 {
                    rows[i] = c;
                    rhs[i] = b;
                    break;
                }
                c ^= rows[i];
                b ^= rhs[i];
                if c == 0 {
                    if b == 0 {
                        break; // redundant equation (duplicate key)
                    }
                    return None; // inconsistent: re-seed
                }
                let tz = c.trailing_zeros() as usize;
                c >>= tz;
                i += tz;
                if i >= num_slots {
                    return None;
                }
            }
        }
        // back substitution
        let mut solution = vec![0u16; num_slots];
        for i in (0..num_slots).rev() {
            if rows[i] == 0 {
                continue; // free variable: leave zero
            }
            let mut acc = rhs[i];
            let mut bits = rows[i] & !1; // exclude the diagonal
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                acc ^= solution[i + j];
                bits &= bits - 1;
            }
            solution[i] = acc;
        }
        Some(solution)
    }

    /// Probes with a key.
    fn probe(&self, key: &[u8]) -> bool {
        if self.num_keys == 0 {
            return false;
        }
        let h = hash64_seed(key, self.seed);
        let (start, coeff, fp) = Self::equation(h, self.num_slots, self.result_bits);
        let mut acc = 0u16;
        let mut bits = coeff;
        while bits != 0 {
            let j = bits.trailing_zeros() as usize;
            acc ^= self.solution[start + j];
            bits &= bits - 1;
        }
        acc == fp
    }

    /// Fingerprint width in bits.
    pub fn result_bits(&self) -> u32 {
        self.result_bits
    }

    /// Deserializes a filter produced by [`PointFilter::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 20 {
            return None;
        }
        let seed = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let num_keys = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        let num_slots = u32::from_le_bytes(bytes[12..16].try_into().ok()?) as usize;
        let result_bits = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
        if bytes.len() != 20 + num_slots * 2 {
            return None;
        }
        let solution = bytes[20..]
            .chunks_exact(2)
            .map(|c| u16::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some(RibbonFilter {
            solution,
            num_slots,
            result_bits,
            seed,
            num_keys,
        })
    }
}

impl PointFilter for RibbonFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        self.probe(key)
    }

    fn size_bits(&self) -> usize {
        // semantic size: r bits per slot (a production implementation
        // bit-packs the solution columns)
        self.num_slots * self.result_bits as usize
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.solution.len() * 2);
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
        out.extend_from_slice(&(self.num_slots as u32).to_le_bytes());
        out.extend_from_slice(&self.result_bits.to_le_bytes());
        for s in &self.solution {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::{empirical_fpr, BloomFilter};

    fn keys(range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
        range.map(|i| format!("key{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let present = keys(0..20_000);
        let f = RibbonFilter::build(&refs(&present), 10.0);
        for k in &present {
            assert!(f.may_contain(k), "lost {:?}", String::from_utf8_lossy(k));
        }
    }

    #[test]
    fn fpr_close_to_two_to_minus_r() {
        let present = keys(0..10_000);
        let absent = keys(100_000..150_000);
        let f = RibbonFilter::build_with_result_bits(&refs(&present), 8);
        let fpr = empirical_fpr(&f, &absent);
        let theory = 1.0 / 256.0;
        assert!(fpr < theory * 3.0 + 0.002, "fpr {fpr} vs theory {theory}");
    }

    #[test]
    fn smaller_than_bloom_at_equal_fpr() {
        let present = keys(0..20_000);
        let absent = keys(100_000..160_000);
        // ribbon with r=7 → FPR ≈ 0.78%; bloom needs ~10 bits/key for that
        let ribbon = RibbonFilter::build_with_result_bits(&refs(&present), 7);
        let bloom = BloomFilter::build(&refs(&present), 10.0);
        let e_r = empirical_fpr(&ribbon, &absent);
        let e_b = empirical_fpr(&bloom, &absent);
        // comparable FPR...
        assert!(e_r < e_b * 3.0 + 0.005, "ribbon {e_r} vs bloom {e_b}");
        // ...with meaningfully fewer bits
        assert!(
            (ribbon.size_bits() as f64) < bloom.size_bits() as f64 * 0.85,
            "ribbon {} bits vs bloom {}",
            ribbon.size_bits(),
            bloom.size_bits()
        );
    }

    #[test]
    fn duplicates_are_redundant_equations() {
        let mut present = keys(0..500);
        present.extend(keys(0..500));
        let f = RibbonFilter::build(&refs(&present), 8.0);
        for k in &present {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn empty_and_single() {
        let f = RibbonFilter::build(&[], 8.0);
        assert!(!f.may_contain(b"x"));
        let g = RibbonFilter::build(&[b"one".as_slice()], 8.0);
        assert!(g.may_contain(b"one"));
    }

    #[test]
    fn result_bits_clamped() {
        let present = keys(0..100);
        let f = RibbonFilter::build_with_result_bits(&refs(&present), 99);
        assert_eq!(f.result_bits(), 16);
        let g = RibbonFilter::build_with_result_bits(&refs(&present), 0);
        assert_eq!(g.result_bits(), 1);
    }

    #[test]
    fn serialization_roundtrip() {
        let present = keys(0..5000);
        let f = RibbonFilter::build(&refs(&present), 10.0);
        let g = RibbonFilter::from_bytes(&f.to_bytes()).unwrap();
        for k in keys(0..10_000) {
            assert_eq!(f.may_contain(&k), g.may_contain(&k));
        }
    }

    #[test]
    fn from_bytes_rejects_bad_length() {
        let present = keys(0..100);
        let f = RibbonFilter::build(&refs(&present), 8.0);
        let mut bytes = f.to_bytes();
        bytes.pop();
        assert!(RibbonFilter::from_bytes(&bytes).is_none());
    }

    #[test]
    fn large_build_succeeds() {
        let present = keys(0..100_000);
        let f = RibbonFilter::build(&refs(&present), 8.0);
        assert_eq!(f.num_keys(), 100_000);
        for k in present.iter().step_by(997) {
            assert!(f.may_contain(k));
        }
    }
}
