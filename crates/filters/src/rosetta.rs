//! Rosetta range filter (Luo et al., SIGMOD '20; tutorial Module II.3).
//!
//! A hierarchy of Bloom filters, one per dyadic prefix length, logically
//! forming a segment tree over the key domain. A range query decomposes
//! into O(log R) dyadic intervals; each is probed top-down ("doubting"):
//! an internal-level positive is only believed if it can be confirmed by a
//! positive path all the way to the bottom level. This makes Rosetta
//! strongest for the *short* range queries where prefix filters and SuRF
//! suffer.
//!
//! Keys are mapped to `u64` via their first 8 bytes (big-endian, zero
//! padded). The map is monotone, so range queries translate soundly: a
//! query `[lo, hi]` over byte keys becomes `[map(lo), map(hi)]` over
//! `u64`s and can never produce a false negative.

use std::ops::Bound;

use crate::bloom::BloomFilter;
use crate::traits::{PointFilter, RangeFilter};

/// Number of Bloom levels kept. Level 0 filters full 64-bit keys; level
/// `h` filters keys truncated by `h` low bits. Dyadic nodes taller than
/// `LEVELS-1` are answered "maybe" — they only occur in ranges longer than
/// `2^(LEVELS-1)`, outside Rosetta's short-range design target.
const LEVELS: usize = 24;

/// Monotone map from byte keys to the u64 domain.
pub fn key_to_u64(key: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = key.len().min(8);
    buf[..n].copy_from_slice(&key[..n]);
    u64::from_be_bytes(buf)
}

/// A Rosetta filter over up-to-8-byte (or monotonically truncated) keys.
pub struct RosettaFilter {
    /// `blooms[h]` holds every key right-shifted by `h` bits.
    blooms: Vec<BloomFilter>,
    num_keys: usize,
}

impl RosettaFilter {
    /// Builds over `keys` with a total budget of `bits_per_key` bits per
    /// key across all levels. Following the Rosetta paper's finding that
    /// lower levels matter most, the bottom level receives half the
    /// budget and each level above half of the remainder (floored at one
    /// bit per key).
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        let values: Vec<u64> = keys.iter().map(|k| key_to_u64(k)).collect();
        Self::build_from_u64(&values, keys.len(), bits_per_key)
    }

    /// Builds directly over u64 keys.
    ///
    /// The bottom level receives half the budget; the rest is split evenly
    /// across as many upper levels as can be afforded at ≥2 bits/key each
    /// (capped at the 24-level maximum). A smaller budget therefore yields a shorter
    /// hierarchy, which prunes shorter ranges only — the memory/range-length
    /// tradeoff the Rosetta paper describes.
    pub fn build_from_u64(values: &[u64], num_keys: usize, bits_per_key: f64) -> Self {
        // a third of the budget buys a discriminating bottom level; the
        // rest is spread one bit per key per upper level — weak individual
        // levels, but the doubting descent multiplies their rejection
        // power along every path, so they prune well in combination
        let bottom_bits = (bits_per_key / 2.0).max(1.0);
        let upper_budget = (bits_per_key - bottom_bits).max(0.0);
        let upper_levels = (upper_budget.floor() as usize).clamp(1, LEVELS - 1);
        let upper_bits = (upper_budget / upper_levels as f64).max(1.0);
        let mut blooms = Vec::with_capacity(1 + upper_levels);
        for h in 0..=upper_levels {
            let level_bits = if h == 0 { bottom_bits } else { upper_bits };
            let hashes: Vec<u64> = values
                .iter()
                .map(|&v| crate::hash::hash64(&(v >> h).to_be_bytes()))
                .collect();
            blooms.push(BloomFilter::build_from_hashes(&hashes, level_bits));
        }
        RosettaFilter { blooms, num_keys }
    }

    /// Serializes into `out`.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.blooms.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
        for b in &self.blooms {
            let bytes = b.to_bytes();
            out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
            out.extend_from_slice(&bytes);
        }
    }

    /// Deserializes [`Self::serialize_into`] output.
    pub fn deserialize(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 {
            return None;
        }
        let n = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let num_keys = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let mut off = 8usize;
        let mut blooms = Vec::with_capacity(n);
        for _ in 0..n {
            let len = u32::from_le_bytes(bytes.get(off..off + 4)?.try_into().ok()?) as usize;
            off += 4;
            blooms.push(BloomFilter::from_bytes(bytes.get(off..off + len)?)?);
            off += len;
        }
        if blooms.is_empty() {
            return None;
        }
        Some(RosettaFilter { blooms, num_keys })
    }

    fn probe_level(&self, h: usize, prefix: u64) -> bool {
        self.blooms[h].may_contain_hash(crate::hash::hash64(&prefix.to_be_bytes()))
    }

    /// "Doubting" descent: is there a confirmed key under dyadic node
    /// `prefix` at height `h`? `budget` bounds total probes; exhausting it
    /// returns `true` (conservative).
    fn confirm(&self, h: usize, prefix: u64, budget: &mut u32) -> bool {
        if *budget == 0 {
            return true;
        }
        *budget -= 1;
        if !self.probe_level(h, prefix) {
            return false;
        }
        if h == 0 {
            return true;
        }
        self.confirm(h - 1, prefix << 1, budget) || self.confirm(h - 1, (prefix << 1) | 1, budget)
    }

    /// Range emptiness over the u64 domain, inclusive on both ends.
    pub fn may_overlap_u64(&self, lo: u64, hi: u64) -> bool {
        if lo > hi || self.num_keys == 0 {
            return false;
        }
        let max_h = self.blooms.len() - 1;
        // total probe budget across the whole query keeps the worst-case
        // descent cost bounded; running out answers "maybe"
        let mut budget: u32 = 4096;
        // decompose [lo, hi] into maximal dyadic intervals, left to right
        let mut a = lo;
        loop {
            // tallest node aligned at `a`…
            let mut h = if a == 0 { 63 } else { a.trailing_zeros() as usize };
            // …shrunk until [a, a + 2^h - 1] fits inside [a, hi]
            while h > 0 && (h >= 64 || a.checked_add((1u64 << h) - 1).is_none_or(|end| end > hi))
            {
                h -= 1;
            }
            if h > max_h {
                // node taller than our hierarchy: cannot prune
                return true;
            }
            if self.confirm(h, a >> h, &mut budget) {
                return true;
            }
            let step = 1u64 << h;
            match a.checked_add(step) {
                Some(next) if next <= hi => a = next,
                _ => return false,
            }
        }
    }
}

impl RangeFilter for RosettaFilter {
    fn may_overlap(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> bool {
        // Excluded bounds are treated inclusively: conservative, never a
        // false negative.
        let lo_v = match lo {
            Bound::Included(k) | Bound::Excluded(k) => key_to_u64(k),
            Bound::Unbounded => 0,
        };
        let hi_v = match hi {
            Bound::Included(k) | Bound::Excluded(k) => {
                // a byte key longer than 8 bytes maps to the same u64 as
                // its 8-byte prefix; everything under that prefix must be
                // included
                key_to_u64(k)
            }
            Bound::Unbounded => u64::MAX,
        };
        self.may_overlap_u64(lo_v, hi_v)
    }

    fn size_bits(&self) -> usize {
        self.blooms.iter().map(|b| b.size_bits()).sum()
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(values: &[u64], bpk: f64) -> RosettaFilter {
        RosettaFilter::build_from_u64(values, values.len(), bpk)
    }

    #[test]
    fn key_to_u64_is_monotone_on_samples() {
        let mut keys: Vec<Vec<u8>> = (0..1000u32)
            .map(|i| format!("{:08}", i * 7919).into_bytes())
            .collect();
        keys.sort();
        for w in keys.windows(2) {
            assert!(key_to_u64(&w[0]) <= key_to_u64(&w[1]));
        }
    }

    #[test]
    fn no_false_negatives_on_points() {
        let values: Vec<u64> = (0..2000u64).map(|i| i * 1000 + 13).collect();
        let f = build(&values, 22.0);
        for &v in &values {
            assert!(f.may_overlap_u64(v, v));
        }
    }

    #[test]
    fn no_false_negatives_on_ranges() {
        let values: Vec<u64> = (0..500u64).map(|i| i * 10_000).collect();
        let f = build(&values, 22.0);
        for &v in &values {
            assert!(f.may_overlap_u64(v.saturating_sub(5), v + 5));
            assert!(f.may_overlap_u64(v, v + 100));
        }
    }

    #[test]
    fn short_empty_ranges_are_pruned() {
        // keys at multiples of 2^20; short queries in the gaps must mostly
        // be pruned
        let values: Vec<u64> = (1..500u64).map(|i| i << 20).collect();
        let f = build(&values, 24.0);
        let mut fp = 0;
        let trials = 500;
        for t in 0..trials {
            let lo = (t as u64 + 1) * (1 << 20) + 1000 + t as u64 * 17;
            let hi = lo + 31; // 32-key range, far from any key
            if f.may_overlap_u64(lo, hi) {
                fp += 1;
            }
        }
        assert!(fp < trials / 4, "{fp}/{trials} false positives");
    }

    #[test]
    fn very_long_ranges_answer_maybe() {
        let values: Vec<u64> = vec![42];
        let f = build(&values, 20.0);
        assert!(f.may_overlap_u64(0, u64::MAX));
        assert!(f.may_overlap_u64(1 << 40, (1 << 40) + (1 << 30)));
    }

    #[test]
    fn empty_filter_rejects_all() {
        let f = build(&[], 20.0);
        assert!(!f.may_overlap_u64(0, u64::MAX));
    }

    #[test]
    fn inverted_range_is_empty() {
        let values: Vec<u64> = vec![10, 20, 30];
        let f = build(&values, 20.0);
        assert!(!f.may_overlap_u64(25, 15));
    }

    #[test]
    fn byte_key_interface_round_trips() {
        let owned: Vec<Vec<u8>> = (0..300u32).map(|i| format!("{i:08}").into_bytes()).collect();
        let keys: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let f = RosettaFilter::build(&keys, 22.0);
        for k in &owned {
            assert!(f.may_contain_point(k));
        }
        assert!(f.may_overlap(Bound::Unbounded, Bound::Unbounded));
    }

    #[test]
    fn boundary_values_work() {
        let values = vec![0u64, u64::MAX, 1, u64::MAX - 1];
        let f = build(&values, 24.0);
        assert!(f.may_overlap_u64(0, 0));
        assert!(f.may_overlap_u64(u64::MAX, u64::MAX));
        assert!(f.may_overlap_u64(u64::MAX - 1, u64::MAX));
    }

    #[test]
    fn more_bits_prune_better() {
        let values: Vec<u64> = (1..300u64).map(|i| i << 24).collect();
        let lean = build(&values, 10.0);
        let rich = build(&values, 28.0);
        let mut fp_lean = 0;
        let mut fp_rich = 0;
        for t in 0..300u64 {
            let lo = (t + 1) * (1 << 24) + 5000 + t * 23;
            let hi = lo + 15;
            if lean.may_overlap_u64(lo, hi) {
                fp_lean += 1;
            }
            if rich.may_overlap_u64(lo, hi) {
                fp_rich += 1;
            }
        }
        assert!(fp_rich <= fp_lean, "rich {fp_rich} vs lean {fp_lean}");
    }
}
