//! Register-blocked Bloom filter (Putze, Sanders, Singler: "Cache-, hash-,
//! and space-efficient Bloom filters").
//!
//! All probes for a key land inside one 512-bit (cache-line) block, so a
//! negative probe costs exactly one cache miss instead of `k`. The price is
//! a slightly higher false-positive rate than a standard Bloom filter at
//! equal bits per key — exactly the tradeoff the `filter_zoo` experiment
//! demonstrates.

use crate::hash::{hash64, mix64};
use crate::traits::PointFilter;

const BLOCK_WORDS: usize = 8; // 8 * 64 = 512 bits = one cache line

/// A cache-line-blocked Bloom filter.
#[derive(Clone, Debug)]
pub struct BlockedBloomFilter {
    blocks: Vec<[u64; BLOCK_WORDS]>,
    num_probes: u32,
    num_keys: usize,
}

impl BlockedBloomFilter {
    /// Builds over `keys` with the given bits-per-key budget.
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        if bits_per_key <= 0.0 || keys.is_empty() {
            return BlockedBloomFilter {
                blocks: vec![[u64::MAX; BLOCK_WORDS]],
                num_probes: 0,
                num_keys: keys.len(),
            };
        }
        let total_bits = (keys.len() as f64 * bits_per_key).ceil() as u64;
        let num_blocks = total_bits.div_ceil(512).max(1) as usize;
        let mut filter = BlockedBloomFilter {
            blocks: vec![[0u64; BLOCK_WORDS]; num_blocks],
            num_probes: crate::bloom::BloomFilter::optimal_probes(bits_per_key),
            num_keys: keys.len(),
        };
        for key in keys {
            filter.insert_hash(hash64(key));
        }
        filter
    }

    #[inline]
    fn block_of(&self, h: u64) -> usize {
        // multiply-shift maps the hash uniformly onto block indexes
        ((h as u128 * self.blocks.len() as u128) >> 64) as usize
    }

    fn insert_hash(&mut self, h: u64) {
        let b = self.block_of(h);
        let mut g = mix64(h);
        let block = &mut self.blocks[b];
        for _ in 0..self.num_probes {
            let bit = (g % 512) as usize;
            block[bit / 64] |= 1 << (bit % 64);
            g = mix64(g);
        }
    }

    /// Probes with a precomputed hash.
    pub fn may_contain_hash(&self, h: u64) -> bool {
        if self.num_probes == 0 {
            return true;
        }
        let b = self.block_of(h);
        let mut g = mix64(h);
        let block = &self.blocks[b];
        for _ in 0..self.num_probes {
            let bit = (g % 512) as usize;
            if block[bit / 64] & (1 << (bit % 64)) == 0 {
                return false;
            }
            g = mix64(g);
        }
        true
    }
}

impl PointFilter for BlockedBloomFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_hash(hash64(key))
    }

    fn size_bits(&self) -> usize {
        self.blocks.len() * 512
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.blocks.len() * 64);
        out.extend_from_slice(&self.num_probes.to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
        out.extend_from_slice(&(self.blocks.len() as u32).to_le_bytes());
        for block in &self.blocks {
            for w in block {
                out.extend_from_slice(&w.to_le_bytes());
            }
        }
        out
    }
}

impl BlockedBloomFilter {
    /// Deserializes a filter produced by [`PointFilter::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 12 {
            return None;
        }
        let num_probes = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let num_keys = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let n_blocks = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        if bytes.len() < 12 + n_blocks * 64 {
            return None;
        }
        let mut blocks = Vec::with_capacity(n_blocks);
        let mut off = 12;
        for _ in 0..n_blocks {
            let mut block = [0u64; BLOCK_WORDS];
            for w in block.iter_mut() {
                *w = u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap());
                off += 8;
            }
            blocks.push(block);
        }
        Some(BlockedBloomFilter {
            blocks,
            num_probes,
            num_keys,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::{empirical_fpr, BloomFilter};

    fn keys(range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
        range.map(|i| format!("key{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let present = keys(0..5000);
        let f = BlockedBloomFilter::build(&refs(&present), 10.0);
        for k in &present {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn fpr_reasonable_but_worse_than_standard_bloom() {
        let present = keys(0..20_000);
        let absent = keys(100_000..160_000);
        let blocked = BlockedBloomFilter::build(&refs(&present), 10.0);
        let standard = BloomFilter::build(&refs(&present), 10.0);
        let e_blocked = empirical_fpr(&blocked, &absent);
        let e_standard = empirical_fpr(&standard, &absent);
        // blocked trades FPR for cache locality; at 10 bits/key the penalty
        // is small but consistently present
        assert!(e_blocked < 0.05, "blocked fpr {e_blocked}");
        assert!(
            e_blocked >= e_standard * 0.8,
            "blocked {e_blocked} vs standard {e_standard}"
        );
    }

    #[test]
    fn single_block_edge_case() {
        let present = keys(0..3);
        let f = BlockedBloomFilter::build(&refs(&present), 8.0);
        assert_eq!(f.size_bits(), 512);
        for k in &present {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn zero_budget_is_always_true() {
        let present = keys(0..10);
        let f = BlockedBloomFilter::build(&refs(&present), 0.0);
        assert!(f.may_contain(b"whatever"));
    }

    #[test]
    fn serialization_roundtrip() {
        let present = keys(0..2000);
        let f = BlockedBloomFilter::build(&refs(&present), 12.0);
        let g = BlockedBloomFilter::from_bytes(&f.to_bytes()).unwrap();
        for k in keys(0..5000) {
            assert_eq!(f.may_contain(&k), g.may_contain(&k));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(BlockedBloomFilter::from_bytes(&[1, 2, 3]).is_none());
    }

    #[test]
    fn size_is_block_granular() {
        let present = keys(0..1000);
        let f = BlockedBloomFilter::build(&refs(&present), 10.0);
        assert_eq!(f.size_bits() % 512, 0);
        // within one block of the requested budget
        assert!(f.size_bits() >= 10_000 && f.size_bits() < 10_000 + 512 + 1);
    }
}
