//! Standard Bloom filter.
//!
//! The workhorse point filter of every production LSM engine (tutorial
//! Module II.2): `m = n * bits_per_key` bits, `k = ln 2 * bits_per_key`
//! hash probes via double hashing. False-positive rate ≈ `0.6185^bits_per_key`.

use crate::hash::{double_hash_pair, hash64, nth_probe};
use crate::traits::PointFilter;

/// A classic Bloom filter over byte keys.
#[derive(Clone, Debug)]
pub struct BloomFilter {
    bits: Vec<u64>,
    num_bits: u64,
    num_probes: u32,
    num_keys: usize,
}

impl BloomFilter {
    /// Optimal probe count for a bits-per-key budget: `round(ln2 * b)`,
    /// clamped to `[1, 30]`.
    pub fn optimal_probes(bits_per_key: f64) -> u32 {
        ((bits_per_key * std::f64::consts::LN_2).round() as i64).clamp(1, 30) as u32
    }

    /// Builds a filter over `keys` with the given bits-per-key budget.
    /// A non-positive budget produces a degenerate 1-bit filter that
    /// answers `true` for everything (equivalent to "no filter").
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        if bits_per_key <= 0.0 || keys.is_empty() {
            return BloomFilter {
                bits: vec![u64::MAX],
                num_bits: 64,
                num_probes: 0,
                num_keys: keys.len(),
            };
        }
        let num_bits = ((keys.len() as f64 * bits_per_key).ceil() as u64).max(64);
        let words = num_bits.div_ceil(64) as usize;
        let num_bits = words as u64 * 64;
        let mut filter = BloomFilter {
            bits: vec![0u64; words],
            num_bits,
            num_probes: Self::optimal_probes(bits_per_key),
            num_keys: keys.len(),
        };
        for key in keys {
            filter.insert_hash(hash64(key));
        }
        filter
    }

    /// Builds directly from precomputed 64-bit key hashes (shared hashing,
    /// Zhu et al. DAMON '21).
    pub fn build_from_hashes(hashes: &[u64], bits_per_key: f64) -> Self {
        if bits_per_key <= 0.0 || hashes.is_empty() {
            return BloomFilter {
                bits: vec![u64::MAX],
                num_bits: 64,
                num_probes: 0,
                num_keys: hashes.len(),
            };
        }
        let num_bits = ((hashes.len() as f64 * bits_per_key).ceil() as u64).max(64);
        let words = num_bits.div_ceil(64) as usize;
        let num_bits = words as u64 * 64;
        let mut filter = BloomFilter {
            bits: vec![0u64; words],
            num_bits,
            num_probes: Self::optimal_probes(bits_per_key),
            num_keys: hashes.len(),
        };
        for &h in hashes {
            filter.insert_hash(h);
        }
        filter
    }

    fn insert_hash(&mut self, h: u64) {
        let (h1, h2) = double_hash_pair(h);
        for i in 0..self.num_probes as u64 {
            let bit = nth_probe(h1, h2, i) % self.num_bits;
            self.bits[(bit / 64) as usize] |= 1 << (bit % 64);
        }
    }

    /// Probes with a precomputed hash.
    pub fn may_contain_hash(&self, h: u64) -> bool {
        if self.num_probes == 0 {
            return true;
        }
        let (h1, h2) = double_hash_pair(h);
        for i in 0..self.num_probes as u64 {
            let bit = nth_probe(h1, h2, i) % self.num_bits;
            if self.bits[(bit / 64) as usize] & (1 << (bit % 64)) == 0 {
                return false;
            }
        }
        true
    }

    /// Number of hash probes per query.
    pub fn num_probes(&self) -> u32 {
        self.num_probes
    }

    /// Theoretical false-positive rate for this filter's parameters.
    pub fn theoretical_fpr(&self) -> f64 {
        if self.num_keys == 0 || self.num_probes == 0 {
            return 1.0;
        }
        let bpk = self.num_bits as f64 / self.num_keys as f64;
        let k = self.num_probes as f64;
        (1.0 - (-k / bpk).exp()).powf(k)
    }

    /// Deserializes a filter produced by [`PointFilter::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let num_probes = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let num_keys = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let num_bits = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let words = num_bits.div_ceil(64) as usize;
        if bytes.len() < 16 + words * 8 {
            return None;
        }
        let bits = bytes[16..16 + words * 8]
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect();
        Some(BloomFilter {
            bits,
            num_bits,
            num_probes,
            num_keys,
        })
    }
}

impl PointFilter for BloomFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_hash(hash64(key))
    }

    fn size_bits(&self) -> usize {
        self.bits.len() * 64
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.bits.len() * 8);
        out.extend_from_slice(&self.num_probes.to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
        out.extend_from_slice(&self.num_bits.to_le_bytes());
        for w in &self.bits {
            out.extend_from_slice(&w.to_le_bytes());
        }
        out
    }
}

/// Measures the empirical false-positive rate of any point filter against
/// keys known to be absent. Shared by tests and the `filter_zoo` experiment.
pub fn empirical_fpr(filter: &dyn PointFilter, absent_keys: &[Vec<u8>]) -> f64 {
    if absent_keys.is_empty() {
        return 0.0;
    }
    let fp = absent_keys
        .iter()
        .filter(|k| filter.may_contain(k))
        .count();
    fp as f64 / absent_keys.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
        range.map(|i| format!("key{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let present = keys(0..2000);
        let f = BloomFilter::build(&refs(&present), 10.0);
        for k in &present {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn fpr_tracks_theory_at_10_bits() {
        let present = keys(0..10_000);
        let f = BloomFilter::build(&refs(&present), 10.0);
        let absent = keys(100_000..150_000);
        let fpr = empirical_fpr(&f, &absent);
        let theory = f.theoretical_fpr();
        assert!(fpr < theory * 2.0 + 0.002, "fpr {fpr} vs theory {theory}");
        assert!(fpr < 0.03, "fpr {fpr}");
    }

    #[test]
    fn more_bits_fewer_false_positives() {
        let present = keys(0..5_000);
        let absent = keys(50_000..80_000);
        let f2 = BloomFilter::build(&refs(&present), 2.0);
        let f8 = BloomFilter::build(&refs(&present), 8.0);
        let f16 = BloomFilter::build(&refs(&present), 16.0);
        let (e2, e8, e16) = (
            empirical_fpr(&f2, &absent),
            empirical_fpr(&f8, &absent),
            empirical_fpr(&f16, &absent),
        );
        assert!(e2 > e8, "{e2} vs {e8}");
        assert!(e8 > e16, "{e8} vs {e16}");
    }

    #[test]
    fn zero_budget_degenerates_to_always_true() {
        let present = keys(0..100);
        let f = BloomFilter::build(&refs(&present), 0.0);
        assert!(f.may_contain(b"anything"));
        assert!((f.theoretical_fpr() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_key_set() {
        let f = BloomFilter::build(&[], 10.0);
        assert_eq!(f.num_keys(), 0);
        // degenerate but must not panic
        let _ = f.may_contain(b"x");
    }

    #[test]
    fn optimal_probes_formula() {
        assert_eq!(BloomFilter::optimal_probes(10.0), 7);
        assert_eq!(BloomFilter::optimal_probes(1.0), 1);
        assert_eq!(BloomFilter::optimal_probes(0.1), 1);
        assert_eq!(BloomFilter::optimal_probes(100.0), 30);
    }

    #[test]
    fn serialization_roundtrip_preserves_answers() {
        let present = keys(0..1000);
        let f = BloomFilter::build(&refs(&present), 12.0);
        let bytes = f.to_bytes();
        let g = BloomFilter::from_bytes(&bytes).unwrap();
        for k in keys(0..3000) {
            assert_eq!(f.may_contain(&k), g.may_contain(&k));
        }
        assert_eq!(f.size_bits(), g.size_bits());
        assert_eq!(f.num_keys(), g.num_keys());
    }

    #[test]
    fn from_bytes_rejects_truncation() {
        let present = keys(0..100);
        let f = BloomFilter::build(&refs(&present), 10.0);
        let bytes = f.to_bytes();
        assert!(BloomFilter::from_bytes(&bytes[..8]).is_none());
        assert!(BloomFilter::from_bytes(&bytes[..bytes.len() - 1]).is_none());
    }

    #[test]
    fn shared_hash_build_agrees_with_key_build() {
        let present = keys(0..500);
        let hashes: Vec<u64> = present.iter().map(|k| hash64(k)).collect();
        let a = BloomFilter::build(&refs(&present), 10.0);
        let b = BloomFilter::build_from_hashes(&hashes, 10.0);
        for k in keys(0..2000) {
            assert_eq!(a.may_contain(&k), b.may_contain(&k));
        }
    }

    #[test]
    fn size_respects_budget() {
        let present = keys(0..10_000);
        let f = BloomFilter::build(&refs(&present), 10.0);
        let bpk = f.bits_per_key();
        assert!((9.9..10.2).contains(&bpk), "bits/key {bpk}");
    }
}
