//! SNARF-style range filter (Vaidya et al., VLDB '22; tutorial Module II.3).
//!
//! Learns the key distribution with a monotone piecewise-linear CDF model
//! and maps every key to a position in a *sparse* space of `n * 2^k`
//! positions (k ≈ bits_per_key − 2). A range query maps its endpoints and
//! asks whether any key position falls between them. Because the model is
//! monotone and shared between build and probe, a key inside the query
//! range always maps between the mapped endpoints — zero false negatives
//! by construction. The false-positive rate is governed by `k`: each key
//! occupies one of `2^k` positions per key-gap, so an empty query range of
//! modest width collides with probability ≈ `2^-k`.
//!
//! **Substitution note (see DESIGN.md):** the original stores the sparse
//! position set as a Golomb-coded bit array of ≈ `n(k+2)` bits; we store
//! the positions as a sorted array and *report* the Golomb-coded size as
//! the memory footprint. FPR and query behaviour — what the tutorial's
//! comparison is about — are identical; only the in-RAM representation of
//! this reproduction is larger.

use std::ops::Bound;

use crate::rosetta::key_to_u64;
use crate::traits::RangeFilter;

/// Number of spline knots in the CDF model.
const KNOTS: usize = 256;

/// A SNARF-style learned range filter over u64-encoded keys.
pub struct SnarfFilter {
    /// Sorted sample of the key distribution: knot positions.
    knots: Vec<u64>,
    /// Sorted key positions in the sparse position space.
    positions: Vec<u64>,
    /// Total position-space size: `n << k`.
    num_positions: u64,
    /// Per-key position bits.
    k_bits: u32,
    num_keys: usize,
}

impl SnarfFilter {
    /// Builds over byte keys at roughly `bits_per_key` bits (Golomb-coded
    /// accounting).
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        let mut values: Vec<u64> = keys.iter().map(|k| key_to_u64(k)).collect();
        values.sort_unstable();
        Self::build_from_sorted_u64(&values, bits_per_key)
    }

    /// Builds over sorted u64 keys.
    pub fn build_from_sorted_u64(sorted: &[u64], bits_per_key: f64) -> Self {
        let n = sorted.len();
        let k_bits = ((bits_per_key - 2.0).round() as i64).clamp(1, 30) as u32;
        if n == 0 {
            return SnarfFilter {
                knots: Vec::new(),
                positions: Vec::new(),
                num_positions: 0,
                k_bits,
                num_keys: 0,
            };
        }
        let num_positions = (n as u64) << k_bits;
        // knots: equally spaced quantiles, always including min and max
        let kn = KNOTS.min(n);
        let mut knots = Vec::with_capacity(kn + 1);
        for i in 0..kn {
            knots.push(sorted[i * (n - 1) / (kn.max(2) - 1).max(1)]);
        }
        knots.push(sorted[n - 1]);
        knots.sort_unstable();
        knots.dedup();
        let mut filter = SnarfFilter {
            knots,
            positions: Vec::with_capacity(n),
            num_positions,
            k_bits,
            num_keys: n,
        };
        let mut positions: Vec<u64> = sorted.iter().map(|&v| filter.position(v)).collect();
        positions.sort_unstable();
        filter.positions = positions;
        filter
    }

    /// Monotone model: maps a key to a position in `[0, num_positions)`.
    fn position(&self, v: u64) -> u64 {
        debug_assert!(!self.knots.is_empty());
        let m = self.num_positions;
        let first = self.knots[0];
        let last = *self.knots.last().unwrap();
        if v <= first {
            return 0;
        }
        if v >= last {
            return m - 1;
        }
        // locate the knot interval containing v
        let idx = match self.knots.binary_search(&v) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let (a, b) = (self.knots[idx], self.knots[idx + 1]);
        let span = (b - a) as f64;
        let frac = if span == 0.0 {
            0.0
        } else {
            (v - a) as f64 / span
        };
        // interval idx of (knots.len()-1) intervals maps to an equal slice
        // of the position space (knots are quantiles, so this approximates
        // the CDF)
        let intervals = (self.knots.len() - 1) as f64;
        let pos = ((idx as f64 + frac) / intervals * (m - 1) as f64).floor() as u64;
        pos.min(m - 1)
    }

    /// Range emptiness over the u64 domain, inclusive.
    pub fn may_overlap_u64(&self, lo: u64, hi: u64) -> bool {
        if lo > hi || self.num_keys == 0 {
            return false;
        }
        let p_lo = self.position(lo);
        let p_hi = self.position(hi);
        debug_assert!(p_lo <= p_hi);
        // any key position in [p_lo, p_hi]?
        let idx = self.positions.partition_point(|&p| p < p_lo);
        self.positions.get(idx).is_some_and(|&p| p <= p_hi)
    }

    /// The per-key position bits `k`.
    pub fn k_bits(&self) -> u32 {
        self.k_bits
    }

    /// Serializes into `out`.
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.knots.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.positions.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.num_positions.to_le_bytes());
        out.extend_from_slice(&self.k_bits.to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
        for k in &self.knots {
            out.extend_from_slice(&k.to_le_bytes());
        }
        for p in &self.positions {
            out.extend_from_slice(&p.to_le_bytes());
        }
    }

    /// Deserializes [`Self::serialize_into`] output.
    pub fn deserialize(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 24 {
            return None;
        }
        let nk = u32::from_le_bytes(bytes[0..4].try_into().ok()?) as usize;
        let np = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let num_positions = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
        let k_bits = u32::from_le_bytes(bytes[16..20].try_into().ok()?);
        let num_keys = u32::from_le_bytes(bytes[20..24].try_into().ok()?) as usize;
        let need = 24 + nk * 8 + np * 8;
        if bytes.len() < need {
            return None;
        }
        let mut off = 24;
        let mut knots = Vec::with_capacity(nk);
        for _ in 0..nk {
            knots.push(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
            off += 8;
        }
        let mut positions = Vec::with_capacity(np);
        for _ in 0..np {
            positions.push(u64::from_le_bytes(bytes[off..off + 8].try_into().unwrap()));
            off += 8;
        }
        Some(SnarfFilter {
            knots,
            positions,
            num_positions,
            k_bits,
            num_keys,
        })
    }
}

impl RangeFilter for SnarfFilter {
    fn may_overlap(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> bool {
        let lo_v = match lo {
            Bound::Included(k) | Bound::Excluded(k) => key_to_u64(k),
            Bound::Unbounded => 0,
        };
        let hi_v = match hi {
            Bound::Included(k) | Bound::Excluded(k) => key_to_u64(k),
            Bound::Unbounded => u64::MAX,
        };
        self.may_overlap_u64(lo_v, hi_v)
    }

    fn size_bits(&self) -> usize {
        // Golomb-coded accounting (see the substitution note): positions
        // cost ≈ (k + 2) bits per key; the model costs its knots
        self.num_keys * (self.k_bits as usize + 2) + self.knots.len() * 64
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives_points() {
        let values: Vec<u64> = (0..5000u64).map(|i| i * 7919 + 3).collect();
        let f = SnarfFilter::build_from_sorted_u64(&values, 10.0);
        for &v in &values {
            assert!(f.may_overlap_u64(v, v), "lost {v}");
        }
    }

    #[test]
    fn no_false_negatives_ranges() {
        let values: Vec<u64> = (0..1000u64).map(|i| i * 1_000_003).collect();
        let f = SnarfFilter::build_from_sorted_u64(&values, 10.0);
        for &v in values.iter().step_by(7) {
            assert!(f.may_overlap_u64(v.saturating_sub(100), v.saturating_add(100)));
        }
    }

    #[test]
    fn empty_gaps_are_pruned_for_uniform_keys() {
        // uniform keys: the learned CDF is near-perfect, so mid-gap queries
        // should rarely collide with a key position
        let values: Vec<u64> = (0..10_000u64).map(|i| i * 1_000_000).collect();
        let f = SnarfFilter::build_from_sorted_u64(&values, 12.0);
        let mut fp = 0;
        let trials = 1000;
        for t in 0..trials {
            let base = (t as u64 % 9_000) * 1_000_000 + 400_000;
            if f.may_overlap_u64(base, base + 50_000) {
                fp += 1;
            }
        }
        assert!(fp < trials / 5, "{fp}/{trials} false positives");
    }

    #[test]
    fn skewed_distribution_still_correct() {
        // clustered keys stress the model but must stay sound
        let mut values: Vec<u64> = (0..1000u64).collect();
        values.extend((0..1000u64).map(|i| (1 << 50) + i * 3));
        values.sort_unstable();
        let f = SnarfFilter::build_from_sorted_u64(&values, 10.0);
        for &v in &values {
            assert!(f.may_overlap_u64(v, v));
        }
    }

    #[test]
    fn duplicate_keys_are_fine() {
        let values = vec![5u64, 5, 5, 9, 9, 100];
        let f = SnarfFilter::build_from_sorted_u64(&values, 10.0);
        assert!(f.may_overlap_u64(5, 5));
        assert!(f.may_overlap_u64(9, 9));
        assert!(f.may_overlap_u64(100, 100));
    }

    #[test]
    fn single_key() {
        let f = SnarfFilter::build_from_sorted_u64(&[77], 10.0);
        assert!(f.may_overlap_u64(77, 77));
        assert!(f.may_overlap_u64(0, 100));
    }

    #[test]
    fn empty_filter_rejects() {
        let f = SnarfFilter::build_from_sorted_u64(&[], 10.0);
        assert!(!f.may_overlap_u64(0, u64::MAX));
    }

    #[test]
    fn extreme_values() {
        let values = vec![0u64, u64::MAX];
        let f = SnarfFilter::build_from_sorted_u64(&values, 10.0);
        assert!(f.may_overlap_u64(0, 0));
        assert!(f.may_overlap_u64(u64::MAX, u64::MAX));
    }

    #[test]
    fn more_bits_prune_better() {
        let values: Vec<u64> = (0..5000u64).map(|i| i * 1_000_000).collect();
        let lean = SnarfFilter::build_from_sorted_u64(&values, 4.0);
        let rich = SnarfFilter::build_from_sorted_u64(&values, 16.0);
        let mut fp_lean = 0;
        let mut fp_rich = 0;
        for t in 0..500u64 {
            let base = (t % 4000) * 1_000_000 + 300_000;
            if lean.may_overlap_u64(base, base + 1000) {
                fp_lean += 1;
            }
            if rich.may_overlap_u64(base, base + 1000) {
                fp_rich += 1;
            }
        }
        assert!(fp_rich <= fp_lean, "rich {fp_rich} vs lean {fp_lean}");
        assert!(fp_rich < 50, "rich fpr too high: {fp_rich}/500");
    }

    #[test]
    fn adjacent_to_key_queries_collide_at_k_rate() {
        // queries starting just past a key collide with the key's position
        // with probability ≈ 2^-k — the documented SNARF behaviour
        let values: Vec<u64> = (1..2000u64).map(|i| i << 20).collect();
        let f = SnarfFilter::build_from_sorted_u64(&values, 12.0); // k = 10
        let mut fp = 0;
        for t in 0..1000u64 {
            let base = ((t % 1900) + 1) << 20;
            // uniformly placed in the gap
            let off = 1024 + (t.wrapping_mul(2654435761) % (1 << 19));
            if f.may_overlap_u64(base + off, base + off + 64) {
                fp += 1;
            }
        }
        assert!(fp < 100, "{fp}/1000 false positives at k=10");
    }

    #[test]
    fn byte_key_interface() {
        let owned: Vec<Vec<u8>> = (0..500u32).map(|i| format!("{i:08}").into_bytes()).collect();
        let keys: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let f = SnarfFilter::build(&keys, 10.0);
        for k in &owned {
            assert!(f.may_contain_point(k));
        }
    }

    #[test]
    fn serialization_roundtrip() {
        let values: Vec<u64> = (0..3000u64).map(|i| i * 99991).collect();
        let f = SnarfFilter::build_from_sorted_u64(&values, 10.0);
        let mut bytes = Vec::new();
        f.serialize_into(&mut bytes);
        let g = SnarfFilter::deserialize(&bytes).unwrap();
        for &v in values.iter().step_by(17) {
            assert_eq!(f.may_overlap_u64(v, v), g.may_overlap_u64(v, v));
            assert_eq!(
                f.may_overlap_u64(v + 1, v + 500),
                g.may_overlap_u64(v + 1, v + 500)
            );
        }
    }
}
