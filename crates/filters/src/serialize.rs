//! Serialization for range filters, so they can live in SSTable filter
//! blocks like point filters do.
//!
//! Format: one tag byte identifying the implementation, then the
//! implementation's own payload.

use std::ops::Bound;

use crate::prefix::PrefixBloomFilter;
use crate::rosetta::RosettaFilter;
use crate::snarf::SnarfFilter;
use crate::surf::{SuffixMode, SurfFilter};
use crate::traits::RangeFilter;

const TAG_PREFIX: u8 = 1;
const TAG_SURF: u8 = 2;
const TAG_ROSETTA: u8 = 3;
const TAG_SNARF: u8 = 4;

/// Serializes any supported range filter with a leading tag byte.
///
/// Because the trait objects don't expose their concrete type, callers
/// pass the original enum variants; the engine stores filters via
/// [`SerializableRangeFilter`] instead of bare trait objects.
pub enum SerializableRangeFilter {
    /// Prefix Bloom filter.
    Prefix(PrefixBloomFilter),
    /// SuRF truncated trie.
    Surf(SurfFilter),
    /// Rosetta dyadic hierarchy.
    Rosetta(RosettaFilter),
    /// SNARF learned filter.
    Snarf(SnarfFilter),
}

impl SerializableRangeFilter {
    /// Builds the requested kind over sorted, deduplicated keys.
    pub fn build(kind: crate::traits::RangeFilterKind, keys: &[&[u8]], bits_per_key: f64) -> Option<Self> {
        use crate::traits::RangeFilterKind as K;
        match kind {
            K::None => None,
            K::PrefixBloom { prefix_len } => Some(SerializableRangeFilter::Prefix(
                PrefixBloomFilter::build(keys, prefix_len, bits_per_key),
            )),
            K::Surf { suffix_bits } => Some(SerializableRangeFilter::Surf(SurfFilter::build(
                keys,
                if suffix_bits == 0 {
                    SuffixMode::None
                } else {
                    SuffixMode::Real(suffix_bits)
                },
            ))),
            K::Rosetta => Some(SerializableRangeFilter::Rosetta(RosettaFilter::build(
                keys,
                bits_per_key,
            ))),
            K::Snarf => Some(SerializableRangeFilter::Snarf(SnarfFilter::build(
                keys,
                bits_per_key,
            ))),
        }
    }

    /// Serializes with a tag byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            SerializableRangeFilter::Prefix(f) => {
                out.push(TAG_PREFIX);
                f.serialize_into(&mut out);
            }
            SerializableRangeFilter::Surf(f) => {
                out.push(TAG_SURF);
                f.serialize_into(&mut out);
            }
            SerializableRangeFilter::Rosetta(f) => {
                out.push(TAG_ROSETTA);
                f.serialize_into(&mut out);
            }
            SerializableRangeFilter::Snarf(f) => {
                out.push(TAG_SNARF);
                f.serialize_into(&mut out);
            }
        }
        out
    }

    /// Deserializes from [`Self::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let (&tag, rest) = bytes.split_first()?;
        match tag {
            TAG_PREFIX => Some(SerializableRangeFilter::Prefix(
                PrefixBloomFilter::deserialize(rest)?,
            )),
            TAG_SURF => Some(SerializableRangeFilter::Surf(SurfFilter::deserialize(rest)?)),
            TAG_ROSETTA => Some(SerializableRangeFilter::Rosetta(RosettaFilter::deserialize(
                rest,
            )?)),
            TAG_SNARF => Some(SerializableRangeFilter::Snarf(SnarfFilter::deserialize(rest)?)),
            _ => None,
        }
    }
}

impl RangeFilter for SerializableRangeFilter {
    fn may_overlap(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> bool {
        match self {
            SerializableRangeFilter::Prefix(f) => f.may_overlap(lo, hi),
            SerializableRangeFilter::Surf(f) => f.may_overlap(lo, hi),
            SerializableRangeFilter::Rosetta(f) => f.may_overlap(lo, hi),
            SerializableRangeFilter::Snarf(f) => f.may_overlap(lo, hi),
        }
    }

    fn may_contain_point(&self, key: &[u8]) -> bool {
        match self {
            SerializableRangeFilter::Prefix(f) => f.may_contain_point(key),
            SerializableRangeFilter::Surf(f) => f.may_contain_point(key),
            SerializableRangeFilter::Rosetta(f) => f.may_contain_point(key),
            SerializableRangeFilter::Snarf(f) => f.may_contain_point(key),
        }
    }

    fn size_bits(&self) -> usize {
        match self {
            SerializableRangeFilter::Prefix(f) => f.size_bits(),
            SerializableRangeFilter::Surf(f) => f.size_bits(),
            SerializableRangeFilter::Rosetta(f) => f.size_bits(),
            SerializableRangeFilter::Snarf(f) => f.size_bits(),
        }
    }

    fn num_keys(&self) -> usize {
        match self {
            SerializableRangeFilter::Prefix(f) => f.num_keys(),
            SerializableRangeFilter::Surf(f) => f.num_keys(),
            SerializableRangeFilter::Rosetta(f) => f.num_keys(),
            SerializableRangeFilter::Snarf(f) => f.num_keys(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::RangeFilterKind;

    fn keys() -> Vec<Vec<u8>> {
        let mut v: Vec<Vec<u8>> = (0..500u32).map(|i| format!("{:08}", i * 20).into_bytes()).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn all_kinds_roundtrip() {
        let owned = keys();
        let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let kinds = [
            RangeFilterKind::PrefixBloom { prefix_len: 5 },
            RangeFilterKind::Surf { suffix_bits: 8 },
            RangeFilterKind::Rosetta,
            RangeFilterKind::Snarf,
        ];
        for kind in kinds {
            let f = SerializableRangeFilter::build(kind, &refs, 16.0).unwrap();
            let bytes = f.to_bytes();
            let g = SerializableRangeFilter::from_bytes(&bytes)
                .unwrap_or_else(|| panic!("{} failed to deserialize", kind.label()));
            for k in &owned {
                assert_eq!(
                    f.may_contain_point(k),
                    g.may_contain_point(k),
                    "{} point answers diverge",
                    kind.label()
                );
            }
            // range answers agree on a sample
            for i in (0..owned.len()).step_by(41) {
                let lo = &owned[i];
                let mut hi = lo.clone();
                hi.push(b'z');
                assert_eq!(
                    f.may_overlap(Bound::Included(lo.as_slice()), Bound::Included(hi.as_slice())),
                    g.may_overlap(Bound::Included(lo.as_slice()), Bound::Included(hi.as_slice())),
                    "{} range answers diverge",
                    kind.label()
                );
            }
        }
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(SerializableRangeFilter::from_bytes(&[99, 1, 2, 3]).is_none());
        assert!(SerializableRangeFilter::from_bytes(&[]).is_none());
    }

    #[test]
    fn none_kind_builds_nothing() {
        assert!(SerializableRangeFilter::build(RangeFilterKind::None, &[], 10.0).is_none());
    }
}
