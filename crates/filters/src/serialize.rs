//! Serialization for range filters, so they can live in SSTable filter
//! blocks like point filters do.
//!
//! Format: one tag byte identifying the implementation, then the
//! implementation's own payload.

use std::ops::Bound;

use crate::prefix::PrefixBloomFilter;
use crate::rosetta::RosettaFilter;
use crate::snarf::SnarfFilter;
use crate::surf::{SuffixMode, SurfFilter};
use crate::traits::RangeFilter;

const TAG_PREFIX: u8 = 1;
const TAG_SURF: u8 = 2;
const TAG_ROSETTA: u8 = 3;
const TAG_SNARF: u8 = 4;

/// Typed failure from [`SerializableRangeFilter::try_from_bytes`]: the
/// bytes do not decode as any known range filter (unknown tag, truncated
/// or corrupt payload). The storage engine maps this to its corruption
/// error so a bad filter section fails a table open instead of panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FilterDecodeError {
    /// Human-readable description of what failed to decode.
    pub detail: String,
}

impl std::fmt::Display for FilterDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "range filter decode failed: {}", self.detail)
    }
}

impl std::error::Error for FilterDecodeError {}

/// Serializes any supported range filter with a leading tag byte.
///
/// Because the trait objects don't expose their concrete type, callers
/// pass the original enum variants; the engine stores filters via
/// [`SerializableRangeFilter`] instead of bare trait objects.
pub enum SerializableRangeFilter {
    /// Prefix Bloom filter.
    Prefix(PrefixBloomFilter),
    /// SuRF truncated trie.
    Surf(SurfFilter),
    /// Rosetta dyadic hierarchy.
    Rosetta(RosettaFilter),
    /// SNARF learned filter.
    Snarf(SnarfFilter),
}

impl SerializableRangeFilter {
    /// Builds the requested kind over sorted, deduplicated keys.
    pub fn build(kind: crate::traits::RangeFilterKind, keys: &[&[u8]], bits_per_key: f64) -> Option<Self> {
        use crate::traits::RangeFilterKind as K;
        match kind {
            K::None => None,
            K::PrefixBloom { prefix_len } => Some(SerializableRangeFilter::Prefix(
                PrefixBloomFilter::build(keys, prefix_len, bits_per_key),
            )),
            K::Surf { suffix_bits } => Some(SerializableRangeFilter::Surf(SurfFilter::build(
                keys,
                if suffix_bits == 0 {
                    SuffixMode::None
                } else {
                    SuffixMode::Real(suffix_bits)
                },
            ))),
            K::Rosetta => Some(SerializableRangeFilter::Rosetta(RosettaFilter::build(
                keys,
                bits_per_key,
            ))),
            K::Snarf => Some(SerializableRangeFilter::Snarf(SnarfFilter::build(
                keys,
                bits_per_key,
            ))),
        }
    }

    /// Serializes with a tag byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            SerializableRangeFilter::Prefix(f) => {
                out.push(TAG_PREFIX);
                f.serialize_into(&mut out);
            }
            SerializableRangeFilter::Surf(f) => {
                out.push(TAG_SURF);
                f.serialize_into(&mut out);
            }
            SerializableRangeFilter::Rosetta(f) => {
                out.push(TAG_ROSETTA);
                f.serialize_into(&mut out);
            }
            SerializableRangeFilter::Snarf(f) => {
                out.push(TAG_SNARF);
                f.serialize_into(&mut out);
            }
        }
        out
    }

    /// Deserializes from [`Self::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        Self::try_from_bytes(bytes).ok()
    }

    /// Fallible variant of [`Self::from_bytes`] that says *what* failed —
    /// callers surface this as a corruption error rather than panicking.
    pub fn try_from_bytes(bytes: &[u8]) -> Result<Self, FilterDecodeError> {
        let truncated = |name: &str| FilterDecodeError {
            detail: format!("truncated or corrupt {name} payload"),
        };
        let (&tag, rest) = bytes.split_first().ok_or_else(|| FilterDecodeError {
            detail: "empty range-filter section".into(),
        })?;
        match tag {
            TAG_PREFIX => PrefixBloomFilter::deserialize(rest)
                .map(SerializableRangeFilter::Prefix)
                .ok_or_else(|| truncated("prefix-bloom")),
            TAG_SURF => SurfFilter::deserialize(rest)
                .map(SerializableRangeFilter::Surf)
                .ok_or_else(|| truncated("surf")),
            TAG_ROSETTA => RosettaFilter::deserialize(rest)
                .map(SerializableRangeFilter::Rosetta)
                .ok_or_else(|| truncated("rosetta")),
            TAG_SNARF => SnarfFilter::deserialize(rest)
                .map(SerializableRangeFilter::Snarf)
                .ok_or_else(|| truncated("snarf")),
            _ => Err(FilterDecodeError {
                detail: format!("unknown range-filter tag {tag}"),
            }),
        }
    }
}

impl RangeFilter for SerializableRangeFilter {
    fn may_overlap(&self, lo: Bound<&[u8]>, hi: Bound<&[u8]>) -> bool {
        match self {
            SerializableRangeFilter::Prefix(f) => f.may_overlap(lo, hi),
            SerializableRangeFilter::Surf(f) => f.may_overlap(lo, hi),
            SerializableRangeFilter::Rosetta(f) => f.may_overlap(lo, hi),
            SerializableRangeFilter::Snarf(f) => f.may_overlap(lo, hi),
        }
    }

    fn may_contain_point(&self, key: &[u8]) -> bool {
        match self {
            SerializableRangeFilter::Prefix(f) => f.may_contain_point(key),
            SerializableRangeFilter::Surf(f) => f.may_contain_point(key),
            SerializableRangeFilter::Rosetta(f) => f.may_contain_point(key),
            SerializableRangeFilter::Snarf(f) => f.may_contain_point(key),
        }
    }

    fn size_bits(&self) -> usize {
        match self {
            SerializableRangeFilter::Prefix(f) => f.size_bits(),
            SerializableRangeFilter::Surf(f) => f.size_bits(),
            SerializableRangeFilter::Rosetta(f) => f.size_bits(),
            SerializableRangeFilter::Snarf(f) => f.size_bits(),
        }
    }

    fn num_keys(&self) -> usize {
        match self {
            SerializableRangeFilter::Prefix(f) => f.num_keys(),
            SerializableRangeFilter::Surf(f) => f.num_keys(),
            SerializableRangeFilter::Rosetta(f) => f.num_keys(),
            SerializableRangeFilter::Snarf(f) => f.num_keys(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::RangeFilterKind;

    fn keys() -> Vec<Vec<u8>> {
        let mut v: Vec<Vec<u8>> = (0..500u32).map(|i| format!("{:08}", i * 20).into_bytes()).collect();
        v.sort();
        v.dedup();
        v
    }

    #[test]
    fn all_kinds_roundtrip() -> Result<(), FilterDecodeError> {
        let owned = keys();
        let refs: Vec<&[u8]> = owned.iter().map(|k| k.as_slice()).collect();
        let kinds = [
            RangeFilterKind::PrefixBloom { prefix_len: 5 },
            RangeFilterKind::Surf { suffix_bits: 8 },
            RangeFilterKind::Rosetta,
            RangeFilterKind::Snarf,
        ];
        for kind in kinds {
            let f = SerializableRangeFilter::build(kind, &refs, 16.0).unwrap();
            let bytes = f.to_bytes();
            // a decode failure propagates as a typed error, never a panic
            let g = SerializableRangeFilter::try_from_bytes(&bytes)?;
            for k in &owned {
                assert_eq!(
                    f.may_contain_point(k),
                    g.may_contain_point(k),
                    "{} point answers diverge",
                    kind.label()
                );
            }
            // range answers agree on a sample
            for i in (0..owned.len()).step_by(41) {
                let lo = &owned[i];
                let mut hi = lo.clone();
                hi.push(b'z');
                assert_eq!(
                    f.may_overlap(Bound::Included(lo.as_slice()), Bound::Included(hi.as_slice())),
                    g.may_overlap(Bound::Included(lo.as_slice()), Bound::Included(hi.as_slice())),
                    "{} range answers diverge",
                    kind.label()
                );
            }
        }
        Ok(())
    }

    #[test]
    fn bad_tag_rejected() {
        assert!(SerializableRangeFilter::from_bytes(&[99, 1, 2, 3]).is_none());
        assert!(SerializableRangeFilter::from_bytes(&[]).is_none());
    }

    #[test]
    fn decode_errors_name_the_failure() {
        let err = |bytes: &[u8]| match SerializableRangeFilter::try_from_bytes(bytes) {
            Err(e) => e,
            Ok(_) => panic!("decode unexpectedly succeeded"),
        };
        assert!(err(&[99, 1, 2, 3]).detail.contains("unknown range-filter tag 99"));
        assert!(err(&[]).detail.contains("empty"));
        let torn = err(&[TAG_SURF, 0xFF]);
        assert!(torn.detail.contains("surf"), "{torn}");
        assert!(torn.to_string().contains("decode failed"));
    }

    #[test]
    fn none_kind_builds_nothing() {
        assert!(SerializableRangeFilter::build(RangeFilterKind::None, &[], 10.0).is_none());
    }
}
