//! Cuckoo filter (Fan, Andersen, Kaminsky, Mitzenmacher, CoNEXT '14).
//!
//! Stores short fingerprints in 4-slot buckets; each key has two candidate
//! buckets linked by the partial-key cuckoo trick `i2 = i1 ^ hash(fp)`.
//! Unlike Bloom filters, cuckoo filters support deletion, which is why
//! SlimDB and Chucky adopt them for LSM-trees (tutorial Module II.2).

use crate::hash::{hash64, mix64};
use crate::traits::PointFilter;

const SLOTS_PER_BUCKET: usize = 4;
const MAX_KICKS: usize = 500;

/// A cuckoo filter over byte keys.
#[derive(Clone, Debug)]
pub struct CuckooFilter {
    /// `buckets[b][s]`: fingerprint or 0 for empty.
    buckets: Vec<[u16; SLOTS_PER_BUCKET]>,
    fingerprint_bits: u32,
    num_keys: usize,
    items: usize,
}

impl CuckooFilter {
    /// Builds over `keys` with roughly `bits_per_key` bits of memory.
    ///
    /// The fingerprint width is derived from the budget assuming the
    /// standard ~95% achievable load factor; widths are clamped to
    /// `[4, 16]` bits. Keys are deduplicated first: a cuckoo filter can
    /// hold at most 8 copies of one fingerprint, so duplicates would make
    /// construction diverge.
    pub fn build(keys: &[&[u8]], bits_per_key: f64) -> Self {
        let fp_bits = (bits_per_key * 0.95).round().clamp(4.0, 16.0) as u32;
        Self::build_with_fingerprint_bits(keys, fp_bits)
    }

    /// Builds with an explicit fingerprint width (used by experiments).
    pub fn build_with_fingerprint_bits(keys: &[&[u8]], fp_bits: u32) -> Self {
        let fp_bits = fp_bits.clamp(4, 16);
        let mut unique: Vec<&[u8]> = keys.to_vec();
        unique.sort_unstable();
        unique.dedup();
        let mut capacity_buckets = Self::buckets_for(unique.len());
        loop {
            match Self::try_build(&unique, fp_bits, capacity_buckets) {
                Some(mut f) => {
                    f.num_keys = keys.len();
                    return f;
                }
                None => capacity_buckets *= 2, // extremely unlikely beyond one doubling
            }
        }
    }

    fn buckets_for(n: usize) -> usize {
        let needed = (n as f64 / (SLOTS_PER_BUCKET as f64 * 0.95)).ceil() as usize;
        needed.next_power_of_two().max(1)
    }

    fn try_build(keys: &[&[u8]], fp_bits: u32, num_buckets: usize) -> Option<Self> {
        let mut f = CuckooFilter {
            buckets: vec![[0u16; SLOTS_PER_BUCKET]; num_buckets],
            fingerprint_bits: fp_bits,
            num_keys: keys.len(),
            items: 0,
        };
        let mut seed = 0u64;
        for key in keys {
            if !f.insert_key(key, &mut seed) {
                return None;
            }
        }
        Some(f)
    }

    #[inline]
    fn fingerprint(&self, h: u64) -> u16 {
        let mask = (1u32 << self.fingerprint_bits) - 1;
        let fp = (mix64(h) as u32) & mask;
        if fp == 0 {
            1
        } else {
            fp as u16
        }
    }

    #[inline]
    fn index1(&self, h: u64) -> usize {
        (h as usize) & (self.buckets.len() - 1)
    }

    #[inline]
    fn alt_index(&self, i: usize, fp: u16) -> usize {
        (i ^ (mix64(fp as u64) as usize)) & (self.buckets.len() - 1)
    }

    fn insert_key(&mut self, key: &[u8], kick_seed: &mut u64) -> bool {
        let h = hash64(key);
        let fp = self.fingerprint(h);
        let i1 = self.index1(h);
        let i2 = self.alt_index(i1, fp);
        if self.place(i1, fp) || self.place(i2, fp) {
            self.items += 1;
            return true;
        }
        // kick loop
        let mut i = if mix64(*kick_seed) & 1 == 0 { i1 } else { i2 };
        let mut fp = fp;
        for _ in 0..MAX_KICKS {
            *kick_seed = mix64(*kick_seed);
            let slot = (*kick_seed as usize) % SLOTS_PER_BUCKET;
            std::mem::swap(&mut fp, &mut self.buckets[i][slot]);
            i = self.alt_index(i, fp);
            if self.place(i, fp) {
                self.items += 1;
                return true;
            }
        }
        false
    }

    fn place(&mut self, i: usize, fp: u16) -> bool {
        for slot in self.buckets[i].iter_mut() {
            if *slot == 0 {
                *slot = fp;
                return true;
            }
        }
        false
    }

    /// Removes one occurrence of `key`'s fingerprint. Returns whether a
    /// matching fingerprint was found. Deleting a key that was never
    /// inserted may remove another key's fingerprint — the standard cuckoo
    /// filter caveat — so callers must only delete inserted keys.
    pub fn delete(&mut self, key: &[u8]) -> bool {
        let h = hash64(key);
        let fp = self.fingerprint(h);
        let i1 = self.index1(h);
        let i2 = self.alt_index(i1, fp);
        for i in [i1, i2] {
            for slot in self.buckets[i].iter_mut() {
                if *slot == fp {
                    *slot = 0;
                    self.items -= 1;
                    return true;
                }
            }
        }
        false
    }

    /// Current load factor (occupied slots / total slots).
    pub fn load_factor(&self) -> f64 {
        self.items as f64 / (self.buckets.len() * SLOTS_PER_BUCKET) as f64
    }

    /// Fingerprint width in bits.
    pub fn fingerprint_bits(&self) -> u32 {
        self.fingerprint_bits
    }
}

impl PointFilter for CuckooFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        let h = hash64(key);
        let fp = self.fingerprint(h);
        let i1 = self.index1(h);
        let i2 = self.alt_index(i1, fp);
        self.buckets[i1].contains(&fp) || self.buckets[i2].contains(&fp)
    }

    fn size_bits(&self) -> usize {
        // semantic size: fingerprint storage only (what a bit-packed
        // implementation would occupy)
        self.buckets.len() * SLOTS_PER_BUCKET * self.fingerprint_bits as usize
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + self.buckets.len() * SLOTS_PER_BUCKET * 2);
        out.extend_from_slice(&self.fingerprint_bits.to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
        out.extend_from_slice(&(self.buckets.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.items as u32).to_le_bytes());
        for b in &self.buckets {
            for s in b {
                out.extend_from_slice(&s.to_le_bytes());
            }
        }
        out
    }
}

impl CuckooFilter {
    /// Deserializes a filter produced by [`PointFilter::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let fingerprint_bits = u32::from_le_bytes(bytes[0..4].try_into().ok()?);
        let num_keys = u32::from_le_bytes(bytes[4..8].try_into().ok()?) as usize;
        let n_buckets = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        let items = u32::from_le_bytes(bytes[12..16].try_into().ok()?) as usize;
        if bytes.len() < 16 + n_buckets * SLOTS_PER_BUCKET * 2 || !n_buckets.is_power_of_two() {
            return None;
        }
        let mut buckets = Vec::with_capacity(n_buckets);
        let mut off = 16;
        for _ in 0..n_buckets {
            let mut b = [0u16; SLOTS_PER_BUCKET];
            for s in b.iter_mut() {
                *s = u16::from_le_bytes(bytes[off..off + 2].try_into().unwrap());
                off += 2;
            }
            buckets.push(b);
        }
        Some(CuckooFilter {
            buckets,
            fingerprint_bits,
            num_keys,
            items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::empirical_fpr;

    fn keys(range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
        range.map(|i| format!("key{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let present = keys(0..10_000);
        let f = CuckooFilter::build(&refs(&present), 12.0);
        for k in &present {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn fpr_shrinks_with_fingerprint_width() {
        let present = keys(0..10_000);
        let absent = keys(100_000..140_000);
        let f8 = CuckooFilter::build_with_fingerprint_bits(&refs(&present), 8);
        let f12 = CuckooFilter::build_with_fingerprint_bits(&refs(&present), 12);
        let e8 = empirical_fpr(&f8, &absent);
        let e12 = empirical_fpr(&f12, &absent);
        assert!(e8 > e12, "{e8} vs {e12}");
        // theory: fpr ≈ 2*4/2^f
        assert!(e8 < 8.0 / 256.0 * 2.0, "{e8}");
    }

    #[test]
    fn delete_then_query_negative() {
        let present = keys(0..1000);
        let mut f = CuckooFilter::build(&refs(&present), 12.0);
        assert!(f.may_contain(b"key00000042"));
        assert!(f.delete(b"key00000042"));
        // after deleting, a lookup may still collide with another key's
        // fingerprint, but the vast majority must now be negative
        let deleted: Vec<Vec<u8>> = (0..1000).map(|i| format!("key{i:08}").into_bytes()).collect();
        let mut g = CuckooFilter::build(&refs(&present), 12.0);
        let mut still_positive = 0;
        for k in &deleted {
            g.delete(k);
        }
        for k in &deleted {
            if g.may_contain(k) {
                still_positive += 1;
            }
        }
        assert!(still_positive < 50, "{still_positive} survivors after full delete");
    }

    #[test]
    fn delete_of_absent_key_usually_fails() {
        let present = keys(0..100);
        let mut f = CuckooFilter::build(&refs(&present), 16.0);
        let mut removed = 0;
        for i in 10_000..10_100 {
            if f.delete(format!("key{i:08}").as_bytes()) {
                removed += 1;
            }
        }
        assert!(removed <= 2, "{removed} phantom deletions");
    }

    #[test]
    fn load_factor_is_high() {
        let present = keys(0..10_000);
        let f = CuckooFilter::build(&refs(&present), 12.0);
        assert!(f.load_factor() > 0.4, "load {}", f.load_factor());
        assert!(f.load_factor() <= 1.0);
    }

    #[test]
    fn empty_build() {
        let f = CuckooFilter::build(&[], 12.0);
        assert!(!f.may_contain(b"x") || f.num_keys() == 0);
        assert_eq!(f.num_keys(), 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let present = keys(0..3000);
        let f = CuckooFilter::build(&refs(&present), 12.0);
        let g = CuckooFilter::from_bytes(&f.to_bytes()).unwrap();
        for k in keys(0..6000) {
            assert_eq!(f.may_contain(&k), g.may_contain(&k));
        }
    }

    #[test]
    fn from_bytes_rejects_garbage() {
        assert!(CuckooFilter::from_bytes(&[0u8; 10]).is_none());
    }

    #[test]
    fn fingerprint_never_zero() {
        let present = keys(0..50_000);
        let f = CuckooFilter::build(&refs(&present), 8.0);
        // every inserted key must still be found — would fail if a zero
        // fingerprint (the empty marker) were ever emitted
        for k in &present {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn alt_index_is_involution() {
        let present = keys(0..10);
        let f = CuckooFilter::build(&refs(&present), 12.0);
        for h in [1u64, 99, 12345, u64::MAX] {
            let fp = f.fingerprint(h);
            let i1 = f.index1(h);
            let i2 = f.alt_index(i1, fp);
            assert_eq!(f.alt_index(i2, fp), i1);
        }
    }
}
