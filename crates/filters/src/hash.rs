//! 64-bit hashing for filters.
//!
//! All filters in this crate share one seeded 64-bit hash over byte keys
//! (an xxhash64-style mix) and derive their per-probe hashes via the
//! Kirsch–Mitzenmacher double-hashing schema `h_i = h1 + i*h2`, which the
//! tutorial cites (Zhu et al., DAMON '21) as the standard way to share hash
//! computation across probes.

const PRIME64_1: u64 = 0x9E3779B185EBCA87;
const PRIME64_2: u64 = 0xC2B2AE3D27D4EB4F;
const PRIME64_3: u64 = 0x165667B19E3779F9;
const PRIME64_4: u64 = 0x85EBCA77C2B2AE63;
const PRIME64_5: u64 = 0x27D4EB2F165667C5;

#[inline]
fn read_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

#[inline]
fn read_u32(b: &[u8]) -> u64 {
    u32::from_le_bytes(b[..4].try_into().unwrap()) as u64
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME64_2))
        .rotate_left(31)
        .wrapping_mul(PRIME64_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME64_1)
        .wrapping_add(PRIME64_4)
}

/// Seeded 64-bit hash of `data` (xxhash64-style construction).
pub fn hash64_seed(data: &[u8], seed: u64) -> u64 {
    let len = data.len();
    let mut h: u64;
    let mut rest = data;

    if len >= 32 {
        let mut v1 = seed.wrapping_add(PRIME64_1).wrapping_add(PRIME64_2);
        let mut v2 = seed.wrapping_add(PRIME64_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME64_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(rest));
            v2 = round(v2, read_u64(&rest[8..]));
            v3 = round(v3, read_u64(&rest[16..]));
            v4 = round(v4, read_u64(&rest[24..]));
            rest = &rest[32..];
        }
        h = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        h = merge_round(h, v1);
        h = merge_round(h, v2);
        h = merge_round(h, v3);
        h = merge_round(h, v4);
    } else {
        h = seed.wrapping_add(PRIME64_5);
    }

    h = h.wrapping_add(len as u64);

    while rest.len() >= 8 {
        h = (h ^ round(0, read_u64(rest)))
            .rotate_left(27)
            .wrapping_mul(PRIME64_1)
            .wrapping_add(PRIME64_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h = (h ^ read_u32(rest).wrapping_mul(PRIME64_1))
            .rotate_left(23)
            .wrapping_mul(PRIME64_2)
            .wrapping_add(PRIME64_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h = (h ^ (byte as u64).wrapping_mul(PRIME64_5))
            .rotate_left(11)
            .wrapping_mul(PRIME64_1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME64_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME64_3);
    h ^= h >> 32;
    h
}

/// Unseeded convenience wrapper around [`hash64_seed`].
pub fn hash64(data: &[u8]) -> u64 {
    hash64_seed(data, 0)
}

/// Splits one 64-bit hash into the `(h1, h2)` pair for double hashing.
/// `h2` is forced odd so the probe sequence covers all slots of
/// power-of-two tables.
#[inline]
pub fn double_hash_pair(h: u64) -> (u64, u64) {
    let h1 = h;
    let h2 = (h >> 33) | 1;
    (h1, h2)
}

/// `i`-th probe of the Kirsch–Mitzenmacher sequence.
#[inline]
pub fn nth_probe(h1: u64, h2: u64, i: u64) -> u64 {
    h1.wrapping_add(i.wrapping_mul(h2))
}

/// Cheap bijective 64-bit finalizer (splitmix64) for re-mixing derived
/// values (e.g., cuckoo fingerprints to alternate buckets).
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(hash64(b"hello"), hash64(b"hello"));
        assert_eq!(hash64_seed(b"hello", 7), hash64_seed(b"hello", 7));
    }

    #[test]
    fn seed_changes_hash() {
        assert_ne!(hash64_seed(b"hello", 0), hash64_seed(b"hello", 1));
    }

    #[test]
    fn different_inputs_differ() {
        assert_ne!(hash64(b"hello"), hash64(b"hellp"));
        assert_ne!(hash64(b""), hash64(b"\0"));
        assert_ne!(hash64(b"a"), hash64(b"aa"));
    }

    #[test]
    fn all_length_paths_covered() {
        // exercise <4, 4..8, 8..32, >=32 byte code paths
        for len in [0usize, 1, 3, 4, 7, 8, 15, 31, 32, 33, 64, 100] {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            let h = hash64(&data);
            // re-hash must agree
            assert_eq!(h, hash64(&data), "len {len}");
        }
    }

    #[test]
    fn avalanche_is_reasonable() {
        // flipping one input bit should flip ~32 of 64 output bits on average
        let base = b"the quick brown fox jumps over!!";
        let h0 = hash64(base);
        let mut total = 0u32;
        let mut count = 0u32;
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut m = base.to_vec();
                m[byte] ^= 1 << bit;
                total += (h0 ^ hash64(&m)).count_ones();
                count += 1;
            }
        }
        let avg = total as f64 / count as f64;
        assert!((24.0..40.0).contains(&avg), "avalanche avg {avg}");
    }

    #[test]
    fn double_hash_h2_is_odd() {
        for i in 0..1000u64 {
            let (_, h2) = double_hash_pair(mix64(i));
            assert_eq!(h2 & 1, 1);
        }
    }

    #[test]
    fn probe_sequence_covers_power_of_two_table() {
        // with odd stride, 16 probes into a 16-slot table hit all slots
        let (h1, h2) = double_hash_pair(hash64(b"key"));
        let mut seen = [false; 16];
        for i in 0..16 {
            seen[(nth_probe(h1, h2, i) % 16) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mix64_is_injective_on_sample() {
        use std::collections::HashSet;
        let vals: HashSet<u64> = (0..10_000u64).map(mix64).collect();
        assert_eq!(vals.len(), 10_000);
    }

    #[test]
    fn distribution_into_buckets_is_uniformish() {
        const N: usize = 40_000;
        const B: usize = 64;
        let mut counts = [0usize; B];
        for i in 0..N {
            let key = format!("user{i:08}");
            counts[(hash64(key.as_bytes()) % B as u64) as usize] += 1;
        }
        let expected = N / B;
        for (b, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected as f64 * 0.7 && (c as f64) < expected as f64 * 1.3,
                "bucket {b} count {c} vs expected {expected}"
            );
        }
    }
}
