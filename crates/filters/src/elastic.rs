//! ElasticBF-style hotness-aware filter group (Li et al., ATC '19;
//! tutorial Module II.2).
//!
//! Instead of one monolithic Bloom filter per run, the key set is covered
//! by several small independent filter *units*. All units are built (and
//! persisted with the run), but only a subset is held in memory; a lookup
//! probes the enabled units and its FPR is the product of their individual
//! FPRs. Under access skew the engine enables more units for hot runs and
//! fewer for cold ones, getting a lower *weighted* FPR out of the same
//! total memory.

use crate::bloom::BloomFilter;
use crate::hash::hash64_seed;
use crate::traits::PointFilter;

/// A group of independent Bloom-filter units over one key set.
pub struct ElasticFilterGroup {
    units: Vec<BloomFilter>,
    enabled: usize,
    accesses: u64,
    num_keys: usize,
}

impl ElasticFilterGroup {
    /// Builds `num_units` units of `bits_per_key_per_unit` bits each.
    /// Initially `initial_enabled` units are resident.
    pub fn build(
        keys: &[&[u8]],
        num_units: usize,
        bits_per_key_per_unit: f64,
        initial_enabled: usize,
    ) -> Self {
        assert!(num_units > 0, "need at least one unit");
        let units = (0..num_units)
            .map(|u| {
                // each unit hashes with its own seed, making unit FPRs
                // independent
                let hashes: Vec<u64> = keys
                    .iter()
                    .map(|k| hash64_seed(k, 0x5EED_0000 + u as u64))
                    .collect();
                BloomFilter::build_from_hashes(&hashes, bits_per_key_per_unit)
            })
            .collect();
        ElasticFilterGroup {
            units,
            enabled: initial_enabled.clamp(1, num_units),
            accesses: 0,
            num_keys: keys.len(),
        }
    }

    /// Number of units currently resident in memory.
    pub fn enabled_units(&self) -> usize {
        self.enabled
    }

    /// Total number of built units.
    pub fn total_units(&self) -> usize {
        self.units.len()
    }

    /// Lookups served since the last [`Self::take_accesses`].
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Returns and resets the access counter (for the adjustment policy).
    pub fn take_accesses(&mut self) -> u64 {
        std::mem::take(&mut self.accesses)
    }

    /// Enables one more unit if available. Returns whether anything changed.
    pub fn expand(&mut self) -> bool {
        if self.enabled < self.units.len() {
            self.enabled += 1;
            true
        } else {
            false
        }
    }

    /// Disables one unit if more than one is enabled.
    pub fn shrink(&mut self) -> bool {
        if self.enabled > 1 {
            self.enabled -= 1;
            true
        } else {
            false
        }
    }

    /// Probes the enabled units, counting the access.
    pub fn may_contain_counted(&mut self, key: &[u8]) -> bool {
        self.accesses += 1;
        self.probe(key)
    }

    fn probe(&self, key: &[u8]) -> bool {
        self.units[..self.enabled]
            .iter()
            .enumerate()
            .all(|(idx, u)| u.may_contain_hash(hash64_seed(key, 0x5EED_0000 + idx as u64)))
    }

    /// Memory footprint of the *enabled* units only.
    pub fn resident_bits(&self) -> usize {
        self.units[..self.enabled].iter().map(|u| u.size_bits()).sum()
    }
}

impl PointFilter for ElasticFilterGroup {
    fn may_contain(&self, key: &[u8]) -> bool {
        self.probe(key)
    }

    fn size_bits(&self) -> usize {
        self.resident_bits()
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&(self.units.len() as u32).to_le_bytes());
        out.extend_from_slice(&(self.enabled as u32).to_le_bytes());
        for u in &self.units {
            let b = u.to_bytes();
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(&b);
        }
        out
    }
}

/// Rebalances enabled units across a set of groups under a global memory
/// budget: hot groups (more accesses) expand, cold groups shrink. One call
/// performs one greedy move; callers invoke it periodically.
pub fn rebalance_one_step(groups: &mut [ElasticFilterGroup], max_total_bits: usize) -> bool {
    if groups.len() < 2 {
        return false;
    }
    let hottest = (0..groups.len()).max_by_key(|&i| groups[i].accesses).unwrap();
    let coldest = (0..groups.len())
        .filter(|&i| i != hottest)
        .min_by_key(|&i| groups[i].accesses)
        .unwrap();
    if groups[hottest].accesses <= groups[coldest].accesses {
        return false;
    }
    let total: usize = groups.iter().map(|g| g.resident_bits()).sum();
    // expand the hottest; shrink the coldest first if over budget
    if total >= max_total_bits
        && !groups[coldest].shrink() {
            return false;
        }
    groups[hottest].expand()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::empirical_fpr;

    fn keys(range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
        range.map(|i| format!("key{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    #[test]
    fn no_false_negatives_at_any_enablement() {
        let present = keys(0..2000);
        let mut g = ElasticFilterGroup::build(&refs(&present), 4, 3.0, 1);
        for enabled in 1..=4 {
            while g.enabled_units() < enabled {
                g.expand();
            }
            for k in &present {
                assert!(g.may_contain(k), "enabled={enabled}");
            }
        }
    }

    #[test]
    fn more_units_lower_fpr() {
        let present = keys(0..5000);
        let absent = keys(50_000..80_000);
        let mut g = ElasticFilterGroup::build(&refs(&present), 4, 3.0, 1);
        let fpr1 = empirical_fpr(&g, &absent);
        g.expand();
        g.expand();
        g.expand();
        let fpr4 = empirical_fpr(&g, &absent);
        assert!(fpr4 < fpr1, "{fpr4} vs {fpr1}");
    }

    #[test]
    fn expand_and_shrink_bounds() {
        let present = keys(0..100);
        let mut g = ElasticFilterGroup::build(&refs(&present), 3, 4.0, 2);
        assert_eq!(g.enabled_units(), 2);
        assert!(g.expand());
        assert!(!g.expand());
        assert!(g.shrink());
        assert!(g.shrink());
        assert!(!g.shrink(), "never below one unit");
        assert_eq!(g.enabled_units(), 1);
    }

    #[test]
    fn access_counting() {
        let present = keys(0..100);
        let mut g = ElasticFilterGroup::build(&refs(&present), 2, 4.0, 1);
        for k in present.iter().take(10) {
            g.may_contain_counted(k);
        }
        assert_eq!(g.accesses(), 10);
        assert_eq!(g.take_accesses(), 10);
        assert_eq!(g.accesses(), 0);
    }

    #[test]
    fn rebalance_moves_memory_to_hot_group() {
        let a_keys = keys(0..1000);
        let b_keys = keys(1000..2000);
        let mut groups = vec![
            ElasticFilterGroup::build(&refs(&a_keys), 4, 3.0, 2),
            ElasticFilterGroup::build(&refs(&b_keys), 4, 3.0, 2),
        ];
        // group 0 is hot
        for k in a_keys.iter().take(100) {
            groups[0].may_contain_counted(k);
        }
        groups[1].may_contain_counted(&b_keys[0]);
        let budget: usize = groups.iter().map(|g| g.resident_bits()).sum();
        assert!(rebalance_one_step(&mut groups, budget));
        assert_eq!(groups[0].enabled_units(), 3);
        assert_eq!(groups[1].enabled_units(), 1);
    }

    #[test]
    fn rebalance_noop_when_equal_heat() {
        let a_keys = keys(0..100);
        let mut groups = vec![
            ElasticFilterGroup::build(&refs(&a_keys), 2, 3.0, 1),
            ElasticFilterGroup::build(&refs(&a_keys), 2, 3.0, 1),
        ];
        assert!(!rebalance_one_step(&mut groups, usize::MAX));
    }

    #[test]
    fn resident_bits_scale_with_enabled() {
        let present = keys(0..1000);
        let mut g = ElasticFilterGroup::build(&refs(&present), 4, 3.0, 1);
        let one = g.resident_bits();
        g.expand();
        assert_eq!(g.resident_bits(), one * 2);
    }
}
