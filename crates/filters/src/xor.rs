//! Xor filter (Graf & Lemire), a static Bloom-filter replacement.
//!
//! Stores one fingerprint slot per ~1.23 keys in three segments; a query
//! xors three slots and compares against the key's fingerprint. Space is
//! ~9.84 bits/key at an ~0.39% FPR with 8-bit fingerprints — smaller than a
//! Bloom filter of equal FPR, at the cost of a build that needs the whole
//! key set at once (a perfect match for immutable LSM runs, per the
//! tutorial's observation that immutability enables static structures).

use crate::hash::{hash64, hash64_seed, mix64};
use crate::traits::PointFilter;

/// An 8-bit-fingerprint xor filter.
#[derive(Clone, Debug)]
pub struct XorFilter {
    slots: Vec<u8>,
    seed: u64,
    segment_len: usize,
    num_keys: usize,
}

impl XorFilter {
    /// Builds over `keys`. Duplicate keys are deduplicated by hash.
    pub fn build(keys: &[&[u8]]) -> Self {
        let mut hashes: Vec<u64> = keys.iter().map(|k| hash64(k)).collect();
        hashes.sort_unstable();
        hashes.dedup();
        Self::build_from_hashes(&hashes)
    }

    /// Builds from pre-hashed, deduplicated keys.
    pub fn build_from_hashes(hashes: &[u64]) -> Self {
        let n = hashes.len();
        if n == 0 {
            return XorFilter {
                slots: vec![0; 3],
                seed: 0,
                segment_len: 1,
                num_keys: 0,
            };
        }
        let capacity = ((1.23 * n as f64).ceil() as usize + 32).div_ceil(3) * 3;
        let segment_len = capacity / 3;
        let mut seed = 0x8af3_1d7e_u64;
        loop {
            if let Some(slots) = Self::try_construct(hashes, seed, segment_len) {
                return XorFilter {
                    slots,
                    seed,
                    segment_len,
                    num_keys: n,
                };
            }
            seed = mix64(seed);
        }
    }

    #[inline]
    fn idx(h: u64, seed: u64, seg: usize, segment_len: usize) -> usize {
        let hh = mix64(h ^ seed.wrapping_add(seg as u64 * 0x9E37_79B9));
        seg * segment_len + (((hh as u128 * segment_len as u128) >> 64) as usize)
    }

    #[inline]
    fn fingerprint_of(h: u64, seed: u64) -> u8 {
        let f = (mix64(h ^ seed) >> 32) as u8;
        if f == 0 {
            1
        } else {
            f
        }
    }

    fn try_construct(hashes: &[u64], seed: u64, segment_len: usize) -> Option<Vec<u8>> {
        let capacity = segment_len * 3;
        // peeling: count keys per slot, repeatedly remove slots with count 1
        let mut count = vec![0u32; capacity];
        let mut xor_acc = vec![0u64; capacity];
        for &h in hashes {
            for seg in 0..3 {
                let i = Self::idx(h, seed, seg, segment_len);
                count[i] += 1;
                xor_acc[i] ^= h;
            }
        }
        let mut stack: Vec<(usize, u64)> = Vec::with_capacity(hashes.len());
        let mut queue: Vec<usize> = (0..capacity).filter(|&i| count[i] == 1).collect();
        while let Some(i) = queue.pop() {
            if count[i] != 1 {
                continue;
            }
            let h = xor_acc[i];
            stack.push((i, h));
            for seg in 0..3 {
                let j = Self::idx(h, seed, seg, segment_len);
                count[j] -= 1;
                xor_acc[j] ^= h;
                if count[j] == 1 {
                    queue.push(j);
                }
            }
        }
        if stack.len() != hashes.len() {
            return None; // peeling failed; retry with a new seed
        }
        let mut slots = vec![0u8; capacity];
        for &(i, h) in stack.iter().rev() {
            let fp = Self::fingerprint_of(h, seed);
            let mut v = fp;
            for seg in 0..3 {
                let j = Self::idx(h, seed, seg, segment_len);
                if j != i {
                    v ^= slots[j];
                }
            }
            slots[i] = v;
        }
        Some(slots)
    }

    /// Probes with a precomputed base hash.
    pub fn may_contain_hash(&self, h: u64) -> bool {
        if self.num_keys == 0 {
            return false;
        }
        let fp = Self::fingerprint_of(h, self.seed);
        let mut v = 0u8;
        for seg in 0..3 {
            v ^= self.slots[Self::idx(h, self.seed, seg, self.segment_len)];
        }
        v == fp
    }

    /// The seed the successful construction used.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl PointFilter for XorFilter {
    fn may_contain(&self, key: &[u8]) -> bool {
        self.may_contain_hash(hash64(key))
    }

    fn size_bits(&self) -> usize {
        self.slots.len() * 8
    }

    fn num_keys(&self) -> usize {
        self.num_keys
    }

    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.slots.len());
        out.extend_from_slice(&self.seed.to_le_bytes());
        out.extend_from_slice(&(self.num_keys as u32).to_le_bytes());
        out.extend_from_slice(&(self.segment_len as u32).to_le_bytes());
        out.extend_from_slice(&self.slots);
        out
    }
}

impl XorFilter {
    /// Deserializes a filter produced by [`PointFilter::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 16 {
            return None;
        }
        let seed = u64::from_le_bytes(bytes[0..8].try_into().ok()?);
        let num_keys = u32::from_le_bytes(bytes[8..12].try_into().ok()?) as usize;
        let segment_len = u32::from_le_bytes(bytes[12..16].try_into().ok()?) as usize;
        let slots = bytes[16..].to_vec();
        if slots.len() != segment_len * 3 {
            return None;
        }
        Some(XorFilter {
            slots,
            seed,
            segment_len,
            num_keys,
        })
    }

    /// Internal helper exposed for the shared-hash experiment: hash with a
    /// per-filter seed.
    pub fn hash_key(key: &[u8], seed: u64) -> u64 {
        hash64_seed(key, seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bloom::empirical_fpr;

    fn keys(range: std::ops::Range<usize>) -> Vec<Vec<u8>> {
        range.map(|i| format!("key{i:08}").into_bytes()).collect()
    }

    fn refs(keys: &[Vec<u8>]) -> Vec<&[u8]> {
        keys.iter().map(|k| k.as_slice()).collect()
    }

    #[test]
    fn no_false_negatives() {
        let present = keys(0..20_000);
        let f = XorFilter::build(&refs(&present));
        for k in &present {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn fpr_close_to_theory() {
        let present = keys(0..20_000);
        let absent = keys(100_000..160_000);
        let f = XorFilter::build(&refs(&present));
        let fpr = empirical_fpr(&f, &absent);
        // 8-bit fingerprints: theoretical FPR = 1/256 ≈ 0.39%
        assert!(fpr < 0.012, "fpr {fpr}");
    }

    #[test]
    fn space_is_about_9_84_bits_per_key() {
        let present = keys(0..50_000);
        let f = XorFilter::build(&refs(&present));
        let bpk = f.bits_per_key();
        assert!((9.5..10.5).contains(&bpk), "bits/key {bpk}");
    }

    #[test]
    fn handles_duplicates() {
        let mut present = keys(0..100);
        present.extend(keys(0..100));
        let f = XorFilter::build(&refs(&present));
        for k in &present {
            assert!(f.may_contain(k));
        }
    }

    #[test]
    fn empty_filter_rejects_everything() {
        let f = XorFilter::build(&[]);
        assert!(!f.may_contain(b"x"));
        assert_eq!(f.num_keys(), 0);
    }

    #[test]
    fn single_key() {
        let f = XorFilter::build(&[b"only".as_slice()]);
        assert!(f.may_contain(b"only"));
        let absent = keys(0..2000);
        let fpr = empirical_fpr(&f, &absent);
        assert!(fpr < 0.02, "{fpr}");
    }

    #[test]
    fn serialization_roundtrip() {
        let present = keys(0..5000);
        let f = XorFilter::build(&refs(&present));
        let g = XorFilter::from_bytes(&f.to_bytes()).unwrap();
        for k in keys(0..10_000) {
            assert_eq!(f.may_contain(&k), g.may_contain(&k));
        }
        assert_eq!(f.seed(), g.seed());
    }

    #[test]
    fn from_bytes_rejects_bad_length() {
        let present = keys(0..100);
        let f = XorFilter::build(&refs(&present));
        let mut bytes = f.to_bytes();
        bytes.pop();
        assert!(XorFilter::from_bytes(&bytes).is_none());
    }
}
