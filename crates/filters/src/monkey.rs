//! Monkey's optimal filter-memory allocation (Dayan, Athanassoulis, Idreos,
//! SIGMOD '17; tutorial Module II.5).
//!
//! Production engines give every level the same bits per key. Monkey
//! instead minimizes the *sum of false-positive rates* across levels —
//! which is what a zero-result point lookup pays — subject to a total
//! memory budget. The Lagrangian condition is that `n_i * p_i` is equal
//! across levels, so smaller (younger) levels get exponentially lower FPRs
//! and the huge last level gets most of the false positives. This is why
//! Monkey's lookup cost is O(1) in expectation rather than O(L).

/// The outcome of an allocation: bits per key and the modeled FPR for each
/// level, youngest first.
#[derive(Clone, Debug, PartialEq)]
pub struct MonkeyAllocation {
    /// Bits per key assigned to each level.
    pub bits_per_key: Vec<f64>,
    /// Modeled FPR of each level's filter.
    pub fpr: Vec<f64>,
}

impl MonkeyAllocation {
    /// Sum of per-level FPRs — the expected number of superfluous probes
    /// for a zero-result point lookup.
    pub fn expected_false_probes(&self) -> f64 {
        self.fpr.iter().sum()
    }

    /// Total memory in bits given per-level key counts.
    pub fn total_bits(&self, keys_per_level: &[u64]) -> f64 {
        self.bits_per_key
            .iter()
            .zip(keys_per_level)
            .map(|(b, &n)| b * n as f64)
            .sum()
    }
}

const LN2_SQ: f64 = std::f64::consts::LN_2 * std::f64::consts::LN_2;

/// FPR of a Bloom filter given bits per key (the standard approximation
/// `e^{-b ln²2}`).
pub fn bloom_fpr(bits_per_key: f64) -> f64 {
    if bits_per_key <= 0.0 {
        1.0
    } else {
        (-bits_per_key * LN2_SQ).exp()
    }
}

/// Bits per key needed for a target FPR (inverse of [`bloom_fpr`]).
pub fn bloom_bits_for_fpr(fpr: f64) -> f64 {
    if fpr >= 1.0 {
        0.0
    } else {
        -fpr.ln() / LN2_SQ
    }
}

/// Uniform baseline: every level gets `total_bits / total_keys` bits per key.
pub fn uniform_allocation(keys_per_level: &[u64], total_bits: f64) -> MonkeyAllocation {
    let total_keys: u64 = keys_per_level.iter().sum();
    let bpk = if total_keys == 0 {
        0.0
    } else {
        total_bits / total_keys as f64
    };
    MonkeyAllocation {
        bits_per_key: keys_per_level.iter().map(|_| bpk).collect(),
        fpr: keys_per_level.iter().map(|_| bloom_fpr(bpk)).collect(),
    }
}

/// Monkey's optimal allocation.
///
/// Minimizes `Σ p_i` subject to `Σ n_i * bits(p_i) = total_bits` and
/// `p_i ≤ 1`. Setting the Lagrangian derivative `1 - λ n_i / (p_i ln²2)`
/// to zero gives `p_i ∝ n_i`: bigger (older) levels get *higher* FPRs,
/// because one bit per key there buys the same FPR improvement but costs
/// `T×` more memory than on a smaller level. Levels whose optimal `p_i`
/// would exceed 1 are clamped to 1 (no filter built). The proportionality
/// constant is found by binary search on the memory constraint.
pub fn monkey_allocation(keys_per_level: &[u64], total_bits: f64) -> MonkeyAllocation {
    let l = keys_per_level.len();
    if l == 0 {
        return MonkeyAllocation {
            bits_per_key: vec![],
            fpr: vec![],
        };
    }
    if total_bits <= 0.0 {
        return MonkeyAllocation {
            bits_per_key: vec![0.0; l],
            fpr: vec![1.0; l],
        };
    }
    // memory used if every level's FPR is min(1, c * n_i)
    let bits_used = |c: f64| -> f64 {
        keys_per_level
            .iter()
            .map(|&n| {
                if n == 0 {
                    return 0.0;
                }
                let p = (c * n as f64).min(1.0);
                n as f64 * bloom_bits_for_fpr(p)
            })
            .sum()
    };
    // larger c → higher FPRs → less memory; geometric binary search since
    // c spans many decades
    let (mut lo, mut hi) = (1e-300_f64, 1.0_f64);
    for _ in 0..500 {
        let mid = (lo * hi).sqrt();
        if bits_used(mid) > total_bits {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let c = hi;
    let fpr: Vec<f64> = keys_per_level
        .iter()
        .map(|&n| if n == 0 { 1.0 } else { (c * n as f64).min(1.0) })
        .collect();
    let bits_per_key: Vec<f64> = fpr.iter().map(|&p| bloom_bits_for_fpr(p)).collect();
    MonkeyAllocation { bits_per_key, fpr }
}

/// Per-level key counts for a leveled LSM with `levels` levels, size ratio
/// `t`, and `n0` keys in the first storage level. Helper shared by tests,
/// the model crate, and experiments.
pub fn geometric_level_sizes(n0: u64, t: u64, levels: usize) -> Vec<u64> {
    let mut sizes = Vec::with_capacity(levels);
    let mut n = n0;
    for _ in 0..levels {
        sizes.push(n);
        n = n.saturating_mul(t);
    }
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bloom_fpr_inverse_roundtrip() {
        for bpk in [1.0, 5.0, 10.0, 16.0] {
            let p = bloom_fpr(bpk);
            let back = bloom_bits_for_fpr(p);
            assert!((back - bpk).abs() < 1e-9, "{bpk} -> {p} -> {back}");
        }
        assert_eq!(bloom_fpr(0.0), 1.0);
        assert_eq!(bloom_bits_for_fpr(1.0), 0.0);
    }

    #[test]
    fn monkey_respects_budget() {
        let sizes = geometric_level_sizes(1_000, 10, 5);
        let budget = 10.0 * sizes.iter().sum::<u64>() as f64;
        let alloc = monkey_allocation(&sizes, budget);
        let used = alloc.total_bits(&sizes);
        assert!(used <= budget * 1.001, "used {used} budget {budget}");
        assert!(used >= budget * 0.95, "under-spends: {used} of {budget}");
    }

    #[test]
    fn monkey_beats_uniform_in_modeled_cost() {
        let sizes = geometric_level_sizes(10_000, 10, 6);
        let budget = 8.0 * sizes.iter().sum::<u64>() as f64;
        let monkey = monkey_allocation(&sizes, budget);
        let uniform = uniform_allocation(&sizes, budget);
        assert!(
            monkey.expected_false_probes() < uniform.expected_false_probes(),
            "monkey {} vs uniform {}",
            monkey.expected_false_probes(),
            uniform.expected_false_probes()
        );
    }

    #[test]
    fn monkey_gives_smaller_levels_more_bits() {
        let sizes = geometric_level_sizes(1_000, 10, 5);
        let alloc = monkey_allocation(&sizes, 10.0 * sizes.iter().sum::<u64>() as f64);
        for w in alloc.bits_per_key.windows(2) {
            assert!(w[0] >= w[1] - 1e-9, "bits must be non-increasing: {:?}", alloc.bits_per_key);
        }
        // strictly more for the first vs last
        assert!(alloc.bits_per_key[0] > alloc.bits_per_key[4] + 1.0);
    }

    #[test]
    fn lagrangian_condition_holds_for_unclamped_levels() {
        let sizes = geometric_level_sizes(1_000, 10, 5);
        let alloc = monkey_allocation(&sizes, 12.0 * sizes.iter().sum::<u64>() as f64);
        // p_i / n_i equal across unclamped levels
        let ratios: Vec<f64> = sizes
            .iter()
            .zip(&alloc.fpr)
            .filter(|(_, &p)| p < 1.0)
            .map(|(&n, &p)| p / n as f64)
            .collect();
        for w in ratios.windows(2) {
            assert!((w[0] - w[1]).abs() / w[0] < 1e-3, "ratios differ: {ratios:?}");
        }
    }

    #[test]
    fn tiny_budget_clamps_large_levels_to_no_filter() {
        let sizes = geometric_level_sizes(1_000, 10, 5);
        // only enough memory for ~0.2 bits/key overall
        let alloc = monkey_allocation(&sizes, 0.2 * sizes.iter().sum::<u64>() as f64);
        assert!(
            (alloc.fpr.last().unwrap() - 1.0).abs() < 1e-6,
            "largest level should be unfiltered: {:?}",
            alloc.fpr
        );
        assert!(alloc.fpr[0] < 1.0, "smallest level should keep a filter");
    }

    #[test]
    fn zero_budget_means_no_filters() {
        let sizes = vec![100, 1000];
        let alloc = monkey_allocation(&sizes, 0.0);
        assert_eq!(alloc.fpr, vec![1.0, 1.0]);
        assert_eq!(alloc.bits_per_key, vec![0.0, 0.0]);
    }

    #[test]
    fn empty_levels() {
        let alloc = monkey_allocation(&[], 100.0);
        assert!(alloc.bits_per_key.is_empty());
        let u = uniform_allocation(&[], 100.0);
        assert!(u.bits_per_key.is_empty());
    }

    #[test]
    fn uniform_allocation_is_uniform() {
        let sizes = vec![10, 100, 1000];
        let alloc = uniform_allocation(&sizes, 11_100.0);
        for b in &alloc.bits_per_key {
            assert!((b - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn geometric_level_sizes_grow_by_t() {
        assert_eq!(geometric_level_sizes(5, 3, 4), vec![5, 15, 45, 135]);
    }

    #[test]
    fn monkey_advantage_grows_with_levels() {
        // with one level, Monkey == uniform; with many, it wins big
        let one = geometric_level_sizes(1000, 10, 1);
        let many = geometric_level_sizes(1000, 10, 6);
        let b1 = 10.0 * one.iter().sum::<u64>() as f64;
        let bm = 10.0 * many.iter().sum::<u64>() as f64;
        let ratio_one = uniform_allocation(&one, b1).expected_false_probes()
            / monkey_allocation(&one, b1).expected_false_probes();
        let ratio_many = uniform_allocation(&many, bm).expected_false_probes()
            / monkey_allocation(&many, bm).expected_false_probes();
        assert!(ratio_one < 1.05, "single level ratio {ratio_one}");
        assert!(ratio_many > ratio_one, "{ratio_many} vs {ratio_one}");
    }
}
