//! Property-based tests: the one invariant every filter must uphold is
//! **zero false negatives** over arbitrary key sets, plus soundness of the
//! range filters over arbitrary ranges.

use std::ops::Bound;

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_filters::{
    BlockedBloomFilter, BloomFilter, CuckooFilter, FilterKind, PointFilter, RangeFilterKind,
    RibbonFilter, RosettaFilter, SnarfFilter, XorFilter,
};

fn arb_keys() -> impl Strategy<Value = Vec<Vec<u8>>> {
    vec(vec(any::<u8>(), 0..24), 1..200)
}

fn dedup_sorted(mut keys: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
    keys.sort();
    keys.dedup();
    keys
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bloom_no_false_negatives(keys in arb_keys(), bpk in 1.0f64..20.0) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = BloomFilter::build(&refs, bpk);
        for k in &keys {
            prop_assert!(f.may_contain(k));
        }
    }

    #[test]
    fn blocked_bloom_no_false_negatives(keys in arb_keys(), bpk in 1.0f64..20.0) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = BlockedBloomFilter::build(&refs, bpk);
        for k in &keys {
            prop_assert!(f.may_contain(k));
        }
    }

    #[test]
    fn cuckoo_no_false_negatives(keys in arb_keys(), bpk in 6.0f64..18.0) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = CuckooFilter::build(&refs, bpk);
        for k in &keys {
            prop_assert!(f.may_contain(k));
        }
    }

    #[test]
    fn xor_no_false_negatives(keys in arb_keys()) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = XorFilter::build(&refs);
        for k in &keys {
            prop_assert!(f.may_contain(k));
        }
    }

    #[test]
    fn ribbon_no_false_negatives(keys in arb_keys(), r in 4u32..12) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = RibbonFilter::build_with_result_bits(&refs, r);
        for k in &keys {
            prop_assert!(f.may_contain(k));
        }
    }

    #[test]
    fn serialization_preserves_bloom_answers(keys in arb_keys(), probes in arb_keys()) {
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = BloomFilter::build(&refs, 10.0);
        let g = BloomFilter::from_bytes(&f.to_bytes()).unwrap();
        for k in keys.iter().chain(probes.iter()) {
            prop_assert_eq!(f.may_contain(k), g.may_contain(k));
        }
    }

    #[test]
    fn all_point_kinds_via_registry(keys in arb_keys()) {
        for kind in FilterKind::ALL {
            let f = kind.build(&keys, 10.0).unwrap();
            for k in &keys {
                prop_assert!(f.may_contain(k), "{}", kind.label());
            }
        }
    }

    #[test]
    fn rosetta_sound_on_u64_ranges(
        values in vec(any::<u64>(), 1..100),
        spans in vec((any::<u64>(), 0u64..1000), 1..20),
    ) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let f = RosettaFilter::build_from_u64(&sorted, sorted.len(), 20.0);
        // every range that truly contains a key must answer true
        for (start, width) in spans {
            let lo = start;
            let hi = start.saturating_add(width);
            let truly = sorted.iter().any(|&v| v >= lo && v <= hi);
            if truly {
                prop_assert!(f.may_overlap_u64(lo, hi));
            }
        }
        for &v in &sorted {
            prop_assert!(f.may_overlap_u64(v, v));
        }
    }

    #[test]
    fn snarf_sound_on_u64_ranges(
        values in vec(any::<u64>(), 1..100),
        spans in vec((any::<u64>(), 0u64..1000), 1..20),
    ) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let f = SnarfFilter::build_from_sorted_u64(&sorted, 10.0);
        for (start, width) in spans {
            let lo = start;
            let hi = start.saturating_add(width);
            let truly = sorted.iter().any(|&v| v >= lo && v <= hi);
            if truly {
                prop_assert!(f.may_overlap_u64(lo, hi));
            }
        }
    }

    #[test]
    fn surf_sound_on_byte_ranges(
        keys in arb_keys(),
        ranges in vec((vec(any::<u8>(), 0..10), vec(any::<u8>(), 0..10)), 1..20),
        suffix_bits in 0usize..16,
    ) {
        let sorted = dedup_sorted(keys);
        let refs: Vec<&[u8]> = sorted.iter().map(|k| k.as_slice()).collect();
        let kind = RangeFilterKind::Surf { suffix_bits };
        let f = kind.build(&refs, 10.0).unwrap();
        for k in &sorted {
            prop_assert!(f.may_contain_point(k));
        }
        for (a, b) in ranges {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let truly = sorted.iter().any(|k| k >= &lo && k <= &hi);
            if truly {
                prop_assert!(
                    f.may_overlap(Bound::Included(lo.as_slice()), Bound::Included(hi.as_slice())),
                    "range {:?}..{:?} lost", lo, hi
                );
            }
        }
    }

    #[test]
    fn prefix_bloom_sound(
        keys in arb_keys(),
        prefix_len in 1usize..8,
    ) {
        let sorted = dedup_sorted(keys);
        let refs: Vec<&[u8]> = sorted.iter().map(|k| k.as_slice()).collect();
        let kind = RangeFilterKind::PrefixBloom { prefix_len };
        let f = kind.build(&refs, 12.0).unwrap();
        for k in &sorted {
            prop_assert!(f.may_contain_point(k));
        }
        // single-key ranges must also be found
        for k in &sorted {
            prop_assert!(f.may_overlap(Bound::Included(k.as_slice()), Bound::Included(k.as_slice())));
        }
    }
}
