//! Histogram property tests (satellite: proptest via the offline stub).
//!
//! Properties checked, per the issue:
//! - merge(a, b) quantiles are bounded by the input quantiles,
//! - counts are exact,
//! - bucket boundaries are monotone,
//! - snapshot/delta round-trips match `IoStatsSnapshot::delta_since`
//!   semantics (saturating, `earlier.merge(delta) == later`).

use lsm_obs::histogram::{bucket_bound, Histogram, HistogramSnapshot, BUCKETS};
use proptest::collection::vec;
use proptest::prelude::*;

fn hist_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn counts_are_exact(values in vec(0u64..u64::MAX, 0..200)) {
        let s = hist_of(&values);
        prop_assert_eq!(s.count, values.len() as u64);
        prop_assert_eq!(s.buckets.iter().sum::<u64>(), values.len() as u64);
        let sum: u64 = values.iter().fold(0u64, |a, &v| a.wrapping_add(v));
        prop_assert_eq!(s.sum, sum);
        if let Some(&max) = values.iter().max() {
            prop_assert_eq!(s.max, max);
            prop_assert_eq!(s.min, *values.iter().min().unwrap());
        }
    }

    #[test]
    fn merge_quantiles_bound_inputs(
        a in vec(0u64..1_000_000_000, 1..120),
        b in vec(0u64..1_000_000_000, 1..120),
        p_millis in 1u64..1000,
    ) {
        let p = p_millis as f64 / 1000.0;
        let sa = hist_of(&a);
        let sb = hist_of(&b);
        let qa = sa.quantile(p);
        let qb = sb.quantile(p);
        let mut merged = sa;
        merged.merge(&sb);
        let qm = merged.quantile(p);
        prop_assert!(
            qa.min(qb) <= qm && qm <= qa.max(qb),
            "p={}: merged quantile {} outside [{}, {}]",
            p, qm, qa.min(qb), qa.max(qb)
        );
    }

    #[test]
    fn merge_count_and_extremes(
        a in vec(0u64..u64::MAX, 0..100),
        b in vec(0u64..u64::MAX, 0..100),
    ) {
        let sa = hist_of(&a);
        let sb = hist_of(&b);
        let mut merged = sa;
        merged.merge(&sb);
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, hist_of(&all));
    }

    #[test]
    fn delta_round_trips_like_iostats(
        first in vec(0u64..1_000_000, 0..100),
        more in vec(0u64..1_000_000, 0..100),
    ) {
        // one histogram observed at two points in time
        let h = Histogram::new();
        for &v in &first {
            h.record(v);
        }
        let early = h.snapshot();
        for &v in &more {
            h.record(v);
        }
        let late = h.snapshot();

        let delta = late.delta_since(&early);
        prop_assert_eq!(delta.count, more.len() as u64);

        // IoStatsSnapshot::delta_since semantics: earlier + delta == later
        let mut rebuilt = early;
        rebuilt.merge(&delta);
        prop_assert_eq!(rebuilt, late);

        // and the reverse delta saturates to zero counts, never wraps
        let rev = early.delta_since(&late);
        prop_assert_eq!(rev.count, 0);
        prop_assert!(rev.buckets.iter().all(|&c| c == 0));
    }

    #[test]
    fn quantile_is_an_upper_bound_for_its_rank(
        values in vec(0u64..1_000_000_000, 1..150),
        p_millis in 1u64..1000,
    ) {
        let p = p_millis as f64 / 1000.0;
        let s = hist_of(&values);
        let q = s.quantile(p);
        let rank = ((p * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let mut sorted = values.clone();
        sorted.sort_unstable();
        // the nearest-rank sample fits inside the reported bucket bound
        prop_assert!(sorted[rank - 1] <= q);
    }
}

#[test]
fn bucket_boundaries_are_monotone() {
    for i in 1..BUCKETS {
        assert!(bucket_bound(i) > bucket_bound(i - 1), "bucket {i}");
    }
    assert_eq!(bucket_bound(0), 0);
    assert_eq!(bucket_bound(BUCKETS - 1), u64::MAX);
}
