//! # lsm-obs
//!
//! Engine observability primitives, dependency-free so every other crate
//! in the workspace can use them: a lock-free metrics registry
//! ([`MetricsRegistry`]: monotonic [`Counter`]s, [`Gauge`]s, and
//! fixed-bucket log-scale latency [`Histogram`]s), a bounded structured
//! [`EventRing`] drainable as typed [`Event`]s and dumpable as JSON
//! lines, and the shared [`DeltaSince`] snapshot-subtraction used by
//! every counter block in the workspace.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Under `BackgroundMode::Inline` the engine times
//!    operations with the simulated device clock, so two runs of the
//!    same workload produce *byte-identical* metrics snapshots.
//!    Everything here that orders output does so with `BTreeMap`s, and
//!    quantiles are computed from fixed bucket boundaries, never from
//!    sampling.
//! 2. **Hot-path cost.** Recording into a counter or histogram is a
//!    handful of relaxed atomic adds; no locks, no allocation. The only
//!    mutex in the crate guards the event ring, which is touched by
//!    maintenance-rate (not per-key-rate) code paths.
//! 3. **No dependencies.** JSON is emitted and validated by the tiny
//!    hand-rolled [`json`] module; this crate must stay importable from
//!    `lsm-storage` without cycles.

pub mod events;
pub mod histogram;
pub mod json;
pub mod registry;

pub use events::{Event, EventKind, EventRing, StallReason};
pub use histogram::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, MetricsRegistry, MetricsSnapshot};

/// Counter-wise snapshot subtraction: `self - earlier`, saturating at
/// zero so a reset between snapshots cannot produce nonsense.
///
/// One implementation shared by `IoStatsSnapshot`, `DbStatsSnapshot`,
/// and [`MetricsSnapshot`] (they previously each hand-rolled the same
/// field-by-field `saturating_sub`). Use [`impl_delta_since!`] to derive
/// both the trait impl and a plain inherent `delta_since` method for a
/// struct of deltable fields.
pub trait DeltaSince {
    /// Returns the change between `earlier` and `self`.
    fn delta_since(&self, earlier: &Self) -> Self;
}

impl DeltaSince for u64 {
    fn delta_since(&self, earlier: &Self) -> Self {
        self.saturating_sub(*earlier)
    }
}

impl<T: DeltaSince + Copy + Default, const N: usize> DeltaSince for [T; N] {
    fn delta_since(&self, earlier: &Self) -> Self {
        let mut out = [T::default(); N];
        for (i, slot) in out.iter_mut().enumerate() {
            *slot = self[i].delta_since(&earlier[i]);
        }
        out
    }
}

/// Derives [`DeltaSince`] for a struct whose named fields all implement
/// it, plus an inherent `pub fn delta_since` so call sites don't need
/// the trait in scope:
///
/// ```
/// #[derive(Clone, Copy, Default, PartialEq, Debug)]
/// struct Snap { reads: u64, writes: u64 }
/// lsm_obs::impl_delta_since!(Snap { reads, writes });
///
/// let a = Snap { reads: 2, writes: 7 };
/// let b = Snap { reads: 5, writes: 7 };
/// assert_eq!(b.delta_since(&a), Snap { reads: 3, writes: 0 });
/// assert_eq!(a.delta_since(&b), Snap::default()); // saturates
/// ```
#[macro_export]
macro_rules! impl_delta_since {
    ($name:ident { $($field:ident),+ $(,)? }) => {
        impl $crate::DeltaSince for $name {
            fn delta_since(&self, earlier: &Self) -> Self {
                $name {
                    $($field: $crate::DeltaSince::delta_since(
                        &self.$field,
                        &earlier.$field,
                    ),)+
                }
            }
        }

        impl $name {
            /// Counter-wise difference `self - earlier`; every field
            /// saturates at zero (shared `lsm-obs` delta semantics).
            pub fn delta_since(&self, earlier: &$name) -> $name {
                <$name as $crate::DeltaSince>::delta_since(self, earlier)
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
    struct Snap {
        a: u64,
        b: u64,
        nested: [u64; 3],
    }
    impl_delta_since!(Snap { a, b, nested });

    #[test]
    fn macro_generates_saturating_delta() {
        let first = Snap {
            a: 10,
            b: 3,
            nested: [1, 2, 3],
        };
        let second = Snap {
            a: 15,
            b: 1,
            nested: [4, 2, 10],
        };
        let d = second.delta_since(&first);
        assert_eq!(
            d,
            Snap {
                a: 5,
                b: 0,
                nested: [3, 0, 7],
            }
        );
    }

    #[test]
    fn trait_and_inherent_agree() {
        let first = Snap {
            a: 1,
            ..Default::default()
        };
        let second = Snap {
            a: 9,
            ..Default::default()
        };
        assert_eq!(
            second.delta_since(&first),
            DeltaSince::delta_since(&second, &first)
        );
    }
}
