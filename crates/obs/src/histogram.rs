//! Fixed-bucket log-scale latency histograms.
//!
//! Bucket `i` covers values whose binary magnitude is `i`: bucket 0
//! holds exactly `{0}`, and bucket `i ≥ 1` covers `[2^(i-1), 2^i)`
//! nanoseconds. 64 buckets span the full `u64` range, so recording
//! never clips and the layout never depends on observed data — two runs
//! that record the same values produce identical snapshots, which is
//! what makes Inline-mode metrics byte-reproducible.
//!
//! Quantiles are *bucket upper bounds* (the largest value the bucket
//! can hold), not interpolations. That keeps them deterministic and
//! gives the merge bound the property tests rely on: because the merged
//! cumulative distribution lies pointwise between the inputs', the
//! merged p-quantile bucket lies between the inputs' p-quantile
//! buckets.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::DeltaSince;

/// Number of buckets; one per binary magnitude of a `u64`.
pub const BUCKETS: usize = 64;

/// Bucket index for a recorded value.
#[inline]
fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

/// Inclusive upper bound of bucket `i` (the quantile representative).
#[inline]
pub fn bucket_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

/// A thread-safe log-scale histogram. Recording is a few relaxed atomic
/// adds; reading is only ever done through [`Histogram::snapshot`].
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    /// Stored as `u64::MAX - min` so zero means "no samples".
    inv_min: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            inv_min: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Fresh empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value (typically nanoseconds).
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.inv_min.fetch_max(u64::MAX - v, Ordering::Relaxed);
    }

    /// Point-in-time copy. Concurrent recording may tear across fields
    /// (count vs. buckets) by a handful of samples; within Inline mode
    /// snapshots are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut s = HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            min: 0,
            buckets: [0; BUCKETS],
        };
        let inv = self.inv_min.load(Ordering::Relaxed);
        if s.count > 0 {
            s.min = u64::MAX - inv;
        }
        for (i, b) in self.buckets.iter().enumerate() {
            s.buckets[i] = b.load(Ordering::Relaxed);
        }
        s
    }
}

/// Immutable copy of a [`Histogram`]; mergeable and deltable.
#[derive(Clone, Copy)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see module docs for the layout).
    pub buckets: [u64; BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all recorded values (wrapping only past `u64::MAX` total).
    pub sum: u64,
    /// Largest recorded value (exact, not bucketed).
    pub max: u64,
    /// Smallest recorded value (exact); 0 when `count == 0`.
    pub min: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
            min: 0,
        }
    }
}

impl PartialEq for HistogramSnapshot {
    fn eq(&self, other: &Self) -> bool {
        self.buckets == other.buckets
            && self.count == other.count
            && self.sum == other.sum
            && self.max == other.max
            && self.min == other.min
    }
}
impl Eq for HistogramSnapshot {}

impl std::fmt::Debug for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramSnapshot")
            .field("count", &self.count)
            .field("sum", &self.sum)
            .field("min", &self.min)
            .field("max", &self.max)
            .field("p50", &self.p50())
            .field("p99", &self.p99())
            .finish()
    }
}

impl HistogramSnapshot {
    /// Nearest-rank quantile: the upper bound of the bucket holding the
    /// `ceil(p·count)`-th smallest sample. Returns 0 for an empty
    /// histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i);
            }
        }
        bucket_bound(BUCKETS - 1)
    }

    /// Median (see [`Self::quantile`]).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Adds `other`'s samples into `self`. Exact for buckets, count,
    /// and sum; max/min combine as watermarks.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (i, &c) in other.buckets.iter().enumerate() {
            self.buckets[i] += c;
        }
        self.count += other.count;
        self.sum = self.sum.wrapping_add(other.sum);
        self.max = self.max.max(other.max);
        self.min = match (self.count - other.count > 0, other.count > 0) {
            (true, true) => self.min.min(other.min),
            (false, true) => other.min,
            _ => self.min,
        };
    }
}

impl DeltaSince for HistogramSnapshot {
    /// Sample-wise difference: buckets, count, and sum subtract
    /// (saturating); `max`/`min` are high/low watermarks since process
    /// start and carry over from `self`, which makes
    /// `earlier.merge(&later.delta_since(&earlier)) == later` hold —
    /// the same round-trip contract as `IoStatsSnapshot::delta_since`.
    fn delta_since(&self, earlier: &Self) -> Self {
        HistogramSnapshot {
            buckets: self.buckets.delta_since(&earlier.buckets),
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
            min: self.min,
        }
    }
}

impl HistogramSnapshot {
    /// Inherent mirror of the [`DeltaSince`] impl (callers don't need
    /// the trait in scope).
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        <Self as DeltaSince>::delta_since(self, earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        // boundaries are strictly monotone
        for i in 1..BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1), "bucket {i}");
        }
        // every value lands in the bucket whose bound covers it
        for v in [0u64, 1, 2, 5, 100, 1023, 1024, 1 << 40, u64::MAX] {
            assert!(v <= bucket_bound(bucket_of(v)), "{v}");
            if bucket_of(v) > 0 {
                assert!(v > bucket_bound(bucket_of(v) - 1), "{v}");
            }
        }
    }

    #[test]
    fn quantiles_and_watermarks() {
        let h = Histogram::new();
        for v in [10u64, 20, 30, 40, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1100);
        assert_eq!(s.max, 1000);
        assert_eq!(s.min, 10);
        // rank 3 of 5 → 30's bucket [16,32) → bound 31
        assert_eq!(s.p50(), 31);
        // rank 5 → 1000's bucket [512,1024) → bound 1023
        assert_eq!(s.p99(), 1023);
        assert_eq!(HistogramSnapshot::default().p50(), 0);
    }

    #[test]
    fn merge_is_exact_for_counts() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..100u64 {
            a.record(v);
            b.record(v * 1000);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 200);
        assert_eq!(m.max, 99_000);
        assert_eq!(m.min, 0);
    }

    #[test]
    fn delta_round_trips_through_merge() {
        let h = Histogram::new();
        for v in [5u64, 50, 500] {
            h.record(v);
        }
        let first = h.snapshot();
        for v in [2u64, 5000] {
            h.record(v);
        }
        let second = h.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.count, 2);
        let mut merged = first;
        merged.merge(&delta);
        assert_eq!(merged, second);
    }
}
