//! Minimal JSON emission and validation.
//!
//! The workspace has no serde (offline build), so metrics snapshots and
//! events serialize through this hand-rolled writer, and the bench
//! tooling validates emitted `*.metrics.jsonl` artifacts with the
//! validator here (see `lsm-bench`'s `metrics_lint` binary). Only the
//! subset of JSON the emitters produce is supported on the write side;
//! the validator accepts any RFC 8259 document.

/// Escapes a string for inclusion in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Incremental JSON object writer; field order is caller-controlled and
/// therefore deterministic.
pub struct JsonObj {
    buf: String,
    first: bool,
}

impl JsonObj {
    /// Starts an object (`{`).
    pub fn new() -> Self {
        JsonObj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, name: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\":");
    }

    /// Adds an unsigned integer field.
    pub fn u64(mut self, name: &str, v: u64) -> Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn i64(mut self, name: &str, v: i64) -> Self {
        self.key(name);
        self.buf.push_str(&v.to_string());
        self
    }

    /// Adds a string field.
    pub fn str(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        self.buf.push('"');
        self.buf.push_str(&escape(v));
        self.buf.push('"');
        self
    }

    /// Adds a pre-serialized JSON value verbatim.
    pub fn raw(mut self, name: &str, v: &str) -> Self {
        self.key(name);
        self.buf.push_str(v);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        Self::new()
    }
}

/// Validates one JSON value; returns the error position on failure.
pub fn validate_json(text: &str) -> Result<(), String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(())
}

/// Validates newline-delimited JSON; returns the number of non-empty
/// lines, or the first offending line.
pub fn validate_json_lines(text: &str) -> Result<usize, String> {
    let mut n = 0usize;
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        validate_json(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        n += 1;
    }
    Ok(n)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn value(b: &[u8], pos: &mut usize) -> Result<(), String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, "true"),
        Some(b'f') => literal(b, pos, "false"),
        Some(b'n') => literal(b, pos, "null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => Err(format!("expected a value at byte {}", *pos)),
    }
}

fn object(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'{')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(());
    }
    loop {
        skip_ws(b, pos);
        string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'[')?;
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(());
    }
    loop {
        value(b, pos)?;
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(());
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> Result<(), String> {
    expect(b, pos, b'"')?;
    while *pos < b.len() {
        match b[*pos] {
            b'"' => {
                *pos += 1;
                return Ok(());
            }
            b'\\' => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                    Some(b'u') => {
                        *pos += 1;
                        for _ in 0..4 {
                            if !b.get(*pos).is_some_and(u8::is_ascii_hexdigit) {
                                return Err(format!("bad \\u escape at byte {}", *pos));
                            }
                            *pos += 1;
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos)),
                }
            }
            c if c < 0x20 => return Err(format!("raw control byte at {}", *pos)),
            _ => *pos += 1,
        }
    }
    Err("unterminated string".into())
}

fn number(b: &[u8], pos: &mut usize) -> Result<(), String> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let digits = |b: &[u8], pos: &mut usize| {
        let s = *pos;
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
        *pos > s
    };
    if !digits(b, pos) {
        return Err(format!("bad number at byte {start}"));
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !digits(b, pos) {
            return Err(format!("bad fraction at byte {start}"));
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !digits(b, pos) {
            return Err(format!("bad exponent at byte {start}"));
        }
    }
    Ok(())
}

fn literal(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("bad literal at byte {}", *pos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_output_validates() {
        let line = JsonObj::new()
            .str("type", "flush_end")
            .u64("bytes", 4096)
            .i64("delta", -3)
            .str("note", "quotes \" and\nnewlines")
            .raw("nested", "[1,2,3]")
            .finish();
        validate_json(&line).unwrap();
        assert!(line.starts_with("{\"type\":\"flush_end\""));
    }

    #[test]
    fn validator_accepts_and_rejects() {
        for good in [
            "{}",
            "[]",
            "null",
            "-1.5e-3",
            "{\"a\":[true,false,null],\"b\":{\"c\":\"\\u00e9\"}}",
            " { \"x\" : 1 } ",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good}: {e}"));
        }
        for bad in ["{", "{]", "{'a':1}", "{\"a\":}", "01x", "\"\\q\"", "{} {}"] {
            assert!(validate_json(bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn jsonl_counts_lines() {
        let text = "{\"a\":1}\n\n{\"b\":2}\n";
        assert_eq!(validate_json_lines(text).unwrap(), 2);
        assert!(validate_json_lines("{\"a\":1}\nnope\n").is_err());
    }

    #[test]
    fn escape_round_trip_is_valid() {
        let s = escape("tab\there \"quoted\" \\ back \u{1} end");
        validate_json(&format!("\"{s}\"")).unwrap();
    }
}
