//! The metrics registry: named counters, gauges, and histograms.
//!
//! Registration (name → handle) takes a write lock once; after that,
//! every handle is a plain `Arc` whose updates are relaxed atomics —
//! the hot path never touches the registry lock. Snapshots iterate the
//! name maps in `BTreeMap` order so JSON output is deterministic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::json::JsonObj;
use crate::DeltaSince;

/// A monotonic counter.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (queue depths, run counts).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Replaces the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct Registered {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named metric instruments. Cheap to share (`Arc` it); see module docs
/// for the locking story.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: RwLock<Registered>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter named `name`, registering it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        g.counters.entry(name.to_string()).or_default().clone()
    }

    /// Returns the gauge named `name`, registering it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        g.gauges.entry(name.to_string()).or_default().clone()
    }

    /// Returns the histogram named `name`, registering it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.inner.write().unwrap_or_else(PoisonError::into_inner);
        g.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Point-in-time copy of every registered instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.read().unwrap_or_else(PoisonError::into_inner);
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: g
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// Immutable named snapshot of a [`MetricsRegistry`] (plus any counters
/// the embedder folds in — the engine adds its `DbStats`, `IoStats`,
/// and cache counters under prefixed names).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauges by name (point-in-time values, not deltable).
    pub gauges: BTreeMap<String, i64>,
    /// Latency histograms by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// One JSON object with `counters` / `gauges` / `histograms` keys,
    /// every map in sorted-name order. Histograms serialize as summary
    /// objects (count/sum/min/max/p50/p90/p99), not raw buckets.
    pub fn to_json_line(&self) -> String {
        self.to_json_line_tagged(&[])
    }

    /// Same as [`Self::to_json_line`] with leading string tags (e.g.
    /// experiment name and configuration label).
    pub fn to_json_line_tagged(&self, tags: &[(&str, &str)]) -> String {
        let mut counters = JsonObj::new();
        for (k, v) in &self.counters {
            counters = counters.u64(k, *v);
        }
        let mut gauges = JsonObj::new();
        for (k, v) in &self.gauges {
            gauges = gauges.i64(k, *v);
        }
        let mut hists = JsonObj::new();
        for (k, h) in &self.histograms {
            let summary = JsonObj::new()
                .u64("count", h.count)
                .u64("sum", h.sum)
                .u64("min", h.min)
                .u64("max", h.max)
                .u64("p50", h.p50())
                .u64("p90", h.p90())
                .u64("p99", h.p99())
                .finish();
            hists = hists.raw(k, &summary);
        }
        let mut obj = JsonObj::new();
        for (k, v) in tags {
            obj = obj.str(k, v);
        }
        obj.raw("counters", &counters.finish())
            .raw("gauges", &gauges.finish())
            .raw("histograms", &hists.finish())
            .finish()
    }

    /// Adds `other` into `self`: counters and histograms accumulate;
    /// gauges take `other`'s value (last writer wins). Names missing on
    /// either side are kept.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

impl DeltaSince for MetricsSnapshot {
    /// Counters and histograms subtract (saturating, shared delta
    /// semantics); gauges keep `self`'s point-in-time values. Names
    /// absent from `earlier` pass through unchanged.
    fn delta_since(&self, earlier: &Self) -> Self {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| {
                    let base = earlier.counters.get(k).copied().unwrap_or(0);
                    (k.clone(), v.saturating_sub(base))
                })
                .collect(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| match earlier.histograms.get(k) {
                    Some(base) => (k.clone(), h.delta_since(base)),
                    None => (k.clone(), *h),
                })
                .collect(),
        }
    }
}

impl MetricsSnapshot {
    /// Inherent mirror of the [`DeltaSince`] impl.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        <Self as DeltaSince>::delta_since(self, earlier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    #[test]
    fn handles_are_shared_and_lock_free_after_registration() {
        let r = MetricsRegistry::new();
        let c1 = r.counter("ops");
        let c2 = r.counter("ops");
        c1.inc();
        c2.add(4);
        assert_eq!(r.counter("ops").get(), 5);
        let g = r.gauge("depth");
        g.set(3);
        g.add(-1);
        assert_eq!(r.gauge("depth").get(), 2);
    }

    #[test]
    fn snapshot_is_sorted_and_json_valid() {
        let r = MetricsRegistry::new();
        r.counter("z.last").inc();
        r.counter("a.first").add(2);
        r.histogram("lat").record(100);
        r.gauge("g").set(-7);
        let s = r.snapshot();
        let names: Vec<_> = s.counters.keys().cloned().collect();
        assert_eq!(names, ["a.first", "z.last"]);
        let line = s.to_json_line_tagged(&[("experiment", "unit")]);
        validate_json(&line).unwrap();
        assert!(line.contains("\"a.first\":2"));
        assert!(line.contains("\"experiment\":\"unit\""));
    }

    #[test]
    fn delta_and_merge_round_trip() {
        let r = MetricsRegistry::new();
        r.counter("ops").add(3);
        r.histogram("lat").record(10);
        let first = r.snapshot();
        r.counter("ops").add(2);
        r.histogram("lat").record(1000);
        let second = r.snapshot();
        let delta = second.delta_since(&first);
        assert_eq!(delta.counters["ops"], 2);
        assert_eq!(delta.histograms["lat"].count, 1);
        let mut merged = first.clone();
        merged.merge(&delta);
        assert_eq!(merged, second);
        // reverse delta is all-zero for counters (monotonicity check)
        let rev = first.delta_since(&second);
        assert!(rev.counters.values().all(|v| *v == 0));
    }

    #[test]
    fn concurrent_recording() {
        let r = Arc::new(MetricsRegistry::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let r = r.clone();
                scope.spawn(move || {
                    let c = r.counter("shared");
                    let h = r.histogram("h");
                    for i in 0..1000 {
                        c.inc();
                        h.record(i);
                    }
                });
            }
        });
        let s = r.snapshot();
        assert_eq!(s.counters["shared"], 4000);
        assert_eq!(s.histograms["h"].count, 4000);
    }
}
