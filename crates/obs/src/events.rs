//! The structured event trace: a bounded ring of typed engine events.
//!
//! Events capture *when* maintenance happened — flushes, compactions
//! with their input/output accounting, WAL rotations, backpressure
//! transitions, recovery steps — which flat counters cannot express.
//! The ring is bounded: when full, the oldest events are dropped and
//! counted, so a misbehaving workload can grow memory by at most the
//! configured capacity. Sequence numbers are global and monotone even
//! across drops and drains, so a trace consumer can detect gaps.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::json::JsonObj;

/// Why the write path blocked.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallReason {
    /// L0 run count reached `l0_stall_runs`.
    L0,
    /// Both memtables were full and the frozen one had not flushed yet.
    MemtableRotation,
}

impl StallReason {
    fn label(self) -> &'static str {
        match self {
            StallReason::L0 => "l0",
            StallReason::MemtableRotation => "memtable_rotation",
        }
    }
}

/// What happened. Byte/entry fields count logical table data (not
/// device blocks); `l0_runs` fields record the L0 gauge at emit time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A memtable flush began (`id` pairs it with its end event).
    FlushStart {
        /// Pairing id, unique per engine lifetime.
        id: u64,
        /// Entries drained from the memtable.
        entries: u64,
    },
    /// The paired flush completed.
    FlushEnd {
        /// Pairing id from the start event.
        id: u64,
        /// Entries written into the new L0 table.
        entries: u64,
        /// Data bytes of the new L0 table (0 if the flush lost the
        /// race to a foreground flush and installed nothing).
        output_bytes: u64,
        /// L0 run count after install.
        l0_runs: u64,
    },
    /// A compaction began (`id` pairs it with its end event).
    CompactionStart {
        /// Pairing id, unique per engine lifetime.
        id: u64,
        /// Source level.
        level: u32,
        /// Destination level.
        target: u32,
        /// Input tables merged.
        input_tables: u64,
        /// Entries across the input tables.
        input_entries: u64,
        /// Data bytes across the input tables.
        input_bytes: u64,
    },
    /// The paired compaction completed and its version was installed.
    CompactionEnd {
        /// Pairing id from the start event.
        id: u64,
        /// Source level.
        level: u32,
        /// Destination level.
        target: u32,
        /// Input tables merged (repeated so each event stands alone).
        input_tables: u64,
        /// Entries across the input tables.
        input_entries: u64,
        /// Data bytes across the input tables.
        input_bytes: u64,
        /// Output tables produced.
        output_tables: u64,
        /// Entries written (`input_entries - tombstones_dropped -
        /// versions_dropped`).
        entries_written: u64,
        /// Data bytes across the output tables.
        output_bytes: u64,
        /// Tombstones garbage-collected (last-level only).
        tombstones_dropped: u64,
        /// Shadowed versions dropped by the merge.
        versions_dropped: u64,
    },
    /// One key-range shard of a parallel compaction was dispatched
    /// (`id` pairs it with its end event; `compaction` links it to the
    /// enclosing compaction's pairing id).
    SubcompactionStart {
        /// Pairing id, unique per engine lifetime.
        id: u64,
        /// Pairing id of the enclosing compaction.
        compaction: u64,
        /// Shard index within the compaction (0-based, key order).
        shard: u32,
        /// Total shards in the compaction.
        shards: u32,
    },
    /// The paired shard finished merging its key range. Accounting is
    /// conserved per shard (`input_entries = entries_written +
    /// tombstones_dropped + versions_dropped`) and sums across a
    /// compaction's shards to the enclosing `CompactionEnd` accounting.
    SubcompactionEnd {
        /// Pairing id from the start event.
        id: u64,
        /// Pairing id of the enclosing compaction.
        compaction: u64,
        /// Shard index within the compaction.
        shard: u32,
        /// Input entries the shard consumed.
        input_entries: u64,
        /// Visible entries the shard contributed to the output.
        entries_written: u64,
        /// Tombstones the shard garbage-collected.
        tombstones_dropped: u64,
        /// Shadowed versions the shard dropped.
        versions_dropped: u64,
    },
    /// The WAL rotated: the old log was frozen alongside the immutable
    /// memtable and a fresh one now takes writes.
    WalRotation {
        /// File id of the sealed log.
        old_wal: u64,
        /// File id of the fresh log.
        new_wal: u64,
        /// Records the sealed log had absorbed.
        old_records: u64,
    },
    /// Writes entered the slowdown band (per-write sleep).
    SlowdownEnter {
        /// L0 run count at the crossing.
        l0_runs: u64,
    },
    /// Writes left the slowdown band.
    SlowdownExit {
        /// L0 run count at the crossing.
        l0_runs: u64,
    },
    /// A write blocked.
    StallEnter {
        /// What it blocked on.
        reason: StallReason,
        /// L0 run count at the crossing.
        l0_runs: u64,
    },
    /// The blocked write resumed.
    StallExit {
        /// What it had blocked on.
        reason: StallReason,
        /// L0 run count at the crossing.
        l0_runs: u64,
    },
    /// One step of crash recovery during `Db::open`.
    RecoveryStep {
        /// Step name (`manifest_loaded`, `manifest_rejected`,
        /// `wal_replayed`, ...).
        step: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// The serving layer accepted a client connection.
    ServerAccept {
        /// Connection id, unique per server lifetime.
        conn: u64,
    },
    /// The serving layer refused a write (admission control): the target
    /// shard's L0 gauge was at or past the shed line, so the client got
    /// a `Busy` reply instead of a writer wedging inside the engine.
    ServerShed {
        /// Shard whose backpressure gauge triggered the shed.
        shard: u32,
        /// That shard's L0 run count at the decision.
        l0_runs: u64,
    },
    /// One phase of a graceful server drain (`begin` → `flushed` →
    /// `done`).
    ServerDrain {
        /// Phase name.
        phase: &'static str,
        /// Live client connections when the phase was entered.
        connections: u64,
    },
    /// A replica subscribed to the primary's replication log (emitted on
    /// the primary when its shipper completes the handshake).
    ReplicaConnect {
        /// Replica id (index in the primary's replica list).
        replica: u64,
        /// First sequence the shipper will send — the replica's durable
        /// applied watermark plus one.
        from_seq: u64,
    },
    /// A replica was promoted to primary: its WAL tail was replayed and
    /// it adopted the highest replication sequence it had applied.
    Failover {
        /// Replication sequence the promoted node adopted as committed.
        adopted_seq: u64,
    },
    /// A shard split completed: the parent kept the left half of its
    /// range and a freshly-named shard took the right half.
    ShardSplit {
        /// Stable id of the shard that was split.
        parent: u64,
        /// Stable id allocated to the new right-half shard.
        new_shard: u64,
        /// Shard-map version the split produced.
        map_version: u64,
    },
    /// A shard merge completed: the right neighbour's range was absorbed
    /// into the left shard and the absorbed shard retired.
    ShardMerge {
        /// Stable id of the absorbed (retired) shard.
        absorbed: u64,
        /// Stable id of the shard that took over its range.
        into: u64,
        /// Shard-map version the merge produced.
        map_version: u64,
    },
    /// The serving layer atomically switched to a new shard-map version
    /// (the cut-over point of a split or merge).
    ShardMapFlip {
        /// The version now live.
        map_version: u64,
        /// Shards in the new map.
        shards: u64,
    },
    /// An optimistic transaction began: it pinned a snapshot and will
    /// validate its read-set against this sequence floor at commit.
    TxnBegin {
        /// Highest sequence number visible to the transaction's snapshot.
        snap_seqno: u64,
    },
    /// An optimistic transaction committed: its read-set validated clean
    /// and its write-set applied as one atomic group.
    TxnCommit {
        /// Globally-ordered commit stamp (the serialization point).
        stamp: u64,
        /// Operations in the applied write-set.
        writes: u64,
        /// Keys in the validated read-set.
        reads: u64,
    },
    /// An optimistic transaction failed first-committer-wins validation:
    /// a read key was overwritten after the transaction's snapshot.
    TxnConflict {
        /// The transaction's snapshot sequence floor.
        snap_seqno: u64,
        /// Sequence number of the committed write that invalidated it.
        conflict_seqno: u64,
    },
    /// The self-tuner actuated a knob change on the running engine.
    /// Every actuation is auditable: decision ordinal, the knob, both
    /// settings, and the model's predicted relative gain.
    Retune {
        /// Tuner decision ordinal, monotone per tuner lifetime.
        decision: u64,
        /// Knob name (`bloom_bits`, `layout`, `size_ratio`,
        /// `l0_thresholds`).
        knob: &'static str,
        /// Setting before the change, rendered as a short string.
        from: String,
        /// Setting after the change.
        to: String,
        /// Model-predicted relative I/O-cost reduction, in per-mille
        /// (e.g. 125 = the model expects 12.5% fewer blocks per op).
        predicted_gain_milli: i64,
    },
    /// Follow-up audit for an earlier [`EventKind::Retune`]: the measured
    /// cost delta over the tick after actuation, against the prediction.
    RetuneObserved {
        /// Decision ordinal of the retune being audited.
        decision: u64,
        /// Knob that was changed.
        knob: &'static str,
        /// The prediction from the paired `Retune`, in per-mille.
        predicted_gain_milli: i64,
        /// Measured relative change in blocks per operation, per-mille
        /// (positive = the engine got cheaper, as predicted).
        observed_gain_milli: i64,
    },
}

impl EventKind {
    /// Snake-case type tag, as emitted in the `type` field of the JSON
    /// encoding — handy for asserting on event order in tests.
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::FlushStart { .. } => "flush_start",
            EventKind::FlushEnd { .. } => "flush_end",
            EventKind::CompactionStart { .. } => "compaction_start",
            EventKind::CompactionEnd { .. } => "compaction_end",
            EventKind::SubcompactionStart { .. } => "subcompaction_start",
            EventKind::SubcompactionEnd { .. } => "subcompaction_end",
            EventKind::WalRotation { .. } => "wal_rotation",
            EventKind::SlowdownEnter { .. } => "slowdown_enter",
            EventKind::SlowdownExit { .. } => "slowdown_exit",
            EventKind::StallEnter { .. } => "stall_enter",
            EventKind::StallExit { .. } => "stall_exit",
            EventKind::RecoveryStep { .. } => "recovery_step",
            EventKind::ServerAccept { .. } => "server_accept",
            EventKind::ServerShed { .. } => "server_shed",
            EventKind::ServerDrain { .. } => "server_drain",
            EventKind::ReplicaConnect { .. } => "replica_connect",
            EventKind::Failover { .. } => "failover",
            EventKind::ShardSplit { .. } => "shard_split",
            EventKind::ShardMerge { .. } => "shard_merge",
            EventKind::ShardMapFlip { .. } => "shard_map_flip",
            EventKind::TxnBegin { .. } => "txn_begin",
            EventKind::TxnCommit { .. } => "txn_commit",
            EventKind::TxnConflict { .. } => "txn_conflict",
            EventKind::Retune { .. } => "retune",
            EventKind::RetuneObserved { .. } => "retune_observed",
        }
    }
}

/// One traced engine event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    /// Global sequence number: monotone, gap-free unless the ring
    /// dropped events.
    pub seq: u64,
    /// Engine clock at emission — simulated-device nanoseconds under
    /// `BackgroundMode::Inline`, wall nanoseconds since open otherwise.
    pub at_ns: u64,
    /// The event payload.
    pub kind: EventKind,
}

impl Event {
    /// One JSON object per event (`{"seq":…,"at_ns":…,"type":…, …}`).
    pub fn to_json_line(&self) -> String {
        let obj = JsonObj::new()
            .u64("seq", self.seq)
            .u64("at_ns", self.at_ns)
            .str("type", self.kind.label());
        match &self.kind {
            EventKind::FlushStart { id, entries } => {
                obj.u64("id", *id).u64("entries", *entries).finish()
            }
            EventKind::FlushEnd {
                id,
                entries,
                output_bytes,
                l0_runs,
            } => obj
                .u64("id", *id)
                .u64("entries", *entries)
                .u64("output_bytes", *output_bytes)
                .u64("l0_runs", *l0_runs)
                .finish(),
            EventKind::CompactionStart {
                id,
                level,
                target,
                input_tables,
                input_entries,
                input_bytes,
            } => obj
                .u64("id", *id)
                .u64("level", *level as u64)
                .u64("target", *target as u64)
                .u64("input_tables", *input_tables)
                .u64("input_entries", *input_entries)
                .u64("input_bytes", *input_bytes)
                .finish(),
            EventKind::CompactionEnd {
                id,
                level,
                target,
                input_tables,
                input_entries,
                input_bytes,
                output_tables,
                entries_written,
                output_bytes,
                tombstones_dropped,
                versions_dropped,
            } => obj
                .u64("id", *id)
                .u64("level", *level as u64)
                .u64("target", *target as u64)
                .u64("input_tables", *input_tables)
                .u64("input_entries", *input_entries)
                .u64("input_bytes", *input_bytes)
                .u64("output_tables", *output_tables)
                .u64("entries_written", *entries_written)
                .u64("output_bytes", *output_bytes)
                .u64("tombstones_dropped", *tombstones_dropped)
                .u64("versions_dropped", *versions_dropped)
                .finish(),
            EventKind::SubcompactionStart {
                id,
                compaction,
                shard,
                shards,
            } => obj
                .u64("id", *id)
                .u64("compaction", *compaction)
                .u64("shard", *shard as u64)
                .u64("shards", *shards as u64)
                .finish(),
            EventKind::SubcompactionEnd {
                id,
                compaction,
                shard,
                input_entries,
                entries_written,
                tombstones_dropped,
                versions_dropped,
            } => obj
                .u64("id", *id)
                .u64("compaction", *compaction)
                .u64("shard", *shard as u64)
                .u64("input_entries", *input_entries)
                .u64("entries_written", *entries_written)
                .u64("tombstones_dropped", *tombstones_dropped)
                .u64("versions_dropped", *versions_dropped)
                .finish(),
            EventKind::WalRotation {
                old_wal,
                new_wal,
                old_records,
            } => obj
                .u64("old_wal", *old_wal)
                .u64("new_wal", *new_wal)
                .u64("old_records", *old_records)
                .finish(),
            EventKind::SlowdownEnter { l0_runs } | EventKind::SlowdownExit { l0_runs } => {
                obj.u64("l0_runs", *l0_runs).finish()
            }
            EventKind::StallEnter { reason, l0_runs } | EventKind::StallExit { reason, l0_runs } => {
                obj.str("reason", reason.label()).u64("l0_runs", *l0_runs).finish()
            }
            EventKind::RecoveryStep { step, detail } => {
                obj.str("step", step).str("detail", detail).finish()
            }
            EventKind::ServerAccept { conn } => obj.u64("conn", *conn).finish(),
            EventKind::ServerShed { shard, l0_runs } => {
                obj.u64("shard", *shard as u64).u64("l0_runs", *l0_runs).finish()
            }
            EventKind::ServerDrain { phase, connections } => {
                obj.str("phase", phase).u64("connections", *connections).finish()
            }
            EventKind::ReplicaConnect { replica, from_seq } => {
                obj.u64("replica", *replica).u64("from_seq", *from_seq).finish()
            }
            EventKind::Failover { adopted_seq } => {
                obj.u64("adopted_seq", *adopted_seq).finish()
            }
            EventKind::ShardSplit {
                parent,
                new_shard,
                map_version,
            } => obj
                .u64("parent", *parent)
                .u64("new_shard", *new_shard)
                .u64("map_version", *map_version)
                .finish(),
            EventKind::ShardMerge {
                absorbed,
                into,
                map_version,
            } => obj
                .u64("absorbed", *absorbed)
                .u64("into", *into)
                .u64("map_version", *map_version)
                .finish(),
            EventKind::ShardMapFlip { map_version, shards } => obj
                .u64("map_version", *map_version)
                .u64("shards", *shards)
                .finish(),
            EventKind::TxnBegin { snap_seqno } => obj.u64("snap_seqno", *snap_seqno).finish(),
            EventKind::TxnCommit { stamp, writes, reads } => obj
                .u64("stamp", *stamp)
                .u64("writes", *writes)
                .u64("reads", *reads)
                .finish(),
            EventKind::TxnConflict {
                snap_seqno,
                conflict_seqno,
            } => obj
                .u64("snap_seqno", *snap_seqno)
                .u64("conflict_seqno", *conflict_seqno)
                .finish(),
            EventKind::Retune {
                decision,
                knob,
                from,
                to,
                predicted_gain_milli,
            } => obj
                .u64("decision", *decision)
                .str("knob", knob)
                .str("from", from)
                .str("to", to)
                .i64("predicted_gain_milli", *predicted_gain_milli)
                .finish(),
            EventKind::RetuneObserved {
                decision,
                knob,
                predicted_gain_milli,
                observed_gain_milli,
            } => obj
                .u64("decision", *decision)
                .str("knob", knob)
                .i64("predicted_gain_milli", *predicted_gain_milli)
                .i64("observed_gain_milli", *observed_gain_milli)
                .finish(),
        }
    }
}

struct Ring {
    events: VecDeque<Event>,
    dropped: u64,
}

/// Bounded, thread-safe event buffer. Push is a short mutex hold on
/// maintenance-rate paths; per-key read/write paths never touch it.
pub struct EventRing {
    ring: Mutex<Ring>,
    next_seq: AtomicU64,
    capacity: usize,
}

impl EventRing {
    /// Ring holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventRing {
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                dropped: 0,
            }),
            next_seq: AtomicU64::new(0),
            capacity: capacity.max(1),
        }
    }

    /// Appends an event stamped with the next sequence number, evicting
    /// the oldest if full.
    pub fn record(&self, at_ns: u64, kind: EventKind) {
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
        let mut g = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        if g.events.len() == self.capacity {
            g.events.pop_front();
            g.dropped += 1;
        }
        g.events.push_back(Event { seq, at_ns, kind });
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        let mut g = self.ring.lock().unwrap_or_else(PoisonError::into_inner);
        g.events.drain(..).collect()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .events
            .len()
    }

    /// True when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json_lines;

    #[test]
    fn bounded_with_drop_accounting() {
        let ring = EventRing::new(3);
        for i in 0..5 {
            ring.record(i, EventKind::SlowdownEnter { l0_runs: i });
        }
        assert_eq!(ring.dropped(), 2);
        let events = ring.drain();
        assert_eq!(events.len(), 3);
        // oldest two evicted; seq numbers expose the gap
        assert_eq!(events[0].seq, 2);
        assert_eq!(events[2].seq, 4);
        assert!(ring.is_empty());
        // seq keeps counting after a drain
        ring.record(9, EventKind::SlowdownExit { l0_runs: 0 });
        assert_eq!(ring.drain()[0].seq, 5);
    }

    #[test]
    fn every_kind_serializes_to_valid_json() {
        let kinds = vec![
            EventKind::FlushStart { id: 1, entries: 10 },
            EventKind::FlushEnd {
                id: 1,
                entries: 10,
                output_bytes: 4096,
                l0_runs: 2,
            },
            EventKind::CompactionStart {
                id: 7,
                level: 0,
                target: 1,
                input_tables: 4,
                input_entries: 100,
                input_bytes: 8192,
            },
            EventKind::CompactionEnd {
                id: 7,
                level: 0,
                target: 1,
                input_tables: 4,
                input_entries: 100,
                input_bytes: 8192,
                output_tables: 1,
                entries_written: 90,
                output_bytes: 7168,
                tombstones_dropped: 4,
                versions_dropped: 6,
            },
            EventKind::SubcompactionStart {
                id: 21,
                compaction: 7,
                shard: 0,
                shards: 4,
            },
            EventKind::SubcompactionEnd {
                id: 21,
                compaction: 7,
                shard: 0,
                input_entries: 25,
                entries_written: 22,
                tombstones_dropped: 1,
                versions_dropped: 2,
            },
            EventKind::WalRotation {
                old_wal: 3,
                new_wal: 9,
                old_records: 512,
            },
            EventKind::SlowdownEnter { l0_runs: 8 },
            EventKind::SlowdownExit { l0_runs: 5 },
            EventKind::StallEnter {
                reason: StallReason::L0,
                l0_runs: 12,
            },
            EventKind::StallExit {
                reason: StallReason::MemtableRotation,
                l0_runs: 3,
            },
            EventKind::RecoveryStep {
                step: "wal_replayed",
                detail: "wal 4: 37 records".into(),
            },
            EventKind::ServerAccept { conn: 17 },
            EventKind::ServerShed {
                shard: 2,
                l0_runs: 12,
            },
            EventKind::ServerDrain {
                phase: "begin",
                connections: 4,
            },
            EventKind::ReplicaConnect {
                replica: 1,
                from_seq: 33,
            },
            EventKind::Failover { adopted_seq: 32 },
            EventKind::ShardSplit {
                parent: 1,
                new_shard: 4,
                map_version: 2,
            },
            EventKind::ShardMerge {
                absorbed: 4,
                into: 1,
                map_version: 3,
            },
            EventKind::ShardMapFlip {
                map_version: 3,
                shards: 4,
            },
            EventKind::TxnBegin { snap_seqno: 41 },
            EventKind::TxnCommit {
                stamp: 9,
                writes: 3,
                reads: 2,
            },
            EventKind::TxnConflict {
                snap_seqno: 41,
                conflict_seqno: 44,
            },
            EventKind::Retune {
                decision: 1,
                knob: "bloom_bits",
                from: "10.0".into(),
                to: "14.5".into(),
                predicted_gain_milli: 125,
            },
            EventKind::RetuneObserved {
                decision: 1,
                knob: "bloom_bits",
                predicted_gain_milli: 125,
                observed_gain_milli: -40,
            },
        ];
        let ring = EventRing::new(64);
        for (i, k) in kinds.into_iter().enumerate() {
            ring.record(i as u64 * 10, k);
        }
        let text: String = ring
            .drain()
            .iter()
            .map(|e| e.to_json_line() + "\n")
            .collect();
        assert_eq!(validate_json_lines(&text).unwrap(), 25);
        assert!(text.contains("\"type\":\"compaction_end\""));
        assert!(text.contains("\"type\":\"subcompaction_end\""));
        assert!(text.contains("\"reason\":\"memtable_rotation\""));
        assert!(text.contains("\"type\":\"server_shed\""));
        assert!(text.contains("\"phase\":\"begin\""));
        assert!(text.contains("\"type\":\"replica_connect\""));
        assert!(text.contains("\"adopted_seq\":32"));
        assert!(text.contains("\"type\":\"shard_split\""));
        assert!(text.contains("\"type\":\"shard_merge\""));
        assert!(text.contains("\"type\":\"shard_map_flip\""));
        assert!(text.contains("\"type\":\"txn_begin\""));
        assert!(text.contains("\"type\":\"txn_commit\""));
        assert!(text.contains("\"stamp\":9"));
        assert!(text.contains("\"type\":\"txn_conflict\""));
        assert!(text.contains("\"conflict_seqno\":44"));
        assert!(text.contains("\"type\":\"retune\""));
        assert!(text.contains("\"knob\":\"bloom_bits\""));
        assert!(text.contains("\"predicted_gain_milli\":125"));
        assert!(text.contains("\"type\":\"retune_observed\""));
        assert!(text.contains("\"observed_gain_milli\":-40"));
    }
}
