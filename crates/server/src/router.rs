//! Shard routing over independent `Db` instances: FNV hash partitioning
//! or range partitioning driven by a versioned [`ShardMap`].
//!
//! Each shard is a fully independent engine on its own device: its own
//! memtable, WAL, levels, and background workers. Under **hash** routing
//! a key's home shard is `fnv1a(key) % shards`, so writes spread
//! uniformly regardless of key skew — but every range scan must consult
//! every shard and k-way merge the results. Under **range** routing each
//! shard owns a contiguous key range from the map: point ops route by
//! `owner_index`, and a range scan visits *only the shards whose ranges
//! intersect the request*, in key order, concatenating per-shard results
//! with no merge at all (the partition is ordered). Every per-shard scan
//! is also **clamped** to the shard's owned range — that clamp is what
//! makes a split donor's stale copy of a moved-away range invisible, so
//! live migration never has to delete from the donor.

use lsm_core::Db;
use lsm_storage::StorageResult;

use crate::shardmap::ShardMap;

/// FNV-1a over the key, reduced mod `shards`. Stable across runs and
/// processes (the protocol does not carry shard ids; clients never need
/// to know the layout).
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// How a [`ShardSet`] maps keys to shards.
pub enum Routing {
    /// FNV-1a hash partitioning (static topology).
    Hash,
    /// Range partitioning: shard `i` owns the map's entry `i` range.
    Range(ShardMap),
}

/// A set of independent shard engines addressed by key.
pub struct ShardSet {
    shards: Vec<Db>,
    routing: Routing,
}

impl ShardSet {
    /// Wraps `shards` (must be non-empty) under hash routing.
    pub fn new(shards: Vec<Db>) -> Self {
        assert!(!shards.is_empty(), "a shard set needs at least one shard");
        ShardSet {
            shards,
            routing: Routing::Hash,
        }
    }

    /// Wraps `shards` under range routing: `shards[i]` serves `map`
    /// entry `i`. The counts must agree and the map must be a valid
    /// partition.
    pub fn with_map(shards: Vec<Db>, map: ShardMap) -> Self {
        assert_eq!(
            shards.len(),
            map.len(),
            "shard engines and map entries must correspond 1:1"
        );
        map.check_partition().expect("shard map is a partition");
        ShardSet {
            shards,
            routing: Routing::Range(map),
        }
    }

    /// The shard map, when range-routed.
    pub fn map(&self) -> Option<&ShardMap> {
        match &self.routing {
            Routing::Hash => None,
            Routing::Range(map) => Some(map),
        }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True only for an (invalid) empty set; present for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard index owning `key`.
    pub fn shard_index(&self, key: &[u8]) -> usize {
        match &self.routing {
            Routing::Hash => shard_of(key, self.shards.len()),
            Routing::Range(map) => map.owner_index(key),
        }
    }

    /// The engine at `idx`.
    pub fn db(&self, idx: usize) -> &Db {
        &self.shards[idx]
    }

    /// All shard engines, index order.
    pub fn dbs(&self) -> &[Db] {
        &self.shards
    }

    /// Routed point lookup.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.shards[self.shard_index(key)].get(key)
    }

    /// Routed point lookup through a borrowed view: `f` runs on the value
    /// bytes in place (memtable arena or cached block), so the server can
    /// copy them straight into a wire buffer with no intermediate `Vec`.
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> StorageResult<Option<R>> {
        self.shards[self.shard_index(key)].get_with(key, f)
    }

    /// The intersection of `[start, end)` with shard `idx`'s owned range
    /// under range routing — the clamp that hides a donor's stale copy of
    /// a range that migrated away.
    fn clamp<'a>(
        map: &'a ShardMap,
        idx: usize,
        start: &'a [u8],
        end: &'a [u8],
    ) -> (&'a [u8], &'a [u8]) {
        let (lo, hi) = map.range_of(idx);
        let s = if start < lo { lo } else { start };
        let e = match hi {
            Some(h) if h < end => h,
            _ => end,
        };
        (s, e)
    }

    /// Streaming cross-shard scan: calls `f(key, value)` for each entry
    /// in key order, up to `limit`, and returns how many were visited.
    /// Range routing visits only the owning shards, in partition order —
    /// ordered concatenation, no merge. Hash routing with one shard
    /// streams straight off the engine's merge cursor; with multiple
    /// shards the per-shard results must be materialized for the k-way
    /// merge first.
    pub fn scan_with(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
        mut f: impl FnMut(&[u8], &[u8]),
    ) -> StorageResult<usize> {
        if limit == 0 || start >= end {
            return Ok(0);
        }
        match &self.routing {
            Routing::Range(map) => {
                let mut n = 0usize;
                for idx in map.overlapping(start, end) {
                    let (s, e) = Self::clamp(map, idx, start, end);
                    n += self.shards[idx].scan_with(s, e, limit - n, &mut f)?;
                    if n >= limit {
                        break;
                    }
                }
                Ok(n)
            }
            Routing::Hash if self.shards.len() == 1 => {
                self.shards[0].scan_with(start, end, limit, f)
            }
            Routing::Hash => {
                let merged = self.scan(start, end, limit)?;
                let n = merged.len();
                for (k, v) in &merged {
                    f(k, v);
                }
                Ok(n)
            }
        }
    }

    /// Cross-shard ordered scan of `[start, end)`, at most `limit`
    /// entries. Range routing concatenates the owning shards' clamped
    /// scans in partition order; hash routing stitches every shard's
    /// scan with a k-way merge.
    pub fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        if limit == 0 || start >= end {
            return Ok(Vec::new());
        }
        if let Routing::Range(map) = &self.routing {
            let mut out = Vec::new();
            for idx in map.overlapping(start, end) {
                let (s, e) = Self::clamp(map, idx, start, end);
                let mut part = self.shards[idx].scan(s.to_vec()..e.to_vec(), limit - out.len())?;
                out.append(&mut part);
                if out.len() >= limit {
                    break;
                }
            }
            return Ok(out);
        }
        let mut per_shard: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::with_capacity(self.shards.len());
        for db in &self.shards {
            per_shard.push(db.scan(start.to_vec()..end.to_vec(), limit)?);
        }
        // k-way merge by key; shards partition the keyspace disjointly,
        // so no key appears twice and ties cannot happen
        let mut cursors = vec![0usize; per_shard.len()];
        let mut out = Vec::with_capacity(limit.min(1024));
        while out.len() < limit {
            let mut best: Option<usize> = None;
            for (s, list) in per_shard.iter().enumerate() {
                if cursors[s] >= list.len() {
                    continue;
                }
                let candidate = &list[cursors[s]].0;
                if best.is_none_or(|b| candidate < &per_shard[b][cursors[b]].0) {
                    best = Some(s);
                }
            }
            match best {
                Some(s) => {
                    out.push(per_shard[s][cursors[s]].clone());
                    cursors[s] += 1;
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// Flushes every shard to quiescence (graceful-drain step).
    pub fn flush_all(&self) -> StorageResult<()> {
        for db in &self.shards {
            db.flush_all()?;
        }
        Ok(())
    }

    /// Consumes the set, returning the shard engines.
    pub fn into_dbs(self) -> Vec<Db> {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_core::LsmConfig;

    fn shard_set(n: usize) -> ShardSet {
        ShardSet::new(
            (0..n)
                .map(|_| Db::open_in_memory(LsmConfig::small_for_tests()).unwrap())
                .collect(),
        )
    }

    fn range_set(n: usize) -> ShardSet {
        ShardSet::with_map(
            (0..n)
                .map(|_| Db::open_in_memory(LsmConfig::small_for_tests()).unwrap())
                .collect(),
            ShardMap::uniform(n),
        )
    }

    #[test]
    fn hashing_is_stable_and_spreads() {
        assert_eq!(shard_of(b"key", 4), shard_of(b"key", 4));
        let mut hits = [0usize; 4];
        for i in 0..4000u32 {
            hits[shard_of(format!("user{i:08}").as_bytes(), 4)] += 1;
        }
        for (s, &h) in hits.iter().enumerate() {
            assert!(
                (700..1300).contains(&h),
                "shard {s} got {h} of 4000 keys — hash is badly skewed"
            );
        }
    }

    #[test]
    fn routed_roundtrip() {
        let set = shard_set(3);
        for i in 0..500u32 {
            let key = format!("k{i:05}").into_bytes();
            set.db(set.shard_index(&key))
                .put(key, format!("v{i}").into_bytes())
                .unwrap();
        }
        for i in 0..500u32 {
            assert_eq!(
                set.get(format!("k{i:05}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn cross_shard_scan_stitches_in_key_order() {
        let set = shard_set(4);
        for i in 0..300u32 {
            let key = format!("s{i:05}").into_bytes();
            set.db(set.shard_index(&key)).put(key, vec![0u8; 4]).unwrap();
        }
        let got = set.scan(b"s00050", b"s00150", 40).unwrap();
        assert_eq!(got.len(), 40);
        for (i, (k, _)) in got.iter().enumerate() {
            assert_eq!(k, format!("s{:05}", 50 + i).as_bytes(), "entry {i} out of order");
        }
        // unlimited-enough scan sees the whole range, still ordered
        let all = set.scan(b"s00000", b"s00300", 1000).unwrap();
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        // degenerate ranges
        assert!(set.scan(b"z", b"a", 10).unwrap().is_empty());
        assert!(set.scan(b"a", b"z", 0).unwrap().is_empty());
    }

    #[test]
    fn range_routing_roundtrip_and_ordered_scans() {
        let set = range_set(4);
        for i in 0..300u32 {
            // single-byte prefix spreads keys across the uniform map
            let key = vec![(i % 256) as u8, (i / 256) as u8, i as u8];
            set.db(set.shard_index(&key)).put(key, vec![b'v']).unwrap();
        }
        let all = set.scan(&[], &[0xFF, 0xFF, 0xFF, 0xFF], 1000).unwrap();
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0), "concat out of order");
        let mut streamed = Vec::new();
        let n = set
            .scan_with(&[], &[0xFF, 0xFF, 0xFF, 0xFF], 1000, |k, v| {
                streamed.push((k.to_vec(), v.to_vec()));
            })
            .unwrap();
        assert_eq!(n, 300);
        assert_eq!(streamed, all, "streamed scan must match owned scan");
    }

    /// The satellite regression: a range scan must touch only the shards
    /// whose ranges intersect the request, not every shard.
    #[test]
    fn range_scans_route_only_to_owning_shards() {
        let set = range_set(4);
        for b in 0u16..=255 {
            set.db(set.shard_index(&[b as u8]))
                .put(vec![b as u8], vec![b as u8])
                .unwrap();
        }
        let before: Vec<u64> = set.dbs().iter().map(|d| d.stats().snapshot().scans).collect();
        // [16, 32) lies entirely inside shard 0's range [0, 64)
        let got = set.scan(&[16], &[32], 100).unwrap();
        assert_eq!(got.len(), 16);
        let after: Vec<u64> = set.dbs().iter().map(|d| d.stats().snapshot().scans).collect();
        let touched: Vec<usize> = (0..4).filter(|&i| after[i] > before[i]).collect();
        assert_eq!(touched, vec![0], "single-shard range scanned shards {touched:?}");

        // a two-shard range touches exactly those two
        let before = after;
        let got = set.scan(&[60], &[70], 100).unwrap();
        assert_eq!(got.len(), 10);
        let after: Vec<u64> = set.dbs().iter().map(|d| d.stats().snapshot().scans).collect();
        let touched: Vec<usize> = (0..4).filter(|&i| after[i] > before[i]).collect();
        assert_eq!(touched, vec![0, 1], "boundary-straddling scan routed to {touched:?}");

        // streaming path obeys the same routing
        let before = after;
        let n = set.scan_with(&[200], &[210], 100, |_, _| {}).unwrap();
        assert_eq!(n, 10);
        let after: Vec<u64> = set.dbs().iter().map(|d| d.stats().snapshot().scans).collect();
        let touched: Vec<usize> = (0..4).filter(|&i| after[i] > before[i]).collect();
        assert_eq!(touched, vec![3], "scan_with routed to {touched:?}");
    }

    /// Stale out-of-range data on a shard (a split donor's leftover copy)
    /// must be invisible to range-routed reads.
    #[test]
    fn clamped_scans_hide_out_of_range_shard_data() {
        let set = range_set(2);
        // shard 0 owns [0, 128) but holds a stale copy of key [200]
        set.db(0).put(vec![10], b"mine".to_vec()).unwrap();
        set.db(0).put(vec![200], b"stale".to_vec()).unwrap();
        set.db(1).put(vec![200], b"fresh".to_vec()).unwrap();
        assert_eq!(set.get(&[200]).unwrap(), Some(b"fresh".to_vec()));
        let all = set.scan(&[], &[0xFF], 100).unwrap();
        assert_eq!(
            all,
            vec![(vec![10], b"mine".to_vec()), (vec![200], b"fresh".to_vec())],
            "stale donor copy leaked into the scan"
        );
        let mut streamed = Vec::new();
        set.scan_with(&[], &[0xFF], 100, |k, v| streamed.push((k.to_vec(), v.to_vec())))
            .unwrap();
        assert_eq!(streamed, all);
    }
}
