//! Hash-partitioned shard routing over independent `Db` instances.
//!
//! Each shard is a fully independent engine on its own device: its own
//! memtable, WAL, levels, and background workers. A key's home shard is
//! `fnv1a(key) % shards`, so writes spread uniformly regardless of key
//! skew in the keyspace *prefix* (contrast with `lsm_core::PartitionedDb`,
//! which range-partitions to shrink compactions; hash partitioning
//! instead maximizes load spread for a serving front-end). The cost is
//! that range scans touch every shard: each shard is asked for the first
//! `limit` entries of the range, and the per-shard runs are merged by key
//! and truncated — correct because the global first-`limit` entries are a
//! subset of the union of the per-shard first-`limit` entries.

use lsm_core::Db;
use lsm_storage::StorageResult;

/// FNV-1a over the key, reduced mod `shards`. Stable across runs and
/// processes (the protocol does not carry shard ids; clients never need
/// to know the layout).
pub fn shard_of(key: &[u8], shards: usize) -> usize {
    debug_assert!(shards > 0);
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in key {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// A set of independent shard engines addressed by key hash.
pub struct ShardSet {
    shards: Vec<Db>,
}

impl ShardSet {
    /// Wraps `shards` (must be non-empty).
    pub fn new(shards: Vec<Db>) -> Self {
        assert!(!shards.is_empty(), "a shard set needs at least one shard");
        ShardSet { shards }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True only for an (invalid) empty set; present for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The shard index owning `key`.
    pub fn shard_index(&self, key: &[u8]) -> usize {
        shard_of(key, self.shards.len())
    }

    /// The engine at `idx`.
    pub fn db(&self, idx: usize) -> &Db {
        &self.shards[idx]
    }

    /// All shard engines, index order.
    pub fn dbs(&self) -> &[Db] {
        &self.shards
    }

    /// Routed point lookup.
    pub fn get(&self, key: &[u8]) -> StorageResult<Option<Vec<u8>>> {
        self.shards[self.shard_index(key)].get(key)
    }

    /// Routed point lookup through a borrowed view: `f` runs on the value
    /// bytes in place (memtable arena or cached block), so the server can
    /// copy them straight into a wire buffer with no intermediate `Vec`.
    pub fn get_with<R>(&self, key: &[u8], f: impl FnOnce(&[u8]) -> R) -> StorageResult<Option<R>> {
        self.shards[self.shard_index(key)].get_with(key, f)
    }

    /// Streaming cross-shard scan: calls `f(key, value)` for each entry
    /// in key order, up to `limit`, and returns how many were visited.
    /// With a single shard this streams borrowed views straight off the
    /// engine's merge cursor; with multiple shards the per-shard results
    /// must be materialized for the k-way merge first.
    pub fn scan_with(
        &self,
        start: &[u8],
        end: &[u8],
        limit: usize,
        mut f: impl FnMut(&[u8], &[u8]),
    ) -> StorageResult<usize> {
        if limit == 0 || start >= end {
            return Ok(0);
        }
        if self.shards.len() == 1 {
            return self.shards[0].scan_with(start, end, limit, f);
        }
        let merged = self.scan(start, end, limit)?;
        let n = merged.len();
        for (k, v) in &merged {
            f(k, v);
        }
        Ok(n)
    }

    /// Cross-shard ordered scan of `[start, end)`, at most `limit`
    /// entries: per-shard scans stitched by a k-way merge.
    pub fn scan(&self, start: &[u8], end: &[u8], limit: usize) -> StorageResult<Vec<(Vec<u8>, Vec<u8>)>> {
        if limit == 0 || start >= end {
            return Ok(Vec::new());
        }
        let mut per_shard: Vec<Vec<(Vec<u8>, Vec<u8>)>> = Vec::with_capacity(self.shards.len());
        for db in &self.shards {
            per_shard.push(db.scan(start.to_vec()..end.to_vec(), limit)?);
        }
        // k-way merge by key; shards partition the keyspace disjointly,
        // so no key appears twice and ties cannot happen
        let mut cursors = vec![0usize; per_shard.len()];
        let mut out = Vec::with_capacity(limit.min(1024));
        while out.len() < limit {
            let mut best: Option<usize> = None;
            for (s, list) in per_shard.iter().enumerate() {
                if cursors[s] >= list.len() {
                    continue;
                }
                let candidate = &list[cursors[s]].0;
                if best.is_none_or(|b| candidate < &per_shard[b][cursors[b]].0) {
                    best = Some(s);
                }
            }
            match best {
                Some(s) => {
                    out.push(per_shard[s][cursors[s]].clone());
                    cursors[s] += 1;
                }
                None => break,
            }
        }
        Ok(out)
    }

    /// Flushes every shard to quiescence (graceful-drain step).
    pub fn flush_all(&self) -> StorageResult<()> {
        for db in &self.shards {
            db.flush_all()?;
        }
        Ok(())
    }

    /// Consumes the set, returning the shard engines.
    pub fn into_dbs(self) -> Vec<Db> {
        self.shards
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_core::LsmConfig;

    fn shard_set(n: usize) -> ShardSet {
        ShardSet::new(
            (0..n)
                .map(|_| Db::open_in_memory(LsmConfig::small_for_tests()).unwrap())
                .collect(),
        )
    }

    #[test]
    fn hashing_is_stable_and_spreads() {
        assert_eq!(shard_of(b"key", 4), shard_of(b"key", 4));
        let mut hits = vec![0usize; 4];
        for i in 0..4000u32 {
            hits[shard_of(format!("user{i:08}").as_bytes(), 4)] += 1;
        }
        for (s, &h) in hits.iter().enumerate() {
            assert!(
                (700..1300).contains(&h),
                "shard {s} got {h} of 4000 keys — hash is badly skewed"
            );
        }
    }

    #[test]
    fn routed_roundtrip() {
        let set = shard_set(3);
        for i in 0..500u32 {
            let key = format!("k{i:05}").into_bytes();
            set.db(set.shard_index(&key))
                .put(key, format!("v{i}").into_bytes())
                .unwrap();
        }
        for i in 0..500u32 {
            assert_eq!(
                set.get(format!("k{i:05}").as_bytes()).unwrap(),
                Some(format!("v{i}").into_bytes())
            );
        }
    }

    #[test]
    fn cross_shard_scan_stitches_in_key_order() {
        let set = shard_set(4);
        for i in 0..300u32 {
            let key = format!("s{i:05}").into_bytes();
            set.db(set.shard_index(&key)).put(key, vec![0u8; 4]).unwrap();
        }
        let got = set.scan(b"s00050", b"s00150", 40).unwrap();
        assert_eq!(got.len(), 40);
        for (i, (k, _)) in got.iter().enumerate() {
            assert_eq!(k, format!("s{:05}", 50 + i).as_bytes(), "entry {i} out of order");
        }
        // unlimited-enough scan sees the whole range, still ordered
        let all = set.scan(b"s00000", b"s00300", 1000).unwrap();
        assert_eq!(all.len(), 300);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
        // degenerate ranges
        assert!(set.scan(b"z", b"a", 10).unwrap().is_empty());
        assert!(set.scan(b"a", b"z", 0).unwrap().is_empty());
    }
}
