//! Per-shard group-commit write batcher.
//!
//! One committer thread per shard owns that shard's write order. Client
//! reader threads submit [`WriteReq`]s into the committer's channel and
//! return immediately (the response is sent from the completion
//! callback). The committer takes one request, then drains whatever else
//! has queued up to `max_batch`, folds them into a single
//! [`WriteBatch`], and commits it through `Db::write_batch` — one WAL
//! append — followed by one `Db::sync` when durability-per-ack is
//! configured. The batch size is therefore *adaptive*: an idle shard
//! commits singles with no added latency, while a busy shard's queue
//! depth becomes its batch size, amortizing the sync cost exactly when
//! it matters (the classic group-commit curve).
//!
//! Every callback fires exactly once, also on error and also for
//! requests still queued when the batcher shuts down (those see an
//! error), so a pipelined connection can always account for its
//! in-flight writes.
//!
//! Two hooks serve live shard migration (see `migrate`):
//!
//! - a [`MigrationTap`] tees every *committed* op inside a key range
//!   into a channel, in commit order, so a migration can replay the
//!   donor's write tail into the recipient while writes keep flowing;
//! - [`GroupCommitter::barrier`] round-trips a marker through the queue,
//!   returning only after everything submitted before it has committed
//!   (and been tapped) — the cut-over's "drain the in-flight writes"
//!   step.

use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use lsm_core::{Db, WriteBatch};
use lsm_storage::StorageError;

use crate::metrics::ServerMetrics;
use crate::protocol::ReplOpsBuilder;
use crate::replication::Replicator;

/// How a submitted write ended.
#[derive(Debug)]
pub enum WriteOutcome {
    /// Committed, durable per the sync policy, and (when replicating)
    /// acked by the configured quorum.
    Ok,
    /// Committed and durable on the primary, but the replica quorum did
    /// not ack within the timeout.
    ReplicaLag,
    /// The batch failed to commit; nothing is promised.
    Err(StorageError),
}

/// Completion callback: receives the batch's commit outcome.
pub type WriteCallback = Box<dyn FnOnce(WriteOutcome) + Send + 'static>;

/// The write operation carried by a [`WriteReq`].
pub enum WriteOp {
    /// Insert/update.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// Value to associate.
        value: Vec<u8>,
    },
    /// Tombstone.
    Delete {
        /// Key to delete.
        key: Vec<u8>,
    },
}

impl WriteOp {
    fn key(&self) -> &[u8] {
        match self {
            WriteOp::Put { key, .. } | WriteOp::Delete { key } => key,
        }
    }
}

/// One queued write and its completion callback.
pub struct WriteReq {
    /// The operation.
    pub op: WriteOp,
    /// Fired exactly once with the commit outcome.
    pub done: WriteCallback,
}

/// How a submitted transaction commit ended.
pub enum TxnOutcome {
    /// Validated, applied, durable per the sync policy (and replica-acked
    /// when replicating); carries the global commit stamp.
    Committed(u64),
    /// Committed and durable locally, but the replica quorum did not ack
    /// within the timeout.
    CommittedLag(u64),
    /// First-committer-wins validation failed; nothing was applied.
    Conflict(lsm_core::Conflict),
    /// The commit failed; nothing is promised.
    Err(StorageError),
}

/// Completion callback for a transaction commit.
pub type TxnCallback = Box<dyn FnOnce(TxnOutcome) + Send + 'static>;

/// A transaction commit job: validate + apply the parts atomically via
/// [`lsm_core::commit_parts`], *inside* the committer thread, so the
/// commit serializes with the shard's group-commit batches — the
/// migration tap tee and the replication publish stay in true commit
/// order. Parts may span engines (cross-shard) only when the server is
/// neither elastic nor replicated; the routing layer enforces that.
pub struct TxnCommitReq {
    /// One part per involved engine.
    pub parts: Vec<lsm_core::TxnPart>,
    /// Fired exactly once with the outcome.
    pub done: TxnCallback,
}

/// Tees committed ops inside `[lo, hi)` (`hi` `None` = unbounded) into
/// `tx` as encoded ops regions, one region per group-commit batch, in
/// commit order. Installed on a split/merge donor's committer for the
/// copy + catch-up phases; regions are pushed only after the batch is
/// durable, so everything the tap delivers is also on the donor's disk.
pub struct MigrationTap {
    /// Inclusive lower bound of the migrating range.
    pub lo: Vec<u8>,
    /// Exclusive upper bound (`None` = to the end of the keyspace).
    pub hi: Option<Vec<u8>>,
    /// Receives one encoded ops region per batch that touched the range.
    pub tx: Sender<Vec<u8>>,
}

impl MigrationTap {
    fn covers(&self, key: &[u8]) -> bool {
        key >= self.lo.as_slice() && self.hi.as_deref().is_none_or(|h| key < h)
    }
}

/// What travels through a committer's queue.
enum Msg {
    /// A client write.
    Req(WriteReq),
    /// A drain marker: acked once everything queued before it has
    /// committed, synced, and been tapped.
    Barrier(Sender<()>),
    /// A transaction commit, executed between batches.
    Txn(TxnCommitReq),
}

/// `WriteOutcome` is not `Clone` (its error may carry an `io::Error`);
/// duplicate an outcome for each callback in a batch.
fn duplicate(out: &WriteOutcome) -> WriteOutcome {
    match out {
        WriteOutcome::Ok => WriteOutcome::Ok,
        WriteOutcome::ReplicaLag => WriteOutcome::ReplicaLag,
        WriteOutcome::Err(e) => {
            WriteOutcome::Err(StorageError::Io(std::io::Error::other(e.to_string())))
        }
    }
}

fn shutdown_outcome() -> WriteOutcome {
    WriteOutcome::Err(StorageError::Io(std::io::Error::other(
        "write batcher is shut down",
    )))
}

fn txn_shutdown_outcome() -> TxnOutcome {
    TxnOutcome::Err(StorageError::Io(std::io::Error::other(
        "write batcher is shut down",
    )))
}

/// A shard's group-commit thread. Dropping (or [`shutdown`]) closes the
/// queue; the thread drains what is left, fails those callbacks, and
/// exits. Shared behind an `Arc` by the server's routing topology and by
/// in-flight migrations, so every method takes `&self`.
///
/// [`shutdown`]: GroupCommitter::shutdown
pub struct GroupCommitter {
    tx: Mutex<Option<Sender<Msg>>>,
    handle: Mutex<Option<JoinHandle<()>>>,
    tap: Arc<Mutex<Option<MigrationTap>>>,
}

impl GroupCommitter {
    /// Spawns the committer thread for `db`. With a [`Replicator`], every
    /// committed batch is published to it and the callbacks are held
    /// until the replica quorum acks (or the wait times out).
    pub fn start(
        db: Db,
        max_batch: usize,
        sync_each_batch: bool,
        metrics: Arc<ServerMetrics>,
        replicator: Option<Arc<Replicator>>,
    ) -> Self {
        let (tx, rx) = channel::<Msg>();
        let tap: Arc<Mutex<Option<MigrationTap>>> = Arc::default();
        let tap2 = Arc::clone(&tap);
        let handle = std::thread::Builder::new()
            .name("lsm-server-committer".into())
            .spawn(move || {
                committer_loop(db, rx, max_batch.max(1), sync_each_batch, metrics, replicator, tap2)
            })
            .expect("spawn committer thread");
        GroupCommitter {
            tx: Mutex::new(Some(tx)),
            handle: Mutex::new(Some(handle)),
            tap,
        }
    }

    /// Queues a write. Returns `false` (and fails the callback) if the
    /// committer has already shut down.
    pub fn submit(&self, req: WriteReq) -> bool {
        match &*self.tx.lock().unwrap() {
            Some(tx) => match tx.send(Msg::Req(req)) {
                Ok(()) => true,
                Err(e) => {
                    if let Msg::Req(r) = e.0 {
                        (r.done)(shutdown_outcome());
                    }
                    false
                }
            },
            None => {
                (req.done)(shutdown_outcome());
                false
            }
        }
    }

    /// Queues a transaction commit. Returns `false` (and fails the
    /// callback, releasing the parts' snapshot floors) if the committer
    /// has already shut down.
    pub fn submit_txn(&self, req: TxnCommitReq) -> bool {
        match &*self.tx.lock().unwrap() {
            Some(tx) => match tx.send(Msg::Txn(req)) {
                Ok(()) => true,
                Err(e) => {
                    if let Msg::Txn(t) = e.0 {
                        (t.done)(txn_shutdown_outcome());
                    }
                    false
                }
            },
            None => {
                (req.done)(txn_shutdown_outcome());
                false
            }
        }
    }

    /// Blocks until everything submitted before this call has committed,
    /// synced, and been tapped. Returns `false` if the committer is shut
    /// down (everything queued still drained — to failure callbacks).
    pub fn barrier(&self) -> bool {
        let (ack_tx, ack_rx) = channel();
        let sent = match &*self.tx.lock().unwrap() {
            Some(tx) => tx.send(Msg::Barrier(ack_tx)).is_ok(),
            None => false,
        };
        sent && ack_rx.recv().is_ok()
    }

    /// Installs a [`MigrationTap`]: every batch committed from now on
    /// has its in-range ops teed to the tap, durably-first. Blocks until
    /// the in-flight batch (if any) finishes, so a snapshot taken after
    /// this returns contains every committed-and-untapped write.
    pub fn install_tap(&self, tap: MigrationTap) {
        *self.tap.lock().unwrap() = Some(tap);
    }

    /// Removes the tap (migration finished or abandoned).
    pub fn clear_tap(&self) {
        *self.tap.lock().unwrap() = None;
    }

    /// Closes the queue and joins the thread after it commits everything
    /// already queued. Idempotent.
    pub fn shutdown(&self) {
        drop(self.tx.lock().unwrap().take()); // disconnects the channel
        if let Some(h) = self.handle.lock().unwrap().take() {
            let _ = h.join();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn committer_loop(
    db: Db,
    rx: Receiver<Msg>,
    max_batch: usize,
    sync_each_batch: bool,
    metrics: Arc<ServerMetrics>,
    replicator: Option<Arc<Replicator>>,
    tap: Arc<Mutex<Option<MigrationTap>>>,
) {
    // one batch and one callback list live for the thread's lifetime:
    // commits drain them but keep their capacity, so a busy shard's
    // steady state builds every batch in recycled memory
    let mut batch = WriteBatch::new();
    let mut dones: Vec<WriteCallback> = Vec::new();
    let mut reqs: Vec<WriteReq> = Vec::new();
    while let Ok(first) = rx.recv() {
        // a barrier with nothing queued before it acks immediately
        let mut pending_barrier: Option<Sender<()>> = None;
        let mut pending_txn: Option<TxnCommitReq> = None;
        match first {
            Msg::Req(r) => reqs.push(r),
            Msg::Barrier(ack) => {
                let _ = ack.send(());
                continue;
            }
            Msg::Txn(t) => {
                run_txn_commit(t, sync_each_batch, &metrics, &replicator, &tap);
                continue;
            }
        }
        while reqs.len() < max_batch && pending_barrier.is_none() && pending_txn.is_none() {
            match rx.try_recv() {
                Ok(Msg::Req(r)) => reqs.push(r),
                // stop collecting: the barrier must observe this batch
                // committed, so commit now and ack after
                Ok(Msg::Barrier(ack)) => pending_barrier = Some(ack),
                // likewise: the txn commit must serialize after this batch
                Ok(Msg::Txn(t)) => pending_txn = Some(t),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        // the tap guard is held across fold + commit + sync + tee, so
        // install_tap has a clean cut: batches fully before it are
        // visible to a subsequent snapshot, batches after are tapped
        let tap_guard = tap.lock().unwrap();
        // when replicating, encode the ops region while folding: the
        // shipped frame is built exactly once per batch, here
        let mut ops = replicator.as_ref().map(|_| ReplOpsBuilder::new());
        let mut tap_ops = tap_guard.as_ref().map(|_| ReplOpsBuilder::new());
        for r in reqs.drain(..) {
            if let Some(b) = &mut ops {
                match &r.op {
                    WriteOp::Put { key, value } => b.put(key, value),
                    WriteOp::Delete { key } => b.delete(key),
                }
            }
            if let (Some(b), Some(t)) = (&mut tap_ops, tap_guard.as_ref()) {
                if t.covers(r.op.key()) {
                    match &r.op {
                        WriteOp::Put { key, value } => b.put(key, value),
                        WriteOp::Delete { key } => b.delete(key),
                    }
                }
            }
            match r.op {
                WriteOp::Put { key, value } => batch.put(key, value),
                WriteOp::Delete { key } => batch.delete(key),
            }
            dones.push(r.done);
        }
        metrics.batch_ops.record(dones.len() as u64);
        metrics.batches.inc();
        let mut result = db.write_batch_mut(&mut batch);
        if result.is_ok() && sync_each_batch {
            // the ack promises durability: pad the WAL tail once per
            // batch, not once per operation — the group-commit win
            result = db.sync();
        }
        if result.is_ok() {
            // tee to the migration tap only what is committed and synced
            // locally: the tap's receiver treats every region as durable
            // on the donor
            if let (Some(t), Some(ops)) = (tap_guard.as_ref(), tap_ops) {
                if ops.count() > 0 {
                    let _ = t.tx.send(ops.finish());
                }
            }
        }
        drop(tap_guard);
        let outcome = match result {
            Ok(()) => match (&replicator, ops) {
                (Some(rep), Some(ops)) => {
                    // publish only what committed locally: a batch that
                    // failed here must never reach a replica, or a
                    // failover could resurrect a write the client saw fail
                    let t0 = metrics.now_ns();
                    let seq = rep.publish(ops.finish());
                    if rep.wait_quorum(seq) {
                        metrics.repl_ack_ns.record(metrics.now_ns().saturating_sub(t0));
                        WriteOutcome::Ok
                    } else {
                        metrics.repl_lag_timeouts.inc();
                        WriteOutcome::ReplicaLag
                    }
                }
                _ => WriteOutcome::Ok,
            },
            Err(e) => WriteOutcome::Err(e),
        };
        for done in dones.drain(..) {
            done(duplicate(&outcome));
        }
        if let Some(ack) = pending_barrier {
            let _ = ack.send(());
        }
        if let Some(t) = pending_txn {
            run_txn_commit(t, sync_each_batch, &metrics, &replicator, &tap);
        }
    }
}

/// Executes one transaction commit inside the committer thread:
/// validate-and-apply atomically, sync per the durability policy, then
/// tee the write-set to the migration tap and publish it to the
/// replicator — exactly the order a group-commit batch follows, under
/// the same tap guard, so a migration or a replica observes txn writes
/// in true commit order relative to plain writes on this shard.
fn run_txn_commit(
    req: TxnCommitReq,
    sync_each_batch: bool,
    metrics: &Arc<ServerMetrics>,
    replicator: &Option<Arc<Replicator>>,
    tap: &Arc<Mutex<Option<MigrationTap>>>,
) {
    let TxnCommitReq { parts, done } = req;
    // capture the involved engines and the flattened write-set before
    // commit_parts consumes the parts
    let dbs: Vec<Db> = parts.iter().map(|p| p.db().clone()).collect();
    let writes: Vec<(Vec<u8>, Option<Vec<u8>>)> = parts
        .iter()
        .flat_map(|p| p.writes().iter().cloned())
        .collect();
    let tap_guard = tap.lock().unwrap();
    let outcome = match lsm_core::commit_parts(parts) {
        Ok(stamp) => {
            let mut synced = Ok(());
            if sync_each_batch {
                for d in &dbs {
                    if let Err(e) = d.sync() {
                        synced = Err(e);
                        break;
                    }
                }
            }
            match synced {
                Ok(()) => {
                    // tee only what is committed and synced locally, same
                    // contract as the batch path
                    if let Some(t) = tap_guard.as_ref() {
                        let mut b = ReplOpsBuilder::new();
                        for (k, v) in writes.iter().filter(|(k, _)| t.covers(k)) {
                            match v {
                                Some(v) => b.put(k, v),
                                None => b.delete(k),
                            }
                        }
                        if b.count() > 0 {
                            let _ = t.tx.send(b.finish());
                        }
                    }
                    match replicator {
                        Some(rep) if !writes.is_empty() => {
                            let mut b = ReplOpsBuilder::new();
                            for (k, v) in &writes {
                                match v {
                                    Some(v) => b.put(k, v),
                                    None => b.delete(k),
                                }
                            }
                            let t0 = metrics.now_ns();
                            let seq = rep.publish(b.finish());
                            if rep.wait_quorum(seq) {
                                metrics.repl_ack_ns.record(metrics.now_ns().saturating_sub(t0));
                                TxnOutcome::Committed(stamp)
                            } else {
                                metrics.repl_lag_timeouts.inc();
                                TxnOutcome::CommittedLag(stamp)
                            }
                        }
                        _ => TxnOutcome::Committed(stamp),
                    }
                }
                Err(e) => TxnOutcome::Err(e),
            }
        }
        Err(lsm_core::TxnError::Conflict(c)) => TxnOutcome::Conflict(c),
        Err(lsm_core::TxnError::Storage(e)) => TxnOutcome::Err(e),
    };
    drop(tap_guard);
    done(outcome);
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_core::LsmConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn put_req(i: u32, acks: &Arc<AtomicUsize>, errs: &Arc<AtomicUsize>) -> WriteReq {
        let acks = Arc::clone(acks);
        let errs = Arc::clone(errs);
        WriteReq {
            op: WriteOp::Put {
                key: format!("bk{i:05}").into_bytes(),
                value: format!("bv{i}").into_bytes(),
            },
            done: Box::new(move |r| {
                match r {
                    WriteOutcome::Ok => acks.fetch_add(1, Ordering::SeqCst),
                    WriteOutcome::ReplicaLag | WriteOutcome::Err(_) => {
                        errs.fetch_add(1, Ordering::SeqCst)
                    }
                };
            }),
        }
    }

    #[test]
    fn commits_everything_and_acks_once_each() {
        let cfg = LsmConfig {
            wal: true,
            ..LsmConfig::small_for_tests()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        let metrics = ServerMetrics::new();
        let acks = Arc::new(AtomicUsize::new(0));
        let errs = Arc::new(AtomicUsize::new(0));
        let committer = GroupCommitter::start(db.clone(), 64, true, Arc::clone(&metrics), None);
        for i in 0..500u32 {
            assert!(committer.submit(put_req(i, &acks, &errs)));
        }
        committer.shutdown();
        assert_eq!(acks.load(Ordering::SeqCst), 500, "every write must be acked");
        assert_eq!(errs.load(Ordering::SeqCst), 0);
        for i in (0..500u32).step_by(71) {
            assert_eq!(
                db.get(format!("bk{i:05}").as_bytes()).unwrap(),
                Some(format!("bv{i}").into_bytes())
            );
        }
        // group commit must have coalesced: fewer WAL appends than writes
        let s = db.stats().snapshot();
        assert!(s.wal_appends > 0);
        assert!(
            s.wal_appends < 500,
            "500 writes took {} WAL appends — no batching happened",
            s.wal_appends
        );
        assert_eq!(s.puts, 500);
    }

    #[test]
    fn submit_after_shutdown_fails_the_callback() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let metrics = ServerMetrics::new();
        let acks = Arc::new(AtomicUsize::new(0));
        let errs = Arc::new(AtomicUsize::new(0));
        let committer = GroupCommitter::start(db, 8, false, metrics, None);
        committer.shutdown();
        assert!(!committer.submit(put_req(0, &acks, &errs)));
        assert_eq!(errs.load(Ordering::SeqCst), 1);
        assert_eq!(acks.load(Ordering::SeqCst), 0);
        assert!(!committer.barrier(), "barrier on a shut-down committer");
    }

    #[test]
    fn callbacks_preserve_submission_order_within_a_shard() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let metrics = ServerMetrics::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let committer = GroupCommitter::start(db, 16, false, metrics, None);
        for i in 0..200u32 {
            let order = Arc::clone(&order);
            committer.submit(WriteReq {
                op: WriteOp::Put {
                    key: format!("o{i:04}").into_bytes(),
                    value: Vec::new(),
                },
                done: Box::new(move |_| order.lock().unwrap().push(i)),
            });
        }
        committer.shutdown();
        let seen = order.lock().unwrap();
        assert_eq!(seen.len(), 200);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "acks out of submission order");
    }

    #[test]
    fn barrier_observes_everything_submitted_before_it() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let metrics = ServerMetrics::new();
        let acks = Arc::new(AtomicUsize::new(0));
        let errs = Arc::new(AtomicUsize::new(0));
        let committer = GroupCommitter::start(db.clone(), 4, false, metrics, None);
        for i in 0..100u32 {
            committer.submit(put_req(i, &acks, &errs));
        }
        assert!(committer.barrier());
        // every write submitted before the barrier is committed and acked
        assert_eq!(acks.load(Ordering::SeqCst), 100);
        assert_eq!(db.get(b"bk00099").unwrap(), Some(b"bv99".to_vec()));
        committer.shutdown();
    }

    #[test]
    fn tap_tees_exactly_the_in_range_committed_ops_in_order() {
        use crate::protocol::{repl_ops, ReplOpRef};
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let metrics = ServerMetrics::new();
        let acks = Arc::new(AtomicUsize::new(0));
        let errs = Arc::new(AtomicUsize::new(0));
        let committer = GroupCommitter::start(db, 8, false, metrics, None);
        // pre-tap write: must not be teed
        committer.submit(put_req(0, &acks, &errs));
        assert!(committer.barrier());
        let (tx, rx) = channel();
        committer.install_tap(MigrationTap {
            lo: b"bk00050".to_vec(),
            hi: Some(b"bk00070".to_vec()),
            tx,
        });
        for i in 1..100u32 {
            committer.submit(put_req(i, &acks, &errs));
        }
        assert!(committer.barrier());
        committer.clear_tap();
        // post-tap write: must not be teed either
        committer.submit(put_req(0, &acks, &errs));
        committer.shutdown();
        let mut teed = Vec::new();
        while let Ok(region) = rx.try_recv() {
            for op in repl_ops(&region).unwrap() {
                match op.unwrap() {
                    ReplOpRef::Put { key, .. } => teed.push(key.to_vec()),
                    ReplOpRef::Delete { key } => teed.push(key.to_vec()),
                }
            }
        }
        let expect: Vec<Vec<u8>> =
            (50..70).map(|i| format!("bk{i:05}").into_bytes()).collect();
        assert_eq!(teed, expect, "tap must tee exactly [lo, hi) in commit order");
    }
}
