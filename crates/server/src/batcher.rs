//! Per-shard group-commit write batcher.
//!
//! One committer thread per shard owns that shard's write order. Client
//! reader threads submit [`WriteReq`]s into the committer's channel and
//! return immediately (the response is sent from the completion
//! callback). The committer takes one request, then drains whatever else
//! has queued up to `max_batch`, folds them into a single
//! [`WriteBatch`], and commits it through `Db::write_batch` — one WAL
//! append — followed by one `Db::sync` when durability-per-ack is
//! configured. The batch size is therefore *adaptive*: an idle shard
//! commits singles with no added latency, while a busy shard's queue
//! depth becomes its batch size, amortizing the sync cost exactly when
//! it matters (the classic group-commit curve).
//!
//! Every callback fires exactly once, also on error and also for
//! requests still queued when the batcher shuts down (those see an
//! error), so a pipelined connection can always account for its
//! in-flight writes.

use std::sync::mpsc::{channel, Receiver, Sender, TryRecvError};
use std::sync::Arc;
use std::thread::JoinHandle;

use lsm_core::{Db, WriteBatch};
use lsm_storage::StorageError;

use crate::metrics::ServerMetrics;
use crate::protocol::ReplOpsBuilder;
use crate::replication::Replicator;

/// How a submitted write ended.
#[derive(Debug)]
pub enum WriteOutcome {
    /// Committed, durable per the sync policy, and (when replicating)
    /// acked by the configured quorum.
    Ok,
    /// Committed and durable on the primary, but the replica quorum did
    /// not ack within the timeout.
    ReplicaLag,
    /// The batch failed to commit; nothing is promised.
    Err(StorageError),
}

/// Completion callback: receives the batch's commit outcome.
pub type WriteCallback = Box<dyn FnOnce(WriteOutcome) + Send + 'static>;

/// The write operation carried by a [`WriteReq`].
pub enum WriteOp {
    /// Insert/update.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// Value to associate.
        value: Vec<u8>,
    },
    /// Tombstone.
    Delete {
        /// Key to delete.
        key: Vec<u8>,
    },
}

/// One queued write and its completion callback.
pub struct WriteReq {
    /// The operation.
    pub op: WriteOp,
    /// Fired exactly once with the commit outcome.
    pub done: WriteCallback,
}

/// `WriteOutcome` is not `Clone` (its error may carry an `io::Error`);
/// duplicate an outcome for each callback in a batch.
fn duplicate(out: &WriteOutcome) -> WriteOutcome {
    match out {
        WriteOutcome::Ok => WriteOutcome::Ok,
        WriteOutcome::ReplicaLag => WriteOutcome::ReplicaLag,
        WriteOutcome::Err(e) => {
            WriteOutcome::Err(StorageError::Io(std::io::Error::other(e.to_string())))
        }
    }
}

fn shutdown_outcome() -> WriteOutcome {
    WriteOutcome::Err(StorageError::Io(std::io::Error::other(
        "write batcher is shut down",
    )))
}

/// A shard's group-commit thread. Dropping (or [`shutdown`]) closes the
/// queue; the thread drains what is left, fails those callbacks, and
/// exits.
///
/// [`shutdown`]: GroupCommitter::shutdown
pub struct GroupCommitter {
    tx: Option<Sender<WriteReq>>,
    handle: Option<JoinHandle<()>>,
}

impl GroupCommitter {
    /// Spawns the committer thread for `db`. With a [`Replicator`], every
    /// committed batch is published to it and the callbacks are held
    /// until the replica quorum acks (or the wait times out).
    pub fn start(
        db: Db,
        max_batch: usize,
        sync_each_batch: bool,
        metrics: Arc<ServerMetrics>,
        replicator: Option<Arc<Replicator>>,
    ) -> Self {
        let (tx, rx) = channel::<WriteReq>();
        let handle = std::thread::Builder::new()
            .name("lsm-server-committer".into())
            .spawn(move || {
                committer_loop(db, rx, max_batch.max(1), sync_each_batch, metrics, replicator)
            })
            .expect("spawn committer thread");
        GroupCommitter {
            tx: Some(tx),
            handle: Some(handle),
        }
    }

    /// Queues a write. Returns `false` (and fails the callback) if the
    /// committer has already shut down.
    pub fn submit(&self, req: WriteReq) -> bool {
        match &self.tx {
            Some(tx) => match tx.send(req) {
                Ok(()) => true,
                Err(e) => {
                    (e.0.done)(shutdown_outcome());
                    false
                }
            },
            None => {
                (req.done)(shutdown_outcome());
                false
            }
        }
    }

    /// Closes the queue and joins the thread after it commits everything
    /// already queued.
    pub fn shutdown(&mut self) {
        self.tx = None; // disconnects the channel
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for GroupCommitter {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn committer_loop(
    db: Db,
    rx: Receiver<WriteReq>,
    max_batch: usize,
    sync_each_batch: bool,
    metrics: Arc<ServerMetrics>,
    replicator: Option<Arc<Replicator>>,
) {
    // one batch and one callback list live for the thread's lifetime:
    // commits drain them but keep their capacity, so a busy shard's
    // steady state builds every batch in recycled memory
    let mut batch = WriteBatch::new();
    let mut dones: Vec<WriteCallback> = Vec::new();
    let mut reqs: Vec<WriteReq> = Vec::new();
    while let Ok(first) = rx.recv() {
        reqs.push(first);
        while reqs.len() < max_batch {
            match rx.try_recv() {
                Ok(r) => reqs.push(r),
                Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => break,
            }
        }
        // when replicating, encode the ops region while folding: the
        // shipped frame is built exactly once per batch, here
        let mut ops = replicator.as_ref().map(|_| ReplOpsBuilder::new());
        for r in reqs.drain(..) {
            if let Some(b) = &mut ops {
                match &r.op {
                    WriteOp::Put { key, value } => b.put(key, value),
                    WriteOp::Delete { key } => b.delete(key),
                }
            }
            match r.op {
                WriteOp::Put { key, value } => batch.put(key, value),
                WriteOp::Delete { key } => batch.delete(key),
            }
            dones.push(r.done);
        }
        metrics.batch_ops.record(dones.len() as u64);
        metrics.batches.inc();
        let mut result = db.write_batch_mut(&mut batch);
        if result.is_ok() && sync_each_batch {
            // the ack promises durability: pad the WAL tail once per
            // batch, not once per operation — the group-commit win
            result = db.sync();
        }
        let outcome = match result {
            Ok(()) => match (&replicator, ops) {
                (Some(rep), Some(ops)) => {
                    // publish only what committed locally: a batch that
                    // failed here must never reach a replica, or a
                    // failover could resurrect a write the client saw fail
                    let t0 = metrics.now_ns();
                    let seq = rep.publish(ops.finish());
                    if rep.wait_quorum(seq) {
                        metrics.repl_ack_ns.record(metrics.now_ns().saturating_sub(t0));
                        WriteOutcome::Ok
                    } else {
                        metrics.repl_lag_timeouts.inc();
                        WriteOutcome::ReplicaLag
                    }
                }
                _ => WriteOutcome::Ok,
            },
            Err(e) => WriteOutcome::Err(e),
        };
        for done in dones.drain(..) {
            done(duplicate(&outcome));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_core::LsmConfig;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn put_req(i: u32, acks: &Arc<AtomicUsize>, errs: &Arc<AtomicUsize>) -> WriteReq {
        let acks = Arc::clone(acks);
        let errs = Arc::clone(errs);
        WriteReq {
            op: WriteOp::Put {
                key: format!("bk{i:05}").into_bytes(),
                value: format!("bv{i}").into_bytes(),
            },
            done: Box::new(move |r| {
                match r {
                    WriteOutcome::Ok => acks.fetch_add(1, Ordering::SeqCst),
                    WriteOutcome::ReplicaLag | WriteOutcome::Err(_) => {
                        errs.fetch_add(1, Ordering::SeqCst)
                    }
                };
            }),
        }
    }

    #[test]
    fn commits_everything_and_acks_once_each() {
        let cfg = LsmConfig {
            wal: true,
            ..LsmConfig::small_for_tests()
        };
        let db = Db::open_in_memory(cfg).unwrap();
        let metrics = ServerMetrics::new();
        let acks = Arc::new(AtomicUsize::new(0));
        let errs = Arc::new(AtomicUsize::new(0));
        let mut committer = GroupCommitter::start(db.clone(), 64, true, Arc::clone(&metrics), None);
        for i in 0..500u32 {
            assert!(committer.submit(put_req(i, &acks, &errs)));
        }
        committer.shutdown();
        assert_eq!(acks.load(Ordering::SeqCst), 500, "every write must be acked");
        assert_eq!(errs.load(Ordering::SeqCst), 0);
        for i in (0..500u32).step_by(71) {
            assert_eq!(
                db.get(format!("bk{i:05}").as_bytes()).unwrap(),
                Some(format!("bv{i}").into_bytes())
            );
        }
        // group commit must have coalesced: fewer WAL appends than writes
        let s = db.stats().snapshot();
        assert!(s.wal_appends > 0);
        assert!(
            s.wal_appends < 500,
            "500 writes took {} WAL appends — no batching happened",
            s.wal_appends
        );
        assert_eq!(s.puts, 500);
    }

    #[test]
    fn submit_after_shutdown_fails_the_callback() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let metrics = ServerMetrics::new();
        let acks = Arc::new(AtomicUsize::new(0));
        let errs = Arc::new(AtomicUsize::new(0));
        let mut committer = GroupCommitter::start(db, 8, false, metrics, None);
        committer.shutdown();
        assert!(!committer.submit(put_req(0, &acks, &errs)));
        assert_eq!(errs.load(Ordering::SeqCst), 1);
        assert_eq!(acks.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn callbacks_preserve_submission_order_within_a_shard() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let metrics = ServerMetrics::new();
        let order = Arc::new(Mutex::new(Vec::new()));
        let mut committer = GroupCommitter::start(db, 16, false, metrics, None);
        for i in 0..200u32 {
            let order = Arc::clone(&order);
            committer.submit(WriteReq {
                op: WriteOp::Put {
                    key: format!("o{i:04}").into_bytes(),
                    value: Vec::new(),
                },
                done: Box::new(move |_| order.lock().unwrap().push(i)),
            });
        }
        committer.shutdown();
        let seen = order.lock().unwrap();
        assert_eq!(seen.len(), 200);
        assert!(seen.windows(2).all(|w| w[0] < w[1]), "acks out of submission order");
    }
}
