//! The versioned shard map: a contiguous range partition of the keyspace
//! over named shards, persisted in a manifest-style cluster-metadata
//! file.
//!
//! ## Shape
//!
//! A [`ShardMap`] is a sorted list of [`ShardRange`] entries; entry `i`
//! owns `[entries[i].start, entries[i+1].start)` and the last entry owns
//! everything from its start key up. The first entry's start is the empty
//! key, so the entries always cover the whole keyspace with no gap and no
//! overlap — the partition invariant [`ShardMap::check_partition`]
//! asserts and the elastic proptests exercise. `shard_id`s are stable,
//! never-reused names (allocated from `next_shard_id`) so a shard's
//! on-disk device can be found again across splits, merges, and
//! restarts; the *index* of a shard changes whenever the map does.
//!
//! ## Versioning
//!
//! Every split or merge produces a new map with `version + 1`. The
//! version is what tests and clients observe across a live migration:
//! the cut-over writes the new map to the cluster-metadata file and then
//! swaps it into the server's routing state, so any reader that sees
//! version `v+1` is guaranteed the recipient shard is complete and
//! synced.
//!
//! ## Persistence
//!
//! The cluster-metadata file mirrors `lsm_core::manifest`: write a new
//! file carrying [`CLUSTER_META_MAGIC`], then best-effort delete the
//! predecessor. Recovery scans for the newest parseable copy; a crash
//! between write and delete leaves two, and either is a legal topology
//! (see `migrate` — the donor keeps its data after a split, so the old
//! map is consistent too).

use std::sync::Arc;

use lsm_core::entry::{get_varint, put_varint};
use lsm_storage::{FileId, IoCategory, StorageDevice, StorageResult, WritableFile};

/// Magic marking a cluster-metadata file's first bytes.
pub const CLUSTER_META_MAGIC: u64 = 0x4C_53_4D_53_48_44_0A; // "LSM SHD\n"

/// One shard's entry in the map: the shard's stable id and the inclusive
/// start of the key range it owns (its end is the next entry's start).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRange {
    /// Stable shard name; survives re-indexing, never reused.
    pub shard_id: u64,
    /// Inclusive start of the owned range (empty = beginning of keyspace).
    pub start: Vec<u8>,
}

/// A versioned range partition of the keyspace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardMap {
    /// Bumped by every split/merge; what clients observe flip.
    pub version: u64,
    /// Next stable shard id to allocate.
    pub next_shard_id: u64,
    /// The partition, sorted by `start`, first entry's start empty.
    pub entries: Vec<ShardRange>,
}

impl ShardMap {
    /// A fresh map of `n` shards with uniform single-byte boundaries
    /// (`256*i/n`), shard ids `0..n`.
    pub fn uniform(n: usize) -> ShardMap {
        assert!(n > 0, "a shard map needs at least one shard");
        let entries = (0..n)
            .map(|i| ShardRange {
                shard_id: i as u64,
                start: if i == 0 {
                    Vec::new()
                } else {
                    vec![(256 * i / n) as u8]
                },
            })
            .collect();
        let map = ShardMap {
            version: 1,
            next_shard_id: n as u64,
            entries,
        };
        map.check_partition().expect("uniform map is a partition");
        map
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True only for an (invalid) empty map; present for clippy symmetry.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Index of the shard owning `key`.
    pub fn owner_index(&self, key: &[u8]) -> usize {
        // first entry whose start is > key, minus one; entry 0 starts at
        // the empty key, so the subtraction never underflows
        self.entries
            .partition_point(|e| e.start.as_slice() <= key)
            .saturating_sub(1)
    }

    /// The key range entry `idx` owns: `(start, end)` with `end == None`
    /// meaning unbounded.
    pub fn range_of(&self, idx: usize) -> (&[u8], Option<&[u8]>) {
        let start = self.entries[idx].start.as_slice();
        let end = self.entries.get(idx + 1).map(|e| e.start.as_slice());
        (start, end)
    }

    /// Indices of every shard whose range intersects `[start, end)`, in
    /// key order. Empty for an empty request range.
    pub fn overlapping(&self, start: &[u8], end: &[u8]) -> std::ops::Range<usize> {
        if start >= end {
            return 0..0;
        }
        let first = self.owner_index(start);
        // last shard whose start is < end
        let last = self
            .entries
            .partition_point(|e| e.start.as_slice() < end)
            .saturating_sub(1);
        first..last + 1
    }

    /// A new map with shard `idx` split at `boundary`: the entry keeps
    /// `[start, boundary)` and a freshly-named shard takes
    /// `[boundary, end)`. Fails if the boundary does not fall strictly
    /// inside the entry's range. Returns the map and the new shard's id.
    pub fn split(&self, idx: usize, boundary: &[u8]) -> Result<(ShardMap, u64), String> {
        let (start, end) = self.range_of(idx);
        if boundary <= start || end.is_some_and(|e| boundary >= e) {
            return Err(format!(
                "split boundary {:?} outside shard {idx}'s range",
                String::from_utf8_lossy(boundary)
            ));
        }
        let mut next = self.clone();
        let new_id = next.next_shard_id;
        next.next_shard_id += 1;
        next.version += 1;
        next.entries.insert(
            idx + 1,
            ShardRange {
                shard_id: new_id,
                start: boundary.to_vec(),
            },
        );
        next.check_partition()?;
        Ok((next, new_id))
    }

    /// A new map with shard `idx + 1` absorbed into shard `idx` (the
    /// right neighbour's range joins the left's entry). Fails when `idx`
    /// has no right neighbour. Returns the map and the absorbed shard's
    /// id.
    pub fn merge(&self, idx: usize) -> Result<(ShardMap, u64), String> {
        if idx + 1 >= self.entries.len() {
            return Err(format!("shard {idx} has no right neighbour to absorb"));
        }
        let mut next = self.clone();
        next.version += 1;
        let absorbed = next.entries.remove(idx + 1).shard_id;
        next.check_partition()?;
        Ok((next, absorbed))
    }

    /// Verifies the partition invariant: non-empty, first start empty,
    /// starts strictly increasing (no gap, no overlap), shard ids unique.
    pub fn check_partition(&self) -> Result<(), String> {
        if self.entries.is_empty() {
            return Err("shard map has no entries".into());
        }
        if !self.entries[0].start.is_empty() {
            return Err("first shard does not start at the empty key (gap)".into());
        }
        for w in self.entries.windows(2) {
            if w[0].start >= w[1].start {
                return Err(format!(
                    "shard starts not strictly increasing: {:?} then {:?}",
                    String::from_utf8_lossy(&w[0].start),
                    String::from_utf8_lossy(&w[1].start)
                ));
            }
        }
        let mut ids: Vec<u64> = self.entries.iter().map(|e| e.shard_id).collect();
        ids.sort_unstable();
        ids.dedup();
        if ids.len() != self.entries.len() {
            return Err("duplicate shard id".into());
        }
        if ids.last().is_some_and(|&max| max >= self.next_shard_id) {
            return Err("next_shard_id not past every live id".into());
        }
        Ok(())
    }

    /// Serializes with the leading magic.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&CLUSTER_META_MAGIC.to_le_bytes());
        put_varint(&mut out, self.version);
        put_varint(&mut out, self.next_shard_id);
        put_varint(&mut out, self.entries.len() as u64);
        for e in &self.entries {
            put_varint(&mut out, e.shard_id);
            put_varint(&mut out, e.start.len() as u64);
            out.extend_from_slice(&e.start);
        }
        out
    }

    /// Deserializes; `None` when the magic, framing, or partition
    /// invariant is wrong — recovery treats such a file as a torn write
    /// and falls back to an older candidate.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() < 8 || u64::from_le_bytes(bytes[0..8].try_into().ok()?) != CLUSTER_META_MAGIC
        {
            return None;
        }
        let mut off = 8usize;
        let next = |off: &mut usize| -> Option<u64> {
            let (v, n) = get_varint(bytes.get(*off..)?)?;
            *off += n;
            Some(v)
        };
        let version = next(&mut off)?;
        let next_shard_id = next(&mut off)?;
        let n = next(&mut off)? as usize;
        if n == 0 || n > 1 << 16 {
            return None;
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let shard_id = next(&mut off)?;
            let len = next(&mut off)? as usize;
            let start = bytes.get(off..off.checked_add(len)?)?.to_vec();
            off += len;
            entries.push(ShardRange { shard_id, start });
        }
        let map = ShardMap {
            version,
            next_shard_id,
            entries,
        };
        map.check_partition().ok()?;
        Some(map)
    }
}

/// Writes a new cluster-metadata file and deletes the previous one.
/// Returns the new file's id. The write is the split/merge commit point:
/// once this file is durable, recovery adopts the new topology.
pub fn write_cluster_meta(
    device: &Arc<dyn StorageDevice>,
    map: &ShardMap,
    previous: Option<FileId>,
) -> StorageResult<FileId> {
    let mut f = WritableFile::create(Arc::clone(device), IoCategory::Misc)?;
    f.append(&map.to_bytes())?;
    let file = f.seal()?;
    let id = file.id();
    if let Some(prev) = previous {
        // best effort: a missing previous meta file is not fatal
        let _ = device.delete(prev);
    }
    Ok(id)
}

/// Scans the device for the newest parseable cluster-metadata file. A
/// crash between writing a new file and deleting its predecessor leaves
/// two; the newest parseable one wins (a torn newest write falls back).
pub fn find_cluster_meta(
    device: &Arc<dyn StorageDevice>,
) -> StorageResult<Option<(FileId, ShardMap)>> {
    let mut found: Vec<(FileId, ShardMap)> = Vec::new();
    for id in device.live_files() {
        let len = device.len_blocks(id)?;
        if len == 0 {
            continue;
        }
        let bytes = device.read(id, 0, len, IoCategory::Misc)?;
        if let Some(map) = ShardMap::from_bytes(&bytes) {
            found.push((id, map));
        }
    }
    found.sort_by_key(|(id, _)| std::cmp::Reverse(id.0));
    Ok(found.into_iter().next())
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_storage::{DeviceProfile, MemDevice};

    fn device() -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::new(512, DeviceProfile::free()))
    }

    #[test]
    fn uniform_partition_and_ownership() {
        let map = ShardMap::uniform(4);
        assert_eq!(map.len(), 4);
        assert_eq!(map.entries[0].start, b"".to_vec());
        assert_eq!(map.entries[1].start, vec![64u8]);
        assert_eq!(map.owner_index(b""), 0);
        assert_eq!(map.owner_index(&[63, 0xFF]), 0);
        assert_eq!(map.owner_index(&[64]), 1);
        assert_eq!(map.owner_index(&[0xFF; 8]), 3);
        // every key has exactly one owner by construction; spot-check the
        // range query agrees with point ownership
        assert_eq!(map.overlapping(&[10], &[11]), 0..1);
        assert_eq!(map.overlapping(&[63], &[65]), 0..2);
        assert_eq!(map.overlapping(b"", &[0xFF]), 0..4);
        assert_eq!(map.overlapping(&[65], &[65]), 0..0, "empty range");
        // end exactly at a boundary excludes the right shard
        assert_eq!(map.overlapping(&[10], &[64]), 0..1);
    }

    #[test]
    fn split_and_merge_preserve_partition_and_name_freshly() {
        let map = ShardMap::uniform(2);
        let (m2, new_id) = map.split(0, &[32]).unwrap();
        assert_eq!(m2.version, map.version + 1);
        assert_eq!(new_id, 2);
        assert_eq!(m2.len(), 3);
        assert_eq!(m2.owner_index(&[40]), 1);
        assert_eq!(m2.entries[1].shard_id, 2);
        m2.check_partition().unwrap();

        // boundary must fall strictly inside
        assert!(map.split(0, b"").is_err());
        assert!(map.split(0, &[128]).is_err());
        assert!(map.split(1, &[128]).is_err());
        assert!(map.split(1, &[200]).is_ok());

        let (m3, absorbed) = m2.merge(0).unwrap();
        assert_eq!(absorbed, 2);
        assert_eq!(m3.len(), 2);
        assert_eq!(m3.version, m2.version + 1);
        assert_eq!(m3.owner_index(&[40]), 0);
        assert!(m3.merge(1).is_err(), "last shard has no right neighbour");
    }

    #[test]
    fn meta_roundtrips_and_rejects_garbage() {
        let map = ShardMap::uniform(3);
        assert_eq!(ShardMap::from_bytes(&map.to_bytes()), Some(map.clone()));
        assert!(ShardMap::from_bytes(b"junk").is_none());
        let bytes = map.to_bytes();
        assert!(ShardMap::from_bytes(&bytes[..bytes.len() - 1]).is_none());
        // a parseable encoding of a non-partition is rejected too
        let mut bad = map.clone();
        bad.entries[1].start = Vec::new();
        assert!(ShardMap::from_bytes(&bad.to_bytes()).is_none());
    }

    #[test]
    fn newest_parseable_meta_wins() {
        let dev = device();
        let v1 = ShardMap::uniform(2);
        let id1 = write_cluster_meta(&dev, &v1, None).unwrap();
        let (v2, _) = v1.split(0, &[7]).unwrap();
        // crash before the old file was deleted: both live
        let id2 = write_cluster_meta(&dev, &v2, None).unwrap();
        assert!(id2.0 > id1.0);
        let (found_id, found) = find_cluster_meta(&dev).unwrap().unwrap();
        assert_eq!(found_id, id2);
        assert_eq!(found, v2);
        // normal supersede deletes the older candidates
        let (v3, _) = v2.split(1, &[9]).unwrap();
        let id3 = write_cluster_meta(&dev, &v3, Some(id2)).unwrap();
        let _ = dev.delete(id1);
        let (found_id, found) = find_cluster_meta(&dev).unwrap().unwrap();
        assert_eq!(found_id, id3);
        assert_eq!(found.version, v3.version);
    }

    #[test]
    fn empty_device_has_no_meta() {
        assert!(find_cluster_meta(&device()).unwrap().is_none());
    }
}
