//! Deterministic in-process test harness: a loopback server over
//! in-memory shard devices.
//!
//! The harness keeps the `Arc` handles to every shard's device, so a
//! test can [`Server::abort`] the server (the in-process stand-in for
//! `kill -9`), drop the engines, and reopen the same devices with
//! [`reopen_shards`] to prove recovery — exactly the lifecycle a real
//! deployment gets from persistent disks, minus the filesystem.

use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::{Arc, Mutex};

use lsm_core::{Db, LsmConfig};
use lsm_storage::{DeviceProfile, MemDevice, StorageDevice, StorageResult};

use crate::client::Client;
use crate::replication::{PrimaryReplication, ReplicationRole};
use crate::server::{ElasticOptions, RebalancePolicy, Server, ServerConfig};
use crate::shardmap::{find_cluster_meta, ShardMap};

/// A running loopback cluster plus the handles tests need to poke it.
pub struct TestCluster {
    /// The server; take it out (`Option::take`) to shut down or abort.
    pub server: Option<Server>,
    /// Per-shard devices, kept alive across a server abort for reopen.
    pub devices: Vec<Arc<dyn StorageDevice>>,
    /// The engine config every shard was opened with.
    pub cfg: LsmConfig,
}

/// Opens one engine per device (crash-recovering whatever the device
/// holds) — the reopen half of a kill-the-server test.
pub fn reopen_shards(
    devices: &[Arc<dyn StorageDevice>],
    cfg: &LsmConfig,
) -> StorageResult<Vec<Db>> {
    devices
        .iter()
        .map(|d| Db::open(Arc::clone(d), cfg.clone()))
        .collect()
}

/// Starts a cluster of `shards` fresh in-memory shards.
pub fn start_cluster(shards: usize, cfg: LsmConfig, server_cfg: ServerConfig) -> TestCluster {
    let devices: Vec<Arc<dyn StorageDevice>> = (0..shards)
        .map(|_| {
            Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()))
                as Arc<dyn StorageDevice>
        })
        .collect();
    let dbs = reopen_shards(&devices, &cfg).expect("open fresh shards");
    let server = Server::start(dbs, server_cfg).expect("start loopback server");
    TestCluster {
        server: Some(server),
        devices,
        cfg,
    }
}

impl TestCluster {
    /// The loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.server.as_ref().expect("server running").addr()
    }

    /// A fresh client connection.
    pub fn client(&self) -> Client {
        Client::connect(self.addr()).expect("connect loopback client")
    }

    /// Reopens every shard from the kept devices (after an abort).
    pub fn reopen(&self) -> StorageResult<Vec<Db>> {
        reopen_shards(&self.devices, &self.cfg)
    }
}

/// Shared shard-id → device registry for elastic clusters. The server's
/// device factory inserts every shard it creates, so after an abort the
/// test can reopen exactly the shards the (possibly rebalanced) map
/// names.
pub type ShardDeviceRegistry = Arc<Mutex<HashMap<u64, Arc<dyn StorageDevice>>>>;

/// A running elastic (range-routed) loopback cluster.
pub struct ElasticCluster {
    /// The server; take it out (`Option::take`) to shut down or abort.
    pub server: Option<Server>,
    /// Every shard device ever created, keyed by stable shard id.
    pub devices: ShardDeviceRegistry,
    /// The cluster-metadata device holding the persisted shard map.
    pub meta_dev: Arc<dyn StorageDevice>,
    /// The engine config every shard was opened with.
    pub cfg: LsmConfig,
}

/// A [`crate::server::ShardDeviceFactory`] that mints fresh in-memory
/// devices and records them in `registry` under the new shard's id.
pub fn registry_factory(
    registry: ShardDeviceRegistry,
    block_size: usize,
) -> crate::server::ShardDeviceFactory {
    Box::new(move |shard_id| {
        let dev: Arc<dyn StorageDevice> =
            Arc::new(MemDevice::new(block_size, DeviceProfile::free()));
        registry
            .lock()
            .unwrap()
            .insert(shard_id, Arc::clone(&dev));
        dev
    })
}

/// Starts an elastic cluster serving `map` over fresh in-memory shard
/// devices (one per map entry, registered by shard id) plus a fresh
/// metadata device.
pub fn start_elastic_cluster(
    map: ShardMap,
    cfg: LsmConfig,
    server_cfg: ServerConfig,
    policy: Option<RebalancePolicy>,
) -> ElasticCluster {
    let registry: ShardDeviceRegistry = Arc::new(Mutex::new(HashMap::new()));
    let factory = registry_factory(Arc::clone(&registry), cfg.block_size);
    let dbs: Vec<Db> = map
        .entries
        .iter()
        .map(|e| Db::open(factory(e.shard_id), cfg.clone()).expect("open fresh shard"))
        .collect();
    let meta_dev: Arc<dyn StorageDevice> =
        Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
    let server = Server::start_elastic(
        dbs,
        map,
        ElasticOptions {
            meta_dev: Arc::clone(&meta_dev),
            factory,
            policy,
        },
        server_cfg,
    )
    .expect("start elastic loopback server");
    ElasticCluster {
        server: Some(server),
        devices: registry,
        meta_dev,
        cfg,
    }
}

/// Recovers an elastic cluster's durable state after an abort: reads
/// the newest parseable shard map from `meta_dev` and reopens each
/// mapped shard from `registry` (map order). Shards named by the map
/// but missing from the registry panic — the registry is supposed to
/// hold every device the factory ever handed out.
pub fn reopen_elastic(
    registry: &ShardDeviceRegistry,
    meta_dev: &Arc<dyn StorageDevice>,
    cfg: &LsmConfig,
) -> StorageResult<(ShardMap, Vec<Db>)> {
    let (_fid, map) = find_cluster_meta(meta_dev)?
        .expect("elastic cluster metadata survived the crash");
    let reg = registry.lock().unwrap();
    let dbs: StorageResult<Vec<Db>> = map
        .entries
        .iter()
        .map(|e| {
            let dev = reg
                .get(&e.shard_id)
                .unwrap_or_else(|| panic!("no device registered for shard {}", e.shard_id));
            Db::open(Arc::clone(dev), cfg.clone())
        })
        .collect();
    Ok((map, dbs?))
}

impl ElasticCluster {
    /// The loopback address.
    pub fn addr(&self) -> SocketAddr {
        self.server.as_ref().expect("server running").addr()
    }

    /// A fresh client connection.
    pub fn client(&self) -> Client {
        Client::connect(self.addr()).expect("connect loopback client")
    }

    /// Recovers the durable map + shards from the kept devices.
    pub fn reopen(&self) -> StorageResult<(ShardMap, Vec<Db>)> {
        reopen_elastic(&self.devices, &self.meta_dev, &self.cfg)
    }
}

/// A primary plus N replica servers, each over its own in-memory
/// devices, wired together over loopback.
pub struct ReplicatedCluster {
    /// The writable primary.
    pub primary: TestCluster,
    /// The read-only replicas, in replica-id order.
    pub replicas: Vec<TestCluster>,
}

/// Starts `n_replicas` replica servers, then a primary configured to
/// ship to all of them with the given `ack_quorum`. Every node runs
/// `shards` shards of the same `cfg` (replication routes by the same
/// FNV partition, so shard counts must match).
pub fn start_replicated_cluster(
    shards: usize,
    n_replicas: usize,
    cfg: LsmConfig,
    server_cfg: ServerConfig,
    ack_quorum: usize,
) -> ReplicatedCluster {
    let replicas: Vec<TestCluster> = (0..n_replicas)
        .map(|_| {
            let mut rc = server_cfg.clone();
            rc.role = ReplicationRole::Replica;
            start_cluster(shards, cfg.clone(), rc)
        })
        .collect();
    let mut pc = server_cfg;
    pc.role = ReplicationRole::Primary(PrimaryReplication {
        replicas: replicas.iter().map(TestCluster::addr).collect(),
        ack_quorum,
        ..PrimaryReplication::default()
    });
    let primary = start_cluster(shards, cfg, pc);
    ReplicatedCluster { primary, replicas }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wal_cfg() -> LsmConfig {
        LsmConfig {
            wal: true,
            ..LsmConfig::small_for_tests()
        }
    }

    #[test]
    fn loopback_roundtrip_and_graceful_shutdown() {
        let mut cluster = start_cluster(2, wal_cfg(), ServerConfig::default());
        let mut c = cluster.client();
        for i in 0..50u32 {
            c.put(format!("hk{i:04}").as_bytes(), format!("hv{i}").as_bytes())
                .unwrap();
        }
        assert_eq!(c.get(b"hk0007").unwrap(), Some(b"hv7".to_vec()));
        assert_eq!(c.get(b"hk9999").unwrap(), None);
        c.delete(b"hk0007").unwrap();
        assert_eq!(c.get(b"hk0007").unwrap(), None);
        let entries = c.scan(b"hk0010", b"hk0020", 100).unwrap();
        assert_eq!(entries.len(), 10);
        assert!(entries.windows(2).all(|w| w[0].0 < w[1].0));
        let stats = c.stats().unwrap();
        assert!(stats.contains("server.requests"), "stats JSON: {stats}");
        drop(c);
        let dbs = cluster.server.take().unwrap().shutdown().unwrap();
        assert_eq!(dbs.len(), 2);
        // shutdown flushed: every memtable is empty, data still readable
        let total: usize = dbs
            .iter()
            .map(|db| db.scan(b"hk".to_vec()..b"hl".to_vec(), 1000).unwrap().len())
            .sum();
        assert_eq!(total, 49);
    }

    #[test]
    fn pipelined_writes_then_read_your_writes() {
        use crate::protocol::{Request, Response};
        let mut cluster = start_cluster(2, wal_cfg(), ServerConfig::default());
        let mut c = cluster.client();
        let ids: Vec<u64> = (0..64u32)
            .map(|i| {
                c.send(&Request::Put {
                    key: format!("pk{i:04}").into_bytes(),
                    value: format!("pv{i}").into_bytes(),
                })
                .unwrap()
            })
            .collect();
        // read-your-writes: this GET must observe the pipelined PUT even
        // though we have not collected its ack yet
        let got = c.get(b"pk0063").unwrap();
        assert_eq!(got, Some(b"pv63".to_vec()));
        for id in ids {
            assert_eq!(c.wait_for(id).unwrap(), Response::Ok);
        }
        let dbs = cluster.server.take().unwrap().shutdown().unwrap();
        // pipelining depth > 1 means group commit had material to batch
        let appends: u64 = dbs.iter().map(|db| db.stats().snapshot().wal_appends).sum();
        assert!(
            appends < 64,
            "64 pipelined puts took {appends} WAL appends — no group commit"
        );
    }
}
