//! Server-side observability: a [`MetricsRegistry`] and [`EventRing`] of
//! its own, separate from each shard engine's metrics.
//!
//! Engine metrics describe storage behaviour (flushes, compactions,
//! backpressure); these describe *serving* behaviour — per-operation
//! latency as a client would see it minus the network, connection and
//! in-flight gauges, group-commit batch sizes, and admission-control
//! sheds. Timestamps are wall nanoseconds since server start (serving is
//! inherently wall-clocked; there is no inline/simulated mode here).

use std::sync::Arc;
use std::time::Instant;

use lsm_obs::{Counter, EventKind, EventRing, Gauge, Histogram, MetricsRegistry, MetricsSnapshot};

/// Bounded event capacity; drains happen per artifact write, so this
/// only bounds worst-case memory between drains.
const EVENT_CAPACITY: usize = 4096;

/// Shared server metrics handle (cheap to clone via `Arc`).
pub struct ServerMetrics {
    registry: MetricsRegistry,
    events: EventRing,
    start: Instant,
    /// GET service time (request decoded → response queued), ns.
    pub get_ns: Arc<Histogram>,
    /// PUT service time (request decoded → batch durable), ns.
    pub put_ns: Arc<Histogram>,
    /// DELETE service time, ns.
    pub delete_ns: Arc<Histogram>,
    /// SCAN service time, ns.
    pub scan_ns: Arc<Histogram>,
    /// Operations coalesced per group-commit batch.
    pub batch_ops: Arc<Histogram>,
    /// Live client connections.
    pub connections: Arc<Gauge>,
    /// Requests admitted but not yet answered, across connections.
    pub inflight: Arc<Gauge>,
    /// Connections accepted over the server lifetime.
    pub accepts: Arc<Counter>,
    /// Requests served (any opcode, any outcome).
    pub requests: Arc<Counter>,
    /// Writes refused by admission control.
    pub sheds: Arc<Counter>,
    /// Frames or payloads that failed to decode.
    pub malformed: Arc<Counter>,
    /// Group-commit batches committed.
    pub batches: Arc<Counter>,
    /// Replication lag: committed sequence minus the slowest counted
    /// replica's acked sequence, sampled when the primary waits.
    pub repl_lag: Arc<Gauge>,
    /// REPL_BATCH frames shipped to replicas (all shippers).
    pub repl_batches_shipped: Arc<Counter>,
    /// REPL_ACK frames received from replicas.
    pub repl_acks: Arc<Counter>,
    /// Writes answered `ReplicaLag` because the quorum wait timed out.
    pub repl_lag_timeouts: Arc<Counter>,
    /// Commit → quorum-ack latency, ns.
    pub repl_ack_ns: Arc<Histogram>,
    /// TXN_BEGIN requests that opened a transaction.
    pub txn_begins: Arc<Counter>,
    /// Transactions that validated and committed.
    pub txn_commits: Arc<Counter>,
    /// Commits (or mid-txn ops) refused by first-committer-wins
    /// validation or a shard-map flip; conflict rate =
    /// `txn_conflicts / (txn_commits + txn_conflicts)`.
    pub txn_conflicts: Arc<Counter>,
    /// Idle transactions reaped by the sweeper (snapshot pins released;
    /// the client's next txn op answers `NO_TXN`).
    pub txn_timeouts: Arc<Counter>,
    /// TXN_COMMIT service time (request decoded → outcome queued), ns.
    pub txn_commit_ns: Arc<Histogram>,
}

impl ServerMetrics {
    /// Fresh registry with every instrument registered.
    pub fn new() -> Arc<Self> {
        let registry = MetricsRegistry::new();
        Arc::new(ServerMetrics {
            get_ns: registry.histogram("server.get_ns"),
            put_ns: registry.histogram("server.put_ns"),
            delete_ns: registry.histogram("server.delete_ns"),
            scan_ns: registry.histogram("server.scan_ns"),
            batch_ops: registry.histogram("server.batch_ops"),
            connections: registry.gauge("server.connections"),
            inflight: registry.gauge("server.inflight"),
            accepts: registry.counter("server.accepts"),
            requests: registry.counter("server.requests"),
            sheds: registry.counter("server.sheds"),
            malformed: registry.counter("server.malformed"),
            batches: registry.counter("server.batches"),
            repl_lag: registry.gauge("server.repl_lag"),
            repl_batches_shipped: registry.counter("server.repl_batches_shipped"),
            repl_acks: registry.counter("server.repl_acks"),
            repl_lag_timeouts: registry.counter("server.repl_lag_timeouts"),
            repl_ack_ns: registry.histogram("server.repl_ack_ns"),
            txn_begins: registry.counter("server.txn_begins"),
            txn_commits: registry.counter("server.txn_commits"),
            txn_conflicts: registry.counter("server.txn_conflicts"),
            txn_timeouts: registry.counter("server.txn_timeouts"),
            txn_commit_ns: registry.histogram("server.txn_commit_ns"),
            events: EventRing::new(EVENT_CAPACITY),
            start: Instant::now(),
            registry,
        })
    }

    /// Wall nanoseconds since server start.
    pub fn now_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }

    /// Records `kind` in the server event trace at the current time.
    pub fn event(&self, kind: EventKind) {
        self.events.record(self.now_ns(), kind);
    }

    /// Point-in-time snapshot of every instrument.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Removes and returns all buffered server events, oldest first.
    pub fn drain_events(&self) -> Vec<lsm_obs::Event> {
        self.events.drain()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instruments_round_through_snapshot() {
        let m = ServerMetrics::new();
        m.accepts.inc();
        m.sheds.add(3);
        m.connections.set(2);
        m.put_ns.record(1500);
        m.event(EventKind::ServerAccept { conn: 1 });
        let snap = m.snapshot();
        assert_eq!(snap.counters.get("server.accepts"), Some(&1));
        assert_eq!(snap.counters.get("server.sheds"), Some(&3));
        assert_eq!(snap.gauges.get("server.connections"), Some(&2));
        let events = m.drain_events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind.label(), "server_accept");
    }
}
