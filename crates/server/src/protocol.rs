//! The wire protocol: length-prefixed binary frames carrying tagged,
//! request-id'd operations.
//!
//! ## Framing
//!
//! Every message (either direction) is one *frame*:
//!
//! ```text
//! [u32 LE payload_len][payload_len bytes]
//! ```
//!
//! `payload_len` must be in `1..=max_frame_bytes`. A zero or oversized
//! length prefix is a *framing* error: the stream can no longer be
//! resynchronized (nothing marks the next frame boundary), so the server
//! closes the connection. Errors *inside* a well-framed payload leave the
//! stream intact, so the server replies with a typed [`Response::Error`]
//! and keeps the connection.
//!
//! ## Payloads
//!
//! A request payload is `[u64 LE request_id][u8 opcode][operands]`; a
//! response payload is `[u64 LE request_id][u8 status][operands]`. The
//! request id is chosen by the client and echoed verbatim, which is what
//! lets a client pipeline many requests and match responses arriving in
//! completion order. Keys, values and messages are length-prefixed with
//! `u32 LE`. Every multi-byte integer on the wire is little-endian.
//!
//! | opcode | request        | operands                                  |
//! |-------:|----------------|-------------------------------------------|
//! | 1      | GET            | key                                       |
//! | 2      | PUT            | key, value                                |
//! | 3      | DELETE         | key                                       |
//! | 4      | SCAN           | start, end, `u32` limit                   |
//! | 5      | STATS          | —                                         |
//! | 6      | REPL_SUBSCRIBE | `u64` replica_id, `u64` from_seq          |
//! | 7      | REPL_BATCH     | `u64` seq, ops region (see below)         |
//! | 8      | SHARD_MAP      | —                                         |
//! | 9      | TXN_BEGIN      | —                                         |
//! | 10     | TXN_GET        | key                                       |
//! | 11     | TXN_PUT        | key, value                                |
//! | 12     | TXN_DELETE     | key                                       |
//! | 13     | TXN_COMMIT     | —                                         |
//! | 14     | TXN_ABORT      | —                                         |
//! | 15     | TUNE_STATUS    | —                                         |
//!
//! | status | response       | operands                            |
//! |-------:|----------------|-------------------------------------|
//! | 0      | OK             | —                                   |
//! | 1      | VALUE          | value                               |
//! | 2      | NOT_FOUND      | —                                   |
//! | 3      | ENTRIES        | `u32` count, then key/value pairs   |
//! | 4      | STATS          | JSON metrics text                   |
//! | 5      | ERROR          | UTF-8 message                       |
//! | 6      | BUSY           | — (admission control shed; retry)   |
//! | 7      | SHUTTING_DOWN  | — (server is draining)              |
//! | 8      | REPL_ACK       | `u64` seq (applied watermark)       |
//! | 9      | REPLICA_LAG    | — (quorum not reached in time)      |
//! | 10     | SHARD_MAP      | `u64` version, `u32` count, then    |
//! |        |                | `u64` shard_id + start key per entry |
//! | 11     | TXN_CONFLICT   | conflicting read key                |
//! | 12     | TXN_COMMITTED  | `u64` commit stamp                  |
//! | 13     | NO_TXN         | — (no live transaction: never begun, |
//! |        |                | already finished, or idle-aborted)  |
//! | 14     | TUNE_STATUS    | `u32` count, then `u64` shard_id +  |
//! |        |                | JSON status text per entry          |
//!
//! Transaction state is **per connection**: TXN_BEGIN opens one
//! transaction on the issuing connection, TXN_GET/TXN_PUT/TXN_DELETE
//! operate on it, and TXN_COMMIT/TXN_ABORT close it. A server-side idle
//! timeout aborts abandoned transactions so a stalled client cannot pin
//! snapshots forever; subsequent txn ops then answer NO_TXN.
//!
//! ## Replication ops region
//!
//! A REPL_BATCH carries the primary's committed group-commit batch as an
//! *ops region*: `u32` count, then `count` ops, each `[u8 kind][key]`
//! (kind 2 = delete) or `[u8 kind][key][value]` (kind 1 = put). The
//! region is forwarded opaquely by [`Request::ReplBatch`] and decoded
//! lazily through [`ReplOpsIter`], so the shipper encodes once and the
//! replica validates exactly where it applies.

use std::fmt;
use std::io::Read;

/// Default cap on a frame's payload size (1 MiB).
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// One decoded client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: Vec<u8>,
    },
    /// Insert or update.
    Put {
        /// Key to write.
        key: Vec<u8>,
        /// Value to associate.
        value: Vec<u8>,
    },
    /// Tombstone write.
    Delete {
        /// Key to delete.
        key: Vec<u8>,
    },
    /// Ordered range scan over `[start, end)`, at most `limit` entries.
    Scan {
        /// Inclusive start key.
        start: Vec<u8>,
        /// Exclusive end key.
        end: Vec<u8>,
        /// Maximum entries returned.
        limit: u32,
    },
    /// Server metrics snapshot.
    Stats,
    /// A replica announcing itself to a primary's shipper connection and
    /// naming the first sequence it still needs.
    ReplSubscribe {
        /// Replica id (index in the primary's replica list).
        replica_id: u64,
        /// First replication sequence the replica has *not* applied.
        from_seq: u64,
    },
    /// One sequenced, committed group-commit batch shipped primary →
    /// replica. `ops` is the raw ops region (see the module docs);
    /// iterate it with [`repl_ops`].
    ReplBatch {
        /// Replication-log sequence of this batch (consecutive; the
        /// replica rejects gaps).
        seq: u64,
        /// Encoded ops region: `u32` count + ops.
        ops: Vec<u8>,
    },
    /// The server's shard map — range-routed topology and its version.
    ShardMap,
    /// Opens an optimistic transaction on this connection.
    TxnBegin,
    /// Transactional read through the connection's open transaction:
    /// joins the read-set, sees the transaction's own buffered writes.
    TxnGet {
        /// Key to look up.
        key: Vec<u8>,
    },
    /// Buffers an insert/update in the open transaction.
    TxnPut {
        /// Key to write.
        key: Vec<u8>,
        /// Value to associate.
        value: Vec<u8>,
    },
    /// Buffers a tombstone in the open transaction.
    TxnDelete {
        /// Key to delete.
        key: Vec<u8>,
    },
    /// Validates and atomically applies the open transaction.
    TxnCommit,
    /// Discards the open transaction (no trace remains).
    TxnAbort,
    /// Ticks the server's per-shard tuners and returns their status.
    TuneStatus,
}

/// A request decoded as borrowed views into the frame payload — the
/// zero-copy twin of [`Request`] used on the server's hot path, where
/// key/value bytes are either forwarded into the engine's borrowed APIs
/// (GET/SCAN) or copied exactly once into the write queue (PUT/DELETE).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestRef<'a> {
    /// Point lookup.
    Get {
        /// Key to look up.
        key: &'a [u8],
    },
    /// Insert or update.
    Put {
        /// Key to write.
        key: &'a [u8],
        /// Value to associate.
        value: &'a [u8],
    },
    /// Tombstone write.
    Delete {
        /// Key to delete.
        key: &'a [u8],
    },
    /// Ordered range scan over `[start, end)`, at most `limit` entries.
    Scan {
        /// Inclusive start key.
        start: &'a [u8],
        /// Exclusive end key.
        end: &'a [u8],
        /// Maximum entries returned.
        limit: u32,
    },
    /// Server metrics snapshot.
    Stats,
    /// Replica handshake (see [`Request::ReplSubscribe`]).
    ReplSubscribe {
        /// Replica id (index in the primary's replica list).
        replica_id: u64,
        /// First replication sequence the replica has *not* applied.
        from_seq: u64,
    },
    /// Sequenced batch frame (see [`Request::ReplBatch`]); `ops` borrows
    /// the raw ops region straight from the read buffer.
    ReplBatch {
        /// Replication-log sequence of this batch.
        seq: u64,
        /// Encoded ops region: `u32` count + ops.
        ops: &'a [u8],
    },
    /// Shard-map query (see [`Request::ShardMap`]).
    ShardMap,
    /// Opens an optimistic transaction (see [`Request::TxnBegin`]).
    TxnBegin,
    /// Transactional read (see [`Request::TxnGet`]).
    TxnGet {
        /// Key to look up.
        key: &'a [u8],
    },
    /// Buffered transactional write (see [`Request::TxnPut`]).
    TxnPut {
        /// Key to write.
        key: &'a [u8],
        /// Value to associate.
        value: &'a [u8],
    },
    /// Buffered transactional delete (see [`Request::TxnDelete`]).
    TxnDelete {
        /// Key to delete.
        key: &'a [u8],
    },
    /// Commit request (see [`Request::TxnCommit`]).
    TxnCommit,
    /// Abort request (see [`Request::TxnAbort`]).
    TxnAbort,
    /// Tuner status query (see [`Request::TuneStatus`]).
    TuneStatus,
}

impl RequestRef<'_> {
    /// Copies the borrowed views into an owned [`Request`].
    pub fn to_owned(self) -> Request {
        match self {
            RequestRef::Get { key } => Request::Get { key: key.to_vec() },
            RequestRef::Put { key, value } => Request::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            RequestRef::Delete { key } => Request::Delete { key: key.to_vec() },
            RequestRef::Scan { start, end, limit } => Request::Scan {
                start: start.to_vec(),
                end: end.to_vec(),
                limit,
            },
            RequestRef::Stats => Request::Stats,
            RequestRef::ReplSubscribe {
                replica_id,
                from_seq,
            } => Request::ReplSubscribe {
                replica_id,
                from_seq,
            },
            RequestRef::ReplBatch { seq, ops } => Request::ReplBatch {
                seq,
                ops: ops.to_vec(),
            },
            RequestRef::ShardMap => Request::ShardMap,
            RequestRef::TxnBegin => Request::TxnBegin,
            RequestRef::TxnGet { key } => Request::TxnGet { key: key.to_vec() },
            RequestRef::TxnPut { key, value } => Request::TxnPut {
                key: key.to_vec(),
                value: value.to_vec(),
            },
            RequestRef::TxnDelete { key } => Request::TxnDelete { key: key.to_vec() },
            RequestRef::TxnCommit => Request::TxnCommit,
            RequestRef::TxnAbort => Request::TxnAbort,
            RequestRef::TuneStatus => Request::TuneStatus,
        }
    }
}

/// One decoded server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// Write acknowledged (durable per the server's sync policy).
    Ok,
    /// Get hit.
    Value(Vec<u8>),
    /// Get miss.
    NotFound,
    /// Scan results, ordered by key.
    Entries(Vec<(Vec<u8>, Vec<u8>)>),
    /// Metrics snapshot as a JSON line.
    Stats(String),
    /// The request was well-framed but could not be executed.
    Error(String),
    /// Admission control shed the write; the client should back off.
    Busy,
    /// The server is draining and takes no new work.
    ShuttingDown,
    /// Replica → primary: everything up to and including `seq` is applied
    /// and durable at the replica. Also answers REPL_SUBSCRIBE, telling
    /// the shipper where to start.
    ReplAck {
        /// The replica's applied watermark.
        seq: u64,
    },
    /// The write committed locally but `ack_quorum` replicas did not
    /// confirm within the primary's ack timeout. The write is durable on
    /// the primary and *will* reach the replicas; the client learns the
    /// redundancy guarantee was not met in time.
    ReplicaLag,
    /// The live shard map: its version and `(shard_id, range start)` per
    /// shard, in key order. Version 0 with no entries means the server
    /// is hash-routed (no map to report).
    ShardMap {
        /// Map version (bumped by every split/merge).
        version: u64,
        /// `(stable shard id, inclusive range start)` in key order.
        entries: Vec<(u64, Vec<u8>)>,
    },
    /// TXN_COMMIT validation failed first-committer-wins: `key` was
    /// overwritten after the transaction's snapshot. The transaction is
    /// gone (nothing was applied); the client retries with a fresh one.
    TxnConflict {
        /// The read-set key that was invalidated.
        key: Vec<u8>,
    },
    /// TXN_COMMIT succeeded; `stamp` is the global commit stamp (the
    /// serialization point — replaying committed transactions in stamp
    /// order reproduces the database state).
    TxnCommitted {
        /// Global commit stamp.
        stamp: u64,
    },
    /// A txn op arrived with no transaction active on this connection —
    /// never begun, already committed/aborted, or reaped by the server's
    /// idle-transaction timeout.
    NoTxn,
    /// Per-shard tuner status: `(shard_id, one-line JSON)` in shard
    /// order. Empty when the server runs without a tuner.
    TuneStatus(Vec<(u64, String)>),
}

/// A payload-level decode failure (the frame itself was sound, so the
/// connection survives and the server replies [`Response::Error`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtocolError {
    /// The payload ended before the operands it promised.
    Truncated,
    /// Unknown opcode or status byte.
    BadTag(u8),
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
    /// A string field was not UTF-8.
    BadUtf8,
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Truncated => write!(f, "payload truncated"),
            ProtocolError::BadTag(t) => write!(f, "unknown opcode/status {t}"),
            ProtocolError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            ProtocolError::BadUtf8 => write!(f, "string field is not utf-8"),
        }
    }
}

/// A framing-level failure (the stream cannot be resynchronized; the
/// connection must close).
#[derive(Debug)]
pub enum FrameError {
    /// The length prefix was zero.
    ZeroLength,
    /// The length prefix exceeded the frame cap.
    Oversize {
        /// Announced payload length.
        len: u64,
        /// The cap it exceeded.
        max: usize,
    },
    /// The stream ended inside a frame.
    Truncated,
    /// Transport error.
    Io(std::io::Error),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::ZeroLength => write!(f, "zero-length frame"),
            FrameError::Oversize { len, max } => {
                write!(f, "frame of {len} bytes exceeds cap of {max}")
            }
            FrameError::Truncated => write!(f, "stream ended inside a frame"),
            FrameError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

fn finish_frame(mut payload: Vec<u8>) -> Vec<u8> {
    let len = (payload.len() - 4) as u32;
    payload[..4].copy_from_slice(&len.to_le_bytes());
    payload
}

fn frame_header(id: u64, tag: u8) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&[0u8; 4]); // length, patched by finish_frame
    out.extend_from_slice(&id.to_le_bytes());
    out.push(tag);
    out
}

/// Starts a frame appended to `out` (which may already hold other
/// frames); returns the offset of its length prefix for
/// [`end_frame_at`].
fn begin_frame_at(out: &mut Vec<u8>, id: u64, tag: u8) -> usize {
    let start = out.len();
    out.extend_from_slice(&[0u8; 4]);
    out.extend_from_slice(&id.to_le_bytes());
    out.push(tag);
    start
}

/// Patches the length prefix of the frame opened at `start`.
fn end_frame_at(out: &mut [u8], start: usize) {
    let len = (out.len() - start - 4) as u32;
    out[start..start + 4].copy_from_slice(&len.to_le_bytes());
}

/// Encodes a request as a complete frame (length prefix included).
pub fn encode_request(id: u64, req: &Request) -> Vec<u8> {
    let mut out;
    match req {
        Request::Get { key } => {
            out = frame_header(id, 1);
            put_bytes(&mut out, key);
        }
        Request::Put { key, value } => {
            out = frame_header(id, 2);
            put_bytes(&mut out, key);
            put_bytes(&mut out, value);
        }
        Request::Delete { key } => {
            out = frame_header(id, 3);
            put_bytes(&mut out, key);
        }
        Request::Scan { start, end, limit } => {
            out = frame_header(id, 4);
            put_bytes(&mut out, start);
            put_bytes(&mut out, end);
            out.extend_from_slice(&limit.to_le_bytes());
        }
        Request::Stats => {
            out = frame_header(id, 5);
        }
        Request::ReplSubscribe {
            replica_id,
            from_seq,
        } => {
            out = frame_header(id, 6);
            out.extend_from_slice(&replica_id.to_le_bytes());
            out.extend_from_slice(&from_seq.to_le_bytes());
        }
        Request::ReplBatch { seq, ops } => {
            out = frame_header(id, 7);
            out.extend_from_slice(&seq.to_le_bytes());
            out.extend_from_slice(ops);
        }
        Request::ShardMap => {
            out = frame_header(id, 8);
        }
        Request::TxnBegin => {
            out = frame_header(id, 9);
        }
        Request::TxnGet { key } => {
            out = frame_header(id, 10);
            put_bytes(&mut out, key);
        }
        Request::TxnPut { key, value } => {
            out = frame_header(id, 11);
            put_bytes(&mut out, key);
            put_bytes(&mut out, value);
        }
        Request::TxnDelete { key } => {
            out = frame_header(id, 12);
            put_bytes(&mut out, key);
        }
        Request::TxnCommit => {
            out = frame_header(id, 13);
        }
        Request::TxnAbort => {
            out = frame_header(id, 14);
        }
        Request::TuneStatus => {
            out = frame_header(id, 15);
        }
    }
    finish_frame(out)
}

/// Builds the ops region of a REPL_BATCH request: `u32` count + ops. The
/// count is patched in by [`ReplOpsBuilder::finish`], so the shipper can
/// stream ops straight out of a committed batch.
pub struct ReplOpsBuilder {
    buf: Vec<u8>,
    count: u32,
}

impl ReplOpsBuilder {
    /// An empty region.
    pub fn new() -> Self {
        ReplOpsBuilder {
            buf: vec![0u8; 4],
            count: 0,
        }
    }

    /// Appends a put.
    pub fn put(&mut self, key: &[u8], value: &[u8]) {
        self.buf.push(1);
        put_bytes(&mut self.buf, key);
        put_bytes(&mut self.buf, value);
        self.count += 1;
    }

    /// Appends a delete.
    pub fn delete(&mut self, key: &[u8]) {
        self.buf.push(2);
        put_bytes(&mut self.buf, key);
        self.count += 1;
    }

    /// Ops appended so far.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Seals the region.
    pub fn finish(mut self) -> Vec<u8> {
        self.buf[..4].copy_from_slice(&self.count.to_le_bytes());
        self.buf
    }
}

impl Default for ReplOpsBuilder {
    fn default() -> Self {
        ReplOpsBuilder::new()
    }
}

/// One op decoded from a REPL_BATCH ops region, borrowing the region.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplOpRef<'a> {
    /// Insert or update.
    Put {
        /// Key to write.
        key: &'a [u8],
        /// Value to associate.
        value: &'a [u8],
    },
    /// Tombstone write.
    Delete {
        /// Key to delete.
        key: &'a [u8],
    },
}

/// Lazy, bounds-checked decoder over a REPL_BATCH ops region. Yields
/// `Err` (and then stops) on any malformed op, so a replica fed garbage
/// reports a typed error instead of panicking or half-applying.
pub struct ReplOpsIter<'a> {
    cur: Cur<'a>,
    remaining: u32,
    failed: bool,
}

/// Opens an ops region for iteration; fails if the region is too short
/// to carry its count.
pub fn repl_ops(ops: &[u8]) -> Result<ReplOpsIter<'_>, ProtocolError> {
    let mut cur = Cur::new(ops);
    let remaining = cur.u32()?;
    Ok(ReplOpsIter {
        cur,
        remaining,
        failed: false,
    })
}

impl<'a> Iterator for ReplOpsIter<'a> {
    type Item = Result<ReplOpRef<'a>, ProtocolError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.remaining == 0 {
            // a count that overshoots the region surfaced as Truncated on
            // the op that ran out; trailing bytes surface here
            if !self.failed && self.remaining == 0 {
                let rest = self.cur.remaining();
                if rest != 0 {
                    self.failed = true;
                    return Some(Err(ProtocolError::TrailingBytes(rest)));
                }
            }
            return None;
        }
        self.remaining -= 1;
        let op = (|| {
            Ok(match self.cur.u8()? {
                1 => ReplOpRef::Put {
                    key: self.cur.bytes_ref()?,
                    value: self.cur.bytes_ref()?,
                },
                2 => ReplOpRef::Delete {
                    key: self.cur.bytes_ref()?,
                },
                other => return Err(ProtocolError::BadTag(other)),
            })
        })();
        if op.is_err() {
            self.failed = true;
        }
        Some(op)
    }
}

/// Encodes a response as a complete frame (length prefix included).
pub fn encode_response(id: u64, resp: &Response) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_response_into(&mut out, id, resp);
    out
}

/// Appends a complete response frame to `out` — the reusable-buffer form
/// of [`encode_response`]: a connection's writer recycles one buffer per
/// response instead of allocating a fresh frame `Vec` each time.
pub fn encode_response_into(out: &mut Vec<u8>, id: u64, resp: &Response) {
    match resp {
        Response::Ok => {
            let s = begin_frame_at(out, id, 0);
            end_frame_at(out, s);
        }
        Response::Value(v) => encode_value_response_into(out, id, v),
        Response::NotFound => {
            let s = begin_frame_at(out, id, 2);
            end_frame_at(out, s);
        }
        Response::Entries(entries) => {
            let mut enc = begin_entries_response(out, id);
            for (k, v) in entries {
                enc.push(k, v);
            }
            enc.finish();
        }
        Response::Stats(json) => {
            let s = begin_frame_at(out, id, 4);
            put_bytes(out, json.as_bytes());
            end_frame_at(out, s);
        }
        Response::Error(msg) => {
            let s = begin_frame_at(out, id, 5);
            put_bytes(out, msg.as_bytes());
            end_frame_at(out, s);
        }
        Response::Busy => {
            let s = begin_frame_at(out, id, 6);
            end_frame_at(out, s);
        }
        Response::ShuttingDown => {
            let s = begin_frame_at(out, id, 7);
            end_frame_at(out, s);
        }
        Response::ReplAck { seq } => {
            let s = begin_frame_at(out, id, 8);
            out.extend_from_slice(&seq.to_le_bytes());
            end_frame_at(out, s);
        }
        Response::ReplicaLag => {
            let s = begin_frame_at(out, id, 9);
            end_frame_at(out, s);
        }
        Response::ShardMap { version, entries } => {
            let s = begin_frame_at(out, id, 10);
            out.extend_from_slice(&version.to_le_bytes());
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (shard_id, start) in entries {
                out.extend_from_slice(&shard_id.to_le_bytes());
                put_bytes(out, start);
            }
            end_frame_at(out, s);
        }
        Response::TxnConflict { key } => {
            let s = begin_frame_at(out, id, 11);
            put_bytes(out, key);
            end_frame_at(out, s);
        }
        Response::TxnCommitted { stamp } => {
            let s = begin_frame_at(out, id, 12);
            out.extend_from_slice(&stamp.to_le_bytes());
            end_frame_at(out, s);
        }
        Response::NoTxn => {
            let s = begin_frame_at(out, id, 13);
            end_frame_at(out, s);
        }
        Response::TuneStatus(entries) => {
            let s = begin_frame_at(out, id, 14);
            out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
            for (shard_id, json) in entries {
                out.extend_from_slice(&shard_id.to_le_bytes());
                put_bytes(out, json.as_bytes());
            }
            end_frame_at(out, s);
        }
    }
}

/// Appends a VALUE response frame carrying `value` — lets a GET copy the
/// value bytes straight from the engine's borrowed view into the wire
/// buffer, with no intermediate `Response::Value(Vec)`.
pub fn encode_value_response_into(out: &mut Vec<u8>, id: u64, value: &[u8]) {
    let s = begin_frame_at(out, id, 1);
    put_bytes(out, value);
    end_frame_at(out, s);
}

/// Streaming encoder for an ENTRIES response: push borrowed key/value
/// pairs as a scan cursor yields them, then [`EntriesEncoder::finish`].
/// The entry count is patched in at the end, so no intermediate
/// `Vec<(Vec<u8>, Vec<u8>)>` is materialized.
pub struct EntriesEncoder<'a> {
    out: &'a mut Vec<u8>,
    start: usize,
    count_at: usize,
    count: u32,
}

/// Opens an ENTRIES response frame appended to `out`.
pub fn begin_entries_response(out: &mut Vec<u8>, id: u64) -> EntriesEncoder<'_> {
    let start = begin_frame_at(out, id, 3);
    let count_at = out.len();
    out.extend_from_slice(&[0u8; 4]);
    EntriesEncoder {
        out,
        start,
        count_at,
        count: 0,
    }
}

impl EntriesEncoder<'_> {
    /// Appends one key/value pair.
    pub fn push(&mut self, key: &[u8], value: &[u8]) {
        put_bytes(self.out, key);
        put_bytes(self.out, value);
        self.count += 1;
    }

    /// Patches the count and length prefix, sealing the frame.
    pub fn finish(self) {
        self.out[self.count_at..self.count_at + 4].copy_from_slice(&self.count.to_le_bytes());
        end_frame_at(self.out, self.start);
    }
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// Bounds-checked little-endian cursor; every accessor fails with
/// [`ProtocolError::Truncated`] instead of slicing out of range, so
/// arbitrary payload bytes can never panic the decoder.
struct Cur<'a> {
    b: &'a [u8],
    p: usize,
}

impl<'a> Cur<'a> {
    fn new(b: &'a [u8]) -> Self {
        Cur { b, p: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtocolError> {
        let v = *self.b.get(self.p).ok_or(ProtocolError::Truncated)?;
        self.p += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32, ProtocolError> {
        let s = self
            .b
            .get(self.p..self.p + 4)
            .ok_or(ProtocolError::Truncated)?;
        self.p += 4;
        Ok(u32::from_le_bytes(s.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, ProtocolError> {
        let s = self
            .b
            .get(self.p..self.p + 8)
            .ok_or(ProtocolError::Truncated)?;
        self.p += 8;
        Ok(u64::from_le_bytes(s.try_into().unwrap()))
    }

    fn bytes_ref(&mut self) -> Result<&'a [u8], ProtocolError> {
        let len = self.u32()? as usize;
        let end = self.p.checked_add(len).ok_or(ProtocolError::Truncated)?;
        let s = self.b.get(self.p..end).ok_or(ProtocolError::Truncated)?;
        self.p = end;
        Ok(s)
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtocolError> {
        self.bytes_ref().map(<[u8]>::to_vec)
    }

    fn string(&mut self) -> Result<String, ProtocolError> {
        String::from_utf8(self.bytes()?).map_err(|_| ProtocolError::BadUtf8)
    }

    /// Consumes and returns everything left.
    fn rest(&mut self) -> &'a [u8] {
        let s = &self.b[self.p..];
        self.p = self.b.len();
        s
    }

    fn remaining(&self) -> usize {
        self.b.len() - self.p
    }

    fn finish(self) -> Result<(), ProtocolError> {
        let rest = self.remaining();
        if rest == 0 {
            Ok(())
        } else {
            Err(ProtocolError::TrailingBytes(rest))
        }
    }
}

/// Extracts the request id from a payload, if it is long enough to carry
/// one. Used to address a typed error reply for a payload that failed to
/// decode.
pub fn peek_request_id(payload: &[u8]) -> Option<u64> {
    payload
        .get(..8)
        .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
}

/// Decodes a request payload (the bytes after the length prefix).
pub fn decode_request(payload: &[u8]) -> Result<(u64, Request), ProtocolError> {
    decode_request_ref(payload).map(|(id, r)| (id, r.to_owned()))
}

/// Decodes a request payload into borrowed views — no key/value copies.
/// The views live as long as `payload`, so the server can dispatch a GET
/// or SCAN straight off the connection's read buffer.
pub fn decode_request_ref(payload: &[u8]) -> Result<(u64, RequestRef<'_>), ProtocolError> {
    let mut c = Cur::new(payload);
    let id = c.u64()?;
    let op = c.u8()?;
    let req = match op {
        1 => RequestRef::Get { key: c.bytes_ref()? },
        2 => RequestRef::Put {
            key: c.bytes_ref()?,
            value: c.bytes_ref()?,
        },
        3 => RequestRef::Delete { key: c.bytes_ref()? },
        4 => RequestRef::Scan {
            start: c.bytes_ref()?,
            end: c.bytes_ref()?,
            limit: c.u32()?,
        },
        5 => RequestRef::Stats,
        6 => RequestRef::ReplSubscribe {
            replica_id: c.u64()?,
            from_seq: c.u64()?,
        },
        7 => RequestRef::ReplBatch {
            seq: c.u64()?,
            // the ops region is the remainder of the payload; it is
            // validated lazily by `repl_ops` at apply time
            ops: c.rest(),
        },
        8 => RequestRef::ShardMap,
        9 => RequestRef::TxnBegin,
        10 => RequestRef::TxnGet { key: c.bytes_ref()? },
        11 => RequestRef::TxnPut {
            key: c.bytes_ref()?,
            value: c.bytes_ref()?,
        },
        12 => RequestRef::TxnDelete { key: c.bytes_ref()? },
        13 => RequestRef::TxnCommit,
        14 => RequestRef::TxnAbort,
        15 => RequestRef::TuneStatus,
        other => return Err(ProtocolError::BadTag(other)),
    };
    c.finish()?;
    Ok((id, req))
}

/// Decodes a response payload (the bytes after the length prefix).
pub fn decode_response(payload: &[u8]) -> Result<(u64, Response), ProtocolError> {
    let mut c = Cur::new(payload);
    let id = c.u64()?;
    let status = c.u8()?;
    let resp = match status {
        0 => Response::Ok,
        1 => Response::Value(c.bytes()?),
        2 => Response::NotFound,
        3 => {
            let count = c.u32()? as usize;
            // each entry is at least 8 bytes of length prefixes; cap the
            // pre-allocation so a lying count cannot balloon memory
            let mut entries = Vec::with_capacity(count.min(payload.len() / 8 + 1));
            for _ in 0..count {
                let k = c.bytes()?;
                let v = c.bytes()?;
                entries.push((k, v));
            }
            Response::Entries(entries)
        }
        4 => Response::Stats(c.string()?),
        5 => Response::Error(c.string()?),
        6 => Response::Busy,
        7 => Response::ShuttingDown,
        8 => Response::ReplAck { seq: c.u64()? },
        9 => Response::ReplicaLag,
        10 => {
            let version = c.u64()?;
            let count = c.u32()? as usize;
            let mut entries = Vec::with_capacity(count.min(payload.len() / 8 + 1));
            for _ in 0..count {
                let shard_id = c.u64()?;
                let start = c.bytes()?;
                entries.push((shard_id, start));
            }
            Response::ShardMap { version, entries }
        }
        11 => Response::TxnConflict { key: c.bytes()? },
        12 => Response::TxnCommitted { stamp: c.u64()? },
        13 => Response::NoTxn,
        14 => {
            let count = c.u32()? as usize;
            let mut entries = Vec::with_capacity(count.min(payload.len() / 8 + 1));
            for _ in 0..count {
                let shard_id = c.u64()?;
                let json = c.string()?;
                entries.push((shard_id, json));
            }
            Response::TuneStatus(entries)
        }
        other => return Err(ProtocolError::BadTag(other)),
    };
    c.finish()?;
    Ok((id, resp))
}

// ---------------------------------------------------------------------------
// Frame reading
// ---------------------------------------------------------------------------

/// Reads frames off a byte stream, tolerating read timeouts.
///
/// `next_frame` polls `keep_waiting` whenever the underlying reader
/// times out with no bytes pending; returning `false` ends the stream
/// (clean [`None`] at a frame boundary, [`FrameError::Truncated`] inside
/// one). This is how a server drain interrupts readers parked on idle
/// connections without an extra thread per socket.
pub struct FrameReader<R: Read> {
    r: R,
    max: usize,
    buf: Vec<u8>,
    /// Bytes of `buf` that are valid.
    filled: usize,
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

impl<R: Read> FrameReader<R> {
    /// Wraps `r`; payloads above `max` bytes are rejected as
    /// [`FrameError::Oversize`].
    pub fn new(r: R, max: usize) -> Self {
        FrameReader {
            r,
            max,
            buf: vec![0u8; 4096],
            filled: 0,
        }
    }

    /// Reads until `buf[..want]` is filled. `Ok(false)` means the stream
    /// ended (EOF or abandoned wait) first.
    fn fill(&mut self, want: usize, keep_waiting: &mut dyn FnMut() -> bool) -> Result<bool, FrameError> {
        if self.buf.len() < want {
            self.buf.resize(want, 0);
        }
        while self.filled < want {
            match self.r.read(&mut self.buf[self.filled..want]) {
                Ok(0) => return Ok(false),
                Ok(n) => self.filled += n,
                Err(e) if is_timeout(&e) => {
                    if !keep_waiting() {
                        return Ok(false);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FrameError::Io(e)),
            }
        }
        Ok(true)
    }

    /// Returns the next frame's payload, `Ok(None)` on a clean end of
    /// stream (EOF or `keep_waiting() == false` at a frame boundary), or
    /// a [`FrameError`] the connection cannot recover from.
    pub fn next_frame(
        &mut self,
        keep_waiting: impl FnMut() -> bool,
    ) -> Result<Option<Vec<u8>>, FrameError> {
        Ok(self.next_frame_ref(keep_waiting)?.map(<[u8]>::to_vec))
    }

    /// Like [`FrameReader::next_frame`] but returns the payload as a view
    /// into the reader's internal buffer — valid until the next call.
    /// This is the server's steady-state read path: the buffer is filled
    /// in place, decoded in place, and never reallocated once it has
    /// grown to the connection's largest frame.
    pub fn next_frame_ref(
        &mut self,
        mut keep_waiting: impl FnMut() -> bool,
    ) -> Result<Option<&[u8]>, FrameError> {
        if !self.fill(4, &mut keep_waiting)? {
            return if self.filled == 0 {
                Ok(None)
            } else {
                Err(FrameError::Truncated)
            };
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap()) as usize;
        if len == 0 {
            return Err(FrameError::ZeroLength);
        }
        if len > self.max {
            return Err(FrameError::Oversize {
                len: len as u64,
                max: self.max,
            });
        }
        if !self.fill(4 + len, &mut keep_waiting)? {
            return Err(FrameError::Truncated);
        }
        self.filled = 0;
        Ok(Some(&self.buf[4..4 + len]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let frame = encode_request(42, &req);
        let (id, back) = decode_request(&frame[4..]).unwrap();
        assert_eq!(id, 42);
        assert_eq!(back, req);
    }

    fn roundtrip_response(resp: Response) {
        let frame = encode_response(7, &resp);
        let (id, back) = decode_response(&frame[4..]).unwrap();
        assert_eq!(id, 7);
        assert_eq!(back, resp);
    }

    #[test]
    fn request_roundtrips() {
        roundtrip_request(Request::Get { key: b"k".to_vec() });
        roundtrip_request(Request::Put {
            key: b"key".to_vec(),
            value: vec![0, 255, 7],
        });
        roundtrip_request(Request::Delete { key: Vec::new() });
        roundtrip_request(Request::Scan {
            start: b"a".to_vec(),
            end: b"z".to_vec(),
            limit: 1000,
        });
        roundtrip_request(Request::Stats);
        roundtrip_request(Request::ReplSubscribe {
            replica_id: 2,
            from_seq: u64::MAX,
        });
        let mut b = ReplOpsBuilder::new();
        b.put(b"k", b"v");
        b.delete(b"gone");
        roundtrip_request(Request::ReplBatch {
            seq: 77,
            ops: b.finish(),
        });
        roundtrip_request(Request::ShardMap);
        roundtrip_request(Request::TxnBegin);
        roundtrip_request(Request::TxnGet { key: b"k".to_vec() });
        roundtrip_request(Request::TxnPut {
            key: b"key".to_vec(),
            value: vec![9, 0, 42],
        });
        roundtrip_request(Request::TxnDelete { key: Vec::new() });
        roundtrip_request(Request::TxnCommit);
        roundtrip_request(Request::TxnAbort);
        roundtrip_request(Request::TuneStatus);
    }

    #[test]
    fn response_roundtrips() {
        roundtrip_response(Response::Ok);
        roundtrip_response(Response::Value(vec![1, 2, 3]));
        roundtrip_response(Response::NotFound);
        roundtrip_response(Response::Entries(vec![
            (b"a".to_vec(), b"1".to_vec()),
            (b"b".to_vec(), Vec::new()),
        ]));
        roundtrip_response(Response::Stats("{\"x\":1}".into()));
        roundtrip_response(Response::Error("boom".into()));
        roundtrip_response(Response::Busy);
        roundtrip_response(Response::ShuttingDown);
        roundtrip_response(Response::ReplAck { seq: 12345 });
        roundtrip_response(Response::ReplicaLag);
        roundtrip_response(Response::ShardMap {
            version: 0,
            entries: Vec::new(),
        });
        roundtrip_response(Response::ShardMap {
            version: 9,
            entries: vec![(0, Vec::new()), (3, vec![64]), (2, vec![128, 0])],
        });
        roundtrip_response(Response::TxnConflict { key: b"hot".to_vec() });
        roundtrip_response(Response::TxnCommitted { stamp: u64::MAX });
        roundtrip_response(Response::NoTxn);
        roundtrip_response(Response::TuneStatus(Vec::new()));
        roundtrip_response(Response::TuneStatus(vec![
            (0, "{\"ticks\":3}".into()),
            (7, "{\"decisions\":1}".into()),
        ]));
    }

    #[test]
    fn repl_ops_roundtrip_and_reject_garbage() {
        let mut b = ReplOpsBuilder::new();
        b.put(b"alpha", b"1");
        b.delete(b"beta");
        b.put(b"", b"");
        assert_eq!(b.count(), 3);
        let region = b.finish();
        let decoded: Vec<_> = repl_ops(&region).unwrap().map(Result::unwrap).collect();
        assert_eq!(
            decoded,
            vec![
                ReplOpRef::Put {
                    key: b"alpha",
                    value: b"1"
                },
                ReplOpRef::Delete { key: b"beta" },
                ReplOpRef::Put { key: b"", value: b"" },
            ]
        );

        // empty region: zero ops, no error
        assert_eq!(repl_ops(&ReplOpsBuilder::new().finish()).unwrap().count(), 0);

        // too short to carry a count
        assert!(repl_ops(&[1, 2]).is_err());

        // unknown op kind fails typed, then the iterator fuses
        let mut bad = 1u32.to_le_bytes().to_vec();
        bad.push(9);
        let mut it = repl_ops(&bad).unwrap();
        assert_eq!(it.next(), Some(Err(ProtocolError::BadTag(9))));
        assert_eq!(it.next(), None);

        // count promising more ops than the region holds → Truncated
        let mut short = 2u32.to_le_bytes().to_vec();
        short.push(2);
        short.extend_from_slice(&1u32.to_le_bytes());
        short.push(b'k');
        let mut it = repl_ops(&short).unwrap();
        assert!(it.next().unwrap().is_ok());
        assert_eq!(it.next(), Some(Err(ProtocolError::Truncated)));

        // trailing bytes after the last promised op
        let mut trailing = ReplOpsBuilder::new();
        trailing.delete(b"x");
        let mut region = trailing.finish();
        region.push(0xEE);
        let mut it = repl_ops(&region).unwrap();
        assert!(it.next().unwrap().is_ok());
        assert_eq!(it.next(), Some(Err(ProtocolError::TrailingBytes(1))));
    }

    #[test]
    fn decode_rejects_bad_payloads_without_panic() {
        assert_eq!(decode_request(&[]), Err(ProtocolError::Truncated));
        assert_eq!(decode_request(&[0; 8]), Err(ProtocolError::Truncated));
        assert_eq!(decode_request(&[0; 9]), Err(ProtocolError::BadTag(0)));
        // GET with a key length promising more bytes than the payload has
        let mut p = vec![0u8; 9];
        p[8] = 1;
        p.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&p), Err(ProtocolError::Truncated));
        // trailing garbage after a complete message
        let mut frame = encode_request(1, &Request::Stats);
        frame.push(0xEE);
        assert_eq!(decode_request(&frame[4..]), Err(ProtocolError::TrailingBytes(1)));
    }

    #[test]
    fn frame_reader_reads_back_to_back_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_request(1, &Request::Get { key: b"a".to_vec() }));
        stream.extend_from_slice(&encode_request(2, &Request::Stats));
        let mut fr = FrameReader::new(&stream[..], MAX_FRAME_BYTES);
        let p1 = fr.next_frame(|| true).unwrap().unwrap();
        assert_eq!(decode_request(&p1).unwrap().0, 1);
        let p2 = fr.next_frame(|| true).unwrap().unwrap();
        assert_eq!(decode_request(&p2).unwrap().0, 2);
        assert!(fr.next_frame(|| true).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn frame_reader_rejects_bad_prefixes() {
        let zero = 0u32.to_le_bytes();
        let mut fr = FrameReader::new(&zero[..], 64);
        assert!(matches!(fr.next_frame(|| true), Err(FrameError::ZeroLength)));

        let huge = u32::MAX.to_le_bytes();
        let mut fr = FrameReader::new(&huge[..], 64);
        assert!(matches!(fr.next_frame(|| true), Err(FrameError::Oversize { .. })));

        // truncated: header promises 10 bytes, stream has 3
        let mut bytes = 10u32.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[1, 2, 3]);
        let mut fr = FrameReader::new(&bytes[..], 64);
        assert!(matches!(fr.next_frame(|| true), Err(FrameError::Truncated)));
    }

    #[test]
    fn peek_id_needs_eight_bytes() {
        assert_eq!(peek_request_id(&[1, 0, 0, 0, 0, 0, 0, 0]), Some(1));
        assert_eq!(peek_request_id(&[1, 2, 3]), None);
    }

    #[test]
    fn decode_request_ref_matches_owned_decode() {
        let reqs = [
            Request::Get { key: b"k".to_vec() },
            Request::Put {
                key: b"key".to_vec(),
                value: vec![0, 255, 7],
            },
            Request::Delete { key: Vec::new() },
            Request::Scan {
                start: b"a".to_vec(),
                end: b"z".to_vec(),
                limit: 1000,
            },
            Request::Stats,
            Request::TxnBegin,
            Request::TxnGet { key: b"tk".to_vec() },
            Request::TxnPut {
                key: b"tk".to_vec(),
                value: b"tv".to_vec(),
            },
            Request::TxnDelete { key: b"tk".to_vec() },
            Request::TxnCommit,
            Request::TxnAbort,
        ];
        for req in reqs {
            let frame = encode_request(9, &req);
            let (id, by_ref) = decode_request_ref(&frame[4..]).unwrap();
            assert_eq!(id, 9);
            assert_eq!(by_ref.to_owned(), req);
        }
        assert_eq!(decode_request_ref(&[]), Err(ProtocolError::Truncated));
        assert_eq!(decode_request_ref(&[0; 9]), Err(ProtocolError::BadTag(0)));
    }

    #[test]
    fn encode_into_appends_frames_to_a_shared_buffer() {
        let mut out = Vec::new();
        encode_response_into(&mut out, 1, &Response::Ok);
        encode_value_response_into(&mut out, 2, b"vv");
        let mut enc = begin_entries_response(&mut out, 3);
        enc.push(b"a", b"1");
        enc.push(b"b", b"");
        enc.finish();
        let mut fr = FrameReader::new(&out[..], MAX_FRAME_BYTES);
        let p1 = fr.next_frame(|| true).unwrap().unwrap();
        assert_eq!(decode_response(&p1).unwrap(), (1, Response::Ok));
        let p2 = fr.next_frame(|| true).unwrap().unwrap();
        assert_eq!(decode_response(&p2).unwrap(), (2, Response::Value(b"vv".to_vec())));
        let p3 = fr.next_frame(|| true).unwrap().unwrap();
        assert_eq!(
            decode_response(&p3).unwrap(),
            (
                3,
                Response::Entries(vec![(b"a".to_vec(), b"1".to_vec()), (b"b".to_vec(), Vec::new())])
            )
        );
        assert!(fr.next_frame(|| true).unwrap().is_none());
    }

    #[test]
    fn next_frame_ref_reads_back_to_back_frames_in_place() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_request(1, &Request::Get { key: b"a".to_vec() }));
        stream.extend_from_slice(&encode_request(2, &Request::Stats));
        let mut fr = FrameReader::new(&stream[..], MAX_FRAME_BYTES);
        {
            let p = fr.next_frame_ref(|| true).unwrap().unwrap();
            let (id, req) = decode_request_ref(p).unwrap();
            assert_eq!(id, 1);
            assert_eq!(req, RequestRef::Get { key: b"a" });
        }
        {
            let p = fr.next_frame_ref(|| true).unwrap().unwrap();
            assert_eq!(decode_request_ref(p).unwrap(), (2, RequestRef::Stats));
        }
        assert!(fr.next_frame_ref(|| true).unwrap().is_none(), "clean EOF");
    }
}
