//! The TCP server: accept loop, per-connection reader/writer threads,
//! bounded pipelining, admission control, elastic topology, and graceful
//! drain.
//!
//! ## Thread model
//!
//! One accept thread polls a non-blocking listener. Each accepted
//! connection gets a **reader** thread (decodes frames, executes reads,
//! routes writes to the owning shard's group committer) and a **writer**
//! thread (serializes response frames from an mpsc channel onto the
//! socket). Write completions are callbacks fired by the committer, so a
//! connection can keep `pipeline_depth` writes in flight while the
//! reader keeps decoding — that queue depth is precisely what the
//! group-commit batcher converts into batch size. An elastic server adds
//! one **rebalancer** thread that watches per-shard write rates and
//! triggers splits and merges (see [`RebalancePolicy`]).
//!
//! ## Ordering contract
//!
//! Responses carry the request id and may arrive out of order across
//! *different* operation kinds (a pipelined write's ack can overtake
//! nothing, but a later read's reply can overtake an earlier write's
//! ack is *not* possible either: reads wait). Concretely, each
//! connection gets **read-your-writes**: a GET/SCAN blocks until every
//! write this connection has submitted is acked, so a client that
//! pipelines `PUT k` then issues `GET k` observes its own write.
//!
//! ## Routing topology
//!
//! The shard set, the per-shard committers, and the shed lines live in
//! one [`Topology`] behind an `RwLock`. Every request touches it through
//! a read lock held for just the routing decision and the engine call;
//! a migration cut-over takes the write lock, which is what makes a
//! shard-map flip atomic with respect to every connection: no request
//! can route between the metadata write and the in-memory swap, and a
//! scan never sees two map versions. Read-your-writes survives the flip
//! because a write submitted under the old map is drained into the
//! recipient (via the migration tap and a committer barrier) *before*
//! the write lock is released.
//!
//! ## Admission control
//!
//! Before queueing a write, the reader checks the target shard's
//! [`l0_run_count`](lsm_core::DbCore::l0_run_count) — the same lock-free
//! gauge the engine's own backpressure bands read. At or past the shed
//! line (default: the shard's `l0_stall_runs`) the server answers
//! [`Response::Busy`] instead of queueing, so a wedged shard surfaces as
//! fast typed pushback at the edge rather than a writer thread blocked
//! deep inside the engine. Below the shed line, the engine's own
//! slowdown band still applies inside `write_batch` — the server sheds
//! where the engine would stall, and delays where it would slow down.

use std::collections::HashMap;
use std::io::{BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

use lsm_core::Db;
use lsm_obs::EventKind;
use lsm_storage::{FileId, StorageDevice, StorageResult};

use crate::batcher::{GroupCommitter, TxnCommitReq, TxnOutcome, WriteOp, WriteOutcome, WriteReq};
use crate::metrics::ServerMetrics;
use crate::protocol::{
    begin_entries_response, encode_response_into, encode_value_response_into, peek_request_id,
    FrameReader, RequestRef, Response, MAX_FRAME_BYTES,
};
use crate::replication::{ReplicaState, ReplicationRole, Replicator};
use crate::router::ShardSet;
use crate::shardmap::{find_cluster_meta, write_cluster_meta, ShardMap};

/// Pool of response-frame buffers shared by a connection's reader, its
/// write-completion callbacks, and its writer thread. A buffer makes one
/// round trip — taken, filled with a frame, sent to the writer, written,
/// returned — so a connection in steady state encodes every response into
/// recycled memory instead of allocating a `Vec` per reply.
struct BufPool {
    bufs: Mutex<Vec<Vec<u8>>>,
}

/// Buffers retained per connection; more in flight than this (deep write
/// pipelines) fall back to fresh allocations that the pool then absorbs.
const POOL_MAX_BUFS: usize = 64;
/// A buffer that grew past this (a huge scan) is dropped rather than
/// pooled, so one outlier response can't pin megabytes per connection.
const POOL_MAX_BUF_BYTES: usize = 64 * 1024;

impl BufPool {
    fn new() -> Arc<Self> {
        Arc::new(BufPool {
            bufs: Mutex::new(Vec::new()),
        })
    }

    fn take(&self) -> Vec<u8> {
        self.bufs.lock().unwrap().pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        if buf.capacity() == 0 || buf.capacity() > POOL_MAX_BUF_BYTES {
            return;
        }
        buf.clear();
        let mut g = self.bufs.lock().unwrap();
        if g.len() < POOL_MAX_BUFS {
            g.push(buf);
        }
    }
}

/// Serving-layer knobs (the engine's own knobs stay in `LsmConfig`).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Maximum writes a connection may have in flight before its reader
    /// blocks; this queue depth is what group commit batches.
    pub pipeline_depth: usize,
    /// Maximum operations folded into one group-commit batch.
    pub max_batch: usize,
    /// Sync the shard WAL once per batch, so an `Ok` ack implies the
    /// write survives a crash.
    pub sync_each_batch: bool,
    /// Shed writes (reply `Busy`) when the target shard's L0 run count
    /// reaches this; `None` derives each shard's line from its
    /// `l0_stall_runs`.
    pub shed_l0_runs: Option<usize>,
    /// Per-frame payload cap.
    pub max_frame_bytes: usize,
    /// Replication role: standalone, shipping primary, or read-only
    /// replica.
    pub role: ReplicationRole,
    /// Abort a connection's open transaction after this long without any
    /// txn request on it, releasing its snapshot pin (so a stalled client
    /// cannot block memtable releases or value-log GC forever). The
    /// client's next txn op answers `NO_TXN`.
    pub txn_idle_timeout: Duration,
    /// `Some` runs a self-tuner per shard. Tuners are *pulled*: each
    /// `TUNE_STATUS` request ticks every shard's tuner once, so tuning
    /// cadence is the caller's choice and stays deterministic (no timer
    /// thread).
    pub tuner: Option<lsm_tuner::TunerConfig>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            pipeline_depth: 32,
            max_batch: 64,
            sync_each_batch: true,
            shed_l0_runs: None,
            max_frame_bytes: MAX_FRAME_BYTES,
            role: ReplicationRole::None,
            txn_idle_timeout: Duration::from_secs(10),
            tuner: None,
        }
    }
}

/// When to split a hot shard and when to merge cold neighbours, judged
/// every `interval_ms` from the per-shard engine stats the obs layer
/// already maintains.
#[derive(Clone, Debug)]
pub struct RebalancePolicy {
    /// Sampling period for per-shard write-rate deltas.
    pub interval_ms: u64,
    /// Split the hottest shard when its puts-per-interval reach this.
    pub split_puts_per_interval: u64,
    /// Merge two adjacent shards when *both* stay at or under this.
    pub merge_puts_per_interval: u64,
    /// Never split past this many shards.
    pub max_shards: usize,
    /// Never merge below this many shards.
    pub min_shards: usize,
}

impl Default for RebalancePolicy {
    fn default() -> Self {
        RebalancePolicy {
            interval_ms: 50,
            split_puts_per_interval: 2_000,
            merge_puts_per_interval: 20,
            max_shards: 8,
            min_shards: 1,
        }
    }
}

/// Maps a stable shard id to the storage device its engine lives on.
/// Called for every shard a split creates; the caller keeps the device
/// registry so a crash test can reopen the same devices.
pub type ShardDeviceFactory = Box<dyn Fn(u64) -> Arc<dyn StorageDevice> + Send + Sync>;

/// Wiring for an elastic (range-routed, split/merge-capable) server.
pub struct ElasticOptions {
    /// Device holding the cluster-metadata (shard map) file.
    pub meta_dev: Arc<dyn StorageDevice>,
    /// Supplies a device for each freshly-named shard.
    pub factory: ShardDeviceFactory,
    /// Automatic rebalancing; `None` = splits/merges only on explicit
    /// [`Server::split_shard`] / [`Server::merge_shards`] calls.
    pub policy: Option<RebalancePolicy>,
}

/// The routable state every request goes through: the shard engines,
/// their committers, and their shed lines, index-aligned. Swapped as a
/// unit (under the write lock) at a migration cut-over.
pub(crate) struct Topology {
    pub(crate) shards: ShardSet,
    pub(crate) committers: Vec<Arc<GroupCommitter>>,
    /// Per-shard shed line.
    pub(crate) shed_l0: Vec<usize>,
}

/// Elastic-mode state hanging off the server.
pub(crate) struct ElasticCtx {
    pub(crate) meta_dev: Arc<dyn StorageDevice>,
    /// Current cluster-metadata file (superseded on every flip).
    pub(crate) meta_file: Mutex<Option<FileId>>,
    pub(crate) factory: ShardDeviceFactory,
    /// Serializes migrations: one split or merge at a time.
    pub(crate) mig_lock: Mutex<()>,
}

pub(crate) struct ServerInner {
    pub(crate) topo: RwLock<Topology>,
    pub(crate) cfg: ServerConfig,
    pub(crate) draining: AtomicBool,
    next_conn: AtomicU64,
    pub(crate) metrics: Arc<ServerMetrics>,
    /// Primary role: the replication log + shipper pool.
    replicator: Option<Arc<Replicator>>,
    /// Replica role: the serialized apply path.
    replica: Option<ReplicaState>,
    /// `Some` when the server is elastic.
    pub(crate) elastic: Option<ElasticCtx>,
    /// Every connection's transaction slot, keyed by connection id, so
    /// the idle-txn sweeper can reap stalled transactions while their
    /// reader threads are parked on the socket.
    txns: Mutex<HashMap<u64, Arc<Mutex<TxnSlot>>>>,
    /// Per-shard self-tuners (`cfg.tuner` is `Some`), ticked by
    /// `TUNE_STATUS` requests. Index-aligned with the shard set; rebuilt
    /// (tuning history reset) when a split/merge changes the topology.
    tuners: Mutex<Vec<lsm_tuner::Tuner>>,
}

/// A connection's open transaction: its shard-map version at begin plus
/// one lazily-created engine sub-transaction per shard its keys routed
/// to. Dropping it releases every snapshot pin and validation floor.
struct ConnTxn {
    /// Shard-map version when the txn began (0 = hash-routed); any flip
    /// since then aborts the txn with a conflict.
    map_version: u64,
    /// Sub-transaction per routed shard index.
    parts: HashMap<usize, lsm_core::Txn>,
}

/// The per-connection transaction slot, shared between the reader thread
/// and the sweeper.
enum TxnSlot {
    /// No transaction open.
    Idle,
    /// An open transaction and the last time a txn request touched it.
    Active {
        txn: ConnTxn,
        last_active: Instant,
    },
    /// Reaped by the sweeper: the next txn op answers `NoTxn` and resets
    /// the slot to `Idle`.
    TimedOut,
}

/// A running server. [`Server::shutdown`] drains gracefully;
/// [`Server::abort`] stops without flushing (a crash stand-in for
/// recovery tests). Both return the shard engines.
pub struct Server {
    /// `None` once serving has stopped (shutdown, abort, or drop).
    inner: Option<Arc<ServerInner>>,
    addr: SocketAddr,
    accept: Option<std::thread::JoinHandle<()>>,
    rebalancer: Option<std::thread::JoinHandle<()>>,
    sweeper: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

fn io_err(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

impl Server {
    /// Binds `127.0.0.1:0` and starts serving `shards` under FNV hash
    /// routing (static topology).
    pub fn start(shards: Vec<Db>, cfg: ServerConfig) -> std::io::Result<Server> {
        Server::launch(shards, None, cfg, None, None)
    }

    /// Binds `127.0.0.1:0` and starts serving `shards` under range
    /// routing: `shards[i]` owns `map` entry `i`. The map is persisted
    /// to the cluster-metadata device (superseding any older version
    /// found there), and splits/merges become available — automatic when
    /// `elastic.policy` is set, and always via [`Server::split_shard`] /
    /// [`Server::merge_shards`]. Elastic topology does not compose with
    /// replication roles yet.
    pub fn start_elastic(
        shards: Vec<Db>,
        map: ShardMap,
        elastic: ElasticOptions,
        cfg: ServerConfig,
    ) -> std::io::Result<Server> {
        assert!(
            matches!(cfg.role, ReplicationRole::None),
            "elastic topology does not compose with replication roles"
        );
        // make the starting map the durable newest: adopt the file when
        // it already encodes exactly this map, supersede it otherwise
        let meta_file = match find_cluster_meta(&elastic.meta_dev).map_err(io_err)? {
            Some((fid, m)) if m == map => Some(fid),
            other => Some(
                write_cluster_meta(&elastic.meta_dev, &map, other.map(|(fid, _)| fid))
                    .map_err(io_err)?,
            ),
        };
        let policy = elastic.policy.clone();
        let ctx = ElasticCtx {
            meta_dev: elastic.meta_dev,
            meta_file: Mutex::new(meta_file),
            factory: elastic.factory,
            mig_lock: Mutex::new(()),
        };
        Server::launch(shards, Some(map), cfg, Some(ctx), policy)
    }

    fn launch(
        shards: Vec<Db>,
        map: Option<ShardMap>,
        cfg: ServerConfig,
        elastic: Option<ElasticCtx>,
        policy: Option<RebalancePolicy>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let metrics = ServerMetrics::new();
        let shed_l0: Vec<usize> = shards
            .iter()
            .map(|db| cfg.shed_l0_runs.unwrap_or(db.config().l0_stall_runs))
            .collect();
        // a primary's replication log starts at the highest sequence the
        // shards already applied — 0 for a fresh node, the adopted
        // watermark for a promoted replica (all shards advance in
        // lockstep, so the max is the freshest recovered lower bound)
        let replicator = match &cfg.role {
            ReplicationRole::Primary(prim) => {
                let base = shards.iter().map(|db| db.applied_seq()).max().unwrap_or(0);
                Some(Replicator::start(base, prim.clone(), Arc::clone(&metrics)))
            }
            _ => None,
        };
        let committers: Vec<Arc<GroupCommitter>> = shards
            .iter()
            .map(|db| {
                Arc::new(GroupCommitter::start(
                    db.clone(),
                    cfg.max_batch,
                    cfg.sync_each_batch,
                    Arc::clone(&metrics),
                    replicator.clone(),
                ))
            })
            .collect();
        let shards = match map {
            Some(map) => ShardSet::with_map(shards, map),
            None => ShardSet::new(shards),
        };
        let replica = match &cfg.role {
            ReplicationRole::Replica => Some(ReplicaState::new(&shards)),
            _ => None,
        };
        let tuners = Mutex::new(build_tuners(&cfg.tuner, shards.dbs()));
        let inner = Arc::new(ServerInner {
            topo: RwLock::new(Topology {
                shards,
                committers,
                shed_l0,
            }),
            cfg,
            draining: AtomicBool::new(false),
            next_conn: AtomicU64::new(0),
            metrics,
            replicator,
            replica,
            elastic,
            txns: Mutex::new(HashMap::new()),
            tuners,
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::default();
        let accept = {
            let inner = Arc::clone(&inner);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("lsm-server-accept".into())
                .spawn(move || accept_loop(listener, inner, conns))
                .expect("spawn accept thread")
        };
        let rebalancer = policy.map(|policy| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("lsm-server-rebalance".into())
                .spawn(move || rebalance_loop(inner, policy))
                .expect("spawn rebalancer thread")
        });
        let sweeper = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("lsm-server-txn-sweeper".into())
                .spawn(move || txn_sweeper_loop(inner))
                .expect("spawn txn sweeper thread")
        };
        Ok(Server {
            inner: Some(inner),
            addr,
            accept: Some(accept),
            rebalancer,
            sweeper: Some(sweeper),
            conns,
        })
    }

    /// The bound address (`127.0.0.1:<ephemeral port>`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared handle to the server metrics; survives shutdown, so a
    /// harness can snapshot after the server is gone.
    pub fn metrics(&self) -> Arc<ServerMetrics> {
        Arc::clone(&self.inner.as_ref().expect("server running").metrics)
    }

    /// The live shard map (`None` when hash-routed or stopped).
    pub fn shard_map(&self) -> Option<ShardMap> {
        self.inner.as_ref()?.topo.read().unwrap().shards.map().cloned()
    }

    /// Splits shard `idx` at `boundary` — or, when `None`, at the
    /// donor's suggested fence-pointer median — migrating the right half
    /// to a freshly-named shard while serving continues. Returns the new
    /// shard's stable id. Elastic servers only.
    pub fn split_shard(&self, idx: usize, boundary: Option<Vec<u8>>) -> Result<u64, String> {
        let inner = self.inner.as_ref().ok_or("server stopped")?;
        crate::migrate::split_shard(inner, idx, boundary)
    }

    /// Merges shard `idx + 1` into shard `idx`, migrating its range and
    /// retiring it. Returns the absorbed shard's stable id. Elastic
    /// servers only.
    pub fn merge_shards(&self, idx: usize) -> Result<u64, String> {
        let inner = self.inner.as_ref().ok_or("server stopped")?;
        crate::migrate::merge_shards(inner, idx)
    }

    /// Stops accepting, lets in-flight requests finish, commits every
    /// queued write, waits for replicas to ack every published batch
    /// (bounded), flushes all shards to quiescence, and returns the
    /// shard engines.
    pub fn shutdown(mut self) -> StorageResult<Vec<Db>> {
        let (topo, metrics) = self.stop_serving(true).expect("server already stopped");
        metrics.event(EventKind::ServerDrain {
            phase: "flush",
            connections: 0,
        });
        topo.shards.flush_all()?;
        metrics.event(EventKind::ServerDrain {
            phase: "done",
            connections: 0,
        });
        Ok(topo.shards.into_dbs())
    }

    /// Stops serving *without* flushing the shards or waiting on replica
    /// acks — the in-process stand-in for killing the server: whatever
    /// the WAL sync policy made durable is all a reopen gets.
    pub fn abort(mut self) -> Vec<Db> {
        self.stop_serving(false)
            .expect("server already stopped")
            .0
            .shards
            .into_dbs()
    }

    /// Common teardown: refuse new connections, join every connection
    /// (readers finish their in-flight work against still-live
    /// committers), join the rebalancer (any migration it is mid-way
    /// through completes first), commit the committers' remaining
    /// queues, then stop the shipper pool. Idempotent; `None` after the
    /// first call.
    ///
    /// With `drain_replicas`, the shippers first get a bounded window to
    /// collect replica acks for every published batch. The committers
    /// are already down at that point, so the published set is final —
    /// without this barrier, a batch could be committed + client-acked
    /// (quorum 0, or a lag timeout) yet still be unshipped when the
    /// shippers die, and a post-shutdown failover would lose it.
    fn stop_serving(&mut self, drain_replicas: bool) -> Option<(Topology, Arc<ServerMetrics>)> {
        let inner = self.inner.take()?;
        inner.metrics.event(EventKind::ServerDrain {
            phase: "begin",
            connections: inner.metrics.connections.get().max(0) as u64,
        });
        inner.draining.store(true, Ordering::Release);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        loop {
            let handles: Vec<_> = self.conns.lock().unwrap().drain(..).collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        if let Some(h) = self.rebalancer.take() {
            let _ = h.join();
        }
        if let Some(h) = self.sweeper.take() {
            let _ = h.join();
        }
        let inner = match Arc::try_unwrap(inner) {
            Ok(inner) => inner,
            Err(_) => unreachable!("all server threads joined but inner still shared"),
        };
        let topo = inner.topo.into_inner().unwrap();
        for c in &topo.committers {
            c.shutdown();
        }
        if let Some(rep) = &inner.replicator {
            if drain_replicas {
                let phase = if rep.drain() { "repl_acked" } else { "repl_timeout" };
                inner.metrics.event(EventKind::ServerDrain {
                    phase,
                    connections: 0,
                });
            }
            rep.stop();
        }
        Some((topo, inner.metrics))
    }
}

impl Drop for Server {
    /// A dropped server still tears down cleanly (no flush, no replica
    /// drain — those are what [`Server::shutdown`] adds).
    fn drop(&mut self) {
        let _ = self.stop_serving(false);
    }
}

/// Watches per-shard write-rate deltas and splits the hottest shard or
/// merges the coldest adjacent pair under [`RebalancePolicy`]. Runs
/// until drain; a failed attempt (no interior split candidate yet, a
/// concurrent explicit migration) just waits for the next tick.
fn rebalance_loop(inner: Arc<ServerInner>, policy: RebalancePolicy) {
    // previous puts reading per stable shard id (ids survive re-indexing)
    let mut last: HashMap<u64, u64> = HashMap::new();
    while !inner.draining.load(Ordering::Acquire) {
        let mut slept = 0u64;
        while slept < policy.interval_ms && !inner.draining.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(policy.interval_ms.clamp(1, 5)));
            slept += policy.interval_ms.clamp(1, 5);
        }
        if inner.draining.load(Ordering::Acquire) {
            break;
        }
        // sample (index, stable id, total puts) under a short read lock
        let sample: Vec<(usize, u64, u64)> = {
            let topo = inner.topo.read().unwrap();
            let Some(map) = topo.shards.map() else { return };
            map.entries
                .iter()
                .enumerate()
                .map(|(i, e)| (i, e.shard_id, topo.shards.db(i).stats().snapshot().puts))
                .collect()
        };
        // a shard seen for the first time contributes delta 0 this tick
        let deltas: Vec<(usize, u64)> = sample
            .iter()
            .map(|&(i, id, puts)| (i, puts.saturating_sub(*last.get(&id).unwrap_or(&puts))))
            .collect();
        last = sample.iter().map(|&(_, id, puts)| (id, puts)).collect();
        let n = deltas.len();
        if n < policy.max_shards {
            if let Some(&(idx, d)) = deltas.iter().max_by_key(|&&(_, d)| d) {
                if d >= policy.split_puts_per_interval
                    && crate::migrate::split_shard(&inner, idx, None).is_ok()
                {
                    continue;
                }
            }
        }
        if n > policy.min_shards {
            // coldest adjacent pair where both sides are idle enough
            let best = deltas
                .windows(2)
                .filter(|w| {
                    w[0].1 <= policy.merge_puts_per_interval
                        && w[1].1 <= policy.merge_puts_per_interval
                })
                .min_by_key(|w| w[0].1 + w[1].1)
                .map(|w| w[0].0);
            if let Some(idx) = best {
                let _ = crate::migrate::merge_shards(&inner, idx);
            }
        }
    }
}

/// Reaps transactions idle past `txn_idle_timeout`: the slot flips to
/// `TimedOut` (dropping the `ConnTxn` releases its snapshot pins and
/// validation floors immediately), `server.txn_timeouts` counts it, and
/// the connection's next txn op answers `NoTxn`. Runs until drain.
fn txn_sweeper_loop(inner: Arc<ServerInner>) {
    let timeout = inner.cfg.txn_idle_timeout;
    while !inner.draining.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(5));
        let slots: Vec<Arc<Mutex<TxnSlot>>> =
            inner.txns.lock().unwrap().values().cloned().collect();
        for slot in slots {
            let mut g = slot.lock().unwrap();
            if let TxnSlot::Active { last_active, .. } = &*g {
                if last_active.elapsed() >= timeout {
                    *g = TxnSlot::TimedOut;
                    inner.metrics.txn_timeouts.inc();
                }
            }
        }
    }
}

fn accept_loop(
    listener: TcpListener,
    inner: Arc<ServerInner>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
) {
    while !inner.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let conn_id = inner.next_conn.fetch_add(1, Ordering::Relaxed);
                inner.metrics.accepts.inc();
                inner.metrics.connections.add(1);
                inner.metrics.event(EventKind::ServerAccept { conn: conn_id });
                let inner2 = Arc::clone(&inner);
                let handle = std::thread::Builder::new()
                    .name(format!("lsm-server-conn-{conn_id}"))
                    .spawn(move || {
                        serve_conn(inner2, stream, conn_id);
                    })
                    .expect("spawn connection reader");
                conns.lock().unwrap().push(handle);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Per-connection state shared between the reader and write callbacks.
struct ConnState {
    /// Writes submitted to a committer but not yet acked.
    pending: Mutex<usize>,
    cv: Condvar,
}

impl ConnState {
    fn wait_until(&self, limit: usize) {
        let mut g = self.pending.lock().unwrap();
        while *g > limit {
            let (g2, _) = self.cv.wait_timeout(g, Duration::from_millis(50)).unwrap();
            g = g2;
        }
    }

    fn incr(&self) {
        *self.pending.lock().unwrap() += 1;
    }

    fn decr(&self) {
        let mut g = self.pending.lock().unwrap();
        *g = g.saturating_sub(1);
        drop(g);
        self.cv.notify_all();
    }
}

fn writer_loop(stream: TcpStream, rx: Receiver<Vec<u8>>, pool: Arc<BufPool>) {
    let mut w = BufWriter::new(stream);
    while let Ok(frame) = rx.recv() {
        let ok = w.write_all(&frame).is_ok();
        pool.put(frame);
        if !ok {
            break;
        }
        // coalesce whatever else is queued before paying the flush
        let mut dead = false;
        while let Ok(next) = rx.try_recv() {
            let ok = w.write_all(&next).is_ok();
            pool.put(next);
            if !ok {
                dead = true;
                break;
            }
        }
        if dead || w.flush().is_err() {
            break;
        }
    }
    // wake the reader out of its timeout loop if we died first
    let _ = w.get_ref().shutdown(std::net::Shutdown::Both);
}

fn serve_conn(inner: Arc<ServerInner>, stream: TcpStream, conn_id: u64) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
    let (resp_tx, resp_rx) = channel::<Vec<u8>>();
    let pool = BufPool::new();
    let writer = {
        let ws = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                inner.metrics.connections.add(-1);
                return;
            }
        };
        let pool = Arc::clone(&pool);
        std::thread::Builder::new()
            .name("lsm-server-conn-writer".into())
            .spawn(move || writer_loop(ws, resp_rx, pool))
            .expect("spawn connection writer")
    };
    let state = Arc::new(ConnState {
        pending: Mutex::new(0),
        cv: Condvar::new(),
    });
    // the txn slot is registered so the sweeper can reap it while this
    // thread is parked on the socket
    let txn_slot = Arc::new(Mutex::new(TxnSlot::Idle));
    inner
        .txns
        .lock()
        .unwrap()
        .insert(conn_id, Arc::clone(&txn_slot));
    let mut reader = FrameReader::new(stream, inner.cfg.max_frame_bytes);
    loop {
        let keep_waiting = || !inner.draining.load(Ordering::Acquire);
        match reader.next_frame_ref(keep_waiting) {
            Ok(Some(payload)) => {
                if !handle_frame(&inner, &state, &resp_tx, &pool, &txn_slot, payload) {
                    break;
                }
            }
            Ok(None) => break, // clean EOF or drain at a frame boundary
            Err(e) => {
                // framing is unrecoverable: best-effort typed error, close
                inner.metrics.malformed.inc();
                let mut buf = pool.take();
                encode_response_into(&mut buf, 0, &Response::Error(e.to_string()));
                let _ = resp_tx.send(buf);
                break;
            }
        }
    }
    // a dead connection abandons its transaction: dropping the slot's
    // ConnTxn releases every snapshot pin and floor
    inner.txns.lock().unwrap().remove(&conn_id);
    *txn_slot.lock().unwrap() = TxnSlot::Idle;
    // finish in-flight writes so their acks reach the wire before close
    state.wait_until(0);
    drop(resp_tx); // writer drains and exits once callbacks release theirs
    let _ = writer.join();
    inner.metrics.connections.add(-1);
}

/// One tuner per shard engine, each with a distinct (but deterministic)
/// seed so exact-cost ties don't march every shard to the same design.
fn build_tuners(cfg: &Option<lsm_tuner::TunerConfig>, dbs: &[Db]) -> Vec<lsm_tuner::Tuner> {
    match cfg {
        None => Vec::new(),
        Some(tc) => dbs
            .iter()
            .enumerate()
            .map(|(i, db)| {
                let mut tc = tc.clone();
                tc.seed = tc.seed.wrapping_add(i as u64);
                lsm_tuner::Tuner::new(db.clone(), tc)
            })
            .collect(),
    }
}

/// Encodes `resp` into a pooled buffer and queues it for the writer.
fn send_pooled(resp_tx: &Sender<Vec<u8>>, pool: &BufPool, id: u64, resp: &Response) -> bool {
    let mut buf = pool.take();
    encode_response_into(&mut buf, id, resp);
    resp_tx.send(buf).is_ok()
}

/// Handles one well-framed payload. Returns `false` to close the
/// connection.
fn handle_frame(
    inner: &Arc<ServerInner>,
    state: &Arc<ConnState>,
    resp_tx: &Sender<Vec<u8>>,
    pool: &Arc<BufPool>,
    txn_slot: &Arc<Mutex<TxnSlot>>,
    payload: &[u8],
) -> bool {
    inner.metrics.requests.inc();
    let (id, req) = match crate::protocol::decode_request_ref(payload) {
        Ok(ok) => ok,
        Err(e) => {
            // the frame boundary is intact, so the connection survives a
            // payload the decoder rejects — reply typed, keep reading
            inner.metrics.malformed.inc();
            let id = peek_request_id(payload).unwrap_or(0);
            return send_pooled(resp_tx, pool, id, &Response::Error(e.to_string()));
        }
    };
    if inner.draining.load(Ordering::Acquire) {
        return send_pooled(resp_tx, pool, id, &Response::ShuttingDown);
    }
    match req {
        RequestRef::Get { key } => {
            state.wait_until(0); // read-your-writes
            let t0 = inner.metrics.now_ns();
            // the value bytes go straight from the engine's borrowed view
            // (cached block / memtable arena) into the wire buffer; the
            // routing read lock pins one map version for the lookup
            let mut buf = pool.take();
            let topo = inner.topo.read().unwrap();
            match topo
                .shards
                .get_with(key, |v| encode_value_response_into(&mut buf, id, v))
            {
                Ok(Some(())) => {}
                Ok(None) => encode_response_into(&mut buf, id, &Response::NotFound),
                Err(e) => {
                    buf.clear();
                    encode_response_into(&mut buf, id, &Response::Error(e.to_string()));
                }
            }
            drop(topo);
            inner.metrics.get_ns.record(inner.metrics.now_ns().saturating_sub(t0));
            resp_tx.send(buf).is_ok()
        }
        RequestRef::Scan { start, end, limit } => {
            state.wait_until(0);
            let t0 = inner.metrics.now_ns();
            // stream entries off the merge cursor into the wire buffer;
            // the count is patched in when the scan completes. One read
            // lock for the whole scan = one map version for the whole
            // scan, so a concurrent flip cannot tear it
            let mut buf = pool.take();
            let mut enc = begin_entries_response(&mut buf, id);
            let topo = inner.topo.read().unwrap();
            match topo
                .shards
                .scan_with(start, end, limit as usize, |k, v| enc.push(k, v))
            {
                Ok(_) => enc.finish(),
                Err(e) => {
                    buf.clear();
                    encode_response_into(&mut buf, id, &Response::Error(e.to_string()));
                }
            }
            drop(topo);
            inner.metrics.scan_ns.record(inner.metrics.now_ns().saturating_sub(t0));
            resp_tx.send(buf).is_ok()
        }
        RequestRef::Stats => {
            let json = inner
                .metrics
                .snapshot()
                .to_json_line_tagged(&[("scope", "server")]);
            send_pooled(resp_tx, pool, id, &Response::Stats(json))
        }
        RequestRef::ShardMap => {
            // hash-routed servers report version 0 with no entries
            let topo = inner.topo.read().unwrap();
            let resp = match topo.shards.map() {
                Some(m) => Response::ShardMap {
                    version: m.version,
                    entries: m
                        .entries
                        .iter()
                        .map(|e| (e.shard_id, e.start.clone()))
                        .collect(),
                },
                None => Response::ShardMap {
                    version: 0,
                    entries: Vec::new(),
                },
            };
            drop(topo);
            send_pooled(resp_tx, pool, id, &resp)
        }
        RequestRef::TuneStatus => {
            // pull-model tuning: the request itself is the tick, so the
            // decision sequence is a deterministic function of the
            // request stream (no timer thread to race)
            let resp = if inner.cfg.tuner.is_none() {
                Response::TuneStatus(Vec::new())
            } else {
                let topo = inner.topo.read().unwrap();
                let mut tuners = inner.tuners.lock().unwrap();
                // a split/merge since the last tick leaves stale engine
                // handles behind; restart tuning on the new topology
                let stale = tuners.len() != topo.shards.dbs().len()
                    || tuners
                        .iter()
                        .zip(topo.shards.dbs())
                        .any(|(t, db)| !t.db().same_engine(db));
                if stale {
                    *tuners = build_tuners(&inner.cfg.tuner, topo.shards.dbs());
                }
                let entries = tuners
                    .iter_mut()
                    .enumerate()
                    .map(|(i, t)| {
                        t.tick();
                        (i as u64, t.status_json())
                    })
                    .collect();
                drop(topo);
                Response::TuneStatus(entries)
            };
            send_pooled(resp_tx, pool, id, &resp)
        }
        RequestRef::Put { key, value } => {
            if inner.replica.is_some() {
                // a replica takes writes only through the replication
                // stream; clients must write to the primary
                return send_pooled(
                    resp_tx,
                    pool,
                    id,
                    &Response::Error("replica is read-only".into()),
                );
            }
            // the single copy on the write path: key/value leave the read
            // buffer here to cross into the committer's queue
            let op = WriteOp::Put {
                key: key.to_vec(),
                value: value.to_vec(),
            };
            submit_write(inner, state, resp_tx, pool, id, op)
        }
        RequestRef::Delete { key } => {
            if inner.replica.is_some() {
                return send_pooled(
                    resp_tx,
                    pool,
                    id,
                    &Response::Error("replica is read-only".into()),
                );
            }
            let op = WriteOp::Delete { key: key.to_vec() };
            submit_write(inner, state, resp_tx, pool, id, op)
        }
        RequestRef::ReplSubscribe { .. } => {
            // the reply tells the shipper where to start: our watermark
            match &inner.replica {
                Some(r) => send_pooled(
                    resp_tx,
                    pool,
                    id,
                    &Response::ReplAck { seq: r.applied() },
                ),
                None => send_pooled(
                    resp_tx,
                    pool,
                    id,
                    &Response::Error("not a replica".into()),
                ),
            }
        }
        RequestRef::ReplBatch { seq, ops } => match &inner.replica {
            Some(r) => {
                let t0 = inner.metrics.now_ns();
                let topo = inner.topo.read().unwrap();
                let resp = match r.apply_batch(&topo.shards, seq, ops) {
                    Ok(watermark) => Response::ReplAck { seq: watermark },
                    Err(e) => {
                        inner.metrics.malformed.inc();
                        Response::Error(e.to_string())
                    }
                };
                drop(topo);
                inner
                    .metrics
                    .put_ns
                    .record(inner.metrics.now_ns().saturating_sub(t0));
                send_pooled(resp_tx, pool, id, &resp)
            }
            None => send_pooled(
                resp_tx,
                pool,
                id,
                &Response::Error("not a replica".into()),
            ),
        },
        RequestRef::TxnBegin => {
            if inner.replica.is_some() {
                return send_pooled(
                    resp_tx,
                    pool,
                    id,
                    &Response::Error("replica is read-only".into()),
                );
            }
            // read-your-writes: the snapshot must cover every write this
            // connection has already been acked for
            state.wait_until(0);
            let mut g = txn_slot.lock().unwrap();
            if matches!(&*g, TxnSlot::Active { .. }) {
                drop(g);
                return send_pooled(
                    resp_tx,
                    pool,
                    id,
                    &Response::Error("transaction already active on this connection".into()),
                );
            }
            let map_version = {
                let topo = inner.topo.read().unwrap();
                topo.shards.map().map_or(0, |m| m.version)
            };
            *g = TxnSlot::Active {
                txn: ConnTxn {
                    map_version,
                    parts: HashMap::new(),
                },
                last_active: Instant::now(),
            };
            drop(g);
            inner.metrics.txn_begins.inc();
            send_pooled(resp_tx, pool, id, &Response::Ok)
        }
        RequestRef::TxnGet { key } => {
            let mut g = txn_slot.lock().unwrap();
            match &mut *g {
                TxnSlot::Active { txn: ct, last_active } => {
                    *last_active = Instant::now();
                    let topo = inner.topo.read().unwrap();
                    let resp = match txn_route(inner, ct, &topo, key) {
                        Ok(shard) => match txn_shard(ct, &topo, shard)
                            .and_then(|t| t.get(key))
                        {
                            Ok(Some(v)) => Response::Value(v),
                            Ok(None) => Response::NotFound,
                            Err(e) => Response::Error(e.to_string()),
                        },
                        Err(resp) => {
                            *g = TxnSlot::Idle; // map flip: abort the txn
                            resp
                        }
                    };
                    drop(g);
                    send_pooled(resp_tx, pool, id, &resp)
                }
                TxnSlot::TimedOut => {
                    *g = TxnSlot::Idle;
                    drop(g);
                    send_pooled(resp_tx, pool, id, &Response::NoTxn)
                }
                TxnSlot::Idle => {
                    drop(g);
                    send_pooled(resp_tx, pool, id, &Response::NoTxn)
                }
            }
        }
        RequestRef::TxnPut { key, value } => {
            txn_buffer(inner, txn_slot, resp_tx, pool, id, key, Some(value))
        }
        RequestRef::TxnDelete { key } => {
            txn_buffer(inner, txn_slot, resp_tx, pool, id, key, None)
        }
        RequestRef::TxnCommit => txn_commit(inner, state, resp_tx, pool, txn_slot, id),
        RequestRef::TxnAbort => {
            // idempotent: aborting with nothing open is still Ok
            let mut g = txn_slot.lock().unwrap();
            let was = std::mem::replace(&mut *g, TxnSlot::Idle);
            drop(g);
            drop(was); // releases the snapshot pins, if any
            send_pooled(resp_tx, pool, id, &Response::Ok)
        }
    }
}

/// Routes `key` for an open transaction: the shard index under the
/// current map, or the typed conflict reply when the shard map has
/// flipped since the transaction began (its routing assumptions — and
/// possibly its sub-transactions' engines — are stale).
fn txn_route(
    inner: &Arc<ServerInner>,
    ct: &ConnTxn,
    topo: &Topology,
    key: &[u8],
) -> Result<usize, Response> {
    let version = topo.shards.map().map_or(0, |m| m.version);
    if version != ct.map_version {
        inner.metrics.txn_conflicts.inc();
        return Err(Response::TxnConflict { key: key.to_vec() });
    }
    Ok(topo.shards.shard_index(key))
}

/// The transaction's sub-txn for `shard`, beginning one on first touch.
fn txn_shard<'a>(
    ct: &'a mut ConnTxn,
    topo: &Topology,
    shard: usize,
) -> lsm_storage::StorageResult<&'a mut lsm_core::Txn> {
    use std::collections::hash_map::Entry;
    match ct.parts.entry(shard) {
        Entry::Occupied(e) => Ok(e.into_mut()),
        Entry::Vacant(v) => Ok(v.insert(topo.shards.db(shard).begin_txn()?)),
    }
}

/// Buffers a transactional put (`Some`) or delete (`None`). The ack only
/// means "buffered in the transaction" — durability comes at commit.
fn txn_buffer(
    inner: &Arc<ServerInner>,
    txn_slot: &Arc<Mutex<TxnSlot>>,
    resp_tx: &Sender<Vec<u8>>,
    pool: &Arc<BufPool>,
    id: u64,
    key: &[u8],
    value: Option<&[u8]>,
) -> bool {
    let mut g = txn_slot.lock().unwrap();
    match &mut *g {
        TxnSlot::Active { txn: ct, last_active } => {
            *last_active = Instant::now();
            let topo = inner.topo.read().unwrap();
            let resp = match txn_route(inner, ct, &topo, key) {
                Ok(shard) => match txn_shard(ct, &topo, shard) {
                    Ok(t) => {
                        match value {
                            Some(v) => t.put(key.to_vec(), v.to_vec()),
                            None => t.delete(key.to_vec()),
                        }
                        Response::Ok
                    }
                    Err(e) => Response::Error(e.to_string()),
                },
                Err(resp) => {
                    *g = TxnSlot::Idle;
                    resp
                }
            };
            drop(g);
            send_pooled(resp_tx, pool, id, &resp)
        }
        TxnSlot::TimedOut => {
            *g = TxnSlot::Idle;
            drop(g);
            send_pooled(resp_tx, pool, id, &Response::NoTxn)
        }
        TxnSlot::Idle => {
            drop(g);
            send_pooled(resp_tx, pool, id, &Response::NoTxn)
        }
    }
}

/// Executes TXN_COMMIT: takes the transaction out of the slot, re-checks
/// the shard map and admission control, then hands the parts to a
/// committer thread — the owning shard's for a single-shard transaction
/// (the fast path: its commit serializes with that shard's batches, so
/// migration taps and replication stay in commit order), or the
/// lowest-involved shard's for a cross-shard one. Cross-shard commits
/// are refused on elastic or replicated servers, where out-of-band
/// engine applies would race the tap tee / publish ordering.
fn txn_commit(
    inner: &Arc<ServerInner>,
    state: &Arc<ConnState>,
    resp_tx: &Sender<Vec<u8>>,
    pool: &Arc<BufPool>,
    txn_slot: &Arc<Mutex<TxnSlot>>,
    id: u64,
) -> bool {
    state.wait_until(inner.cfg.pipeline_depth.saturating_sub(1));
    let t0 = inner.metrics.now_ns();
    let ct = {
        let mut g = txn_slot.lock().unwrap();
        match std::mem::replace(&mut *g, TxnSlot::Idle) {
            TxnSlot::Active { txn, .. } => txn,
            TxnSlot::TimedOut | TxnSlot::Idle => {
                drop(g);
                return send_pooled(resp_tx, pool, id, &Response::NoTxn);
            }
        }
    };
    if ct.parts.is_empty() {
        // a transaction that neither read nor wrote serializes anywhere;
        // stamp 0 marks "empty" (real stamps start at 1)
        inner.metrics.txn_commits.inc();
        inner
            .metrics
            .txn_commit_ns
            .record(inner.metrics.now_ns().saturating_sub(t0));
        return send_pooled(resp_tx, pool, id, &Response::TxnCommitted { stamp: 0 });
    }
    let topo = inner.topo.read().unwrap();
    // the map must not have flipped: shard indices captured by the
    // sub-txns would be stale
    let version = topo.shards.map().map_or(0, |m| m.version);
    if version != ct.map_version {
        drop(topo);
        drop(ct); // releases pins + floors
        inner.metrics.txn_conflicts.inc();
        return send_pooled(
            resp_tx,
            pool,
            id,
            &Response::TxnConflict { key: Vec::new() },
        );
    }
    let mut shards: Vec<usize> = ct.parts.keys().copied().collect();
    shards.sort_unstable();
    if shards.len() > 1 && (inner.replicator.is_some() || inner.elastic.is_some()) {
        drop(topo);
        drop(ct);
        return send_pooled(
            resp_tx,
            pool,
            id,
            &Response::Error(
                "cross-shard transactions are not supported on elastic or replicated servers"
                    .into(),
            ),
        );
    }
    // admission control, same shed line as plain writes, per shard
    for &s in &shards {
        let l0 = topo.shards.db(s).l0_run_count();
        if l0 >= topo.shed_l0[s] {
            drop(topo);
            // the transaction survives a shed: the client may retry the
            // commit after backing off
            *txn_slot.lock().unwrap() = TxnSlot::Active {
                txn: ct,
                last_active: Instant::now(),
            };
            inner.metrics.sheds.inc();
            inner.metrics.event(EventKind::ServerShed {
                shard: s as u32,
                l0_runs: l0 as u64,
            });
            return send_pooled(resp_tx, pool, id, &Response::Busy);
        }
    }
    let target = shards[0];
    let parts: Vec<lsm_core::TxnPart> = {
        let mut by_shard: Vec<(usize, lsm_core::Txn)> = ct.parts.into_iter().collect();
        by_shard.sort_unstable_by_key(|(s, _)| *s);
        by_shard.into_iter().map(|(_, t)| t.into_part()).collect()
    };
    state.incr();
    inner.metrics.inflight.add(1);
    let metrics = Arc::clone(&inner.metrics);
    let state2 = Arc::clone(state);
    let resp_tx2 = resp_tx.clone();
    let pool2 = Arc::clone(pool);
    let submitted = topo.committers[target].submit_txn(TxnCommitReq {
        parts,
        done: Box::new(move |outcome| {
            let resp = match outcome {
                TxnOutcome::Committed(stamp) => {
                    metrics.txn_commits.inc();
                    Response::TxnCommitted { stamp }
                }
                TxnOutcome::CommittedLag(_) => {
                    // durable + committed locally; the client learns the
                    // redundancy guarantee was not met in time
                    metrics.txn_commits.inc();
                    Response::ReplicaLag
                }
                TxnOutcome::Conflict(c) => {
                    metrics.txn_conflicts.inc();
                    Response::TxnConflict { key: c.key }
                }
                TxnOutcome::Err(e) => Response::Error(e.to_string()),
            };
            metrics
                .txn_commit_ns
                .record(metrics.now_ns().saturating_sub(t0));
            metrics.inflight.add(-1);
            let _ = send_pooled(&resp_tx2, &pool2, id, &resp);
            state2.decr();
        }),
    });
    drop(topo);
    submitted || !inner.draining.load(Ordering::Acquire)
}

fn submit_write(
    inner: &Arc<ServerInner>,
    state: &Arc<ConnState>,
    resp_tx: &Sender<Vec<u8>>,
    pool: &Arc<BufPool>,
    id: u64,
    op: WriteOp,
) -> bool {
    // bounded pipelining: cap this connection's in-flight writes. Waits
    // happen BEFORE the routing lock so a slow connection can never
    // stall a migration cut-over
    state.wait_until(inner.cfg.pipeline_depth.saturating_sub(1));
    let key = match &op {
        WriteOp::Put { key, .. } => key,
        WriteOp::Delete { key } => key,
    };
    // route + shed + submit under one read lock: the write lands in the
    // committer of the map version it was routed by, and the cut-over
    // barrier (which needs the write lock first) is guaranteed to drain
    // it into the recipient
    let topo = inner.topo.read().unwrap();
    let shard = topo.shards.shard_index(key);
    // admission control: shed where the engine would hard-stall
    let l0 = topo.shards.db(shard).l0_run_count();
    if l0 >= topo.shed_l0[shard] {
        drop(topo);
        inner.metrics.sheds.inc();
        inner.metrics.event(EventKind::ServerShed {
            shard: shard as u32,
            l0_runs: l0 as u64,
        });
        return send_pooled(resp_tx, pool, id, &Response::Busy);
    }
    state.incr();
    inner.metrics.inflight.add(1);
    let is_delete = matches!(op, WriteOp::Delete { .. });
    let metrics = Arc::clone(&inner.metrics);
    let state2 = Arc::clone(state);
    let resp_tx2 = resp_tx.clone();
    let pool2 = Arc::clone(pool);
    let t0 = metrics.now_ns();
    let submitted = topo.committers[shard].submit(WriteReq {
        op,
        done: Box::new(move |outcome| {
            let resp = match outcome {
                WriteOutcome::Ok => Response::Ok,
                WriteOutcome::ReplicaLag => Response::ReplicaLag,
                WriteOutcome::Err(e) => Response::Error(e.to_string()),
            };
            let h = if is_delete { &metrics.delete_ns } else { &metrics.put_ns };
            h.record(metrics.now_ns().saturating_sub(t0));
            metrics.inflight.add(-1);
            // the connection may already be gone; the ack bookkeeping
            // must still run so drains observe pending == 0
            let _ = send_pooled(&resp_tx2, &pool2, id, &resp);
            state2.decr();
        }),
    });
    drop(topo);
    // on a shut-down committer the callback already fired with an error
    submitted || !inner.draining.load(Ordering::Acquire)
}
