//! Live shard migration: online split and merge with a crash-safe
//! cut-over.
//!
//! ## Split state machine
//!
//! 1. **Plan** (routing read lock): snapshot the current map, pick the
//!    donor's range, and choose a boundary — explicit, or the donor's
//!    [`suggest_split_key`](lsm_core::DbCore::suggest_split_key)
//!    (weighted fence-pointer median, no data blocks read).
//! 2. **Fork**: open a fresh `Db` for the new shard id on a device from
//!    the elastic factory.
//! 3. **Tap, then snapshot**: install a [`MigrationTap`] on the donor's
//!    committer for `[boundary, end)`, *then* take a `Db` snapshot. The
//!    order is the correctness hinge: every batch that commits after the
//!    tap is teed, every batch that committed before it is in the
//!    snapshot, and a batch in both is harmless because tapped regions
//!    replay in commit order (the newest op for a key always replays
//!    last).
//! 4. **Copy**: stream the snapshot's `[boundary, end)` into the
//!    recipient in chunked write batches. Tapped regions buffer in their
//!    channel meanwhile — they must apply only *after* the bulk copy, or
//!    a snapshot value could overwrite a newer tapped one.
//! 5. **Catch-up**: drain and apply the buffered tap backlog.
//! 6. **Cut-over** (routing write lock, so no write can route anywhere
//!    during it): barrier the donor's committer (drains every queued
//!    write into the tap), apply the tap remainder, `sync` the
//!    recipient, write the new map to the cluster-metadata file — the
//!    durable commit point — and swap the in-memory topology.
//!
//! The donor **never deletes** the moved range: the router clamps every
//! per-shard scan to the shard's owned range and routes points by
//! ownership, so the stale copy is invisible. That is what makes a crash
//! at *any* point recoverable: before the meta write the old map is
//! live and the donor serves the whole range; after it the new map is
//! live and the recipient was already synced. Both states are legal, so
//! there is no torn topology to repair. The one indeterminate window is
//! a *failed* meta write: its bytes may or may not have become durable,
//! so recovery could adopt either map — no further ack is safe under
//! both, and the server fail-stops (drains) instead of guessing.
//!
//! ## Merge
//!
//! Merge is the inverse: the right neighbour (donor) streams its whole
//! range into the left shard (recipient) and retires. One extra step
//! guards against resurrection: the recipient may hold a *stale* copy of
//! the absorbed range from an earlier split (donors keep their data), in
//! which keys since deleted on the donor would still be live. The
//! migration therefore tombstones the recipient's copy of the range
//! before copying — snapshot scans cannot see the donor's tombstones,
//! so the recipient must start from nothing.

use std::sync::atomic::Ordering;
use std::sync::mpsc::{channel, Receiver};
use std::sync::Arc;

use lsm_core::{Db, WriteBatch};
use lsm_obs::EventKind;

use crate::batcher::{GroupCommitter, MigrationTap};
use crate::protocol::{repl_ops, ReplOpRef};
use crate::router::ShardSet;
use crate::server::ServerInner;
use crate::shardmap::{write_cluster_meta, ShardMap};

/// Entries per bulk-copy write batch.
const COPY_CHUNK: usize = 512;

/// Clears the tap on every exit path, so an aborted migration never
/// leaves the donor teeing into a dead channel.
struct TapGuard<'a>(&'a GroupCommitter);

impl Drop for TapGuard<'_> {
    fn drop(&mut self) {
        self.0.clear_tap();
    }
}

/// `[start, end)` with `end == None` meaning "to the end of the
/// keyspace", materialized for `Snapshot::scan`'s owned range.
fn end_key(hi: Option<&[u8]>) -> Vec<u8> {
    hi.map(<[u8]>::to_vec).unwrap_or_else(|| vec![0xFF; 64])
}

/// Applies one tapped ops region to `dst` as a single batch.
fn apply_region(dst: &Db, region: &[u8]) -> Result<(), String> {
    let mut batch = WriteBatch::new();
    for op in repl_ops(region).map_err(|e| e.to_string())? {
        match op.map_err(|e| e.to_string())? {
            ReplOpRef::Put { key, value } => batch.put(key.to_vec(), value.to_vec()),
            ReplOpRef::Delete { key } => batch.delete(key.to_vec()),
        }
    }
    dst.write_batch_mut(&mut batch).map_err(|e| e.to_string())
}

/// Streams `snap`'s live entries in `[lo, hi)` into `dst`, chunked.
fn copy_range(
    snap: &lsm_core::snapshot::Snapshot,
    lo: &[u8],
    hi: Option<&[u8]>,
    dst: &Db,
) -> Result<u64, String> {
    let end = end_key(hi);
    let mut cursor = lo.to_vec();
    let mut copied = 0u64;
    loop {
        let chunk = snap
            .scan(cursor.clone()..end.clone(), COPY_CHUNK)
            .map_err(|e| e.to_string())?;
        let Some((last, _)) = chunk.last() else {
            return Ok(copied);
        };
        cursor = last.clone();
        cursor.push(0); // successor: resume strictly after the last key
        let mut batch = WriteBatch::new();
        for (k, v) in chunk {
            batch.put(k, v);
        }
        copied += batch.len() as u64;
        dst.write_batch_mut(&mut batch).map_err(|e| e.to_string())?;
    }
}

/// Writes a tombstone over every live key `db` holds in `[lo, hi)` — the
/// anti-resurrection step before a merge copies into a shard that may
/// hold a stale copy of the range from an earlier split.
fn clear_range(db: &Db, lo: &[u8], hi: Option<&[u8]>) -> Result<u64, String> {
    let end = end_key(hi);
    let mut cursor = lo.to_vec();
    let mut cleared = 0u64;
    loop {
        let chunk = db
            .scan(cursor.clone()..end.clone(), COPY_CHUNK)
            .map_err(|e| e.to_string())?;
        let Some((last, _)) = chunk.last() else {
            return Ok(cleared);
        };
        cursor = last.clone();
        cursor.push(0);
        let mut batch = WriteBatch::new();
        for (k, _) in chunk {
            batch.delete(k);
        }
        cleared += batch.len() as u64;
        db.write_batch_mut(&mut batch).map_err(|e| e.to_string())?;
    }
}

/// Drains whatever the tap has buffered and applies it to `dst`.
fn drain_tap(rx: &Receiver<Vec<u8>>, dst: &Db) -> Result<(), String> {
    while let Ok(region) = rx.try_recv() {
        apply_region(dst, &region)?;
    }
    Ok(())
}

/// Splits shard `idx` at `boundary` (or the donor's suggested median),
/// migrating `[boundary, end)` to a freshly-named shard while writes
/// keep flowing. Returns the new shard's stable id.
pub(crate) fn split_shard(
    inner: &ServerInner,
    idx: usize,
    boundary: Option<Vec<u8>>,
) -> Result<u64, String> {
    let elastic = inner.elastic.as_ref().ok_or("server is not elastic")?;
    let _one_at_a_time = elastic.mig_lock.lock().unwrap();
    // plan under the routing read lock, then release it: copy runs
    // against clones while reads and writes proceed
    let (donor, committer, map, lo, hi) = {
        let topo = inner.topo.read().unwrap();
        let map: ShardMap = topo.shards.map().ok_or("server is not range-routed")?.clone();
        if idx >= map.len() {
            return Err(format!("no shard at index {idx}"));
        }
        let (lo, hi) = map.range_of(idx);
        (
            topo.shards.db(idx).clone(),
            Arc::clone(&topo.committers[idx]),
            map.clone(),
            lo.to_vec(),
            hi.map(<[u8]>::to_vec),
        )
    };
    let boundary = match boundary {
        Some(b) => b,
        None => donor
            .suggest_split_key(&lo, hi.as_deref())
            .ok_or("shard has no interior split candidate")?,
    };
    let (new_map, new_id) = map.split(idx, &boundary)?;
    let recipient = Db::open((elastic.factory)(new_id), donor.config().clone())
        .map_err(|e| format!("open recipient shard {new_id}: {e}"))?;
    // tap BEFORE snapshot: see the module docs for why this order is
    // the no-lost-write invariant
    let (tap_tx, tap_rx) = channel();
    committer.install_tap(MigrationTap {
        lo: boundary.clone(),
        hi: hi.clone(),
        tx: tap_tx,
    });
    let _tap = TapGuard(&committer);
    let snap = donor.snapshot().map_err(|e| e.to_string())?;
    copy_range(&snap, &boundary, hi.as_deref(), &recipient)?;
    drop(snap);
    // catch up on the tap backlog outside any lock; the cut-over only
    // has to drain what trickled in since
    drain_tap(&tap_rx, &recipient)?;
    {
        let mut topo = inner.topo.write().unwrap();
        if !committer.barrier() {
            return Err("donor committer shut down mid-split".into());
        }
        drain_tap(&tap_rx, &recipient)?;
        recipient.sync().map_err(|e| e.to_string())?;
        // the durable commit point: once this meta file lands, recovery
        // adopts the new topology
        let mut meta_file = elastic.meta_file.lock().unwrap();
        let fid = match write_cluster_meta(&elastic.meta_dev, &new_map, *meta_file) {
            Ok(fid) => fid,
            Err(e) => {
                // indeterminate commit: the write failed, but its bytes
                // may still be durable, so recovery could adopt *either*
                // map. No further ack is safe under both — fail stop.
                inner.draining.store(true, Ordering::Release);
                return Err(format!(
                    "cluster meta write failed mid-flip (topology indeterminate, \
                     serving stopped): {e}"
                ));
            }
        };
        *meta_file = Some(fid);
        drop(meta_file);
        let new_committer = Arc::new(GroupCommitter::start(
            recipient.clone(),
            inner.cfg.max_batch,
            inner.cfg.sync_each_batch,
            Arc::clone(&inner.metrics),
            None,
        ));
        let mut dbs = topo.shards.dbs().to_vec();
        dbs.insert(idx + 1, recipient);
        topo.committers.insert(idx + 1, new_committer);
        topo.shed_l0.insert(
            idx + 1,
            inner
                .cfg
                .shed_l0_runs
                .unwrap_or(dbs[idx + 1].config().l0_stall_runs),
        );
        topo.shards = ShardSet::with_map(dbs, new_map.clone());
        inner.metrics.event(EventKind::ShardSplit {
            parent: map.entries[idx].shard_id,
            new_shard: new_id,
            map_version: new_map.version,
        });
        inner.metrics.event(EventKind::ShardMapFlip {
            map_version: new_map.version,
            shards: new_map.len() as u64,
        });
    }
    Ok(new_id)
}

/// Merges shard `idx + 1` (donor) into shard `idx` (recipient),
/// migrating the donor's whole range left and retiring it. Returns the
/// absorbed shard's stable id.
pub(crate) fn merge_shards(inner: &ServerInner, idx: usize) -> Result<u64, String> {
    let elastic = inner.elastic.as_ref().ok_or("server is not elastic")?;
    let _one_at_a_time = elastic.mig_lock.lock().unwrap();
    let (donor, donor_committer, recipient, map, mid, hi) = {
        let topo = inner.topo.read().unwrap();
        let map: ShardMap = topo.shards.map().ok_or("server is not range-routed")?.clone();
        if idx + 1 >= map.len() {
            return Err(format!("shard {idx} has no right neighbour to absorb"));
        }
        let (mid, hi) = map.range_of(idx + 1);
        (
            topo.shards.db(idx + 1).clone(),
            Arc::clone(&topo.committers[idx + 1]),
            topo.shards.db(idx).clone(),
            map.clone(),
            mid.to_vec(),
            hi.map(<[u8]>::to_vec),
        )
    };
    let (new_map, absorbed) = map.merge(idx)?;
    // anti-resurrection: wipe the recipient's stale copy of the range
    // (left over if an earlier split made it the donor) before copying,
    // because the donor's snapshot cannot carry its tombstones
    clear_range(&recipient, &mid, hi.as_deref())?;
    let (tap_tx, tap_rx) = channel();
    donor_committer.install_tap(MigrationTap {
        lo: mid.clone(),
        hi: hi.clone(),
        tx: tap_tx,
    });
    let _tap = TapGuard(&donor_committer);
    let snap = donor.snapshot().map_err(|e| e.to_string())?;
    copy_range(&snap, &mid, hi.as_deref(), &recipient)?;
    drop(snap);
    drain_tap(&tap_rx, &recipient)?;
    let retired = {
        let mut topo = inner.topo.write().unwrap();
        if !donor_committer.barrier() {
            return Err("donor committer shut down mid-merge".into());
        }
        drain_tap(&tap_rx, &recipient)?;
        recipient.sync().map_err(|e| e.to_string())?;
        let mut meta_file = elastic.meta_file.lock().unwrap();
        let fid = match write_cluster_meta(&elastic.meta_dev, &new_map, *meta_file) {
            Ok(fid) => fid,
            Err(e) => {
                // same indeterminate-commit fail-stop as in split_shard
                inner.draining.store(true, Ordering::Release);
                return Err(format!(
                    "cluster meta write failed mid-flip (topology indeterminate, \
                     serving stopped): {e}"
                ));
            }
        };
        *meta_file = Some(fid);
        drop(meta_file);
        let mut dbs = topo.shards.dbs().to_vec();
        dbs.remove(idx + 1);
        let retired = topo.committers.remove(idx + 1);
        topo.shed_l0.remove(idx + 1);
        topo.shards = ShardSet::with_map(dbs, new_map.clone());
        inner.metrics.event(EventKind::ShardMerge {
            absorbed,
            into: new_map.entries[idx].shard_id,
            map_version: new_map.version,
        });
        inner.metrics.event(EventKind::ShardMapFlip {
            map_version: new_map.version,
            shards: new_map.len() as u64,
        });
        retired
    };
    // the barrier already drained it and the new map routes nothing to
    // it, so this join is quick — but do it outside the routing lock
    retired.shutdown();
    Ok(absorbed)
}
