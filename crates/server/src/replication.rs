//! Primary → replica replication: the sequenced log of committed
//! group-commit batches, per-replica shipper threads, quorum-ack
//! bookkeeping, and the replica-side apply path.
//!
//! ## Unit of replication
//!
//! The per-shard group committer already folds concurrent writes into
//! one `Db::write_batch` — one WAL append — per batch. That batch is the
//! replication unit: after a batch commits (and syncs) locally, the
//! committer publishes its ops to the [`Replicator`], which assigns the
//! next **replication sequence** and wakes the shippers. Sequences are
//! global across shards and consecutive, so a replica can detect any gap.
//!
//! ## Shipping
//!
//! The primary runs one shipper thread per configured replica. A shipper
//! is a *client* of the replica's server: it connects, sends
//! `REPL_SUBSCRIBE`, learns the replica's applied watermark from the
//! `REPL_ACK` reply, and then streams `REPL_BATCH` frames from
//! `watermark + 1`, pipelining sends and draining acks. A dropped
//! connection is retried with backoff; the resubscribe handshake resyncs
//! the stream position, so duplicated delivery after a reconnect is
//! normal and handled by the replica's duplicate rule.
//!
//! ## Apply rules (replica side)
//!
//! Applies are serialized under one mutex, against the in-memory applied
//! watermark `A`:
//!
//! - `seq <= A`: duplicate — ack `A` without applying (idempotent);
//! - `seq == A + 1`: decode **all** ops first (malformed ops reject the
//!   whole batch, nothing half-applies), route them to the replica's own
//!   shards by the same FNV partition, apply via
//!   `Db::write_batch_replicated`, sync every shard that received ops,
//!   then advance `A` and ack;
//! - `seq > A + 1`: gap — typed error, no apply, no watermark motion.
//!
//! Every shard's watermark advances on every batch (shards the batch
//! does not touch advance "by omission"), so any single shard's
//! persisted `applied_seq` is a valid lower bound for resubscription.
//!
//! ## Quorum acks
//!
//! A primary write is acked to the client only after `ack_quorum`
//! replicas have acked its sequence, bounded by `ack_timeout_ms`; on
//! timeout the client gets the typed `REPLICA_LAG` response — the write
//! is durable on the primary and will still reach the replicas, but the
//! redundancy guarantee was not met in time and the client gets to know.
//!
//! ## Retention
//!
//! The log keeps every published batch for the server's lifetime so a
//! replica can always resubscribe from any watermark at or above the
//! log's base. A production deployment would trim below the all-replica
//! ack frontier and fall back to snapshot shipping for replicas behind
//! the trim point; at this system's scale the untrimmed log is the
//! simpler invariant to test against.

use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use lsm_core::WriteBatch;
use lsm_obs::EventKind;

use crate::metrics::ServerMetrics;
use crate::protocol::{
    decode_response, encode_request, repl_ops, FrameReader, ReplOpRef, Request, Response,
    MAX_FRAME_BYTES,
};
use crate::router::ShardSet;

/// How a server participates in replication.
#[derive(Clone, Debug, Default)]
pub enum ReplicationRole {
    /// Standalone: no shipping, no replica apply path.
    #[default]
    None,
    /// Ships committed batches to replicas and acks writes at quorum.
    Primary(PrimaryReplication),
    /// Applies shipped batches; client writes are refused (read-only).
    Replica,
}

/// Primary-side replication knobs.
#[derive(Clone, Debug)]
pub struct PrimaryReplication {
    /// Replica server addresses (one shipper thread each).
    pub replicas: Vec<SocketAddr>,
    /// Replicas that must ack a write's sequence before the client is
    /// acked. `0` disables the per-write wait (fire-and-forget shipping).
    pub ack_quorum: usize,
    /// Bound on the per-write quorum wait; on expiry the client gets
    /// `REPLICA_LAG` instead of `OK`.
    pub ack_timeout_ms: u64,
    /// Bound on the graceful-drain wait for *all* replicas to ack every
    /// published batch (see [`Replicator::drain`]).
    pub drain_timeout_ms: u64,
}

impl Default for PrimaryReplication {
    fn default() -> Self {
        PrimaryReplication {
            replicas: Vec::new(),
            ack_quorum: 0,
            ack_timeout_ms: 2_000,
            drain_timeout_ms: 5_000,
        }
    }
}

/// One published batch: its ops region, shared with every shipper.
struct LogEntry {
    ops: Arc<Vec<u8>>,
}

struct LogState {
    /// `entries[i]` carries sequence `base + 1 + i`.
    entries: Vec<LogEntry>,
    /// Highest sequence each replica has acked.
    acked: Vec<u64>,
}

/// The primary's replication log and shipper pool.
pub struct Replicator {
    /// Sequences start at `base + 1` — the promoted watermark for a
    /// server that used to be a replica, 0 for a fresh primary.
    base: u64,
    cfg: PrimaryReplication,
    state: Mutex<LogState>,
    /// Notified on publish (wakes shippers) and on ack (wakes quorum and
    /// drain waiters).
    cv: Condvar,
    /// Graceful drain: shippers finish the log, then exit.
    draining: AtomicBool,
    /// Hard stop: shippers exit as soon as they notice.
    aborting: AtomicBool,
    metrics: Arc<ServerMetrics>,
    shippers: Mutex<Vec<JoinHandle<()>>>,
}

impl Replicator {
    /// Starts one shipper thread per configured replica. `base` is the
    /// highest sequence already applied by this node's shards.
    pub fn start(base: u64, cfg: PrimaryReplication, metrics: Arc<ServerMetrics>) -> Arc<Self> {
        let n = cfg.replicas.len();
        let rep = Arc::new(Replicator {
            base,
            cfg,
            state: Mutex::new(LogState {
                entries: Vec::new(),
                acked: vec![base; n],
            }),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            aborting: AtomicBool::new(false),
            metrics,
            shippers: Mutex::new(Vec::new()),
        });
        let handles: Vec<JoinHandle<()>> = rep
            .cfg
            .replicas
            .iter()
            .enumerate()
            .map(|(idx, &addr)| {
                let rep = Arc::clone(&rep);
                std::thread::Builder::new()
                    .name(format!("lsm-repl-shipper-{idx}"))
                    .spawn(move || shipper_loop(rep, idx, addr))
                    .expect("spawn shipper thread")
            })
            .collect();
        *rep.shippers.lock().unwrap() = handles;
        rep
    }

    /// Replicas that must ack before a write is acked to the client.
    pub fn ack_quorum(&self) -> usize {
        self.cfg.ack_quorum
    }

    /// The per-write quorum wait bound.
    pub fn ack_timeout(&self) -> Duration {
        Duration::from_millis(self.cfg.ack_timeout_ms)
    }

    /// Assigns the next sequence to a committed batch's ops region and
    /// wakes the shippers. Call only after the batch is durable locally.
    pub fn publish(&self, ops: Vec<u8>) -> u64 {
        let mut g = self.state.lock().unwrap();
        g.entries.push(LogEntry { ops: Arc::new(ops) });
        let seq = self.base + g.entries.len() as u64;
        let lag = seq - g.acked.iter().copied().min().unwrap_or(seq);
        self.metrics.repl_lag.set(lag as i64);
        self.cv.notify_all();
        seq
    }

    /// Last published sequence (== `base` when nothing is published).
    pub fn last_published(&self) -> u64 {
        self.base + self.state.lock().unwrap().entries.len() as u64
    }

    /// Blocks until `ack_quorum` replicas have acked `seq`, bounded by
    /// the ack timeout. `true` means the quorum was reached.
    pub fn wait_quorum(&self, seq: u64) -> bool {
        if self.cfg.ack_quorum == 0 {
            return true;
        }
        let deadline = Instant::now() + self.ack_timeout();
        let mut g = self.state.lock().unwrap();
        loop {
            let n = g.acked.iter().filter(|&&a| a >= seq).count();
            if n >= self.cfg.ack_quorum {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g2, _) = self.cv.wait_timeout(g, deadline - now).unwrap();
            g = g2;
        }
    }

    /// The graceful-drain barrier: blocks until **every** replica has
    /// acked every published batch, bounded by `drain_timeout_ms`.
    /// Returns `false` on timeout (some replica is behind or gone).
    ///
    /// Quorum was already enforced per write; the drain waits for all
    /// replicas so that after a clean shutdown a failover to *any*
    /// replica loses nothing the primary committed.
    pub fn drain(&self) -> bool {
        self.draining.store(true, Ordering::Release);
        let deadline = Instant::now() + Duration::from_millis(self.cfg.drain_timeout_ms);
        let mut g = self.state.lock().unwrap();
        loop {
            let last = self.base + g.entries.len() as u64;
            if g.acked.iter().all(|&a| a >= last) {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (g2, _) = self.cv.wait_timeout(g, deadline - now).unwrap();
            g = g2;
        }
    }

    /// Stops the shippers (no further shipping) and joins them.
    pub fn stop(&self) {
        self.aborting.store(true, Ordering::Release);
        self.draining.store(true, Ordering::Release);
        self.cv.notify_all();
        let handles: Vec<_> = self.shippers.lock().unwrap().drain(..).collect();
        for h in handles {
            let _ = h.join();
        }
    }

    /// Lowest sequence acked by every replica (== committed redundancy
    /// frontier).
    pub fn min_acked(&self) -> u64 {
        let g = self.state.lock().unwrap();
        g.acked.iter().copied().min().unwrap_or(self.base)
    }

    fn record_ack(&self, idx: usize, seq: u64) {
        let mut g = self.state.lock().unwrap();
        if seq > g.acked[idx] {
            g.acked[idx] = seq;
        }
        let last = self.base + g.entries.len() as u64;
        let lag = last.saturating_sub(g.acked.iter().copied().min().unwrap_or(last));
        self.metrics.repl_lag.set(lag as i64);
        self.metrics.repl_acks.inc();
        self.cv.notify_all();
    }

    /// The entry carrying `seq`, or `None` if not yet published. Blocks
    /// up to `wait` for it to appear.
    fn entry_or_wait(&self, seq: u64, wait: Duration) -> Option<Arc<Vec<u8>>> {
        let idx = seq.checked_sub(self.base + 1)? as usize;
        let g = self.state.lock().unwrap();
        if let Some(e) = g.entries.get(idx) {
            return Some(Arc::clone(&e.ops));
        }
        let (g2, _) = self.cv.wait_timeout(g, wait).unwrap();
        g2.entries.get(idx).map(|e| Arc::clone(&e.ops))
    }

    fn stopping(&self) -> bool {
        self.aborting.load(Ordering::Acquire)
    }

    fn caught_up(&self, next: u64) -> bool {
        self.draining.load(Ordering::Acquire) && next > self.last_published()
    }
}

/// One shipper thread: connect → subscribe → stream batches, drain acks.
fn shipper_loop(rep: Arc<Replicator>, idx: usize, addr: SocketAddr) {
    'sessions: while !rep.stopping() {
        // connect with backoff; a replica that is not up yet is normal
        let stream = match TcpStream::connect(addr) {
            Ok(s) => s,
            Err(_) => {
                if rep.caught_up(rep.base + 1) {
                    // nothing was ever published and we are draining
                    return;
                }
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
        };
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(25)));
        let mut writer = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => continue,
        };
        let mut reader = FrameReader::new(stream, MAX_FRAME_BYTES);
        let mut next_id = 1u64;

        // handshake: the replica's watermark decides where we start
        let sub = Request::ReplSubscribe {
            replica_id: idx as u64,
            from_seq: rep.base + 1,
        };
        if writer.write_all(&encode_request(next_id, &sub)).is_err() {
            continue;
        }
        next_id += 1;
        let applied = match read_ack(&mut reader, &rep) {
            AckRead::Ack(seq) => seq,
            AckRead::Stop => return,
            AckRead::Reconnect => continue,
        };
        // the log cannot supply history below its base; a replica that
        // is further behind than that needs a snapshot, which this
        // system does not ship — start at the oldest entry we have
        let mut next = (applied + 1).max(rep.base + 1);
        rep.metrics.event(EventKind::ReplicaConnect {
            replica: idx as u64,
            from_seq: next,
        });
        let mut outstanding = 0usize;

        loop {
            // ship everything published, pipelined
            while let Some(ops) = rep.entry_or_wait(next, Duration::from_millis(0)) {
                let frame = encode_request(
                    next_id,
                    &Request::ReplBatch {
                        seq: next,
                        ops: ops.as_ref().clone(),
                    },
                );
                next_id += 1;
                if writer.write_all(&frame).is_err() {
                    continue 'sessions;
                }
                rep.metrics.repl_batches_shipped.inc();
                next += 1;
                outstanding += 1;
            }
            if outstanding == 0 {
                if rep.stopping() || rep.caught_up(next) {
                    return;
                }
                // park until the next publish (or a stop) wakes us
                let _ = rep.entry_or_wait(next, Duration::from_millis(25));
                continue;
            }
            match read_ack(&mut reader, &rep) {
                AckRead::Ack(seq) => {
                    // an ack carries the replica's watermark and covers
                    // every outstanding batch at or below it
                    let covered = (seq + 1).max(rep.base + 1);
                    outstanding = (next - covered.min(next)) as usize;
                    rep.record_ack(idx, seq);
                }
                AckRead::Stop => return,
                AckRead::Reconnect => continue 'sessions,
            }
        }
    }
}

enum AckRead {
    Ack(u64),
    /// The replicator is stopping; exit the thread.
    Stop,
    /// Connection died or the replica rejected something (e.g. a gap
    /// after a reconnect race) — resubscribe to resync.
    Reconnect,
}

fn read_ack(reader: &mut FrameReader<TcpStream>, rep: &Replicator) -> AckRead {
    match reader.next_frame(|| !rep.stopping()) {
        Ok(Some(payload)) => match decode_response(&payload) {
            Ok((_, Response::ReplAck { seq })) => AckRead::Ack(seq),
            // anything else (a typed rejection, a draining replica, or
            // garbage) invalidates the session; resubscribing resyncs
            Ok(_) | Err(_) => AckRead::Reconnect,
        },
        Ok(None) => {
            if rep.stopping() {
                AckRead::Stop
            } else {
                AckRead::Reconnect
            }
        }
        Err(_) => AckRead::Reconnect,
    }
}

// ---------------------------------------------------------------------------
// Replica-side apply
// ---------------------------------------------------------------------------

/// The replica's apply state: one watermark, one apply at a time.
pub struct ReplicaState {
    /// The applied watermark; the mutex also serializes applies.
    applied: Mutex<u64>,
}

/// Why a batch was rejected (the connection survives; the shipper
/// resubscribes to resync).
#[derive(Debug, PartialEq, Eq)]
pub enum ApplyError {
    /// `seq` skipped past the watermark: expected `expected`.
    Gap {
        /// The only sequence the replica would accept.
        expected: u64,
        /// The sequence that arrived.
        got: u64,
    },
    /// The ops region failed to decode; nothing was applied.
    Malformed(String),
    /// The engine refused the batch.
    Storage(String),
}

impl std::fmt::Display for ApplyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ApplyError::Gap { expected, got } => {
                write!(f, "replication gap: expected seq {expected}, got {got}")
            }
            ApplyError::Malformed(m) => write!(f, "malformed repl batch: {m}"),
            ApplyError::Storage(m) => write!(f, "repl apply failed: {m}"),
        }
    }
}

impl ReplicaState {
    /// Initializes the watermark from the shards' recovered manifests.
    ///
    /// The minimum across shards is the safe starting point: a shard's
    /// persisted watermark can be stale (manifests are written on flush,
    /// not per batch), and re-applying a suffix of batches in order is
    /// idempotent, while skipping one is not.
    pub fn new(shards: &ShardSet) -> Self {
        let applied = shards
            .dbs()
            .iter()
            .map(|db| db.applied_seq())
            .min()
            .unwrap_or(0);
        ReplicaState {
            applied: Mutex::new(applied),
        }
    }

    /// The current applied watermark.
    pub fn applied(&self) -> u64 {
        *self.applied.lock().unwrap()
    }

    /// Applies one shipped batch under the apply rules; returns the
    /// watermark to ack (which may exceed `seq` for a duplicate).
    pub fn apply_batch(&self, shards: &ShardSet, seq: u64, ops: &[u8]) -> Result<u64, ApplyError> {
        let mut g = self.applied.lock().unwrap();
        if seq <= *g {
            return Ok(*g); // duplicate delivery (reconnect replays)
        }
        if seq != *g + 1 {
            return Err(ApplyError::Gap {
                expected: *g + 1,
                got: seq,
            });
        }
        // decode everything before applying anything: a malformed op
        // rejects the whole batch, so nothing half-applies
        let n = shards.len();
        let mut per_shard: Vec<WriteBatch> = (0..n).map(|_| WriteBatch::new()).collect();
        let iter = repl_ops(ops).map_err(|e| ApplyError::Malformed(e.to_string()))?;
        for op in iter {
            match op.map_err(|e| ApplyError::Malformed(e.to_string()))? {
                ReplOpRef::Put { key, value } => {
                    per_shard[shards.shard_index(key)].put(key.to_vec(), value.to_vec());
                }
                ReplOpRef::Delete { key } => {
                    per_shard[shards.shard_index(key)].delete(key.to_vec());
                }
            }
        }
        // every shard advances its watermark; shards that received ops
        // are synced so the ack implies durability at the replica
        for (i, mut batch) in per_shard.into_iter().enumerate() {
            let dirty = !batch.is_empty();
            shards
                .db(i)
                .write_batch_replicated(&mut batch, seq)
                .map_err(|e| ApplyError::Storage(e.to_string()))?;
            if dirty {
                shards
                    .db(i)
                    .sync()
                    .map_err(|e| ApplyError::Storage(e.to_string()))?;
            }
        }
        *g = seq;
        Ok(seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::ReplOpsBuilder;
    use lsm_core::{Db, LsmConfig};

    fn shard_set(n: usize) -> ShardSet {
        let dbs = (0..n)
            .map(|_| {
                Db::open_in_memory(LsmConfig {
                    wal: true,
                    ..LsmConfig::small_for_tests()
                })
                .unwrap()
            })
            .collect();
        ShardSet::new(dbs)
    }

    fn batch_ops(kvs: &[(&[u8], Option<&[u8]>)]) -> Vec<u8> {
        let mut b = ReplOpsBuilder::new();
        for (k, v) in kvs {
            match v {
                Some(v) => b.put(k, v),
                None => b.delete(k),
            }
        }
        b.finish()
    }

    #[test]
    fn apply_enforces_order_duplicates_and_gaps() {
        let shards = shard_set(2);
        let state = ReplicaState::new(&shards);
        assert_eq!(state.applied(), 0);

        let ops1 = batch_ops(&[(b"a", Some(b"1")), (b"b", Some(b"2"))]);
        assert_eq!(state.apply_batch(&shards, 1, &ops1), Ok(1));
        assert_eq!(shards.get(b"a").unwrap(), Some(b"1".to_vec()));

        // gap: seq 3 with watermark 1 must be refused and apply nothing
        let ops3 = batch_ops(&[(b"c", Some(b"3"))]);
        assert_eq!(
            state.apply_batch(&shards, 3, &ops3),
            Err(ApplyError::Gap { expected: 2, got: 3 })
        );
        assert_eq!(shards.get(b"c").unwrap(), None);
        assert_eq!(state.applied(), 1);

        // duplicate: re-delivery of seq 1 acks the current watermark
        assert_eq!(state.apply_batch(&shards, 1, &ops1), Ok(1));

        // in-order delete advances and applies
        let ops2 = batch_ops(&[(b"a", None)]);
        assert_eq!(state.apply_batch(&shards, 2, &ops2), Ok(2));
        assert_eq!(shards.get(b"a").unwrap(), None);

        // every shard's engine watermark advanced in lockstep
        for db in shards.dbs() {
            assert_eq!(db.applied_seq(), 2);
        }
    }

    #[test]
    fn malformed_ops_reject_the_whole_batch() {
        let shards = shard_set(1);
        let state = ReplicaState::new(&shards);
        // region: claims 2 ops, second one has a bogus kind — the first
        // (valid) op must NOT be applied
        let mut region = 2u32.to_le_bytes().to_vec();
        region.push(1);
        region.extend_from_slice(&1u32.to_le_bytes());
        region.push(b'k');
        region.extend_from_slice(&1u32.to_le_bytes());
        region.push(b'v');
        region.push(7); // bad kind
        assert!(matches!(
            state.apply_batch(&shards, 1, &region),
            Err(ApplyError::Malformed(_))
        ));
        assert_eq!(shards.get(b"k").unwrap(), None);
        assert_eq!(state.applied(), 0);
    }

    #[test]
    fn quorum_wait_counts_acks_and_times_out() {
        let metrics = ServerMetrics::new();
        let rep = Replicator::start(
            0,
            PrimaryReplication {
                replicas: Vec::new(),
                ack_quorum: 0,
                ack_timeout_ms: 10,
                drain_timeout_ms: 10,
            },
            metrics,
        );
        // no replicas, quorum 0: every wait succeeds vacuously
        let seq = rep.publish(ReplOpsBuilder::new().finish());
        assert_eq!(seq, 1);
        assert!(rep.wait_quorum(seq));
        assert!(rep.drain());
        rep.stop();
    }
}
