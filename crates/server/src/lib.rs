//! `lsm-server`: a dependency-free TCP serving layer over hash-sharded
//! LSM engines.
//!
//! The crate turns N independent [`lsm_core::Db`] instances into one
//! network-addressable store:
//!
//! - [`protocol`] — the length-prefixed binary wire format (GET / PUT /
//!   DELETE / SCAN / STATS), request-id'd so clients can pipeline;
//! - [`router`] — shard routing: FNV hash partitioning or a versioned
//!   range [`shardmap::ShardMap`], with cross-shard scan stitching;
//! - [`shardmap`] — the versioned, manifest-persisted cluster shard map
//!   (contiguous key ranges, split/merge edits, crash-safe recovery);
//! - [`migrate`] — online shard split/merge: snapshot copy plus a
//!   group-commit tap, with an atomic map flip under the topology lock;
//! - [`batcher`] — per-shard group commit: concurrent writes coalesce
//!   into one `Db::write_batch` (one WAL append, one sync) per batch;
//! - [`server`] — the accept loop, per-connection reader/writer threads
//!   with bounded in-flight pipelining, admission control wired to the
//!   engine's L0 backpressure gauge, and graceful drain;
//! - [`client`] — a small blocking client library;
//! - [`replication`] — primary → replica shipping of committed
//!   group-commit batches, quorum acks, and the replica apply path;
//! - [`failover`] — promotion of a replica to primary via the
//!   crash-recovery path;
//! - [`metrics`] — serving-side histograms, gauges, and event trace;
//! - [`harness`] — an in-process loopback cluster for deterministic
//!   tests, including kill-the-server recovery and replicated clusters.
//!
//! Everything is `std`-only (`std::net` + threads), mirroring the thread
//! patterns of `lsm_core::background`.

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod failover;
pub mod harness;
pub mod metrics;
mod migrate;
pub mod protocol;
pub mod replication;
pub mod router;
pub mod server;
pub mod shardmap;

pub use batcher::{
    GroupCommitter, MigrationTap, TxnCommitReq, TxnOutcome, WriteOp, WriteOutcome, WriteReq,
};
pub use client::{Client, ShardMapEntries, TxnCommitStatus};
pub use failover::{promote_replica, Promotion};
pub use harness::{
    registry_factory, reopen_elastic, reopen_shards, start_cluster, start_elastic_cluster,
    start_replicated_cluster, ElasticCluster, ReplicatedCluster, ShardDeviceRegistry,
    TestCluster,
};
pub use metrics::ServerMetrics;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, repl_ops, FrameError,
    FrameReader, ProtocolError, ReplOpRef, ReplOpsBuilder, ReplOpsIter, Request, Response,
    MAX_FRAME_BYTES,
};
pub use replication::{
    ApplyError, PrimaryReplication, ReplicaState, ReplicationRole, Replicator,
};
pub use router::{shard_of, Routing, ShardSet};
pub use server::{
    ElasticOptions, RebalancePolicy, Server, ServerConfig, ShardDeviceFactory,
};
pub use shardmap::{
    find_cluster_meta, write_cluster_meta, ShardMap, ShardRange, CLUSTER_META_MAGIC,
};
