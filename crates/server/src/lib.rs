//! `lsm-server`: a dependency-free TCP serving layer over hash-sharded
//! LSM engines.
//!
//! The crate turns N independent [`lsm_core::Db`] instances into one
//! network-addressable store:
//!
//! - [`protocol`] — the length-prefixed binary wire format (GET / PUT /
//!   DELETE / SCAN / STATS), request-id'd so clients can pipeline;
//! - [`router`] — FNV hash partitioning across shards, with cross-shard
//!   scan stitching;
//! - [`batcher`] — per-shard group commit: concurrent writes coalesce
//!   into one `Db::write_batch` (one WAL append, one sync) per batch;
//! - [`server`] — the accept loop, per-connection reader/writer threads
//!   with bounded in-flight pipelining, admission control wired to the
//!   engine's L0 backpressure gauge, and graceful drain;
//! - [`client`] — a small blocking client library;
//! - [`replication`] — primary → replica shipping of committed
//!   group-commit batches, quorum acks, and the replica apply path;
//! - [`failover`] — promotion of a replica to primary via the
//!   crash-recovery path;
//! - [`metrics`] — serving-side histograms, gauges, and event trace;
//! - [`harness`] — an in-process loopback cluster for deterministic
//!   tests, including kill-the-server recovery and replicated clusters.
//!
//! Everything is `std`-only (`std::net` + threads), mirroring the thread
//! patterns of `lsm_core::background`.

#![warn(missing_docs)]

pub mod batcher;
pub mod client;
pub mod failover;
pub mod harness;
pub mod metrics;
pub mod protocol;
pub mod replication;
pub mod router;
pub mod server;

pub use batcher::{GroupCommitter, WriteOp, WriteOutcome, WriteReq};
pub use client::Client;
pub use failover::{promote_replica, Promotion};
pub use harness::{
    reopen_shards, start_cluster, start_replicated_cluster, ReplicatedCluster, TestCluster,
};
pub use metrics::ServerMetrics;
pub use protocol::{
    decode_request, decode_response, encode_request, encode_response, repl_ops, FrameError,
    FrameReader, ProtocolError, ReplOpRef, ReplOpsBuilder, ReplOpsIter, Request, Response,
    MAX_FRAME_BYTES,
};
pub use replication::{
    ApplyError, PrimaryReplication, ReplicaState, ReplicationRole, Replicator,
};
pub use router::{shard_of, ShardSet};
pub use server::{Server, ServerConfig};
