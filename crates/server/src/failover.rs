//! Promotion: turning a dead primary's replica into the new primary.
//!
//! The promotion path is deliberately the crash-recovery path. A
//! replica's engines already hold everything the primary shipped —
//! batches in their WALs (synced before each ack) plus whatever flushes
//! persisted — so promotion is:
//!
//! 1. stop the replica's server (if still running);
//! 2. reopen every shard from its device — `Db::open` replays the WAL
//!    tail, exactly as after a crash;
//! 3. adopt the **max** of the shards' recovered `applied_seq`
//!    watermarks as the committed replication sequence. Max is correct
//!    because all shards advance their watermark in lockstep on every
//!    applied batch, so any one shard's persisted watermark is a lower
//!    bound on what the whole node applied — and the freshest lower
//!    bound is the max. Data above the adopted watermark (applied but
//!    not yet captured by a manifest write) is still present via WAL
//!    replay; the watermark only governs where a *new* replication log
//!    starts.
//! 4. start a new server over the recovered shards. If the new role is
//!    `Primary`, `Server::start` seeds its replication log at the
//!    adopted sequence automatically (the log base is always the max
//!    shard watermark at startup).
//!
//! Every write the old primary quorum-acked was, by definition, applied
//! and synced on `ack_quorum` replicas before the client saw `OK` — so
//! promoting any replica in the quorum preserves every acked write.

use std::sync::Arc;

use lsm_core::LsmConfig;
use lsm_obs::EventKind;
use lsm_storage::{StorageDevice, StorageError, StorageResult};

use crate::harness::reopen_shards;
use crate::server::{Server, ServerConfig};

/// The result of promoting a replica.
pub struct Promotion {
    /// The new server, accepting writes.
    pub server: Server,
    /// The replication sequence the node adopted as committed.
    pub adopted_seq: u64,
}

/// Reopens a (stopped) replica's shard devices, replaying WAL tails,
/// and starts a new server over them — the failover path. The caller
/// chooses the new role via `server_cfg.role` (standalone, or primary
/// over the surviving replicas).
pub fn promote_replica(
    devices: &[Arc<dyn StorageDevice>],
    cfg: &LsmConfig,
    server_cfg: ServerConfig,
) -> StorageResult<Promotion> {
    let dbs = reopen_shards(devices, cfg)?;
    let adopted_seq = dbs.iter().map(|db| db.applied_seq()).max().unwrap_or(0);
    let server = Server::start(dbs, server_cfg).map_err(StorageError::Io)?;
    server
        .metrics()
        .event(EventKind::Failover { adopted_seq });
    Ok(Promotion {
        server,
        adopted_seq,
    })
}
