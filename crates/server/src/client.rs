//! A minimal blocking client for the wire protocol.
//!
//! The client assigns monotonically increasing request ids and supports
//! two calling styles:
//!
//! - **call**: send one request, wait for its response (internally still
//!   id-matched, so it composes with pipelined traffic in flight);
//! - **pipeline**: [`Client::send`] many requests, then
//!   [`Client::wait_for`] each id. Responses arriving out of order are
//!   stashed until asked for, so completion order never confuses the
//!   caller.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpStream};

use crate::protocol::{
    decode_response, encode_request, FrameError, FrameReader, Request, Response, MAX_FRAME_BYTES,
};

fn frame_to_io(e: FrameError) -> io::Error {
    match e {
        FrameError::Io(e) => e,
        other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
    }
}

/// A shard-map wire snapshot: the map version plus `(shard_id,
/// range_start)` entries sorted by start key.
pub type ShardMapEntries = (u64, Vec<(u64, Vec<u8>)>);

/// Typed outcome of [`Client::txn_commit`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnCommitStatus {
    /// Validated and applied; carries the global commit stamp (replaying
    /// committed transactions in stamp order reproduces the final state).
    Committed(u64),
    /// First-committer-wins validation failed on this key; the
    /// transaction left no trace. Retry with a fresh transaction.
    Conflict(Vec<u8>),
}

/// A blocking connection to an `lsm-server`.
pub struct Client {
    stream: TcpStream,
    reader: FrameReader<TcpStream>,
    next_id: u64,
    /// Responses received while waiting for a different id.
    stash: HashMap<u64, Response>,
}

impl Client {
    /// Connects to `addr`.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let rs = stream.try_clone()?;
        Ok(Client {
            stream,
            reader: FrameReader::new(rs, MAX_FRAME_BYTES),
            next_id: 1,
            stash: HashMap::new(),
        })
    }

    /// Sends `req` without waiting; returns its id for [`Client::wait_for`].
    pub fn send(&mut self, req: &Request) -> io::Result<u64> {
        let id = self.next_id;
        self.next_id += 1;
        self.stream.write_all(&encode_request(id, req))?;
        Ok(id)
    }

    /// Receives the next response in arrival order.
    pub fn recv(&mut self) -> io::Result<(u64, Response)> {
        match self.reader.next_frame(|| true).map_err(frame_to_io)? {
            Some(payload) => decode_response(&payload)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
        }
    }

    /// Blocks until the response for `id` arrives, stashing any other
    /// responses that land first.
    pub fn wait_for(&mut self, id: u64) -> io::Result<Response> {
        if let Some(resp) = self.stash.remove(&id) {
            return Ok(resp);
        }
        loop {
            let (got, resp) = self.recv()?;
            if got == id {
                return Ok(resp);
            }
            self.stash.insert(got, resp);
        }
    }

    /// Sends `req` and waits for its response.
    pub fn call(&mut self, req: &Request) -> io::Result<Response> {
        let id = self.send(req)?;
        self.wait_for(id)
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self.call(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected(other)),
        }
    }

    /// Write; `Ok` means acknowledged per the server's durability policy.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        match self.call(&Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Tombstone write.
    pub fn delete(&mut self, key: &[u8]) -> io::Result<()> {
        match self.call(&Request::Delete { key: key.to_vec() })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Ordered scan of `[start, end)`, at most `limit` entries.
    pub fn scan(
        &mut self,
        start: &[u8],
        end: &[u8],
        limit: u32,
    ) -> io::Result<Vec<(Vec<u8>, Vec<u8>)>> {
        match self.call(&Request::Scan {
            start: start.to_vec(),
            end: end.to_vec(),
            limit,
        })? {
            Response::Entries(entries) => Ok(entries),
            other => Err(unexpected(other)),
        }
    }

    /// Fetches the server's shard map: `(version, entries)` where each
    /// entry is `(shard_id, range_start)` sorted by start key. A version
    /// of `0` with no entries means the server is hash-routed.
    pub fn shard_map(&mut self) -> io::Result<ShardMapEntries> {
        match self.call(&Request::ShardMap)? {
            Response::ShardMap { version, entries } => Ok((version, entries)),
            other => Err(unexpected(other)),
        }
    }

    /// Opens an optimistic transaction on this connection. Fails if one
    /// is already active.
    pub fn txn_begin(&mut self) -> io::Result<()> {
        match self.call(&Request::TxnBegin)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Transactional read through the transaction's snapshot (and its
    /// own buffered writes); the key joins the read-set.
    pub fn txn_get(&mut self, key: &[u8]) -> io::Result<Option<Vec<u8>>> {
        match self.call(&Request::TxnGet { key: key.to_vec() })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected(other)),
        }
    }

    /// Buffers a put in the open transaction (nothing reaches the engine
    /// until commit).
    pub fn txn_put(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        match self.call(&Request::TxnPut {
            key: key.to_vec(),
            value: value.to_vec(),
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Buffers a delete in the open transaction.
    pub fn txn_delete(&mut self, key: &[u8]) -> io::Result<()> {
        match self.call(&Request::TxnDelete { key: key.to_vec() })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Commits the open transaction: [`TxnCommitStatus::Committed`] with
    /// the global stamp, or [`TxnCommitStatus::Conflict`] when
    /// first-committer-wins validation failed (the transaction is gone
    /// either way).
    pub fn txn_commit(&mut self) -> io::Result<TxnCommitStatus> {
        match self.call(&Request::TxnCommit)? {
            Response::TxnCommitted { stamp } => Ok(TxnCommitStatus::Committed(stamp)),
            Response::TxnConflict { key } => Ok(TxnCommitStatus::Conflict(key)),
            other => Err(unexpected(other)),
        }
    }

    /// Discards the open transaction; idempotent (aborting with none
    /// open is still `Ok`).
    pub fn txn_abort(&mut self) -> io::Result<()> {
        match self.call(&Request::TxnAbort)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Server metrics snapshot as a JSON line.
    pub fn stats(&mut self) -> io::Result<String> {
        match self.call(&Request::Stats)? {
            Response::Stats(json) => Ok(json),
            other => Err(unexpected(other)),
        }
    }

    /// Ticks the server's per-shard self-tuners (if configured) and
    /// returns each shard's tuner status as `(shard_id, JSON)`. An empty
    /// list means the server runs without a tuner.
    pub fn tune_status(&mut self) -> io::Result<Vec<(u64, String)>> {
        match self.call(&Request::TuneStatus)? {
            Response::TuneStatus(entries) => Ok(entries),
            other => Err(unexpected(other)),
        }
    }

    /// Raw access for tests that need to write arbitrary bytes.
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }
}

fn unexpected(resp: Response) -> io::Error {
    let msg = match resp {
        Response::Error(m) => format!("server error: {m}"),
        Response::Busy => "server busy (admission control)".to_string(),
        Response::ReplicaLag => {
            "replica quorum not reached in time (write durable on primary)".to_string()
        }
        Response::ShuttingDown => "server shutting down".to_string(),
        Response::NoTxn => {
            "no transaction active on this connection (never begun, finished, or timed out)"
                .to_string()
        }
        other => format!("unexpected response: {other:?}"),
    };
    io::Error::other(msg)
}
