//! Elastic-topology correctness: live splits and merges under
//! concurrent client load, differential against a `BTreeMap` oracle.
//!
//! Three invariants are on trial while the shard map flips underneath
//! running connections:
//!
//! 1. **Read-your-writes** — a GET pipelined behind unacked PUTs on the
//!    same connection observes them, even when the owning shard changed
//!    between the PUT and the GET.
//! 2. **Scan monotonicity** — a cross-shard SCAN issued while a
//!    migration cuts over returns one strictly-ascending, gap-free view
//!    that matches the oracle; no key is seen twice (donor + recipient)
//!    or zero times (dropped mid-handoff).
//! 3. **Partition validity** — every shard-map version ever produced is
//!    a gap-free, overlap-free tiling of the keyspace (proptest over
//!    arbitrary split/merge sequences), and the post-shutdown durable
//!    map equals the served one.
//!
//! The rebalancer test closes the loop end to end: a shifting-hotspot
//! write load against a one-shard elastic server must make the policy
//! thread split, and idleness afterwards must make it merge back down.

use std::collections::{BTreeMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_core::LsmConfig;
use lsm_server::harness::start_elastic_cluster;
use lsm_server::{
    Client, RebalancePolicy, Request, Response, ServerConfig, ShardMap, ShardSet,
};
use lsm_workload::hotspot::{HotspotSpec, ShiftingHotspot};
use lsm_workload::{OpMix, Operation};

type Oracle = BTreeMap<Vec<u8>, Vec<u8>>;

fn wal_cfg() -> LsmConfig {
    LsmConfig {
        wal: true,
        ..LsmConfig::small_for_tests()
    }
}

/// One connection's shifting-hotspot workload over its own `t{n}-`
/// prefix: pipelined writes, read-your-writes gets, monotonicity-checked
/// differential scans — all while the topology churns underneath.
fn hotspot_worker(mut c: Client, thread: usize, ops: usize) -> Oracle {
    let mut oracle = Oracle::new();
    let mut gen = ShiftingHotspot::new(HotspotSpec {
        key_space: 240,
        hot_fraction: 0.9,
        hot_width: 40,
        phase_ops: (ops / 4).max(1) as u64,
        mix: OpMix {
            insert: 0.5,
            update: 0.0,
            read: 0.2,
            scan: 0.15,
            delete: 0.15,
            rmw: 0.0,
        },
        value_len: 24,
        scan_len: 1000,
        seed: 0xE1A5_71C + thread as u64,
    });
    let prefix = format!("t{thread}-").into_bytes();
    let rekey = |k: &[u8]| {
        let mut out = prefix.clone();
        out.extend_from_slice(k);
        out
    };
    // '.' sorts right after '-': the exclusive upper bound of the prefix
    let prefix_end = format!("t{thread}.").into_bytes();
    let mut inflight: Vec<u64> = Vec::new();
    for n in 0..ops {
        match gen.next_op() {
            Operation::Put { key, value } => {
                let k = rekey(&key);
                let id = c
                    .send(&Request::Put {
                        key: k.clone(),
                        value: value.clone(),
                    })
                    .unwrap();
                inflight.push(id);
                oracle.insert(k, value);
            }
            Operation::Delete { key } => {
                let k = rekey(&key);
                let id = c.send(&Request::Delete { key: k.clone() }).unwrap();
                inflight.push(id);
                oracle.remove(&k);
            }
            Operation::Get { key } => {
                let k = rekey(&key);
                let got = c.get(&k).unwrap();
                assert_eq!(
                    got,
                    oracle.get(&k).cloned(),
                    "thread {thread} op {n}: get diverged from oracle mid-churn"
                );
            }
            Operation::Scan { start, .. } => {
                let lo = rekey(&start);
                let got = c.scan(&lo, &prefix_end, 100_000).unwrap();
                assert!(
                    got.windows(2).all(|w| w[0].0 < w[1].0),
                    "thread {thread} op {n}: scan not strictly ascending across a map flip"
                );
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range(lo.clone()..prefix_end.clone())
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                assert_eq!(got, want, "thread {thread} op {n}: scan diverged mid-churn");
            }
            Operation::ReadModifyWrite { key, value } => {
                let k = rekey(&key);
                c.get(&k).unwrap();
                let id = c
                    .send(&Request::Put {
                        key: k.clone(),
                        value: value.clone(),
                    })
                    .unwrap();
                inflight.push(id);
                oracle.insert(k, value);
            }
        }
        if inflight.len() >= 16 {
            for id in inflight.drain(..) {
                assert_eq!(c.wait_for(id).unwrap(), Response::Ok);
            }
        }
    }
    for id in inflight.drain(..) {
        assert_eq!(c.wait_for(id).unwrap(), Response::Ok);
    }
    oracle
}

#[test]
fn concurrent_clients_survive_splits_and_merges() {
    let cluster = start_elastic_cluster(
        ShardMap::uniform(2),
        wal_cfg(),
        ServerConfig::default(),
        None, // topology churn is driven explicitly below
    );
    let addr = cluster.addr();
    let initial_version = cluster.server.as_ref().unwrap().shard_map().unwrap().version;

    let active = Arc::new(AtomicUsize::new(3));
    let workers: Vec<_> = (0..3)
        .map(|t| {
            let active = Arc::clone(&active);
            std::thread::spawn(move || {
                let c = Client::connect(addr).expect("connect");
                let oracle = hotspot_worker(c, t, 600);
                active.fetch_sub(1, Ordering::SeqCst);
                oracle
            })
        })
        .collect();

    // churn the topology while the workers hammer it: walk a boundary
    // cycle, splitting where the boundary is interior and merging it
    // away where a shard already starts there
    let server = cluster.server.as_ref().unwrap();
    let boundaries: Vec<Vec<u8>> = vec![
        b"t1-".to_vec(),
        b"t2-".to_vec(),
        b"t0-user000000000120".to_vec(),
        b"t1-user000000000120".to_vec(),
        b"t2-user000000000120".to_vec(),
    ];
    let mut flips = 0u64;
    let mut b = 0usize;
    while active.load(Ordering::SeqCst) > 0 {
        let map = server.shard_map().unwrap();
        let boundary = &boundaries[b % boundaries.len()];
        b += 1;
        let idx = map.owner_index(boundary);
        if map.entries[idx].start == *boundary {
            server
                .merge_shards(idx - 1)
                .unwrap_or_else(|e| panic!("merge at {boundary:?} failed: {e}"));
        } else {
            server
                .split_shard(idx, Some(boundary.clone()))
                .unwrap_or_else(|e| panic!("split at {boundary:?} failed: {e}"));
        }
        flips += 1;
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(flips >= 4, "only {flips} topology flips while clients ran");

    let mut merged = Oracle::new();
    for w in workers {
        merged.extend(w.join().expect("client thread panicked"));
    }

    // the final served map: valid partition, version advanced by flips
    let map = server.shard_map().unwrap();
    map.check_partition().expect("served map must tile the keyspace");
    assert_eq!(map.version, initial_version + flips);

    // a fresh client sees the same map over the wire
    let mut c = cluster.client();
    let (wire_version, wire_entries) = c.shard_map().unwrap();
    assert_eq!(wire_version, map.version);
    assert_eq!(wire_entries.len(), map.len());
    for (got, want) in wire_entries.iter().zip(&map.entries) {
        assert_eq!(got.0, want.shard_id);
        assert_eq!(got.1, want.start);
    }

    // global stitched scan equals the merged oracle — exactly once each
    let got = c.scan(b"t", b"u", 1_000_000).unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> =
        merged.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got.len(), want.len(), "stitched scan lost or invented entries");
    assert_eq!(got, want, "stitched scan diverged from oracle");
    drop(c);

    // durable side: shutdown, recover the map from the meta device, and
    // prove the clamped range view over the reopened shards still equals
    // the oracle (donors keep stale out-of-range data; it must stay
    // invisible)
    let mut cluster = cluster;
    cluster.server.take().unwrap().shutdown().unwrap();
    let (recovered, dbs) = cluster.reopen().expect("recover elastic cluster");
    assert_eq!(recovered.version, map.version, "durable map lags the served one");
    let set = ShardSet::with_map(dbs, recovered);
    let after = set.scan(b"t", b"u", 1_000_000).unwrap();
    assert_eq!(after, want, "reopened cluster diverged from oracle");
}

#[test]
fn rebalancer_splits_under_hotspot_and_merges_when_idle() {
    let policy = RebalancePolicy {
        interval_ms: 10,
        split_puts_per_interval: 50,
        merge_puts_per_interval: 5,
        max_shards: 4,
        min_shards: 1,
    };
    let cluster = start_elastic_cluster(
        ShardMap::uniform(1),
        wal_cfg(),
        ServerConfig::default(),
        Some(policy),
    );
    let server = cluster.server.as_ref().unwrap();
    let mut c = cluster.client();

    // hammer a narrow hot range until the policy thread splits
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut split_seen = false;
    let mut i = 0u64;
    'outer: while Instant::now() < deadline {
        let mut ids = Vec::new();
        for _ in 0..64 {
            let k = format!("user{:012}", 500 + i % 64).into_bytes();
            ids.push(
                c.send(&Request::Put {
                    key: k,
                    value: vec![0xAB; 32],
                })
                .unwrap(),
            );
            i += 1;
        }
        for id in ids {
            assert_eq!(c.wait_for(id).unwrap(), Response::Ok);
        }
        if server.shard_map().unwrap().len() > 1 {
            split_seen = true;
            break 'outer;
        }
    }
    assert!(split_seen, "rebalancer never split under a sustained hotspot");

    // stop writing; the now-cold shards must merge back down
    let deadline = Instant::now() + Duration::from_secs(20);
    let mut merged_back = false;
    while Instant::now() < deadline {
        let map = server.shard_map().unwrap();
        map.check_partition().expect("policy-produced map must tile");
        if map.len() == 1 {
            merged_back = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(merged_back, "rebalancer never merged idle shards back");

    // the data survived the round trip through split + merge
    assert_eq!(c.get(b"user000000000500").unwrap(), Some(vec![0xAB; 32]));
    drop(c);
    let mut cluster = cluster;
    cluster.server.take().unwrap().shutdown().unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Arbitrary split/merge sequences keep the map a gap-free,
    /// overlap-free partition with monotone versions and never-reused
    /// shard ids, and the result survives a serialization round trip.
    #[test]
    fn split_merge_sequences_preserve_the_partition(
        ops in vec((any::<bool>(), any::<u16>(), vec(any::<u8>(), 0..4)), 0..48)
    ) {
        let mut map = ShardMap::uniform(1);
        let mut seen_ids: HashSet<u64> = map.entries.iter().map(|e| e.shard_id).collect();
        let mut version = map.version;
        for (is_split, sel, boundary) in ops {
            if is_split {
                let idx = (sel as usize) % map.len();
                if let Ok((next, new_id)) = map.split(idx, &boundary) {
                    prop_assert!(next.check_partition().is_ok());
                    prop_assert_eq!(next.version, version + 1);
                    prop_assert_eq!(next.len(), map.len() + 1);
                    prop_assert!(seen_ids.insert(new_id), "shard id {} reused", new_id);
                    map = next;
                    version += 1;
                }
            } else if map.len() > 1 {
                let idx = (sel as usize) % (map.len() - 1);
                let (next, absorbed) = map.merge(idx).unwrap();
                prop_assert!(next.check_partition().is_ok());
                prop_assert_eq!(next.version, version + 1);
                prop_assert_eq!(next.len(), map.len() - 1);
                prop_assert!(seen_ids.contains(&absorbed));
                map = next;
                version += 1;
            }
        }
        // every probe key has exactly one owner and falls inside it
        for probe in [&b""[..], &[0x00], &[0x7F], &[0xFF], &[0xFF, 0xFF, 0xFF]] {
            let idx = map.owner_index(probe);
            let (lo, hi) = map.range_of(idx);
            prop_assert!(lo <= probe);
            prop_assert!(hi.is_none_or(|h| probe < h));
        }
        prop_assert_eq!(ShardMap::from_bytes(&map.to_bytes()), Some(map.clone()));
    }
}
