//! Differential testing of the serving layer against a `BTreeMap`
//! oracle, plus the kill-the-server recovery test.
//!
//! Concurrent clients drive the loopback server with deterministic
//! workloads over disjoint key prefixes; each connection checks its own
//! reads against its own oracle (per-connection read-your-writes makes
//! that exact even while other connections mutate other prefixes and
//! background maintenance runs). Afterward the merged oracle must match
//! a global cross-shard scan — the stitched merge over hash shards must
//! reconstruct one ordered keyspace.
//!
//! The crash test wraps every shard device in a `FaultDevice`, collects
//! write acks, kills the device cold (every subsequent I/O fails, so not
//! even drop-time tail syncs can cheat), and reopens the shards: every
//! acknowledged write must be there, because an ack implies the batch
//! was WAL-synced before the reply was sent.

use std::collections::BTreeMap;
use std::sync::Arc;

use lsm_core::{Db, LsmConfig};
use lsm_server::harness::start_cluster;
use lsm_server::{Client, Request, Response, Server, ServerConfig, ShardSet};
use lsm_storage::{DeviceProfile, FaultDevice, FaultKind, MemDevice, StorageDevice};

type Oracle = BTreeMap<Vec<u8>, Vec<u8>>;

fn wal_cfg() -> LsmConfig {
    LsmConfig {
        wal: true,
        ..LsmConfig::small_for_tests()
    }
}

/// Deterministic xorshift; identical op sequences across runs and modes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// One connection's workload over its own key prefix: pipelined writes,
/// differential gets, differential prefix scans.
fn client_workload(mut c: Client, thread: usize, ops: usize) -> Oracle {
    let mut oracle = Oracle::new();
    let mut rng = Rng(0x9E3779B9 ^ (thread as u64) << 16 | 1);
    let key = |i: u64| format!("t{thread}-{i:05}").into_bytes();
    let mut inflight: Vec<(u64, bool)> = Vec::new(); // (id, expect_ok)
    for n in 0..ops {
        let i = rng.next() % 120;
        match rng.next() % 10 {
            0..=5 => {
                let v = format!("v{thread}-{n}-{}", rng.next() % 1000).into_bytes();
                let id = c
                    .send(&Request::Put {
                        key: key(i),
                        value: v.clone(),
                    })
                    .unwrap();
                inflight.push((id, true));
                oracle.insert(key(i), v);
            }
            6 => {
                let id = c.send(&Request::Delete { key: key(i) }).unwrap();
                inflight.push((id, true));
                oracle.remove(&key(i));
            }
            7..=8 => {
                // read-your-writes: pipelined writes above must be visible
                let got = c.get(&key(i)).unwrap();
                assert_eq!(
                    got,
                    oracle.get(&key(i)).cloned(),
                    "thread {thread} op {n}: get diverged from oracle"
                );
            }
            _ => {
                let lo = key(rng.next() % 100);
                let hi = key(100 + rng.next() % 20);
                let want: Vec<(Vec<u8>, Vec<u8>)> = oracle
                    .range(lo.clone()..hi.clone())
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect();
                let got = c.scan(&lo, &hi, 10_000).unwrap();
                assert_eq!(got, want, "thread {thread} op {n}: scan diverged");
            }
        }
        // bound client-side bookkeeping; the server enforces its own cap
        if inflight.len() >= 16 {
            for (id, expect_ok) in inflight.drain(..) {
                let resp = c.wait_for(id).unwrap();
                assert_eq!(resp == Response::Ok, expect_ok, "write {id} failed: {resp:?}");
            }
        }
    }
    for (id, _) in inflight.drain(..) {
        assert_eq!(c.wait_for(id).unwrap(), Response::Ok);
    }
    oracle
}

#[test]
fn concurrent_clients_match_oracle_and_scans_stitch() {
    let mut cluster = start_cluster(3, wal_cfg(), ServerConfig::default());
    let addr = cluster.addr();
    let threads: Vec<_> = (0..4)
        .map(|t| {
            std::thread::spawn(move || {
                let c = Client::connect(addr).expect("connect");
                client_workload(c, t, 400)
            })
        })
        .collect();
    let mut merged = Oracle::new();
    for t in threads {
        merged.extend(t.join().expect("client thread panicked"));
    }

    // global cross-shard scan must equal the merged oracle exactly
    let mut c = cluster.client();
    let got = c.scan(b"t", b"u", 1_000_000).unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> = merged.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(got.len(), want.len(), "stitched scan lost or invented entries");
    assert_eq!(got, want, "stitched scan diverged from oracle");

    // graceful shutdown, then the engines agree with the oracle directly
    drop(c);
    let dbs = cluster.server.take().unwrap().shutdown().unwrap();
    let set = ShardSet::new(dbs);
    for (k, v) in merged.iter().take(200) {
        assert_eq!(set.get(k).unwrap().as_ref(), Some(v), "post-shutdown divergence");
    }
}

#[test]
fn admission_control_sheds_instead_of_wedging() {
    // shed line of zero: every write is refused with a typed Busy
    let server_cfg = ServerConfig {
        shed_l0_runs: Some(0),
        ..ServerConfig::default()
    };
    let mut cluster = start_cluster(2, wal_cfg(), server_cfg);
    let mut c = cluster.client();
    match c.call(&Request::Put {
        key: b"shed-key".to_vec(),
        value: b"v".to_vec(),
    }) {
        Ok(Response::Busy) => {}
        other => panic!("expected Busy from admission control, got {other:?}"),
    }
    // reads still work while writes shed
    assert_eq!(c.get(b"shed-key").unwrap(), None);
    let server = cluster.server.take().unwrap();
    let sheds = server.metrics().snapshot().counters.get("server.sheds").copied();
    assert_eq!(sheds, Some(1));
    server.shutdown().unwrap();
}

#[test]
fn kill_the_server_preserves_every_acked_write() {
    let cfg = wal_cfg();
    let faults: Vec<Arc<FaultDevice>> = (0..3)
        .map(|s| {
            let mem: Arc<dyn StorageDevice> =
                Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()));
            Arc::new(FaultDevice::new(mem, 0xC0A5 + s))
        })
        .collect();
    let dbs: Vec<Db> = faults
        .iter()
        .map(|f| Db::open(Arc::clone(f) as Arc<dyn StorageDevice>, cfg.clone()).unwrap())
        .collect();
    let server = Server::start(dbs, ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    // pipelined writes; track exactly which were acknowledged Ok
    let mut acked: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut ids = Vec::new();
    for i in 0..300u32 {
        let k = format!("ck{i:05}").into_bytes();
        let v = format!("cv{i}").into_bytes();
        let id = c
            .send(&Request::Put {
                key: k.clone(),
                value: v.clone(),
            })
            .unwrap();
        ids.push((id, k, v));
        if ids.len() == 8 {
            for (id, k, v) in ids.drain(..) {
                if c.wait_for(id).unwrap() == Response::Ok {
                    acked.push((k, v));
                }
            }
        }
    }
    for (id, k, v) in ids.drain(..) {
        if c.wait_for(id).unwrap() == Response::Ok {
            acked.push((k, v));
        }
    }
    assert_eq!(acked.len(), 300, "healthy server should ack everything");

    // kill: every device op from here on fails — the abort path, drop-time
    // tail syncs, everything. Only what an ack already implied survives.
    for f in &faults {
        f.schedule(f.ops_performed(), FaultKind::Crash);
    }
    drop(c);
    let dbs = server.abort();
    drop(dbs);

    for f in &faults {
        f.heal();
    }
    let reopened: Vec<Db> = faults
        .iter()
        .map(|f| {
            Db::open(Arc::clone(f) as Arc<dyn StorageDevice>, cfg.clone())
                .expect("shard must reopen cleanly after a crash")
        })
        .collect();
    let set = ShardSet::new(reopened);
    for (k, v) in &acked {
        assert_eq!(
            set.get(k).unwrap().as_ref(),
            Some(v),
            "acked write {} lost in the crash",
            String::from_utf8_lossy(k)
        );
    }
    // and the cluster keeps working after recovery
    let all = set.scan(b"ck", b"cl", 10_000).unwrap();
    assert_eq!(all.len(), 300);
}
