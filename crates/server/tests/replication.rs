//! Differential replica-set harness.
//!
//! The invariants under test, end to end over real loopback TCP:
//!
//! - **Read-your-writes at quorum.** With `ack_quorum == n_replicas`, a
//!   write acked to the client is already applied *and synced* on every
//!   replica, so a read routed to any node — primary or replica —
//!   observes exactly what a `BTreeMap` oracle predicts, even with
//!   concurrent client threads.
//! - **Hostile delivery never diverges a replica.** `REPL_BATCH` frames
//!   delivered out of order, duplicated, gapped, or with truncated ops
//!   regions must be acked (duplicates), rejected typed (gaps /
//!   malformed), and never half-applied: after the stream completes, the
//!   replica's devices are **byte-identical** — tables and manifest — to
//!   a reference that applied the same batches serially, in order, once.
//! - **The shutdown drain barrier.** A graceful primary shutdown waits
//!   for replica acks on every published batch, so a quorum-0 (fully
//!   asynchronous) deployment still loses nothing a clean handover.
//! - **Typed lag.** A write whose quorum wait times out answers
//!   `REPLICA_LAG`, stays durable on the primary, and bumps the timeout
//!   counter.
//! - **Promotion.** After the primary dies, a promoted replica serves
//!   every acked write and accepts new ones.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use lsm_core::{BackgroundMode, LsmConfig};
use lsm_obs::EventKind;
use lsm_storage::{DeviceProfile, IoCategory, MemDevice, StorageDevice};

use lsm_server::harness::{reopen_shards, start_cluster, start_replicated_cluster};
use lsm_server::protocol::{ReplOpsBuilder, Request, Response};
use lsm_server::{
    promote_replica, Client, PrimaryReplication, ReplicaState, ReplicationRole, ServerConfig,
    ShardSet,
};

/// Tiny deterministic xorshift; good enough to scatter ops.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn wal_cfg() -> LsmConfig {
    LsmConfig {
        wal: true,
        ..LsmConfig::small_for_tests()
    }
}

/// WAL on and maintenance inline: every engine action happens at a
/// deterministic point in the apply stream, so two nodes fed the same
/// batches end up with the same device bytes.
fn inline_cfg() -> LsmConfig {
    LsmConfig {
        wal: true,
        background: BackgroundMode::Inline,
        ..LsmConfig::small_for_tests()
    }
}

// ---------------------------------------------------------------------------
// Oracle: reads routed anywhere agree at full quorum
// ---------------------------------------------------------------------------

#[test]
fn quorum_acked_writes_read_identically_from_any_node() {
    let mut cluster = start_replicated_cluster(2, 2, wal_cfg(), ServerConfig::default(), 2);
    let primary_addr = cluster.primary.addr();
    let replica_addrs: Vec<_> = cluster.replicas.iter().map(|r| r.addr()).collect();

    let handles: Vec<_> = (0..3u64)
        .map(|t| {
            let raddrs = replica_addrs.clone();
            std::thread::spawn(move || {
                let mut primary = Client::connect(primary_addr).unwrap();
                let mut replicas: Vec<Client> = raddrs
                    .iter()
                    .map(|&a| Client::connect(a).unwrap())
                    .collect();
                let mut rng = Rng(0x9E37_79B9_7F4A_7C15 ^ (t + 1));
                let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
                for i in 0..120u32 {
                    let key = format!("q{t}-{:03}", rng.below(40)).into_bytes();
                    if rng.below(100) < 25 {
                        primary.delete(&key).unwrap();
                        oracle.remove(&key);
                    } else {
                        let value = format!("v{t}-{i}").into_bytes();
                        primary.put(&key, &value).unwrap();
                        oracle.insert(key, value);
                    }
                    // the ack required both replicas: this probe must agree
                    // with the oracle no matter which node answers it
                    let probe = format!("q{t}-{:03}", rng.below(40)).into_bytes();
                    let expect = oracle.get(&probe).cloned();
                    let got = match rng.below(3) {
                        0 => primary.get(&probe).unwrap(),
                        r => replicas[(r - 1) as usize].get(&probe).unwrap(),
                    };
                    assert_eq!(got, expect, "divergent read of {probe:?}");
                }
                oracle
            })
        })
        .collect();

    let mut merged: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for h in handles {
        merged.extend(h.join().unwrap());
    }
    let expected: Vec<(Vec<u8>, Vec<u8>)> = merged.into_iter().collect();

    // every node serves the same final scan
    let mut c = cluster.primary.client();
    assert_eq!(c.scan(b"q", b"r", 10_000).unwrap(), expected, "primary scan");
    for (i, r) in cluster.replicas.iter().enumerate() {
        let mut rc = r.client();
        assert_eq!(rc.scan(b"q", b"r", 10_000).unwrap(), expected, "replica {i} scan");
    }
    drop(c);
    cluster.primary.server.take().unwrap().shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Hostile delivery: proptest + byte-identical differential
// ---------------------------------------------------------------------------

/// Encoded ops regions for a batch stream over a small hot keyspace.
fn gen_batches(rng: &mut Rng) -> Vec<Vec<u8>> {
    let n = 2 + rng.below(6) as usize;
    (0..n)
        .map(|_| {
            let mut b = ReplOpsBuilder::new();
            for _ in 0..=rng.below(3) {
                let key = format!("pk{}", rng.below(10)).into_bytes();
                if rng.below(4) == 0 {
                    b.delete(&key);
                } else {
                    b.put(&key, format!("pv{}", rng.below(1000)).as_bytes());
                }
            }
            b.finish()
        })
        .collect()
}

/// Full content of every live file on a device, by file id.
fn fingerprint(dev: &Arc<dyn StorageDevice>) -> BTreeMap<u64, Vec<u8>> {
    let mut out = BTreeMap::new();
    for id in dev.live_files() {
        let n = dev.len_blocks(id).unwrap();
        let bytes = if n == 0 {
            Vec::new()
        } else {
            dev.read(id, 0, n, IoCategory::Misc).unwrap()
        };
        out.insert(id.0, bytes);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn hostile_delivery_never_diverges_the_replica(seed in any::<u64>()) {
        let mut rng = Rng(seed | 1);
        let batches = gen_batches(&mut rng);
        let n = batches.len() as u64;

        let server_cfg = ServerConfig {
            role: ReplicationRole::Replica,
            ..ServerConfig::default()
        };
        let mut cluster = start_cluster(2, inline_cfg(), server_cfg);
        let mut c = cluster.client();
        let mut wm = 0u64; // model watermark

        // hostile phase: deliver random sequences — duplicates ack the
        // watermark, gaps get a typed rejection, in-order ones apply
        for _ in 0..n * 3 {
            let seq = 1 + rng.below(n);
            let resp = c
                .call(&Request::ReplBatch {
                    seq,
                    ops: batches[(seq - 1) as usize].clone(),
                })
                .unwrap();
            if seq <= wm {
                prop_assert!(
                    matches!(resp, Response::ReplAck { seq: s } if s == wm),
                    "duplicate {seq} at watermark {wm}: {resp:?}"
                );
            } else if seq == wm + 1 {
                wm = seq;
                prop_assert!(
                    matches!(resp, Response::ReplAck { seq: s } if s == wm),
                    "in-order {seq}: {resp:?}"
                );
            } else {
                match resp {
                    Response::Error(m) => prop_assert!(m.contains("gap"), "gap reply: {m}"),
                    other => prop_assert!(false, "gap {seq} at watermark {wm}: {other:?}"),
                }
            }
        }

        // a truncated ops region at the next expected sequence must be
        // rejected whole, with the watermark unmoved
        if wm < n {
            let good = &batches[wm as usize];
            let resp = c
                .call(&Request::ReplBatch {
                    seq: wm + 1,
                    ops: good[..good.len() - 1].to_vec(),
                })
                .unwrap();
            match resp {
                Response::Error(m) => prop_assert!(m.contains("malformed"), "reply: {m}"),
                other => prop_assert!(false, "truncated batch: {other:?}"),
            }
            match c.call(&Request::ReplSubscribe { replica_id: 0, from_seq: 0 }).unwrap() {
                Response::ReplAck { seq } => prop_assert_eq!(seq, wm),
                other => prop_assert!(false, "subscribe: {other:?}"),
            }
        }

        // recovery phase: the in-order tail completes the stream
        while wm < n {
            let seq = wm + 1;
            let resp = c
                .call(&Request::ReplBatch {
                    seq,
                    ops: batches[(seq - 1) as usize].clone(),
                })
                .unwrap();
            prop_assert!(matches!(resp, Response::ReplAck { seq: s } if s == seq));
            wm = seq;
        }
        drop(c);
        drop(cluster.server.take().unwrap().shutdown().unwrap());

        // reference: the same batches applied serially, in order, once
        let cfg = inline_cfg();
        let ref_devices: Vec<Arc<dyn StorageDevice>> = (0..2)
            .map(|_| {
                Arc::new(MemDevice::new(cfg.block_size, DeviceProfile::free()))
                    as Arc<dyn StorageDevice>
            })
            .collect();
        let shards = ShardSet::new(reopen_shards(&ref_devices, &cfg).unwrap());
        let state = ReplicaState::new(&shards);
        for (i, ops) in batches.iter().enumerate() {
            state.apply_batch(&shards, (i + 1) as u64, ops).unwrap();
        }
        shards.flush_all().unwrap();
        drop(shards);

        // byte-identical per shard: same tables, same manifest
        for (i, (srv, reference)) in
            cluster.devices.iter().zip(&ref_devices).enumerate()
        {
            prop_assert_eq!(
                fingerprint(srv),
                fingerprint(reference),
                "shard {} devices diverged",
                i
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Shutdown drain barrier
// ---------------------------------------------------------------------------

/// Regression test for the drain-order bug: `Server::shutdown` used to
/// flush and return as soon as the committers were drained, so with
/// `ack_quorum == 0` (fully asynchronous shipping) batches that were
/// committed and client-acked could still be queued in the shippers when
/// the process exited — and a failover to the replica would lose them.
/// The drain barrier now waits for every replica to ack every published
/// batch before shutdown returns.
#[test]
fn shutdown_drain_waits_for_replica_acks() {
    let mut cluster = start_replicated_cluster(1, 1, wal_cfg(), ServerConfig::default(), 0);
    let mut c = cluster.primary.client();
    let ids: Vec<u64> = (0..200u32)
        .map(|i| {
            c.send(&Request::Put {
                key: format!("dr{i:04}").into_bytes(),
                value: format!("dv{i}").into_bytes(),
            })
            .unwrap()
        })
        .collect();
    for id in ids {
        assert!(matches!(c.wait_for(id).unwrap(), Response::Ok));
    }
    drop(c);

    let metrics = cluster.primary.server.as_ref().unwrap().metrics();
    cluster.primary.server.take().unwrap().shutdown().unwrap();
    let events = metrics.drain_events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::ServerDrain { phase: "repl_acked", .. })),
        "shutdown must report the replica-ack barrier"
    );

    // nothing was waiting on the replica per-write, yet after a clean
    // shutdown it has every acked key
    let mut rc = cluster.replicas[0].client();
    for i in 0..200u32 {
        assert_eq!(
            rc.get(format!("dr{i:04}").as_bytes()).unwrap(),
            Some(format!("dv{i}").into_bytes()),
            "write dr{i:04} lost by the shutdown drain"
        );
    }
}

// ---------------------------------------------------------------------------
// Typed lag + role enforcement
// ---------------------------------------------------------------------------

#[test]
fn quorum_timeout_answers_replica_lag_and_keeps_the_write() {
    // a listener that never accepts: the shipper's connect lands in the
    // OS backlog but no REPL_ACK ever comes back
    let sink = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
    let server_cfg = ServerConfig {
        role: ReplicationRole::Primary(PrimaryReplication {
            replicas: vec![sink.local_addr().unwrap()],
            ack_quorum: 1,
            ack_timeout_ms: 100,
            drain_timeout_ms: 50,
        }),
        ..ServerConfig::default()
    };
    let mut cluster = start_cluster(1, wal_cfg(), server_cfg);
    let mut c = cluster.client();
    let resp = c
        .call(&Request::Put {
            key: b"lag-k".to_vec(),
            value: b"lag-v".to_vec(),
        })
        .unwrap();
    assert!(matches!(resp, Response::ReplicaLag), "got {resp:?}");
    // the write is durable on the primary regardless
    assert_eq!(c.get(b"lag-k").unwrap(), Some(b"lag-v".to_vec()));
    drop(c);

    let metrics = cluster.server.as_ref().unwrap().metrics();
    let snap = metrics.snapshot();
    assert!(
        snap.counters.get("server.repl_lag_timeouts").copied().unwrap_or(0) >= 1,
        "timeout counter must move"
    );
    drop(cluster.server.take().unwrap().abort());
}

#[test]
fn replicas_are_read_only_and_roles_are_enforced() {
    let mut cluster = start_replicated_cluster(1, 1, wal_cfg(), ServerConfig::default(), 1);
    let mut c = cluster.primary.client();
    c.put(b"ro-k", b"ro-v").unwrap();

    let mut rc = cluster.replicas[0].client();
    assert_eq!(rc.get(b"ro-k").unwrap(), Some(b"ro-v".to_vec()));
    for req in [
        Request::Put {
            key: b"ro-x".to_vec(),
            value: b"nope".to_vec(),
        },
        Request::Delete { key: b"ro-k".to_vec() },
    ] {
        match rc.call(&req).unwrap() {
            Response::Error(m) => assert!(m.contains("read-only"), "reply: {m}"),
            other => panic!("replica accepted a client write: {other:?}"),
        }
    }
    // the write stream ops are equally meaningless on a primary
    for req in [
        Request::ReplSubscribe { replica_id: 9, from_seq: 1 },
        Request::ReplBatch { seq: 1, ops: ReplOpsBuilder::new().finish() },
    ] {
        match c.call(&req).unwrap() {
            Response::Error(m) => assert!(m.contains("not a replica"), "reply: {m}"),
            other => panic!("primary accepted a replication op: {other:?}"),
        }
    }
    drop(c);
    cluster.primary.server.take().unwrap().shutdown().unwrap();
}

// ---------------------------------------------------------------------------
// Promotion
// ---------------------------------------------------------------------------

#[test]
fn promotion_after_primary_crash_serves_every_acked_write() {
    let cfg = inline_cfg();
    let mut cluster = start_replicated_cluster(2, 1, cfg.clone(), ServerConfig::default(), 1);
    let mut c = cluster.primary.client();
    let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
    for i in 0..400u32 {
        // distinct keys: enough memtable volume per shard that both the
        // primary and the replica flush, persisting the watermark
        let key = format!("f{i:04}").into_bytes();
        let value = format!("fv{i:04}-padding-to-fill-memtables").into_bytes();
        c.put(&key, &value).unwrap();
        oracle.insert(key, value);
        if i % 7 == 3 {
            let dead = format!("f{:04}", i / 2).into_bytes();
            c.delete(&dead).unwrap();
            oracle.remove(&dead);
        }
    }
    drop(c);

    // primary dies; at quorum 1 of 1, the replica acked every write
    drop(cluster.primary.server.take().unwrap().abort());
    let replica = &mut cluster.replicas[0];
    drop(replica.server.take().unwrap().abort());

    let promoted = promote_replica(&replica.devices, &cfg, ServerConfig::default()).unwrap();
    // enough data moved through to flush, so a persisted watermark was
    // recovered and adopted
    assert!(promoted.adopted_seq > 0, "no watermark adopted");
    let metrics = promoted.server.metrics();
    assert!(
        metrics
            .drain_events()
            .iter()
            .any(|e| matches!(e.kind, EventKind::Failover { .. })),
        "promotion must record a failover event"
    );

    let mut pc = Client::connect(promoted.server.addr()).unwrap();
    for (k, v) in &oracle {
        assert_eq!(pc.get(k).unwrap().as_deref(), Some(v.as_slice()));
    }
    let expected: Vec<(Vec<u8>, Vec<u8>)> = oracle.into_iter().collect();
    assert_eq!(pc.scan(b"f", b"g", 10_000).unwrap(), expected);

    // the promoted node is a primary now: it takes writes
    pc.put(b"f-sentinel", b"alive").unwrap();
    assert_eq!(pc.get(b"f-sentinel").unwrap(), Some(b"alive".to_vec()));
    drop(pc);
    promoted.server.shutdown().unwrap();
}

