//! Malformed-frame fuzzing against a live loopback server.
//!
//! The invariant under test: no byte sequence a client can send —
//! truncated frames, oversized or zero length prefixes, garbage
//! payloads, or random splices of valid traffic — may panic the server,
//! corrupt a shard, or wedge the connection in an undefined state. Every
//! outcome must be either a typed [`Response::Error`] reply (payload
//! decodable as a frame but not as a request) or a clean connection
//! close (framing unrecoverable). After every attack the same server
//! must still serve correct data to a well-behaved client.

use std::io::Write;
use std::time::Duration;

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_core::LsmConfig;
use lsm_server::harness::{start_cluster, TestCluster};
use lsm_server::{Request, Response, ServerConfig};

fn small_cluster() -> TestCluster {
    let cfg = LsmConfig {
        wal: true,
        ..LsmConfig::small_for_tests()
    };
    // tight frame cap so oversize prefixes are easy to generate
    let server_cfg = ServerConfig {
        max_frame_bytes: 4096,
        ..ServerConfig::default()
    };
    start_cluster(2, cfg, server_cfg)
}

/// Seeds a little data, fires `attack` bytes at the server on a raw
/// connection, then proves the server still serves the seeded data.
fn attack_then_verify(attack: &[u8]) {
    let mut cluster = small_cluster();
    let mut good = cluster.client();
    for i in 0..20u32 {
        good.put(format!("fz{i:03}").as_bytes(), format!("v{i}").as_bytes())
            .unwrap();
    }

    {
        let mut evil = cluster.client();
        let stream = evil.stream_mut();
        let _ = stream.write_all(attack);
        let _ = stream.flush();
        // whatever happens — typed error reply, or the server closing the
        // connection — the evil client must observe it without the server
        // process being harmed; drain with a timeout so a reply-less
        // close also terminates promptly
        let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
        let mut sink = [0u8; 1024];
        use std::io::Read;
        for _ in 0..64 {
            match stream.read(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    }

    // the server survived: the original connection still works and the
    // shard contents are intact
    for i in (0..20u32).step_by(7) {
        assert_eq!(
            good.get(format!("fz{i:03}").as_bytes()).unwrap(),
            Some(format!("v{i}").into_bytes()),
            "shard data corrupted after attack"
        );
    }
    let entries = good.scan(b"fz", b"fz999", 100).unwrap();
    assert_eq!(entries.len(), 20);
    let dbs = cluster.server.take().unwrap().shutdown().unwrap();
    assert_eq!(dbs.len(), 2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary garbage bytes never harm the server.
    #[test]
    fn random_bytes_never_panic_the_server(bytes in vec(any::<u8>(), 0..600)) {
        attack_then_verify(&bytes);
    }

    /// A syntactically valid length prefix announcing an oversized,
    /// zero, or truncated frame leads to a clean close, not a wedge.
    #[test]
    fn hostile_length_prefixes_close_cleanly(
        len in prop_oneof![
            Just(0u32),                    // zero-length frame
            4097u32..=u32::MAX,            // above the 4096 cap
            1u32..=4096,                   // valid length, truncated body
        ],
        body in vec(any::<u8>(), 0..64),
    ) {
        let mut attack = len.to_le_bytes().to_vec();
        // deliver fewer bytes than announced whenever len > body.len():
        // the reader must park, then cleanly abandon the partial frame
        attack.extend_from_slice(&body);
        attack_then_verify(&attack);
    }

    /// A well-framed payload with a corrupted interior gets a typed
    /// error reply and the connection survives for the next request.
    #[test]
    fn corrupt_payload_in_valid_frame_gets_typed_error(
        payload in vec(any::<u8>(), 1..128),
    ) {
        let mut cluster = small_cluster();
        let mut c = cluster.client();
        c.put(b"anchor", b"still-here").unwrap();

        // frame is sound (length matches), interior is garbage
        let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
        frame.extend_from_slice(&payload);
        c.stream_mut().write_all(&frame).unwrap();

        match c.recv() {
            Ok((_id, resp)) => {
                // decodable garbage must decode to a *real* request only if
                // it really was one; anything else is a typed error
                if lsm_server::decode_request(&payload).is_err() {
                    prop_assert!(
                        matches!(resp, Response::Error(_)),
                        "expected typed error, got {resp:?}"
                    );
                    // the connection survived payload-level garbage
                    prop_assert_eq!(c.get(b"anchor").unwrap(), Some(b"still-here".to_vec()));
                }
            }
            Err(_) => {
                // only acceptable if the payload truly decoded as a request
                // whose execution closed the stream — which none do; but a
                // valid-looking GET would have replied. Treat close as a
                // failure unless the payload decoded to a valid request
                // (e.g. random bytes that happen to spell one).
                prop_assert!(
                    lsm_server::decode_request(&payload).is_ok(),
                    "connection closed on a well-framed payload"
                );
            }
        }
        cluster.server.take().unwrap().shutdown().unwrap();
    }
}

/// Deterministic regression cases that have bitten real codecs.
#[test]
fn classic_framing_attacks() {
    // 1. empty write then immediate close
    attack_then_verify(b"");
    // 2. exactly one length byte
    attack_then_verify(&[0x10]);
    // 3. three of four length bytes
    attack_then_verify(&[0x10, 0x00, 0x00]);
    // 4. u32::MAX length prefix
    attack_then_verify(&u32::MAX.to_le_bytes());
    // 5. valid frame followed by a truncated one
    let mut bytes = lsm_server::encode_request(9, &Request::Get { key: b"fz001".to_vec() });
    bytes.extend_from_slice(&[0xFF, 0x00]);
    attack_then_verify(&bytes);
}

/// A pipelined mix of valid and payload-corrupt frames: every valid
/// request is answered, every corrupt one draws a typed error, and the
/// connection survives the whole exchange.
#[test]
fn interleaved_valid_and_corrupt_frames() {
    let mut cluster = small_cluster();
    let mut c = cluster.client();

    let mut expected_errors = 0u32;
    let mut valid_ids = Vec::new();
    for i in 0..12u32 {
        if i % 3 == 2 {
            // well-framed, bad opcode 0xEE
            let mut payload = (1000 + i as u64).to_le_bytes().to_vec();
            payload.push(0xEE);
            let mut frame = (payload.len() as u32).to_le_bytes().to_vec();
            frame.extend_from_slice(&payload);
            c.stream_mut().write_all(&frame).unwrap();
            expected_errors += 1;
        } else {
            valid_ids.push(
                c.send(&Request::Put {
                    key: format!("mix{i:02}").into_bytes(),
                    value: vec![b'x'; 8],
                })
                .unwrap(),
            );
        }
    }
    let mut errors = 0u32;
    let mut oks = 0u32;
    for _ in 0..12 {
        match c.recv().unwrap().1 {
            Response::Ok => oks += 1,
            Response::Error(_) => errors += 1,
            other => panic!("unexpected response {other:?}"),
        }
    }
    assert_eq!(errors, expected_errors);
    assert_eq!(oks, valid_ids.len() as u32);
    assert_eq!(c.get(b"mix00").unwrap(), Some(vec![b'x'; 8]));
    cluster.server.take().unwrap().shutdown().unwrap();
}
