//! Transactions over the wire: serializability proven differentially.
//!
//! The centerpiece drives N concurrent TCP clients through random
//! optimistic transactions over a *shared* (contended) key pool and then
//! replays every committed transaction's write-set **in commit-stamp
//! order** against a `BTreeMap` oracle — the replay must reproduce the
//! server's final scanned state exactly. That is the definition of
//! serializability made executable: stamp order is a serial order that
//! explains the final state.
//!
//! A proptest model-checks adversarial interleavings on one shard: three
//! connections plus direct (non-transactional) writes, with the model
//! predicting every read result *and* every commit/conflict outcome
//! (first-committer-wins against a version counter). Committed
//! transactions serialize; conflicted and aborted ones leave zero trace.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::time::Duration;

use lsm_core::LsmConfig;
use lsm_server::harness::{start_cluster, start_elastic_cluster};
use lsm_server::{Client, Request, Response, ServerConfig, ShardMap, TxnCommitStatus};
use proptest::prelude::*;

type Oracle = BTreeMap<Vec<u8>, Vec<u8>>;
/// `(commit stamp, write-set)` per committed transaction; a `None` value
/// is a delete.
type CommitHistory = Vec<(u64, Vec<(Vec<u8>, Option<Vec<u8>>)>)>;

fn wal_cfg() -> LsmConfig {
    LsmConfig {
        wal: true,
        ..LsmConfig::small_for_tests()
    }
}

/// Deterministic xorshift; identical op sequences across runs and modes.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

#[test]
fn txn_commit_is_atomic_and_isolated() {
    let mut cluster = start_cluster(2, wal_cfg(), ServerConfig::default());
    let mut a = cluster.client();
    let mut b = cluster.client();
    a.put(b"acct-x", b"100").unwrap();
    a.put(b"acct-y", b"0").unwrap();

    a.txn_begin().unwrap();
    assert_eq!(a.txn_get(b"acct-x").unwrap(), Some(b"100".to_vec()));
    a.txn_put(b"acct-x", b"60").unwrap();
    a.txn_put(b"acct-y", b"40").unwrap();
    // read-your-own-writes inside the transaction
    assert_eq!(a.txn_get(b"acct-x").unwrap(), Some(b"60".to_vec()));
    // isolation: nothing visible to another connection before commit
    assert_eq!(b.get(b"acct-x").unwrap(), Some(b"100".to_vec()));
    assert_eq!(b.get(b"acct-y").unwrap(), Some(b"0".to_vec()));

    let stamp = match a.txn_commit().unwrap() {
        TxnCommitStatus::Committed(s) => s,
        other => panic!("clean commit conflicted: {other:?}"),
    };
    assert!(stamp > 0, "non-empty commit draws a real stamp");
    // atomicity: both writes land together
    assert_eq!(b.get(b"acct-x").unwrap(), Some(b"60".to_vec()));
    assert_eq!(b.get(b"acct-y").unwrap(), Some(b"40".to_vec()));
    cluster.server.take().unwrap().shutdown().unwrap();
}

#[test]
fn first_committer_wins_and_loser_leaves_no_trace() {
    let mut cluster = start_cluster(2, wal_cfg(), ServerConfig::default());
    let mut a = cluster.client();
    let mut b = cluster.client();
    a.put(b"fcw-key", b"v0").unwrap();

    a.txn_begin().unwrap();
    b.txn_begin().unwrap();
    assert_eq!(a.txn_get(b"fcw-key").unwrap(), Some(b"v0".to_vec()));
    assert_eq!(b.txn_get(b"fcw-key").unwrap(), Some(b"v0".to_vec()));
    a.txn_put(b"fcw-key", b"from-a").unwrap();
    b.txn_put(b"fcw-key", b"from-b").unwrap();
    b.txn_put(b"fcw-other", b"side-effect").unwrap();

    assert!(matches!(
        a.txn_commit().unwrap(),
        TxnCommitStatus::Committed(_)
    ));
    match b.txn_commit().unwrap() {
        TxnCommitStatus::Conflict(key) => assert_eq!(key, b"fcw-key".to_vec()),
        other => panic!("second committer must conflict, got {other:?}"),
    }
    // the loser's whole write-set vanished, including untouched keys
    assert_eq!(a.get(b"fcw-key").unwrap(), Some(b"from-a".to_vec()));
    assert_eq!(a.get(b"fcw-other").unwrap(), None);
    // and the connection is free for a fresh transaction that succeeds
    b.txn_begin().unwrap();
    b.txn_put(b"fcw-key", b"retry").unwrap();
    assert!(matches!(
        b.txn_commit().unwrap(),
        TxnCommitStatus::Committed(_)
    ));
    assert_eq!(a.get(b"fcw-key").unwrap(), Some(b"retry".to_vec()));
    cluster.server.take().unwrap().shutdown().unwrap();
}

#[test]
fn snapshot_reads_ignore_later_writes_but_validation_sees_them() {
    let mut cluster = start_cluster(1, wal_cfg(), ServerConfig::default());
    let mut a = cluster.client();
    let mut b = cluster.client();
    a.put(b"snap-k", b"old").unwrap();

    a.txn_begin().unwrap();
    assert_eq!(a.txn_get(b"snap-k").unwrap(), Some(b"old".to_vec()));
    b.put(b"snap-k", b"new").unwrap();
    // snapshot isolation: the transaction keeps seeing its snapshot
    assert_eq!(a.txn_get(b"snap-k").unwrap(), Some(b"old".to_vec()));
    // first-committer-wins applies to read-only transactions too: the
    // read has been invalidated, so this cannot serialize after b's put
    match a.txn_commit().unwrap() {
        TxnCommitStatus::Conflict(key) => assert_eq!(key, b"snap-k".to_vec()),
        other => panic!("stale read-only txn must conflict, got {other:?}"),
    }
    cluster.server.take().unwrap().shutdown().unwrap();
}

#[test]
fn abort_discards_everything_and_is_idempotent() {
    let mut cluster = start_cluster(2, wal_cfg(), ServerConfig::default());
    let mut c = cluster.client();
    // aborting with no transaction open is Ok
    c.txn_abort().unwrap();
    c.txn_begin().unwrap();
    c.txn_put(b"ab-1", b"x").unwrap();
    c.txn_put(b"ab-2", b"y").unwrap();
    c.txn_abort().unwrap();
    assert_eq!(c.get(b"ab-1").unwrap(), None);
    assert_eq!(c.get(b"ab-2").unwrap(), None);
    // txn ops after the abort answer NO_TXN
    assert_eq!(
        c.call(&Request::TxnPut {
            key: b"ab-3".to_vec(),
            value: b"z".to_vec(),
        })
        .unwrap(),
        Response::NoTxn
    );
    // a dropped connection mid-transaction also leaves zero trace
    let mut d = cluster.client();
    d.txn_begin().unwrap();
    d.txn_put(b"ab-dropped", b"gone").unwrap();
    drop(d);
    std::thread::sleep(Duration::from_millis(50));
    assert_eq!(c.get(b"ab-dropped").unwrap(), None);
    cluster.server.take().unwrap().shutdown().unwrap();
}

#[test]
fn begin_while_active_is_an_error_and_empty_commit_stamps_zero() {
    let mut cluster = start_cluster(1, wal_cfg(), ServerConfig::default());
    let mut c = cluster.client();
    c.txn_begin().unwrap();
    let err = c.txn_begin().unwrap_err();
    assert!(
        err.to_string().contains("already active"),
        "unexpected error: {err}"
    );
    // the original transaction survived the refused begin
    assert_eq!(c.txn_commit().unwrap(), TxnCommitStatus::Committed(0));
    cluster.server.take().unwrap().shutdown().unwrap();
}

/// One client's transactional workload over the shared contended pool.
/// Returns the committed history: `(stamp, write-set)` per commit.
fn txn_workload(
    mut c: Client,
    thread: u64,
    txns: usize,
) -> CommitHistory {
    let mut rng = Rng(0x51CC ^ (thread << 20) | 1);
    let key = |i: u64| format!("x{:03}", i % 48).into_bytes();
    let mut committed = Vec::new();
    for n in 0..txns {
        c.txn_begin().expect("begin");
        let mut writes: Vec<(Vec<u8>, Option<Vec<u8>>)> = Vec::new();
        for _ in 0..(1 + rng.next() % 4) {
            let k = key(rng.next());
            match rng.next() % 4 {
                0 => {
                    c.txn_get(&k).expect("txn get");
                }
                1 => {
                    c.txn_delete(&k).expect("txn delete");
                    writes.retain(|(wk, _)| wk != &k);
                    writes.push((k, None));
                }
                _ => {
                    let v = format!("t{thread}n{n}r{}", rng.next() % 1000).into_bytes();
                    c.txn_put(&k, &v).expect("txn put");
                    writes.retain(|(wk, _)| wk != &k);
                    writes.push((k, Some(v)));
                }
            }
        }
        match c.txn_commit().expect("commit rpc") {
            TxnCommitStatus::Committed(stamp) => {
                assert!(stamp > 0, "non-empty commit must draw a real stamp");
                committed.push((stamp, writes));
            }
            TxnCommitStatus::Conflict(_) => {} // lost the race; no trace
        }
    }
    committed
}

#[test]
fn concurrent_txns_replayed_in_stamp_order_match_final_state() {
    // 3 hash shards: transactions freely span shards (standalone hash
    // routing supports cross-shard commits)
    let mut cluster = start_cluster(3, wal_cfg(), ServerConfig::default());
    let addr = cluster.addr();
    let threads: Vec<_> = (0..4u64)
        .map(|t| {
            std::thread::spawn(move || {
                let c = Client::connect(addr).expect("connect");
                txn_workload(c, t, 120)
            })
        })
        .collect();
    let mut history: CommitHistory = Vec::new();
    for t in threads {
        history.extend(t.join().expect("client thread panicked"));
    }
    assert!(
        history.len() >= 100,
        "contention ate almost everything: only {} commits",
        history.len()
    );

    // stamps are the serialization order: unique, and replaying the
    // committed write-sets in stamp order reproduces the final state
    let stamps: HashSet<u64> = history.iter().map(|(s, _)| *s).collect();
    assert_eq!(stamps.len(), history.len(), "commit stamps must be unique");
    history.sort_unstable_by_key(|(s, _)| *s);
    let mut oracle = Oracle::new();
    for (_, writes) in &history {
        for (k, v) in writes {
            match v {
                Some(v) => {
                    oracle.insert(k.clone(), v.clone());
                }
                None => {
                    oracle.remove(k);
                }
            }
        }
    }
    let mut c = cluster.client();
    let got = c.scan(b"x", b"y", 1_000_000).unwrap();
    let want: Vec<(Vec<u8>, Vec<u8>)> =
        oracle.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
    assert_eq!(
        got, want,
        "replaying committed txns by stamp must reproduce the final state"
    );

    // the server accounted every attempt as exactly one commit or conflict
    drop(c);
    let server = cluster.server.take().unwrap();
    let snap = server.metrics().snapshot();
    let commits = snap.counters.get("server.txn_commits").copied().unwrap();
    let conflicts = snap.counters.get("server.txn_conflicts").copied().unwrap();
    assert_eq!(commits, history.len() as u64);
    assert_eq!(commits + conflicts, 4 * 120);
    server.shutdown().unwrap();
}

#[test]
fn idle_txn_times_out_releasing_its_snapshot() {
    let cfg = ServerConfig {
        txn_idle_timeout: Duration::from_millis(40),
        ..ServerConfig::default()
    };
    let mut cluster = start_cluster(1, wal_cfg(), cfg);
    let mut c = cluster.client();
    c.txn_begin().unwrap();
    c.txn_put(b"stall-k", b"never-lands").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    // the sweeper reaped the transaction: the next op is a typed NO_TXN,
    // not a hang, and the buffered write left no trace
    assert_eq!(
        c.call(&Request::TxnCommit).unwrap(),
        Response::NoTxn,
        "stalled txn must be reaped, not committed"
    );
    assert_eq!(c.get(b"stall-k").unwrap(), None);
    // the connection recovers: a fresh transaction commits normally
    c.txn_begin().unwrap();
    c.txn_put(b"stall-k", b"landed").unwrap();
    assert!(matches!(
        c.txn_commit().unwrap(),
        TxnCommitStatus::Committed(_)
    ));
    drop(c);
    let server = cluster.server.take().unwrap();
    let snap = server.metrics().snapshot();
    let timeouts = snap.counters.get("server.txn_timeouts").copied().unwrap();
    assert!(timeouts >= 1, "sweeper never fired: {timeouts}");
    server.shutdown().unwrap();
}

#[test]
fn elastic_refuses_cross_shard_but_commits_single_shard() {
    let cluster = start_elastic_cluster(
        ShardMap::uniform(2),
        wal_cfg(),
        ServerConfig::default(),
        None,
    );
    let mut c = cluster.client();
    let (_, entries) = c.shard_map().unwrap();
    assert_eq!(entries.len(), 2);
    // keys on both sides of the split point span shards
    let split = entries[1].1.clone();
    let mut lo = Vec::new(); // before the split: first shard
    lo.extend_from_slice(b"\x00lo");
    let mut hi = split.clone(); // at/after the split: second shard
    hi.extend_from_slice(b"hi");

    c.txn_begin().unwrap();
    c.txn_put(&lo, b"a").unwrap();
    c.txn_put(&hi, b"b").unwrap();
    let err = c.txn_commit().unwrap_err();
    assert!(
        err.to_string().contains("cross-shard"),
        "unexpected error: {err}"
    );
    // refusal aborted the transaction; neither write landed
    assert_eq!(c.get(&lo).unwrap(), None);
    assert_eq!(c.get(&hi).unwrap(), None);

    // single-shard transactions work on elastic servers
    c.txn_begin().unwrap();
    c.txn_put(&lo, b"a2").unwrap();
    assert!(matches!(
        c.txn_commit().unwrap(),
        TxnCommitStatus::Committed(_)
    ));
    assert_eq!(c.get(&lo).unwrap(), Some(b"a2".to_vec()));
}

// ---------------------------------------------------------------------
// Model-checked adversarial interleavings (single shard, exact oracle)
// ---------------------------------------------------------------------

#[derive(Clone, Debug)]
enum Step {
    Begin(usize),
    Get(usize, u8),
    Put(usize, u8, u8),
    Delete(usize, u8),
    Commit(usize),
    Abort(usize),
    DirectPut(u8, u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    let client = 0..3usize;
    let key = 0..6u8;
    prop_oneof![
        2 => client.clone().prop_map(Step::Begin),
        2 => (client.clone(), key.clone()).prop_map(|(c, k)| Step::Get(c, k)),
        2 => (client.clone(), key.clone(), any::<u8>()).prop_map(|(c, k, v)| Step::Put(c, k, v)),
        1 => (client.clone(), key.clone()).prop_map(|(c, k)| Step::Delete(c, k)),
        3 => client.clone().prop_map(Step::Commit),
        1 => client.clone().prop_map(Step::Abort),
        1 => (key, any::<u8>()).prop_map(|(k, v)| Step::DirectPut(k, v)),
    ]
}

/// The model's view of one open transaction. The server begins the
/// engine sub-transaction lazily, on the first operation that touches
/// its shard — so the snapshot and the validation floor are captured at
/// *first touch*, not at TXN_BEGIN. The model mirrors that.
struct ModelTxn {
    /// `(snapshot of committed state, write-version)` at first touch.
    touched: Option<(Oracle, u64)>,
    read_set: HashSet<Vec<u8>>,
    writes: BTreeMap<Vec<u8>, Option<Vec<u8>>>,
}

impl ModelTxn {
    /// Captures the snapshot + floor on the transaction's first op.
    fn touch(&mut self, committed: &Oracle, version: u64) -> &mut (Oracle, u64) {
        self.touched
            .get_or_insert_with(|| (committed.clone(), version))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adversarial_interleavings_match_the_occ_model(
        steps in proptest::collection::vec(step_strategy(), 1..60),
    ) {
        let mk = |k: u8| vec![b'm', k];
        let mv = |v: u8| vec![b'v', v];
        let mut cluster = start_cluster(1, wal_cfg(), ServerConfig::default());
        let mut clients: Vec<Client> = (0..3).map(|_| cluster.client()).collect();
        let mut direct = cluster.client();

        let mut committed = Oracle::new();
        let mut versions: HashMap<Vec<u8>, u64> = HashMap::new();
        let mut version: u64 = 0;
        let mut txns: Vec<Option<ModelTxn>> = (0..3).map(|_| None).collect();

        for step in &steps {
            match *step {
                Step::Begin(c) => {
                    if txns[c].is_some() {
                        prop_assert!(clients[c].txn_begin().is_err());
                    } else {
                        clients[c].txn_begin().unwrap();
                        txns[c] = Some(ModelTxn {
                            touched: None,
                            read_set: HashSet::new(),
                            writes: BTreeMap::new(),
                        });
                    }
                }
                Step::Get(c, k) => {
                    let got = clients[c].call(&Request::TxnGet { key: mk(k) }).unwrap();
                    match &mut txns[c] {
                        Some(t) => {
                            let snap_val = t.touch(&committed, version).0.get(&mk(k)).cloned();
                            let want = t.writes.get(&mk(k)).cloned().unwrap_or(snap_val);
                            t.read_set.insert(mk(k));
                            let want = match want {
                                Some(v) => Response::Value(v),
                                None => Response::NotFound,
                            };
                            prop_assert_eq!(got, want, "txn read diverged from model");
                        }
                        None => prop_assert_eq!(got, Response::NoTxn),
                    }
                }
                Step::Put(c, k, v) => {
                    let got = clients[c]
                        .call(&Request::TxnPut { key: mk(k), value: mv(v) })
                        .unwrap();
                    match &mut txns[c] {
                        Some(t) => {
                            prop_assert_eq!(got, Response::Ok);
                            t.touch(&committed, version);
                            t.writes.insert(mk(k), Some(mv(v)));
                        }
                        None => prop_assert_eq!(got, Response::NoTxn),
                    }
                }
                Step::Delete(c, k) => {
                    let got = clients[c].call(&Request::TxnDelete { key: mk(k) }).unwrap();
                    match &mut txns[c] {
                        Some(t) => {
                            prop_assert_eq!(got, Response::Ok);
                            t.touch(&committed, version);
                            t.writes.insert(mk(k), None);
                        }
                        None => prop_assert_eq!(got, Response::NoTxn),
                    }
                }
                Step::Commit(c) => {
                    let got = clients[c].call(&Request::TxnCommit).unwrap();
                    match txns[c].take() {
                        Some(t) => {
                            let floor = t.touched.as_ref().map(|(_, v)| *v);
                            if floor.is_none() {
                                // never touched a shard: nothing to commit
                                prop_assert_eq!(got, Response::TxnCommitted { stamp: 0 });
                            } else if t.read_set.iter().any(|k| {
                                versions.get(k).copied().unwrap_or(0) > floor.unwrap()
                            }) {
                                // first-committer-wins: some read was
                                // invalidated after the snapshot
                                prop_assert!(
                                    matches!(got, Response::TxnConflict { .. }),
                                    "model says conflict, server said {:?}",
                                    got
                                );
                            } else {
                                prop_assert!(
                                    matches!(got, Response::TxnCommitted { stamp } if stamp > 0),
                                    "model says commit, server said {:?}",
                                    got
                                );
                                for (k, v) in t.writes {
                                    version += 1;
                                    versions.insert(k.clone(), version);
                                    match v {
                                        Some(v) => {
                                            committed.insert(k, v);
                                        }
                                        None => {
                                            committed.remove(&k);
                                        }
                                    }
                                }
                            }
                        }
                        None => prop_assert_eq!(got, Response::NoTxn),
                    }
                }
                Step::Abort(c) => {
                    clients[c].txn_abort().unwrap();
                    txns[c] = None;
                }
                Step::DirectPut(k, v) => {
                    direct.put(&mk(k), &mv(v)).unwrap();
                    version += 1;
                    versions.insert(mk(k), version);
                    committed.insert(mk(k), mv(v));
                }
            }
        }
        // final state: exactly the committed writes, nothing else
        let got = direct.scan(b"m", b"n", 1_000_000).unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            committed.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want, "final state diverged from the OCC model");
        drop(clients);
        drop(direct);
        cluster.server.take().unwrap().shutdown().unwrap();
    }
}
