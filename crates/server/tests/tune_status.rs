//! TUNE_STATUS wire op: per-shard self-tuner status over the protocol.
//!
//! Tuners are pull-model — each TUNE_STATUS request ticks every shard's
//! tuner once — so these tests drive tuning entirely from the client
//! side: write traffic, tick, and observe the staged retunes through
//! the reported effective configuration.

use lsm_core::LsmConfig;
use lsm_server::harness::start_cluster;
use lsm_server::server::ServerConfig;
use lsm_tuner::TunerConfig;

fn wal_cfg() -> LsmConfig {
    LsmConfig {
        wal: true,
        ..LsmConfig::small_for_tests()
    }
}

#[test]
fn tune_status_empty_without_tuner() {
    let mut cluster = start_cluster(2, wal_cfg(), ServerConfig::default());
    let mut c = cluster.client();
    assert_eq!(c.tune_status().unwrap(), Vec::new());
    cluster.server.take().unwrap().shutdown().unwrap();
}

#[test]
fn tune_status_reports_and_retunes_per_shard() {
    let server_cfg = ServerConfig {
        tuner: Some(TunerConfig {
            min_ops_per_tick: 100,
            ..TunerConfig::default()
        }),
        ..ServerConfig::default()
    };
    let mut cluster = start_cluster(2, wal_cfg(), server_cfg);
    let mut c = cluster.client();

    // before any traffic: one entry per shard, no decisions yet
    let initial = c.tune_status().unwrap();
    assert_eq!(initial.len(), 2);
    for (shard, json) in &initial {
        assert!(*shard < 2);
        lsm_obs::json::validate_json(json).unwrap_or_else(|e| panic!("shard {shard}: {e}: {json}"));
        assert!(json.contains("\"decisions\":0"), "{json}");
    }

    // write-heavy traffic across both shards (hash routing spreads it),
    // then tick until a decision lands
    let mut decided = false;
    for round in 0..6 {
        for i in 0..2_000u64 {
            let key = format!("tune-{round}-{i:08}");
            c.put(key.as_bytes(), &[7u8; 48]).unwrap();
        }
        let status = c.tune_status().unwrap();
        assert_eq!(status.len(), 2);
        if status.iter().any(|(_, j)| !j.contains("\"decisions\":0")) {
            decided = true;
            break;
        }
    }
    assert!(decided, "no shard retuned under sustained write-heavy load");
    cluster.server.take().unwrap().shutdown().unwrap();
}
