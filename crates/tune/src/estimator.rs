//! The shared workload estimator: one struct, two sources.
//!
//! The offline path (E11/E12) estimates the workload from a recorded
//! [`Trace`]; the online tuner estimates it from a [`MetricsSnapshot`]
//! delta. Both produce a [`WorkloadEstimate`], and both feed the same
//! [`WorkloadProfile`] into the navigator — one code path, so the tuner
//! can never disagree with the offline experiments about what a
//! workload *is*.

use lsm_model::WorkloadProfile;
use lsm_obs::MetricsSnapshot;
use lsm_workload::{Operation, Trace};

/// Operation counts observed over some window, plus derived shape
/// statistics. All fields are raw counts (not fractions) so estimates
/// from consecutive windows can be summed.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkloadEstimate {
    /// Writes (puts + deletes).
    pub writes: u64,
    /// Point lookups that found a live value.
    pub point_reads: u64,
    /// Point lookups on absent keys.
    pub empty_point_reads: u64,
    /// Range scans.
    pub range_reads: u64,
    /// Entries returned across all scans.
    pub range_entries: u64,
    /// Key-skew proxy in `[0, 1]`: the fraction of block-cache accesses
    /// that hit. A skewed key distribution concentrates accesses on few
    /// blocks and drives this toward 1; uniform access drives it toward
    /// the cache's capacity fraction. 0 when no cache is configured.
    pub skew: f64,
}

impl WorkloadEstimate {
    /// Estimates from a metrics *delta* (a [`MetricsSnapshot::delta_since`]
    /// between two engine snapshots): `db.*` operation counters give the
    /// mix, `db.gets` vs `db.gets_found` the empty-read fraction, and
    /// `cache.*` the skew proxy.
    pub fn from_metrics_snapshot(delta: &MetricsSnapshot) -> Self {
        let c = |name: &str| delta.counters.get(name).copied().unwrap_or(0);
        let gets = c("db.gets");
        let found = c("db.gets_found").min(gets);
        let hits = c("cache.hits");
        let misses = c("cache.misses");
        let skew = if hits + misses > 0 {
            hits as f64 / (hits + misses) as f64
        } else {
            0.0
        };
        WorkloadEstimate {
            writes: c("db.puts") + c("db.deletes"),
            point_reads: found,
            empty_point_reads: gets - found,
            range_reads: c("db.scans"),
            range_entries: c("db.scan_entries"),
            skew,
        }
    }

    /// Estimates from a recorded trace. The trace does not know which
    /// lookups will miss, so every `Get` counts as a found point read;
    /// use [`WorkloadEstimate::from_trace_with`] when the caller can
    /// classify keys. Scans contribute their requested limit as the
    /// selectivity estimate.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_trace_with(trace, |_| true)
    }

    /// Estimates from a recorded trace with a key classifier: `is_known`
    /// returns whether a `Get` for that key is expected to find a value
    /// (the offline analogue of the engine's `gets_found` counter).
    pub fn from_trace_with(trace: &Trace, is_known: impl Fn(&[u8]) -> bool) -> Self {
        let mut est = WorkloadEstimate::default();
        for op in trace.ops() {
            match op {
                Operation::Put { .. } | Operation::Delete { .. } => est.writes += 1,
                Operation::ReadModifyWrite { .. } => {
                    // one lookup plus one write
                    est.writes += 1;
                    est.point_reads += 1;
                }
                Operation::Get { key } => {
                    if is_known(key) {
                        est.point_reads += 1;
                    } else {
                        est.empty_point_reads += 1;
                    }
                }
                Operation::Scan { limit, .. } => {
                    est.range_reads += 1;
                    est.range_entries += *limit as u64;
                }
            }
        }
        est
    }

    /// Total operations in the window.
    pub fn total_ops(&self) -> u64 {
        self.writes + self.point_reads + self.empty_point_reads + self.range_reads
    }

    /// Empty-read fraction among point lookups (0 when there were none).
    pub fn empty_read_fraction(&self) -> f64 {
        let lookups = self.point_reads + self.empty_point_reads;
        if lookups == 0 {
            0.0
        } else {
            self.empty_point_reads as f64 / lookups as f64
        }
    }

    /// Average entries per scan (0 when there were no scans).
    pub fn entries_per_scan(&self) -> f64 {
        if self.range_reads == 0 {
            0.0
        } else {
            self.range_entries as f64 / self.range_reads as f64
        }
    }

    /// The cost-model workload description: normalized fractions plus
    /// the average scan selectivity. This is the single hand-off point
    /// between estimation and the navigator.
    pub fn profile(&self) -> WorkloadProfile {
        let total = self.total_ops().max(1) as f64;
        WorkloadProfile {
            writes: self.writes as f64 / total,
            point_reads: self.point_reads as f64 / total,
            empty_point_reads: self.empty_point_reads as f64 / total,
            range_reads: self.range_reads as f64 / total,
            range_entries: self.entries_per_scan(),
        }
    }

    /// Sums another window into this one.
    pub fn merge(&mut self, other: &WorkloadEstimate) {
        let (a, b) = (self.total_ops(), other.total_ops());
        self.writes += other.writes;
        self.point_reads += other.point_reads;
        self.empty_point_reads += other.empty_point_reads;
        self.range_reads += other.range_reads;
        self.range_entries += other.range_entries;
        // ops-weighted skew
        if a + b > 0 {
            self.skew = (self.skew * a as f64 + other.skew * b as f64) / (a + b) as f64;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_workload::{KeyDistribution, OpMix, WorkloadSpec};

    #[test]
    fn trace_and_metrics_paths_agree_on_the_mix() {
        // record a trace, replay it on a real engine, and estimate from
        // both sides: the derived profiles must agree on the mix.
        let spec = WorkloadSpec {
            key_space: 2_000,
            mix: OpMix {
                insert: 0.5,
                update: 0.0,
                read: 0.4,
                scan: 0.1,
                delete: 0.0,
                rmw: 0.0,
            },
            distribution: KeyDistribution::Uniform,
            value_len: 32,
            scan_len: 20,
            seed: 42,
        };
        let trace = Trace::record(spec, 5_000);
        let offline = WorkloadEstimate::from_trace(&trace);

        let db = lsm_core::Db::open_in_memory(lsm_core::LsmConfig::small_for_tests()).unwrap();
        let before = db.metrics();
        for op in trace.ops() {
            match op {
                Operation::Put { key, value } => db.put(key.clone(), value.clone()).unwrap(),
                Operation::Get { key } => {
                    db.get(key).unwrap();
                }
                Operation::Scan { start, limit } => {
                    let mut end = start.clone();
                    end.extend_from_slice(&[0xFF; 8]);
                    db.scan(start.clone()..end, *limit).unwrap();
                }
                Operation::Delete { key } => db.delete(key.clone()).unwrap(),
                Operation::ReadModifyWrite { key, value } => {
                    db.get(key).unwrap();
                    db.put(key.clone(), value.clone()).unwrap();
                }
            }
        }
        let online = WorkloadEstimate::from_metrics_snapshot(&db.metrics().delta_since(&before));

        assert_eq!(offline.writes, online.writes);
        assert_eq!(
            offline.point_reads + offline.empty_point_reads,
            online.point_reads + online.empty_point_reads
        );
        assert_eq!(offline.range_reads, online.range_reads);
        let (a, b) = (offline.profile(), online.profile());
        assert!((a.writes - b.writes).abs() < 1e-9);
        assert!((a.range_reads - b.range_reads).abs() < 1e-9);
    }

    #[test]
    fn empty_reads_classified() {
        let trace = Trace::from_ops(vec![
            Operation::Get { key: b"known".to_vec() },
            Operation::Get { key: b"absent!".to_vec() },
            Operation::Get { key: b"absent!".to_vec() },
        ]);
        let est = WorkloadEstimate::from_trace_with(&trace, |k| !k.ends_with(b"!"));
        assert_eq!(est.point_reads, 1);
        assert_eq!(est.empty_point_reads, 2);
        assert!((est.empty_read_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn profile_normalizes() {
        let est = WorkloadEstimate {
            writes: 60,
            point_reads: 20,
            empty_point_reads: 10,
            range_reads: 10,
            range_entries: 500,
            skew: 0.0,
        };
        let p = est.profile();
        assert!((p.writes - 0.6).abs() < 1e-12);
        assert!((p.range_reads - 0.1).abs() < 1e-12);
        assert!((p.range_entries - 50.0).abs() < 1e-12);
        assert_eq!(est.total_ops(), 100);
    }

    #[test]
    fn merge_sums_windows() {
        let mut a = WorkloadEstimate {
            writes: 10,
            skew: 1.0,
            ..Default::default()
        };
        let b = WorkloadEstimate {
            point_reads: 30,
            skew: 0.0,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.total_ops(), 40);
        assert!((a.skew - 0.25).abs() < 1e-12);
    }
}
