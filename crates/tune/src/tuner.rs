//! The tuning loop: metrics → estimate → model → actuation.
//!
//! A [`Tuner`] owns a [`Db`] handle and is *ticked* at points the caller
//! chooses (every N operations in a bench, on a `TUNE_STATUS` request in
//! the server). A tick never spawns threads and never consults wall
//! time, so under `BackgroundMode::Inline` the whole decision sequence
//! is a deterministic function of (workload, seed) — two identical runs
//! retune identically, byte for byte.
//!
//! Each tick:
//!
//! 1. snapshots the engine's metrics and diffs them against the
//!    previous tick ([`WorkloadEstimate::from_metrics_snapshot`]);
//! 2. if an actuation is pending audit, emits
//!    [`EventKind::RetuneObserved`] comparing the measured blocks/op
//!    against the model's prediction;
//! 3. runs the estimate through the navigator over the configured
//!    [`DesignSpace`] and compares the winner against the engine's
//!    current *effective* design;
//! 4. actuates through [`Db::set_dynamic`] only if the predicted
//!    relative gain clears the hysteresis threshold AND the cooldown has
//!    expired — the two guards that make oscillation impossible: a flip
//!    back is only considered `cooldown_ticks` later, and then only if
//!    the model predicts it wins by the same margin it just lost.
//!
//! Every actuation emits one [`EventKind::Retune`] per changed knob into
//! the engine's own event ring, so the audit trail rides the existing
//! observability pipeline.

use lsm_core::{Db, DynamicUpdate, EventKind, FilterAllocation, LsmConfig, MergeLayout};
use lsm_model::navigator::Environment;
use lsm_model::{navigate, Candidate, CostModel, DesignSpace, LsmDesign, MergePolicy};
use lsm_obs::json::JsonObj;
use lsm_obs::MetricsSnapshot;

use crate::estimator::WorkloadEstimate;

/// Tuning-loop policy knobs.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Candidate grid the navigator searches each tick.
    pub space: DesignSpace,
    /// Environment constants (entry size, block fan-in, memory budget).
    /// `num_entries` is treated as a floor; the live entry count from the
    /// engine's counters replaces it once larger.
    pub env: Environment,
    /// Hysteresis: actuate only when the predicted relative gain is at
    /// least this many per-mille (e.g. 50 = 5%).
    pub min_gain_milli: i64,
    /// Ticks to hold still after an actuation (also the audit window).
    pub cooldown_ticks: u32,
    /// Ticks with fewer operations than this are ignored entirely.
    pub min_ops_per_tick: u64,
    /// Deterministic tie-break among exactly-equal-cost candidates.
    pub seed: u64,
}

impl Default for TunerConfig {
    /// Geometry-agnostic defaults: the three canonical policies × a
    /// coarse size-ratio grid, a small pinned buffer fraction, and a
    /// modest memory budget. Prefer [`TunerConfig::for_db`] when an
    /// engine handle is available — it pins the buffer fraction to the
    /// engine's real (non-resizable) buffer.
    fn default() -> Self {
        TunerConfig {
            space: DesignSpace {
                policies: vec![
                    MergePolicy::Leveling,
                    MergePolicy::Tiering,
                    MergePolicy::LazyLeveling,
                ],
                size_ratios: vec![2, 4, 6, 8, 10],
                buffer_fractions: vec![0.05],
                try_monkey: true,
            },
            env: Environment {
                num_entries: 10_000,
                entry_bytes: 80,
                entries_per_block: 12,
                total_memory_bytes: 64 << 10,
            },
            min_gain_milli: 50,
            cooldown_ticks: 2,
            min_ops_per_tick: 200,
            seed: 0,
        }
    }
}

impl TunerConfig {
    /// A config derived from the engine's own geometry: the buffer
    /// fraction is pinned to the engine's actual buffer (the memtable
    /// cannot be resized online), leaving layout, size ratio, and filter
    /// memory as the searched axes.
    pub fn for_db(db: &Db, entry_bytes: u64, total_memory_bytes: u64) -> Self {
        let cfg = db.config();
        let frac = (cfg.buffer_bytes as f64 / total_memory_bytes.max(1) as f64).clamp(0.01, 0.95);
        TunerConfig {
            space: DesignSpace {
                policies: vec![
                    MergePolicy::Leveling,
                    MergePolicy::Tiering,
                    MergePolicy::LazyLeveling,
                ],
                size_ratios: vec![2, 4, 6, 8, 10],
                buffer_fractions: vec![frac],
                try_monkey: true,
            },
            env: Environment {
                num_entries: 10_000,
                entry_bytes: entry_bytes.max(1),
                entries_per_block: (cfg.block_size as u64 / entry_bytes.max(1)).max(1),
                total_memory_bytes,
            },
            min_gain_milli: 50,
            cooldown_ticks: 2,
            min_ops_per_tick: 200,
            seed: 0,
        }
    }
}

/// What a tick did (primarily for tests and logging; the authoritative
/// audit trail is the engine's event ring).
#[derive(Clone, Debug, PartialEq)]
pub enum TickOutcome {
    /// Too few operations in the window to estimate.
    Insufficient,
    /// Holding still inside a post-retune cooldown.
    CoolingDown,
    /// Estimated and navigated, but no candidate cleared the hysteresis
    /// threshold over the current design.
    Held {
        /// Best predicted relative gain seen, in per-mille.
        predicted_gain_milli: i64,
    },
    /// Actuated a retune.
    Retuned {
        /// Decision ordinal (matches the emitted `Retune` events).
        decision: u64,
        /// Knobs that changed.
        knobs: Vec<&'static str>,
        /// Predicted relative gain, in per-mille.
        predicted_gain_milli: i64,
    },
}

/// A retune awaiting its observed-gain audit.
#[derive(Clone, Debug)]
struct PendingAudit {
    decision: u64,
    knob: &'static str,
    predicted_gain_milli: i64,
    /// Measured blocks/op over the window *before* actuation.
    baseline_blocks_per_op: f64,
    /// Ticks left before the audit fires (lets the new config take
    /// effect through at least one maintenance cycle).
    ticks_left: u32,
}

/// One applied decision, kept for `status_json`.
#[derive(Clone, Debug)]
struct RetuneRecord {
    decision: u64,
    knobs: Vec<&'static str>,
    predicted_gain_milli: i64,
    observed_gain_milli: Option<i64>,
}

/// The self-tuner for one engine. See the module docs for the loop.
pub struct Tuner {
    cfg: TunerConfig,
    db: Db,
    last_snapshot: Option<MetricsSnapshot>,
    last_estimate: WorkloadEstimate,
    cooldown: u32,
    ticks: u64,
    decisions: u64,
    pending: Vec<PendingAudit>,
    history: Vec<RetuneRecord>,
}

impl Tuner {
    /// Creates a tuner steering `db`.
    pub fn new(db: Db, cfg: TunerConfig) -> Self {
        Tuner {
            cfg,
            db,
            last_snapshot: None,
            last_estimate: WorkloadEstimate::default(),
            cooldown: 0,
            ticks: 0,
            decisions: 0,
            pending: Vec::new(),
            history: Vec::new(),
        }
    }

    /// The engine this tuner steers.
    pub fn db(&self) -> &Db {
        &self.db
    }

    /// The most recent workload estimate.
    pub fn estimate(&self) -> &WorkloadEstimate {
        &self.last_estimate
    }

    /// Decisions actuated so far.
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Runs one tick of the loop. Deterministic given the engine's
    /// metrics state and the tuner seed.
    pub fn tick(&mut self) -> TickOutcome {
        self.ticks += 1;
        let snapshot = self.db.metrics();
        let delta = match &self.last_snapshot {
            Some(prev) => snapshot.delta_since(prev),
            None => snapshot.clone(),
        };
        let live_entries = snapshot
            .counters
            .get("db.puts")
            .copied()
            .unwrap_or(0)
            .saturating_sub(snapshot.counters.get("db.deletes").copied().unwrap_or(0));
        self.last_snapshot = Some(snapshot);
        let estimate = WorkloadEstimate::from_metrics_snapshot(&delta);
        let ops = estimate.total_ops();
        if ops < self.cfg.min_ops_per_tick {
            return TickOutcome::Insufficient;
        }
        let blocks_per_op = Self::blocks_per_op(&delta, ops);
        self.last_estimate = estimate.clone();
        self.audit(blocks_per_op);
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return TickOutcome::CoolingDown;
        }
        // --- model pass -------------------------------------------------
        let env = Environment {
            num_entries: live_entries.max(self.cfg.env.num_entries),
            ..self.cfg.env
        };
        let profile = estimate.profile();
        let effective = self.db.effective_config();
        let current = Self::design_of(&effective, env.entry_bytes);
        let current_cost =
            CostModel::new(current, env.num_entries, env.entries_per_block).workload_cost(&profile);
        let ranked = navigate(&self.cfg.space, &env, &profile);
        let chosen = Self::break_ties(&ranked, self.cfg.seed);
        let gain = if current_cost > 0.0 {
            (current_cost - chosen.cost) / current_cost
        } else {
            0.0
        };
        let gain_milli = (gain * 1000.0).round() as i64;
        if gain_milli < self.cfg.min_gain_milli {
            return TickOutcome::Held {
                predicted_gain_milli: gain_milli,
            };
        }
        // --- actuation --------------------------------------------------
        let (update, knobs) =
            Self::plan_update(&effective, &chosen.design, profile.writes);
        if knobs.is_empty() {
            // the winner is the design we already run (e.g. only the
            // un-actuatable buffer axis differs)
            return TickOutcome::Held {
                predicted_gain_milli: gain_milli,
            };
        }
        if self.db.set_dynamic(&update).is_err() {
            // a knob combination the engine rejects (should not happen
            // with the planned update, but never poison the loop)
            return TickOutcome::Held {
                predicted_gain_milli: gain_milli,
            };
        }
        self.decisions += 1;
        let decision = self.decisions;
        for (knob, from, to) in Self::knob_labels(&effective, &chosen.design, &update) {
            self.db.record_event(EventKind::Retune {
                decision,
                knob,
                from,
                to,
                predicted_gain_milli: gain_milli,
            });
        }
        self.pending.push(PendingAudit {
            decision,
            knob: knobs[0],
            predicted_gain_milli: gain_milli,
            baseline_blocks_per_op: blocks_per_op,
            ticks_left: self.cfg.cooldown_ticks.max(1),
        });
        self.history.push(RetuneRecord {
            decision,
            knobs: knobs.clone(),
            predicted_gain_milli: gain_milli,
            observed_gain_milli: None,
        });
        self.cooldown = self.cfg.cooldown_ticks;
        TickOutcome::Retuned {
            decision,
            knobs,
            predicted_gain_milli: gain_milli,
        }
    }

    /// Emits due `RetuneObserved` audits against this tick's measurement.
    fn audit(&mut self, blocks_per_op: f64) {
        let mut due = Vec::new();
        self.pending.retain_mut(|p| {
            if p.ticks_left > 1 {
                p.ticks_left -= 1;
                true
            } else {
                due.push(p.clone());
                false
            }
        });
        for p in due {
            let observed = if p.baseline_blocks_per_op > 0.0 {
                ((p.baseline_blocks_per_op - blocks_per_op) / p.baseline_blocks_per_op * 1000.0)
                    .round() as i64
            } else {
                0
            };
            self.db.record_event(EventKind::RetuneObserved {
                decision: p.decision,
                knob: p.knob,
                predicted_gain_milli: p.predicted_gain_milli,
                observed_gain_milli: observed,
            });
            if let Some(r) = self.history.iter_mut().find(|r| r.decision == p.decision) {
                r.observed_gain_milli = Some(observed);
            }
        }
    }

    /// Total device blocks moved per operation over a metrics delta.
    fn blocks_per_op(delta: &MetricsSnapshot, ops: u64) -> f64 {
        let blocks: u64 = delta
            .counters
            .iter()
            .filter(|(name, _)| {
                name.starts_with("io.")
                    && (name.ends_with(".read_blocks") || name.ends_with(".written_blocks"))
            })
            .map(|(_, v)| v)
            .sum();
        blocks as f64 / ops.max(1) as f64
    }

    /// The cost-model view of a running configuration.
    fn design_of(cfg: &LsmConfig, entry_bytes: u64) -> LsmDesign {
        let policy = match &cfg.layout {
            MergeLayout::Leveled => MergePolicy::Leveling,
            MergeLayout::Tiered => MergePolicy::Tiering,
            MergeLayout::LazyLeveled => MergePolicy::LazyLeveling,
            // hybrid has no closed form; leveling is the conservative read
            MergeLayout::Hybrid(_) => MergePolicy::Leveling,
        };
        LsmDesign {
            policy,
            size_ratio: cfg.size_ratio as u64,
            buffer_entries: (cfg.buffer_bytes as u64 / entry_bytes.max(1)).max(1),
            bits_per_key: cfg.bits_per_key,
            monkey: cfg.filter_allocation == FilterAllocation::Monkey,
        }
    }

    /// Picks from the ranked candidates, breaking *exact* cost ties with
    /// the seed (stable sort already makes the order deterministic; the
    /// seed only rotates among candidates the model cannot distinguish).
    fn break_ties(ranked: &[Candidate], seed: u64) -> Candidate {
        let best = ranked[0];
        let ties = ranked
            .iter()
            .take_while(|c| (c.cost - best.cost).abs() < 1e-12)
            .count();
        ranked[(seed % ties as u64) as usize]
    }

    /// Builds the dynamic update that moves `current` toward `target`,
    /// including L0 thresholds derived from the modeled write fraction:
    /// write-heavy phases earn more L0 slack before the engine pushes
    /// back; read-heavy phases keep L0 shallow so lookups probe fewer
    /// runs.
    fn plan_update(
        current: &LsmConfig,
        target: &LsmDesign,
        writes_frac: f64,
    ) -> (DynamicUpdate, Vec<&'static str>) {
        let mut update = DynamicUpdate::default();
        let mut knobs = Vec::new();
        let target_layout = match target.policy {
            MergePolicy::Leveling => MergeLayout::Leveled,
            MergePolicy::Tiering => MergeLayout::Tiered,
            MergePolicy::LazyLeveling => MergeLayout::LazyLeveled,
        };
        if current.layout != target_layout {
            update.layout = Some(target_layout);
            knobs.push("layout");
        }
        if current.size_ratio != target.size_ratio as usize {
            update.size_ratio = Some(target.size_ratio as usize);
            knobs.push("size_ratio");
        }
        let target_alloc = if target.monkey {
            FilterAllocation::Monkey
        } else {
            FilterAllocation::Uniform
        };
        // the model may award very generous per-key budgets in small
        // environments; the engine caps filters at 64 bits/key
        let target_bits = target.bits_per_key.clamp(0.0, 64.0);
        let bits_changed = (current.bits_per_key - target_bits).abs() >= 0.25;
        if bits_changed || current.filter_allocation != target_alloc {
            update.bits_per_key = Some(target_bits);
            update.filter_allocation = Some(target_alloc);
            knobs.push("bloom_bits");
        }
        let slack = 1 + (writes_frac.clamp(0.0, 1.0) * 6.0).round() as usize;
        let slowdown = current.l0_run_cap + slack;
        let stall = slowdown + slack.max(2);
        if current.l0_slowdown_runs != slowdown || current.l0_stall_runs != stall {
            update.l0_slowdown_runs = Some(slowdown);
            update.l0_stall_runs = Some(stall);
            knobs.push("l0_thresholds");
        }
        (update, knobs)
    }

    /// `(knob, from, to)` labels for the event trail.
    fn knob_labels(
        current: &LsmConfig,
        target: &LsmDesign,
        update: &DynamicUpdate,
    ) -> Vec<(&'static str, String, String)> {
        let mut out = Vec::new();
        if let Some(layout) = &update.layout {
            out.push((
                "layout",
                format!("{:?}", current.layout),
                format!("{layout:?}"),
            ));
        }
        if let Some(t) = update.size_ratio {
            out.push(("size_ratio", current.size_ratio.to_string(), t.to_string()));
        }
        if let Some(bits) = update.bits_per_key {
            let from_alloc = match current.filter_allocation {
                FilterAllocation::Uniform => "uniform",
                FilterAllocation::Monkey => "monkey",
            };
            let to_alloc = if target.monkey { "monkey" } else { "uniform" };
            out.push((
                "bloom_bits",
                format!("{:.1}/{from_alloc}", current.bits_per_key),
                format!("{:.1}/{to_alloc}", bits),
            ));
        }
        if let (Some(slow), Some(stall)) = (update.l0_slowdown_runs, update.l0_stall_runs) {
            out.push((
                "l0_thresholds",
                format!(
                    "{}/{}",
                    current.l0_slowdown_runs, current.l0_stall_runs
                ),
                format!("{slow}/{stall}"),
            ));
        }
        out
    }

    /// One-line JSON status: tick/decision counters, the live estimate,
    /// and the engine's current dynamic overrides — what `TUNE_STATUS`
    /// returns per shard.
    pub fn status_json(&self) -> String {
        let e = &self.last_estimate;
        let overrides = self.db.dynamic_overrides();
        let effective = self.db.effective_config();
        let observed: Vec<String> = self
            .history
            .iter()
            .map(|r| {
                let knobs = r
                    .knobs
                    .iter()
                    .map(|k| format!("\"{k}\""))
                    .collect::<Vec<_>>()
                    .join(",");
                format!(
                    "{{\"decision\":{},\"knobs\":[{knobs}],\"predicted_gain_milli\":{},\"observed_gain_milli\":{}}}",
                    r.decision,
                    r.predicted_gain_milli,
                    r.observed_gain_milli
                        .map(|v| v.to_string())
                        .unwrap_or_else(|| "null".into()),
                )
            })
            .collect();
        JsonObj::new()
            .u64("ticks", self.ticks)
            .u64("decisions", self.decisions)
            .u64("cooldown", self.cooldown as u64)
            .u64("generation", overrides.generation)
            .u64("est_writes", e.writes)
            .u64("est_point_reads", e.point_reads)
            .u64("est_empty_point_reads", e.empty_point_reads)
            .u64("est_range_reads", e.range_reads)
            .u64(
                "est_empty_read_frac_milli",
                (e.empty_read_fraction() * 1000.0).round() as u64,
            )
            .u64("est_skew_milli", (e.skew * 1000.0).round() as u64)
            .str("layout", &format!("{:?}", effective.layout))
            .u64("size_ratio", effective.size_ratio as u64)
            .raw("bits_per_key", &format!("{:.3}", effective.bits_per_key))
            .u64("l0_slowdown_runs", effective.l0_slowdown_runs as u64)
            .u64("l0_stall_runs", effective.l0_stall_runs as u64)
            .raw("retunes", &format!("[{}]", observed.join(",")))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsm_core::LsmConfig;
    use lsm_workload::encode_key;

    fn tuner_for(db: &Db) -> Tuner {
        // a tight memory budget keeps modeled bits/key in a realistic
        // range, so filter quality actually differentiates the designs
        let mut cfg = TunerConfig::for_db(db, 80, 20 << 10);
        cfg.min_ops_per_tick = 100;
        Tuner::new(db.clone(), cfg)
    }

    fn write_burst(db: &Db, n: u64, tag: u64) {
        for i in 0..n {
            db.put(encode_key(tag * 1_000_000 + i), vec![7u8; 48]).unwrap();
        }
    }

    fn read_burst(db: &Db, n: u64) {
        for i in 0..n {
            db.get(&encode_key(i % 500)).unwrap();
            // absent key: drives the empty-read fraction up
            let mut k = encode_key(i % 500);
            k.push(b'!');
            db.get(&k).unwrap();
        }
    }

    #[test]
    fn write_heavy_workload_steers_away_from_leveling() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let mut tuner = tuner_for(&db);
        write_burst(&db, 3_000, 0);
        let out = tuner.tick();
        match out {
            TickOutcome::Retuned { ref knobs, .. } => {
                assert!(knobs.contains(&"layout"), "{out:?}");
                let layout = db.effective_config().layout;
                assert_ne!(layout, MergeLayout::Leveled, "{out:?}");
            }
            other => panic!("expected a retune, got {other:?}"),
        }
        let events = db.drain_events();
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::Retune { .. })));
    }

    #[test]
    fn hysteresis_and_cooldown_prevent_oscillation() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let mut tuner = tuner_for(&db);
        write_burst(&db, 2_000, 0);
        assert!(matches!(tuner.tick(), TickOutcome::Retuned { .. }));
        // identical traffic again: cooldown holds first, and any later
        // decision must be a *forward* adaptation (the data volume keeps
        // growing), never a flip back to a layout the tuner just left
        for tag in 1..6 {
            write_burst(&db, 2_000, tag);
            tuner.tick();
        }
        let layout_moves: Vec<(String, String)> = db
            .drain_events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Retune { knob: "layout", from, to, .. } => {
                    Some((from.clone(), to.clone()))
                }
                _ => None,
            })
            .collect();
        for pair in layout_moves.windows(2) {
            assert_eq!(pair[0].1, pair[1].0, "discontinuous moves: {layout_moves:?}");
            assert_ne!(pair[1].1, pair[0].0, "flip-flop: {layout_moves:?}");
        }
        // and cooldown bounds the rate: at most one decision per
        // (1 + cooldown) ticks
        assert!(tuner.decisions() <= 2, "too many retunes: {layout_moves:?}");
    }

    #[test]
    fn too_little_traffic_is_ignored() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let mut tuner = tuner_for(&db);
        write_burst(&db, 10, 0);
        assert_eq!(tuner.tick(), TickOutcome::Insufficient);
    }

    #[test]
    fn observed_gain_audit_lands_in_the_event_ring() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let mut tuner = tuner_for(&db);
        write_burst(&db, 3_000, 0);
        assert!(matches!(tuner.tick(), TickOutcome::Retuned { .. }));
        db.drain_events();
        for tag in 1..4 {
            write_burst(&db, 2_000, tag);
            tuner.tick();
        }
        let events = db.drain_events();
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::RetuneObserved { .. })),
            "audit event missing: {events:?}"
        );
    }

    #[test]
    fn read_heavy_phase_tightens_l0_thresholds() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let mut tuner = tuner_for(&db);
        // a sharper trigger so the phase change overcomes the (already
        // decent) write-phase design within this short run
        tuner.cfg.min_gain_milli = 20;
        write_burst(&db, 2_000, 0);
        let mut outcomes = vec![format!("{:?}", tuner.tick())];
        // burn through cooldown with read traffic, then observe a
        // read-phase decision
        for _ in 0..4 {
            read_burst(&db, 1_000);
            outcomes.push(format!("{:?}", tuner.tick()));
        }
        let eff = db.effective_config();
        let base = db.config();
        // read-heavy: slack shrinks toward 1, so thresholds sit at or
        // below the write-phase ones and the layout is read-optimized
        assert!(
            eff.l0_slowdown_runs <= base.l0_run_cap + 2,
            "thresholds {}/{} after {outcomes:?}",
            eff.l0_slowdown_runs,
            eff.l0_stall_runs
        );
        assert_ne!(eff.layout, MergeLayout::Tiered, "{outcomes:?}");
    }

    #[test]
    fn status_json_is_valid() {
        let db = Db::open_in_memory(LsmConfig::small_for_tests()).unwrap();
        let mut tuner = tuner_for(&db);
        write_burst(&db, 2_000, 0);
        tuner.tick();
        let status = tuner.status_json();
        lsm_obs::json::validate_json(&status).unwrap();
        assert!(status.contains("\"decisions\":1"));
    }

    #[test]
    fn decisions_are_deterministic_across_runs() {
        // Determinism covers the event stream (seq numbers, observed
        // gains), which only holds when background work runs inline —
        // pin the mode rather than following LSM_BACKGROUND.
        let run = || {
            let cfg = LsmConfig {
                background: lsm_core::BackgroundMode::Inline,
                ..LsmConfig::small_for_tests()
            };
            let db = Db::open_in_memory(cfg).unwrap();
            let mut tuner = tuner_for(&db);
            let mut log = Vec::new();
            for tag in 0..3 {
                write_burst(&db, 2_000, tag);
                log.push(format!("{:?}", tuner.tick()));
            }
            for _ in 0..3 {
                read_burst(&db, 1_500);
                log.push(format!("{:?}", tuner.tick()));
            }
            let events: Vec<String> = db
                .drain_events()
                .iter()
                .filter(|e| {
                    matches!(
                        e.kind,
                        EventKind::Retune { .. } | EventKind::RetuneObserved { .. }
                    )
                })
                .map(|e| e.to_json_line())
                .collect();
            (log, events)
        };
        assert_eq!(run(), run());
    }
}
