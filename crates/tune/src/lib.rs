//! # lsm-tuner
//!
//! The self-driving tuner: closes the observability → cost-model →
//! engine loop *online*. Where the offline experiments (E11/E12) pick a
//! design from a recorded trace before the engine starts, this crate
//! watches a *running* engine's metrics, re-estimates the workload mix
//! as it drifts, and actuates the model's recommendation through the
//! engine's [`DynamicConfig`](lsm_core::DynamicConfig) surface — bloom
//! bits and Monkey allocation for tables built from now on, merge
//! policy and size ratio staged as compaction-picker changes, and L0
//! backpressure thresholds derived from the write fraction.
//!
//! Two modules:
//!
//! - [`estimator`]: [`WorkloadEstimate`] — the one workload-estimation
//!   code path, consumable from a recorded trace (offline) or a metrics
//!   delta (online);
//! - [`tuner`]: the [`Tuner`] loop — hysteresis, cooldown, typed
//!   `Retune` / `RetuneObserved` audit events.
//!
//! Everything here is deterministic: no wall clocks, no threads, no
//! unseeded randomness. Under `BackgroundMode::Inline`, identical runs
//! produce byte-identical retune event sequences.

pub mod estimator;
pub mod tuner;

pub use estimator::WorkloadEstimate;
pub use tuner::{TickOutcome, Tuner, TunerConfig};
