//! Property-based checks on the analytical cost models: the qualitative
//! laws the tutorial teaches must hold over the whole parameter space,
//! not just at hand-picked points.

use proptest::prelude::*;

use lsm_model::navigator::Environment;
use lsm_model::robust::{robust_navigate, worst_case_cost, WorkloadNeighborhood};
use lsm_model::{
    navigate, CostModel, DesignSpace, LsmDesign, MergePolicy, WorkloadProfile,
};

fn model(policy: MergePolicy, t: u64, buffer: u64, bpk: f64, n: u64) -> CostModel {
    CostModel::new(
        LsmDesign {
            policy,
            size_ratio: t,
            buffer_entries: buffer,
            bits_per_key: bpk,
            monkey: false,
        },
        n,
        64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Tiering never writes more than leveling at the same shape.
    /// (The closed forms are asymptotic in T; below T≈4 the two layouts
    /// coincide physically — at T=2 a tiered level holds one run, exactly
    /// a leveled level — so the property is stated on the models' validity
    /// range.)
    #[test]
    fn tiering_write_cost_never_exceeds_leveling(
        t in 4u64..20,
        buffer in 100u64..100_000,
        n in 1_000u64..1_000_000_000,
    ) {
        let lev = model(MergePolicy::Leveling, t, buffer, 10.0, n).write_cost();
        let tier = model(MergePolicy::Tiering, t, buffer, 10.0, n).write_cost();
        prop_assert!(tier <= lev + 1e-12, "tier {tier} > lev {lev}");
    }

    /// Leveling never probes more runs than tiering.
    #[test]
    fn leveling_probes_fewer_runs(
        t in 2u64..20,
        buffer in 100u64..100_000,
        n in 1_000u64..1_000_000_000,
    ) {
        let lev = model(MergePolicy::Leveling, t, buffer, 10.0, n).runs_to_probe();
        let tier = model(MergePolicy::Tiering, t, buffer, 10.0, n).runs_to_probe();
        prop_assert!(lev <= tier + 1e-12);
    }

    /// Lazy leveling is sandwiched between the pure policies on writes and
    /// on zero-result lookups.
    #[test]
    fn lazy_leveling_interpolates(
        t in 4u64..20,
        n in 100_000u64..1_000_000_000,
    ) {
        let buffer = 1000u64;
        let lev = model(MergePolicy::Leveling, t, buffer, 10.0, n);
        let tier = model(MergePolicy::Tiering, t, buffer, 10.0, n);
        let lazy = model(MergePolicy::LazyLeveling, t, buffer, 10.0, n);
        prop_assert!(lazy.write_cost() <= lev.write_cost() + 1e-12);
        prop_assert!(lazy.write_cost() + 1e-12 >= tier.write_cost());
        prop_assert!(lazy.zero_result_lookup_cost() <= tier.zero_result_lookup_cost() + 1e-12);
    }

    /// More filter memory never increases the zero-result lookup cost.
    #[test]
    fn lookup_cost_monotone_in_filter_bits(
        t in 2u64..16,
        n in 100_000u64..100_000_000,
        bpk_lo in 0.0f64..20.0,
        delta in 0.0f64..10.0,
    ) {
        let a = model(MergePolicy::Leveling, t, 1000, bpk_lo, n).zero_result_lookup_cost();
        let b = model(MergePolicy::Leveling, t, 1000, bpk_lo + delta, n).zero_result_lookup_cost();
        prop_assert!(b <= a + 1e-12, "{b} > {a}");
    }

    /// A bigger buffer never increases the level count.
    #[test]
    fn levels_monotone_in_buffer(
        t in 2u64..16,
        n in 1_000u64..1_000_000_000,
        buf_lo in 10u64..10_000,
        factor in 1u64..100,
    ) {
        let a = model(MergePolicy::Leveling, t, buf_lo, 10.0, n).num_levels();
        let b = model(MergePolicy::Leveling, t, buf_lo * factor, 10.0, n).num_levels();
        prop_assert!(b <= a);
    }

    /// Monkey's modeled cost never exceeds uniform at equal parameters.
    #[test]
    fn monkey_flag_never_hurts(
        t in 2u64..16,
        n in 100_000u64..100_000_000,
        bpk in 1.0f64..16.0,
    ) {
        let mut d = LsmDesign {
            policy: MergePolicy::Leveling,
            size_ratio: t,
            buffer_entries: 1000,
            bits_per_key: bpk,
            monkey: false,
        };
        let uniform = CostModel::new(d, n, 64).zero_result_lookup_cost();
        d.monkey = true;
        let monkey = CostModel::new(d, n, 64).zero_result_lookup_cost();
        prop_assert!(monkey <= uniform + 1e-12);
    }

    /// The navigator's choice is optimal within its own candidate set.
    #[test]
    fn navigator_head_minimizes_cost(
        writes in 0.0f64..1.0,
        point in 0.0f64..1.0,
        empty in 0.0f64..1.0,
    ) {
        prop_assume!(writes + point + empty > 0.01);
        let w = WorkloadProfile {
            writes,
            point_reads: point,
            empty_point_reads: empty,
            range_reads: 0.05,
            range_entries: 100.0,
        };
        let env = Environment {
            num_entries: 10_000_000,
            entry_bytes: 100,
            entries_per_block: 40,
            total_memory_bytes: 64 << 20,
        };
        let ranked = navigate(&DesignSpace::default(), &env, &w);
        for c in &ranked[1..] {
            prop_assert!(ranked[0].cost <= c.cost + 1e-12);
        }
    }

    /// The robust pick's worst case never exceeds the nominal pick's.
    #[test]
    fn robust_worst_case_never_exceeds_nominal(
        writes in 0.0f64..1.0,
        point in 0.0f64..1.0,
        rho in 0.0f64..0.8,
    ) {
        prop_assume!(writes + point > 0.01);
        let center = WorkloadProfile {
            writes,
            point_reads: point,
            empty_point_reads: 0.1,
            range_reads: 0.05,
            range_entries: 200.0,
        };
        let env = Environment {
            num_entries: 10_000_000,
            entry_bytes: 100,
            entries_per_block: 40,
            total_memory_bytes: 64 << 20,
        };
        let space = DesignSpace {
            size_ratios: vec![2, 4, 8],
            buffer_fractions: vec![0.1, 0.5],
            ..DesignSpace::default()
        };
        let nb = WorkloadNeighborhood::new(center, rho);
        let (robust, nominal) = robust_navigate(&space, &env, &nb);
        prop_assert!(
            worst_case_cost(&robust, &env, &nb)
                <= worst_case_cost(&nominal, &env, &nb) + 1e-12
        );
    }
}
