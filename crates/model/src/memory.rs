//! Buffer-vs-filter memory split optimization (tutorial Module II.5).
//!
//! A byte of memory can either grow the write buffer (fewer levels, less
//! merging, fewer runs to probe) or feed the Bloom filters (fewer
//! superfluous probes). Monkey and Luo & Carey show the optimal split is
//! workload-dependent; this module sweeps the split under the closed-form
//! cost model, which experiment `mem_alloc` validates against the real
//! engine.

use crate::cost::{CostModel, LsmDesign, WorkloadProfile};

/// A chosen memory split and its modeled cost.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemorySplit {
    /// Fraction of memory given to the write buffer (rest goes to filters).
    pub buffer_fraction: f64,
    /// Resulting buffer size in entries.
    pub buffer_entries: u64,
    /// Resulting filter bits per key.
    pub bits_per_key: f64,
    /// Modeled cost per operation, in I/Os.
    pub cost: f64,
}

/// Sweeps buffer fractions and returns the cost-minimal split.
///
/// * `total_memory_bytes` — memory shared by buffer and filters.
/// * `entry_bytes` — size of one key-value entry.
/// * `num_entries` — total data size in entries.
/// * `base` — design template (policy, size ratio, monkey flag).
/// * `workload` — operation mix to optimize for.
pub fn optimize_memory_split(
    total_memory_bytes: u64,
    entry_bytes: u64,
    num_entries: u64,
    entries_per_block: u64,
    base: LsmDesign,
    workload: &WorkloadProfile,
) -> MemorySplit {
    let mut best: Option<MemorySplit> = None;
    for pct in 1..100u64 {
        let frac = pct as f64 / 100.0;
        let candidate = evaluate_split(
            frac,
            total_memory_bytes,
            entry_bytes,
            num_entries,
            entries_per_block,
            base,
            workload,
        );
        if best.is_none_or(|b| candidate.cost < b.cost) {
            best = Some(candidate);
        }
    }
    best.expect("sweep is non-empty")
}

/// Evaluates a single buffer fraction under the cost model.
pub fn evaluate_split(
    buffer_fraction: f64,
    total_memory_bytes: u64,
    entry_bytes: u64,
    num_entries: u64,
    entries_per_block: u64,
    base: LsmDesign,
    workload: &WorkloadProfile,
) -> MemorySplit {
    let buffer_bytes = (total_memory_bytes as f64 * buffer_fraction) as u64;
    let filter_bits = (total_memory_bytes - buffer_bytes) * 8;
    let buffer_entries = (buffer_bytes / entry_bytes.max(1)).max(1);
    let bits_per_key = filter_bits as f64 / num_entries.max(1) as f64;
    let design = LsmDesign {
        buffer_entries,
        bits_per_key,
        ..base
    };
    let cost = CostModel::new(design, num_entries, entries_per_block).workload_cost(workload);
    MemorySplit {
        buffer_fraction,
        buffer_entries,
        bits_per_key,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::MergePolicy;

    const MB: u64 = 1 << 20;

    fn base() -> LsmDesign {
        LsmDesign {
            policy: MergePolicy::Leveling,
            size_ratio: 10,
            buffer_entries: 0, // set by the sweep
            bits_per_key: 0.0, // set by the sweep
            monkey: false,
        }
    }

    fn lookup_heavy() -> WorkloadProfile {
        WorkloadProfile {
            writes: 0.05,
            point_reads: 0.15,
            empty_point_reads: 0.8,
            range_reads: 0.0,
            range_entries: 0.0,
        }
    }

    fn write_heavy() -> WorkloadProfile {
        WorkloadProfile {
            writes: 0.95,
            point_reads: 0.05,
            empty_point_reads: 0.0,
            range_reads: 0.0,
            range_entries: 0.0,
        }
    }

    #[test]
    fn lookup_heavy_prefers_filters() {
        let split = optimize_memory_split(64 * MB, 128, 50_000_000, 32, base(), &lookup_heavy());
        assert!(
            split.buffer_fraction < 0.5,
            "lookup-heavy should feed filters: {split:?}"
        );
        assert!(split.bits_per_key > 1.0);
    }

    #[test]
    fn write_heavy_prefers_buffer() {
        let lo = optimize_memory_split(64 * MB, 128, 50_000_000, 32, base(), &write_heavy());
        let hi = optimize_memory_split(64 * MB, 128, 50_000_000, 32, base(), &lookup_heavy());
        assert!(
            lo.buffer_fraction > hi.buffer_fraction,
            "write-heavy {lo:?} vs lookup-heavy {hi:?}"
        );
    }

    #[test]
    fn chosen_split_is_no_worse_than_fixed_splits() {
        let w = lookup_heavy();
        let best = optimize_memory_split(64 * MB, 128, 50_000_000, 32, base(), &w);
        for frac in [0.01, 0.25, 0.5, 0.75, 0.99] {
            let fixed = evaluate_split(frac, 64 * MB, 128, 50_000_000, 32, base(), &w);
            assert!(
                best.cost <= fixed.cost + 1e-12,
                "best {best:?} vs fixed {fixed:?}"
            );
        }
    }

    #[test]
    fn split_accounting_adds_up() {
        let s = evaluate_split(0.5, 64 * MB, 128, 1_000_000, 32, base(), &lookup_heavy());
        // half the memory as buffer entries
        assert_eq!(s.buffer_entries, 32 * MB / 128);
        // other half as filter bits
        let expected_bpk = (32 * MB * 8) as f64 / 1_000_000.0;
        assert!((s.bits_per_key - expected_bpk).abs() / expected_bpk < 0.01);
    }
}
