//! Robust tuning under workload uncertainty (Endure — Huynh et al.,
//! VLDB '22; tutorial Module III.2).
//!
//! The nominal navigator optimizes for one expected workload; if the
//! observed workload drifts, the nominally-optimal design can degrade
//! badly. Robust tuning instead minimizes the *worst-case* cost over a
//! neighborhood of workloads around the expectation, trading a little
//! nominal performance for a bounded downside.

use crate::cost::WorkloadProfile;
use crate::navigator::{cost_under, navigate, Candidate, DesignSpace, Environment};

/// A neighborhood of workloads around an expected center.
///
/// Endure uses a KL-divergence ball over the operation mix; we use the
/// same idea with an explicit sample set: the center plus perturbations
/// that shift up to `rho` of the probability mass between operation types.
#[derive(Clone, Debug)]
pub struct WorkloadNeighborhood {
    /// The expected workload.
    pub center: WorkloadProfile,
    /// Maximum probability mass that may shift.
    pub rho: f64,
    samples: Vec<WorkloadProfile>,
}

impl WorkloadNeighborhood {
    /// Builds the neighborhood: for every ordered pair of operation types,
    /// a sample moving `rho` mass from one to the other (clamped at zero).
    pub fn new(center: WorkloadProfile, rho: f64) -> Self {
        let center = center.normalized();
        let rho = rho.clamp(0.0, 1.0);
        let mut samples = vec![center];
        let get = |w: &WorkloadProfile, i: usize| match i {
            0 => w.writes,
            1 => w.point_reads,
            2 => w.empty_point_reads,
            _ => w.range_reads,
        };
        let set = |w: &mut WorkloadProfile, i: usize, v: f64| match i {
            0 => w.writes = v,
            1 => w.point_reads = v,
            2 => w.empty_point_reads = v,
            _ => w.range_reads = v,
        };
        for from in 0..4 {
            for to in 0..4 {
                if from == to {
                    continue;
                }
                let mut w = center;
                let moved = rho.min(get(&w, from));
                if moved <= 0.0 {
                    continue;
                }
                let new_from = get(&w, from) - moved;
                let new_to = get(&w, to) + moved;
                set(&mut w, from, new_from);
                set(&mut w, to, new_to);
                samples.push(w.normalized());
            }
        }
        WorkloadNeighborhood {
            center,
            rho,
            samples,
        }
    }

    /// The workload samples (center first).
    pub fn samples(&self) -> &[WorkloadProfile] {
        &self.samples
    }
}

/// Worst-case cost of a candidate over the neighborhood.
pub fn worst_case_cost(
    candidate: &Candidate,
    env: &Environment,
    neighborhood: &WorkloadNeighborhood,
) -> f64 {
    neighborhood
        .samples()
        .iter()
        .map(|w| cost_under(candidate, env, w))
        .fold(0.0, f64::max)
}

/// Robust navigation: rank candidates by worst-case (not nominal) cost.
/// Returns `(robust_best, nominal_best)` so callers can report the
/// nominal-vs-robust gap.
pub fn robust_navigate(
    space: &DesignSpace,
    env: &Environment,
    neighborhood: &WorkloadNeighborhood,
) -> (Candidate, Candidate) {
    let nominal_ranked = navigate(space, env, &neighborhood.center);
    let nominal_best = nominal_ranked[0];
    let robust_best = nominal_ranked
        .iter()
        .min_by(|a, b| {
            worst_case_cost(a, env, neighborhood)
                .partial_cmp(&worst_case_cost(b, env, neighborhood))
                .unwrap()
        })
        .copied()
        .expect("candidate set is non-empty");
    (robust_best, nominal_best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Environment {
        Environment {
            num_entries: 100_000_000,
            entry_bytes: 128,
            entries_per_block: 32,
            total_memory_bytes: 256 << 20,
        }
    }

    fn center() -> WorkloadProfile {
        WorkloadProfile {
            writes: 0.9,
            point_reads: 0.05,
            empty_point_reads: 0.05,
            range_reads: 0.0,
            range_entries: 1000.0,
        }
    }

    #[test]
    fn neighborhood_contains_center_and_perturbations() {
        let n = WorkloadNeighborhood::new(center(), 0.2);
        assert!(n.samples().len() > 1);
        let c = n.samples()[0];
        assert!((c.writes - 0.9).abs() < 1e-9);
        // some sample moved mass away from writes
        assert!(n.samples().iter().any(|w| w.writes < 0.75));
    }

    #[test]
    fn zero_rho_collapses_to_nominal() {
        let n = WorkloadNeighborhood::new(center(), 0.0);
        let (robust, nominal) = robust_navigate(&DesignSpace::default(), &env(), &n);
        assert_eq!(robust.design, nominal.design);
    }

    #[test]
    fn robust_design_has_lower_worst_case() {
        let n = WorkloadNeighborhood::new(center(), 0.4);
        let (robust, nominal) = robust_navigate(&DesignSpace::default(), &env(), &n);
        let wc_robust = worst_case_cost(&robust, &env(), &n);
        let wc_nominal = worst_case_cost(&nominal, &env(), &n);
        assert!(wc_robust <= wc_nominal + 1e-12);
    }

    #[test]
    fn robust_gives_up_some_nominal_cost_under_large_drift() {
        let n = WorkloadNeighborhood::new(center(), 0.5);
        let (robust, nominal) = robust_navigate(&DesignSpace::default(), &env(), &n);
        // by definition nominal_best is nominal-optimal
        assert!(nominal.cost <= robust.cost + 1e-12);
    }

    #[test]
    fn rho_is_clamped() {
        let n = WorkloadNeighborhood::new(center(), 7.0);
        assert!(n.rho <= 1.0);
        for w in n.samples() {
            assert!(w.writes >= -1e-12);
            assert!(w.point_reads >= -1e-12);
        }
    }
}
