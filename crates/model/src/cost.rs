//! Closed-form worst-case I/O cost models for LSM-trees.
//!
//! These are the standard models from Monkey (Dayan et al., SIGMOD '17)
//! and Dostoevsky (Dayan & Idreos, SIGMOD '18) that the tutorial's
//! Module III builds its navigation story on. All costs are in *storage
//! accesses per operation*; the experiment suite checks that the measured
//! engine reproduces their shapes.

/// Merge policy — the primary shape axis (tutorial Module I.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MergePolicy {
    /// One sorted run per level; merge eagerly (LevelDB/RocksDB default).
    Leveling,
    /// Up to `T` runs per level; merge lazily (Cassandra/ScyllaDB STCS).
    Tiering,
    /// Tiering on all levels except the largest, which is leveled
    /// (Dostoevsky's lazy leveling).
    LazyLeveling,
}

impl MergePolicy {
    /// All policies.
    pub const ALL: [MergePolicy; 3] = [
        MergePolicy::Leveling,
        MergePolicy::Tiering,
        MergePolicy::LazyLeveling,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            MergePolicy::Leveling => "leveling",
            MergePolicy::Tiering => "tiering",
            MergePolicy::LazyLeveling => "lazy-leveling",
        }
    }
}

/// A point in the LSM design space.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LsmDesign {
    /// Merge policy.
    pub policy: MergePolicy,
    /// Size ratio between adjacent levels (≥ 2).
    pub size_ratio: u64,
    /// Memory buffer capacity, in entries.
    pub buffer_entries: u64,
    /// Bloom filter bits per key (0 = no filters).
    pub bits_per_key: f64,
    /// Whether filter memory uses Monkey's optimal allocation.
    pub monkey: bool,
}

impl Default for LsmDesign {
    fn default() -> Self {
        LsmDesign {
            policy: MergePolicy::Leveling,
            size_ratio: 10,
            buffer_entries: 1 << 16,
            bits_per_key: 10.0,
            monkey: false,
        }
    }
}

/// Workload description for cost weighting.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct WorkloadProfile {
    /// Fraction of writes (inserts/updates).
    pub writes: f64,
    /// Fraction of point lookups on existing keys.
    pub point_reads: f64,
    /// Fraction of point lookups on absent keys.
    pub empty_point_reads: f64,
    /// Fraction of range scans.
    pub range_reads: f64,
    /// Average range selectivity, in entries returned per scan.
    pub range_entries: f64,
}

impl WorkloadProfile {
    /// Normalizes fractions to sum to one.
    pub fn normalized(mut self) -> Self {
        let total = self.writes + self.point_reads + self.empty_point_reads + self.range_reads;
        if total > 0.0 {
            self.writes /= total;
            self.point_reads /= total;
            self.empty_point_reads /= total;
            self.range_reads /= total;
        }
        self
    }
}

const LN2_SQ: f64 = std::f64::consts::LN_2 * std::f64::consts::LN_2;

/// Bloom FPR for a bits-per-key budget.
fn bloom_fpr(bits_per_key: f64) -> f64 {
    if bits_per_key <= 0.0 {
        1.0
    } else {
        (-bits_per_key * LN2_SQ).exp().min(1.0)
    }
}

/// The analytical cost model for one design over one data size.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// The design being modeled.
    pub design: LsmDesign,
    /// Total entries in the tree.
    pub num_entries: u64,
    /// Entries per storage block.
    pub entries_per_block: u64,
}

impl CostModel {
    /// Creates a model; `entries_per_block` must be ≥ 1.
    pub fn new(design: LsmDesign, num_entries: u64, entries_per_block: u64) -> Self {
        CostModel {
            design,
            num_entries,
            entries_per_block: entries_per_block.max(1),
        }
    }

    /// Number of storage levels `L = ceil(log_T(N / P))`, at least 1.
    pub fn num_levels(&self) -> u64 {
        let t = self.design.size_ratio.max(2) as f64;
        let n = self.num_entries.max(1) as f64;
        let p = self.design.buffer_entries.max(1) as f64;
        if n <= p {
            return 1;
        }
        ((n / p).ln() / t.ln()).ceil().max(1.0) as u64
    }

    /// Number of sorted runs a point lookup may probe.
    pub fn runs_to_probe(&self) -> f64 {
        let l = self.num_levels() as f64;
        let t = self.design.size_ratio.max(2) as f64;
        match self.design.policy {
            MergePolicy::Leveling => l,
            MergePolicy::Tiering => l * (t - 1.0),
            MergePolicy::LazyLeveling => (l - 1.0).max(0.0) * (t - 1.0) + 1.0,
        }
    }

    /// Expected per-run FPR sum (the zero-result lookup cost in I/Os).
    ///
    /// With uniform allocation every run has FPR `p`, so the cost is
    /// `runs * p`. With Monkey the sum collapses to `O(p_L)` — modeled as
    /// the uniform cost times the Monkey improvement factor
    /// `(T-1)/T / L`-ish; we use the closed form from the Monkey paper:
    /// total FPR `≈ p_uniform * (T/(T-1)) / L` for leveling.
    pub fn zero_result_lookup_cost(&self) -> f64 {
        let p = bloom_fpr(self.design.bits_per_key);
        let runs = self.runs_to_probe();
        let uniform = runs * p;
        if !self.design.monkey {
            return uniform.min(runs);
        }
        // Monkey: sum of FPRs with optimal allocation at equal memory is
        // smaller by roughly L / (T/(T-1)): the sum becomes a geometric
        // series dominated by the largest level.
        let l = self.num_levels() as f64;
        let t = self.design.size_ratio.max(2) as f64;
        let factor = (t / (t - 1.0)) / l.max(1.0);
        (uniform * factor).min(runs)
    }

    /// Expected cost of a point lookup that finds its key: one data-block
    /// read plus false-positive reads along the way.
    pub fn point_lookup_cost(&self) -> f64 {
        1.0 + self.zero_result_lookup_cost() * 0.5
    }

    /// Short range scan: one block per qualifying run (filters do not help).
    pub fn short_range_cost(&self) -> f64 {
        self.runs_to_probe()
    }

    /// Long range scan returning `s` entries: seek per run plus the
    /// sequential entry transfer, which the largest level dominates.
    pub fn long_range_cost(&self, s: f64) -> f64 {
        let b = self.entries_per_block as f64;
        let t = self.design.size_ratio.max(2) as f64;
        let transfer = match self.design.policy {
            MergePolicy::Leveling => s / b,
            // tiered last level has up to T-1 overlapping runs to merge
            MergePolicy::Tiering => (t - 1.0) * s / b,
            MergePolicy::LazyLeveling => s / b,
        };
        self.runs_to_probe() + transfer
    }

    /// Amortized write cost in I/Os per inserted entry: each entry is
    /// copied `O(T)` times per level under leveling but only once per
    /// level under tiering, divided by block fan-in.
    pub fn write_cost(&self) -> f64 {
        let l = self.num_levels() as f64;
        let t = self.design.size_ratio.max(2) as f64;
        let b = self.entries_per_block as f64;
        match self.design.policy {
            MergePolicy::Leveling => l * (t - 1.0) / (2.0 * b),
            MergePolicy::Tiering => l / b,
            MergePolicy::LazyLeveling => ((l - 1.0).max(0.0) + (t - 1.0) / 2.0) / b,
        }
    }

    /// Write amplification: total bytes written per byte ingested.
    pub fn write_amplification(&self) -> f64 {
        self.write_cost() * self.entries_per_block as f64
    }

    /// Space amplification upper bound (obsolete-entry overhead).
    pub fn space_amplification(&self) -> f64 {
        let t = self.design.size_ratio.max(2) as f64;
        match self.design.policy {
            // all smaller levels may duplicate last-level entries
            MergePolicy::Leveling => 1.0 / (t - 1.0),
            // every run in the last level may duplicate every other
            MergePolicy::Tiering => t - 1.0,
            MergePolicy::LazyLeveling => 1.0 / (t - 1.0) + 1.0 / t,
        }
    }

    /// Expected cost of one operation under `w`, in I/Os.
    pub fn workload_cost(&self, w: &WorkloadProfile) -> f64 {
        let w = w.normalized();
        w.writes * self.write_cost()
            + w.point_reads * self.point_lookup_cost()
            + w.empty_point_reads * self.zero_result_lookup_cost()
            + w.range_reads * self.long_range_cost(w.range_entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(policy: MergePolicy, t: u64, bpk: f64) -> CostModel {
        CostModel::new(
            LsmDesign {
                policy,
                size_ratio: t,
                buffer_entries: 1000,
                bits_per_key: bpk,
                monkey: false,
            },
            100_000_000,
            100,
        )
    }

    #[test]
    fn level_count_shrinks_with_t() {
        let l2 = model(MergePolicy::Leveling, 2, 10.0).num_levels();
        let l10 = model(MergePolicy::Leveling, 10, 10.0).num_levels();
        assert!(l2 > l10, "{l2} vs {l10}");
        // N/P = 1e5 → log2 ≈ 17, log10 = 5
        assert_eq!(l10, 5);
        assert_eq!(l2, 17);
    }

    #[test]
    fn tiny_tree_has_one_level() {
        let m = CostModel::new(
            LsmDesign {
                buffer_entries: 1_000_000,
                ..Default::default()
            },
            1000,
            100,
        );
        assert_eq!(m.num_levels(), 1);
    }

    #[test]
    fn tiering_writes_cheaper_reads_dearer() {
        let lev = model(MergePolicy::Leveling, 10, 10.0);
        let tier = model(MergePolicy::Tiering, 10, 10.0);
        assert!(tier.write_cost() < lev.write_cost());
        assert!(tier.zero_result_lookup_cost() > lev.zero_result_lookup_cost());
        assert!(tier.short_range_cost() > lev.short_range_cost());
    }

    #[test]
    fn lazy_leveling_sits_between() {
        let lev = model(MergePolicy::Leveling, 10, 10.0);
        let tier = model(MergePolicy::Tiering, 10, 10.0);
        let lazy = model(MergePolicy::LazyLeveling, 10, 10.0);
        assert!(lazy.write_cost() < lev.write_cost());
        assert!(lazy.write_cost() > tier.write_cost() * 0.9);
        assert!(lazy.zero_result_lookup_cost() < tier.zero_result_lookup_cost());
        // lazy leveling keeps long scans as cheap as leveling
        assert!(lazy.long_range_cost(10_000.0) < tier.long_range_cost(10_000.0));
    }

    #[test]
    fn size_ratio_navigates_the_tradeoff() {
        // under leveling, larger T = fewer levels = cheaper reads,
        // more copies per merge = dearer writes
        let t2 = model(MergePolicy::Leveling, 2, 10.0);
        let t10 = model(MergePolicy::Leveling, 10, 10.0);
        assert!(t10.short_range_cost() < t2.short_range_cost());
        assert!(t10.write_cost() > t2.write_cost());
        // under tiering the directions flip
        let t2t = model(MergePolicy::Tiering, 2, 10.0);
        let t10t = model(MergePolicy::Tiering, 10, 10.0);
        assert!(t10t.short_range_cost() > t2t.short_range_cost());
        assert!(t10t.write_cost() < t2t.write_cost());
    }

    #[test]
    fn filters_bound_zero_result_cost() {
        let no_filter = model(MergePolicy::Leveling, 10, 0.0);
        let filtered = model(MergePolicy::Leveling, 10, 10.0);
        assert!((no_filter.zero_result_lookup_cost() - 5.0).abs() < 1e-9);
        assert!(filtered.zero_result_lookup_cost() < 0.1);
    }

    #[test]
    fn monkey_beats_uniform_at_equal_memory() {
        let mut design = LsmDesign {
            policy: MergePolicy::Leveling,
            size_ratio: 10,
            buffer_entries: 1000,
            bits_per_key: 8.0,
            monkey: false,
        };
        let uniform = CostModel::new(design, 100_000_000, 100);
        design.monkey = true;
        let monkey = CostModel::new(design, 100_000_000, 100);
        assert!(monkey.zero_result_lookup_cost() < uniform.zero_result_lookup_cost());
    }

    #[test]
    fn long_scans_dominated_by_transfer() {
        let m = model(MergePolicy::Leveling, 10, 10.0);
        let short = m.long_range_cost(10.0);
        let long = m.long_range_cost(1_000_000.0);
        assert!(long > short * 100.0);
    }

    #[test]
    fn space_amp_directions() {
        let lev = model(MergePolicy::Leveling, 10, 10.0);
        let tier = model(MergePolicy::Tiering, 10, 10.0);
        assert!(tier.space_amplification() > lev.space_amplification());
        // larger T shrinks leveled space amp
        let lev2 = model(MergePolicy::Leveling, 2, 10.0);
        assert!(lev2.space_amplification() > lev.space_amplification());
    }

    #[test]
    fn workload_cost_weights_components() {
        let m = model(MergePolicy::Leveling, 10, 10.0);
        let write_heavy = WorkloadProfile {
            writes: 1.0,
            point_reads: 0.0,
            empty_point_reads: 0.0,
            range_reads: 0.0,
            range_entries: 0.0,
        };
        let read_heavy = WorkloadProfile {
            writes: 0.0,
            point_reads: 1.0,
            empty_point_reads: 0.0,
            range_reads: 0.0,
            range_entries: 0.0,
        };
        assert!((m.workload_cost(&write_heavy) - m.write_cost()).abs() < 1e-12);
        assert!((m.workload_cost(&read_heavy) - m.point_lookup_cost()).abs() < 1e-12);
    }

    #[test]
    fn normalization() {
        let w = WorkloadProfile {
            writes: 2.0,
            point_reads: 2.0,
            empty_point_reads: 0.0,
            range_reads: 0.0,
            range_entries: 0.0,
        }
        .normalized();
        assert!((w.writes - 0.5).abs() < 1e-12);
        assert!((w.point_reads - 0.5).abs() < 1e-12);
    }
}
