//! # lsm-model
//!
//! Closed-form analytical cost models for the LSM design space and the
//! navigation machinery on top of them (tutorial Module III):
//!
//! - [`cost`]: worst-case I/O models for leveling / tiering /
//!   lazy-leveling — point lookups (zero- and non-zero-result), short and
//!   long range queries, write amplification, space amplification;
//! - [`memory`]: buffer-vs-filter memory split optimization (Monkey's
//!   second knob; Luo & Carey's memory-wall analysis);
//! - [`navigator`]: enumerates `(policy, size ratio, memory split)`
//!   configurations and picks the cost-minimal one for a workload
//!   description — the "navigating the design space" of Module III.1;
//! - [`robust`]: Endure-style robust tuning that minimizes the worst-case
//!   cost over a neighborhood of the expected workload (Module III.2).

pub mod cost;
pub mod memory;
pub mod navigator;
pub mod robust;

pub use cost::{CostModel, LsmDesign, MergePolicy, WorkloadProfile};
pub use memory::{optimize_memory_split, MemorySplit};
pub use navigator::{navigate, Candidate, DesignSpace};
pub use robust::{robust_navigate, WorkloadNeighborhood};
