//! Design-space navigation (tutorial Module III.1).
//!
//! Enumerates a grid of `(merge policy, size ratio, memory split)`
//! configurations, scores each with the closed-form [`CostModel`], and
//! returns them ranked — the mechanical core of self-designing systems
//! like the Design Continuum and Cosine that the tutorial surveys.

use crate::cost::{CostModel, LsmDesign, MergePolicy, WorkloadProfile};
use crate::memory::evaluate_split;

/// The searchable region of the design space.
#[derive(Clone, Debug)]
pub struct DesignSpace {
    /// Candidate merge policies.
    pub policies: Vec<MergePolicy>,
    /// Candidate size ratios.
    pub size_ratios: Vec<u64>,
    /// Candidate buffer fractions of total memory.
    pub buffer_fractions: Vec<f64>,
    /// Whether to consider Monkey filter allocation.
    pub try_monkey: bool,
}

impl Default for DesignSpace {
    fn default() -> Self {
        DesignSpace {
            policies: MergePolicy::ALL.to_vec(),
            size_ratios: vec![2, 3, 4, 6, 8, 10, 12, 16],
            buffer_fractions: vec![0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 0.95],
            try_monkey: true,
        }
    }
}

/// Environment constants the navigator holds fixed.
#[derive(Clone, Copy, Debug)]
pub struct Environment {
    /// Total entries stored.
    pub num_entries: u64,
    /// Bytes per entry.
    pub entry_bytes: u64,
    /// Entries per storage block.
    pub entries_per_block: u64,
    /// Memory shared by buffer and filters, in bytes.
    pub total_memory_bytes: u64,
}

/// One scored configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Candidate {
    /// The design.
    pub design: LsmDesign,
    /// Modeled expected cost per operation, in I/Os.
    pub cost: f64,
}

/// Scores every configuration in `space` for `workload` and returns them
/// sorted by ascending cost. The head of the vector is the navigator's
/// recommendation.
pub fn navigate(
    space: &DesignSpace,
    env: &Environment,
    workload: &WorkloadProfile,
) -> Vec<Candidate> {
    let mut out = Vec::new();
    for &policy in &space.policies {
        for &t in &space.size_ratios {
            for &frac in &space.buffer_fractions {
                for monkey in if space.try_monkey {
                    vec![false, true]
                } else {
                    vec![false]
                } {
                    let base = LsmDesign {
                        policy,
                        size_ratio: t,
                        buffer_entries: 0,
                        bits_per_key: 0.0,
                        monkey,
                    };
                    let split = evaluate_split(
                        frac,
                        env.total_memory_bytes,
                        env.entry_bytes,
                        env.num_entries,
                        env.entries_per_block,
                        base,
                        workload,
                    );
                    out.push(Candidate {
                        design: LsmDesign {
                            buffer_entries: split.buffer_entries,
                            bits_per_key: split.bits_per_key,
                            ..base
                        },
                        cost: split.cost,
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| a.cost.partial_cmp(&b.cost).unwrap());
    out
}

/// Convenience: the single best candidate.
pub fn best(space: &DesignSpace, env: &Environment, workload: &WorkloadProfile) -> Candidate {
    navigate(space, env, workload)[0]
}

/// Computes a candidate's cost under a (possibly different) workload —
/// used to quantify regret when the observed workload drifts from the
/// expected one.
pub fn cost_under(candidate: &Candidate, env: &Environment, workload: &WorkloadProfile) -> f64 {
    CostModel::new(candidate.design, env.num_entries, env.entries_per_block).workload_cost(workload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> Environment {
        Environment {
            num_entries: 100_000_000,
            entry_bytes: 128,
            entries_per_block: 32,
            total_memory_bytes: 256 << 20,
        }
    }

    fn profile(writes: f64, point: f64, empty: f64, range: f64) -> WorkloadProfile {
        WorkloadProfile {
            writes,
            point_reads: point,
            empty_point_reads: empty,
            range_reads: range,
            range_entries: 1000.0,
        }
    }

    #[test]
    fn write_heavy_picks_tiering() {
        let c = best(&DesignSpace::default(), &env(), &profile(0.95, 0.05, 0.0, 0.0));
        assert_eq!(c.design.policy, MergePolicy::Tiering, "{c:?}");
    }

    #[test]
    fn read_heavy_picks_leveling_family() {
        let c = best(&DesignSpace::default(), &env(), &profile(0.02, 0.3, 0.3, 0.38));
        assert_ne!(c.design.policy, MergePolicy::Tiering, "{c:?}");
    }

    #[test]
    fn candidates_are_sorted() {
        let ranked = navigate(&DesignSpace::default(), &env(), &profile(0.5, 0.5, 0.0, 0.0));
        for w in ranked.windows(2) {
            assert!(w[0].cost <= w[1].cost);
        }
        assert_eq!(
            ranked.len(),
            3 * 8 * 7 * 2,
            "full grid must be enumerated"
        );
    }

    #[test]
    fn monkey_variant_never_loses_at_equal_config() {
        let ranked = navigate(&DesignSpace::default(), &env(), &profile(0.1, 0.1, 0.8, 0.0));
        // find pairs differing only in the monkey flag
        for a in &ranked {
            if a.design.monkey {
                continue;
            }
            if let Some(b) = ranked.iter().find(|b| {
                b.design.monkey
                    && b.design.policy == a.design.policy
                    && b.design.size_ratio == a.design.size_ratio
                    && b.design.buffer_entries == a.design.buffer_entries
            }) {
                assert!(b.cost <= a.cost + 1e-12, "monkey {b:?} vs uniform {a:?}");
            }
        }
    }

    #[test]
    fn mixed_workload_beats_extremes_of_wrong_choice() {
        let e = env();
        let mixed = profile(0.5, 0.25, 0.25, 0.0);
        let chosen = best(&DesignSpace::default(), &e, &mixed);
        // the chosen design must beat both a pure write-optimized and a
        // pure read-optimized extreme on the mixed workload
        let write_opt = best(&DesignSpace::default(), &e, &profile(1.0, 0.0, 0.0, 0.0));
        let read_opt = best(&DesignSpace::default(), &e, &profile(0.0, 0.5, 0.5, 0.0));
        assert!(chosen.cost <= cost_under(&write_opt, &e, &mixed) + 1e-12);
        assert!(chosen.cost <= cost_under(&read_opt, &e, &mixed) + 1e-12);
    }

    #[test]
    fn cost_under_matches_navigate_for_same_workload() {
        let e = env();
        let w = profile(0.3, 0.4, 0.3, 0.0);
        let c = best(&DesignSpace::default(), &e, &w);
        assert!((cost_under(&c, &e, &w) - c.cost).abs() < 1e-9);
    }
}
