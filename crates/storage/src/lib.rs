//! # lsm-storage
//!
//! The storage substrate under the LSM engine. Everything the tutorial
//! measures is stated in *storage accesses* (lookup I/Os, write
//! amplification, space amplification), so this crate provides:
//!
//! - a block-granular [`StorageDevice`] abstraction with in-memory
//!   ([`MemDevice`]) and file-backed ([`FileDevice`]) implementations,
//! - exact, categorized I/O accounting ([`IoStats`]), and
//! - an optional device latency model ([`LatencyModel`]) that converts I/O
//!   counts into simulated time, so experiments can report latency shapes
//!   without the authors' hardware, and
//! - deterministic fault injection ([`FaultDevice`]) plus bounded
//!   retry-with-backoff ([`RetryDevice`]) for exercising and hardening the
//!   engine's crash-recovery paths, and
//! - a wall-clock latency wrapper ([`WallLatencyDevice`]) that blocks the
//!   calling thread for each op's profiled cost, so multi-shard serving
//!   experiments overlap I/O waits the way real disks do.
//!
//! Files are append-only and immutable once sealed, matching the LSM
//! invariant that sorted runs are never updated in place.

pub mod block;
pub mod device;
pub mod error;
pub mod fault;
pub mod file;
pub mod latency;
pub mod stats;
pub mod wall;

pub use block::{Block, BlockBuf, DEFAULT_BLOCK_SIZE};
pub use device::{FileDevice, MemDevice, StorageDevice};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultDevice, FaultKind, FaultSpec, RetryDevice, RetryPolicy};
pub use file::{FileId, FileRegistry, ImmutableFile, WritableFile};
pub use latency::{DeviceProfile, LatencyModel, SimClock};
pub use stats::{IoCategory, IoStats, IoStatsSnapshot};
pub use wall::WallLatencyDevice;
