//! Device latency model and simulated clock.
//!
//! The tutorial's experiments ran on real SSDs; we substitute a calibrated
//! latency model so experiments can report *simulated time* alongside raw
//! I/O counts. The model distinguishes random vs sequential access and read
//! vs write, which is what makes, e.g., compaction (large sequential writes)
//! cheap relative to point lookups (random reads) — the founding asymmetry
//! of the LSM paradigm.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Latency parameters for a device, in nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Fixed cost of any random read op (seek / flash read latency).
    pub random_read_ns: u64,
    /// Fixed cost of any random write op.
    pub random_write_ns: u64,
    /// Per-block transfer cost on reads.
    pub read_block_ns: u64,
    /// Per-block transfer cost on writes.
    pub write_block_ns: u64,
}

impl DeviceProfile {
    /// A commodity NVMe SSD: ~80 µs random read, ~20 µs write latency,
    /// ~2 GB/s streaming at 4 KiB blocks (~2 µs per block).
    pub fn nvme_ssd() -> Self {
        DeviceProfile {
            random_read_ns: 80_000,
            random_write_ns: 20_000,
            read_block_ns: 2_000,
            write_block_ns: 2_000,
        }
    }

    /// A SATA-era disk: 10 ms seeks, ~150 MB/s streaming (~27 µs per 4 KiB).
    pub fn hdd() -> Self {
        DeviceProfile {
            random_read_ns: 10_000_000,
            random_write_ns: 10_000_000,
            read_block_ns: 27_000,
            write_block_ns: 27_000,
        }
    }

    /// Zero-cost profile: simulated time stays at zero; use when only I/O
    /// counts matter.
    pub fn free() -> Self {
        DeviceProfile {
            random_read_ns: 0,
            random_write_ns: 0,
            read_block_ns: 0,
            write_block_ns: 0,
        }
    }

    /// Cost of one read op covering `blocks` consecutive blocks.
    pub fn read_cost_ns(&self, blocks: u64) -> u64 {
        self.random_read_ns + self.read_block_ns.saturating_mul(blocks)
    }

    /// Cost of one write op covering `blocks` consecutive blocks.
    pub fn write_cost_ns(&self, blocks: u64) -> u64 {
        self.random_write_ns + self.write_block_ns.saturating_mul(blocks)
    }
}

impl Default for DeviceProfile {
    fn default() -> Self {
        DeviceProfile::nvme_ssd()
    }
}

/// Monotone simulated clock advanced by the latency model.
#[derive(Clone, Default)]
pub struct SimClock {
    ns: Arc<AtomicU64>,
}

impl SimClock {
    /// New clock at t = 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance(&self, ns: u64) {
        self.ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Current simulated time in nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.ns.load(Ordering::Relaxed)
    }
}

/// Combines a [`DeviceProfile`] with a [`SimClock`]: every charged I/O
/// advances simulated time.
#[derive(Clone, Default)]
pub struct LatencyModel {
    profile: DeviceProfile,
    clock: SimClock,
}

impl LatencyModel {
    /// Model with the given profile and a fresh clock.
    pub fn new(profile: DeviceProfile) -> Self {
        LatencyModel {
            profile,
            clock: SimClock::new(),
        }
    }

    /// Charges one read op of `blocks` blocks; returns its cost in ns.
    pub fn charge_read(&self, blocks: u64) -> u64 {
        let ns = self.profile.read_cost_ns(blocks);
        self.clock.advance(ns);
        ns
    }

    /// Charges one write op of `blocks` blocks; returns its cost in ns.
    pub fn charge_write(&self, blocks: u64) -> u64 {
        let ns = self.profile.write_cost_ns(blocks);
        self.clock.advance(ns);
        ns
    }

    /// The simulated clock.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// The device profile in use.
    pub fn profile(&self) -> DeviceProfile {
        self.profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_amortizes_fixed_cost() {
        let p = DeviceProfile::nvme_ssd();
        let one_at_a_time = 64 * p.read_cost_ns(1);
        let batched = p.read_cost_ns(64);
        assert!(batched < one_at_a_time);
    }

    #[test]
    fn hdd_random_reads_dwarf_ssd() {
        assert!(DeviceProfile::hdd().read_cost_ns(1) > 10 * DeviceProfile::nvme_ssd().read_cost_ns(1));
    }

    #[test]
    fn free_profile_costs_nothing() {
        let p = DeviceProfile::free();
        assert_eq!(p.read_cost_ns(1000), 0);
        assert_eq!(p.write_cost_ns(1000), 0);
    }

    #[test]
    fn model_advances_clock() {
        let m = LatencyModel::new(DeviceProfile::nvme_ssd());
        let c1 = m.charge_read(1);
        let c2 = m.charge_write(8);
        assert_eq!(m.clock().now_ns(), c1 + c2);
    }

    #[test]
    fn clock_is_shared_between_clones() {
        let m = LatencyModel::new(DeviceProfile::nvme_ssd());
        let m2 = m.clone();
        m2.charge_read(1);
        assert!(m.clock().now_ns() > 0);
    }

    #[test]
    fn write_cost_saturates_instead_of_overflowing() {
        let p = DeviceProfile {
            random_read_ns: 0,
            random_write_ns: 0,
            read_block_ns: u64::MAX,
            write_block_ns: u64::MAX,
        };
        // must not panic
        let _ = p.write_cost_ns(u64::MAX);
        let _ = p.read_cost_ns(u64::MAX);
    }
}
