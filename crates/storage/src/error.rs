//! Error type shared by all storage operations.

use std::fmt;
use std::io;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors surfaced by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying OS-level I/O failure (file-backed device only).
    Io(io::Error),
    /// A read referenced a file id that is not registered.
    UnknownFile(u64),
    /// A read went past the end of the file.
    OutOfBounds {
        /// File the read targeted.
        file: u64,
        /// First block requested.
        offset: u64,
        /// Number of blocks requested.
        blocks: u64,
        /// Length of the file, in blocks.
        len: u64,
    },
    /// Writing to a file that has already been sealed.
    Sealed(u64),
    /// Corruption detected while decoding stored data (bad magic, checksum
    /// mismatch, truncated structure).
    Corruption(String),
}

impl StorageError {
    /// Whether the error is transient: the op had no effect and an
    /// identical retry may succeed. Drives [`crate::fault::RetryDevice`].
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            StorageError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::Interrupted
                    | io::ErrorKind::TimedOut
                    | io::ErrorKind::WouldBlock
            )
        )
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "io error: {e}"),
            StorageError::UnknownFile(id) => write!(f, "unknown file id {id}"),
            StorageError::OutOfBounds {
                file,
                offset,
                blocks,
                len,
            } => write!(
                f,
                "read out of bounds: file {file}, blocks [{offset}, {}) but file has {len} blocks",
                offset + blocks
            ),
            StorageError::Sealed(id) => write!(f, "file {id} is sealed and immutable"),
            StorageError::Corruption(msg) => write!(f, "corruption: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = StorageError::OutOfBounds {
            file: 3,
            offset: 10,
            blocks: 2,
            len: 11,
        };
        let s = e.to_string();
        assert!(s.contains("file 3"));
        assert!(s.contains("[10, 12)"));
        assert!(s.contains("11 blocks"));
    }

    #[test]
    fn io_error_is_wrapped_and_sourced() {
        let e = StorageError::from(io::Error::other("boom"));
        assert!(e.to_string().contains("boom"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn corruption_displays_message() {
        let e = StorageError::Corruption("bad magic".into());
        assert!(e.to_string().contains("bad magic"));
    }

    #[test]
    fn transient_classification() {
        let transient = StorageError::Io(io::Error::new(io::ErrorKind::Interrupted, "x"));
        assert!(transient.is_transient());
        let timeout = StorageError::Io(io::Error::new(io::ErrorKind::TimedOut, "x"));
        assert!(timeout.is_transient());
        let hard = StorageError::Io(io::Error::other("dead"));
        assert!(!hard.is_transient());
        assert!(!StorageError::Corruption("c".into()).is_transient());
        assert!(!StorageError::UnknownFile(1).is_transient());
    }
}
