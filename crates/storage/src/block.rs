//! Fixed-size block abstraction.
//!
//! LSM files are read and written in whole blocks; the block size is the
//! unit of every I/O statistic in the experiment suite. The tutorial's cost
//! models count "storage accesses", which we define as one block transfer.

use std::sync::Arc;

/// Default block size, matching the common 4 KiB page used by LevelDB/RocksDB
/// data blocks and by the tutorial's cost models.
pub const DEFAULT_BLOCK_SIZE: usize = 4096;

/// An immutable, reference-counted block of data read from a device.
///
/// Blocks are shared between the block cache and readers without copying.
#[derive(Clone, Debug)]
pub struct Block {
    data: Arc<[u8]>,
}

impl Block {
    /// Wraps an owned buffer as an immutable block.
    pub fn new(data: Vec<u8>) -> Self {
        Block { data: data.into() }
    }

    /// The block contents.
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the block holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Approximate heap footprint, used for cache charging.
    pub fn charge(&self) -> usize {
        self.data.len() + std::mem::size_of::<Arc<[u8]>>()
    }
}

impl From<Vec<u8>> for Block {
    fn from(v: Vec<u8>) -> Self {
        Block::new(v)
    }
}

impl AsRef<[u8]> for Block {
    fn as_ref(&self) -> &[u8] {
        self.data()
    }
}

/// A mutable buffer that accumulates bytes and is cut into device blocks.
///
/// Builders append arbitrary-length records; [`BlockBuf::into_padded_blocks`]
/// pads the tail so the device only ever sees whole blocks.
#[derive(Debug, Default)]
pub struct BlockBuf {
    buf: Vec<u8>,
    block_size: usize,
}

impl BlockBuf {
    /// Creates a buffer cutting blocks of `block_size` bytes.
    ///
    /// # Panics
    /// Panics if `block_size` is zero.
    pub fn new(block_size: usize) -> Self {
        assert!(block_size > 0, "block size must be positive");
        BlockBuf {
            buf: Vec::new(),
            block_size,
        }
    }

    /// Appends raw bytes.
    pub fn put(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Current logical length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been appended.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of whole device blocks this buffer will occupy.
    pub fn blocks(&self) -> u64 {
        self.buf.len().div_ceil(self.block_size) as u64
    }

    /// Consumes the buffer, zero-padding the tail to a whole block.
    /// Returns the padded bytes and the number of blocks.
    pub fn into_padded_blocks(mut self) -> (Vec<u8>, u64) {
        let blocks = self.blocks();
        self.buf.resize(blocks as usize * self.block_size, 0);
        (self.buf, blocks)
    }
}

/// Number of whole blocks needed to hold `bytes` at `block_size`.
pub fn blocks_for(bytes: usize, block_size: usize) -> u64 {
    bytes.div_ceil(block_size) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_shares_without_copy() {
        let b = Block::new(vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b.data(), c.data());
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert!(b.charge() >= 3);
    }

    #[test]
    fn empty_block() {
        let b = Block::new(vec![]);
        assert!(b.is_empty());
        assert_eq!(b.len(), 0);
    }

    #[test]
    fn blockbuf_pads_to_whole_blocks() {
        let mut buf = BlockBuf::new(16);
        buf.put(&[7u8; 20]);
        assert_eq!(buf.len(), 20);
        assert_eq!(buf.blocks(), 2);
        let (bytes, blocks) = buf.into_padded_blocks();
        assert_eq!(blocks, 2);
        assert_eq!(bytes.len(), 32);
        assert_eq!(&bytes[..20], &[7u8; 20]);
        assert_eq!(&bytes[20..], &[0u8; 12]);
    }

    #[test]
    fn blockbuf_exact_multiple_needs_no_padding() {
        let mut buf = BlockBuf::new(8);
        buf.put(&[1u8; 16]);
        let (bytes, blocks) = buf.into_padded_blocks();
        assert_eq!(blocks, 2);
        assert_eq!(bytes.len(), 16);
    }

    #[test]
    fn empty_blockbuf_produces_zero_blocks() {
        let buf = BlockBuf::new(8);
        assert!(buf.is_empty());
        let (bytes, blocks) = buf.into_padded_blocks();
        assert_eq!(blocks, 0);
        assert!(bytes.is_empty());
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = BlockBuf::new(0);
    }

    #[test]
    fn blocks_for_rounds_up() {
        assert_eq!(blocks_for(0, 4096), 0);
        assert_eq!(blocks_for(1, 4096), 1);
        assert_eq!(blocks_for(4096, 4096), 1);
        assert_eq!(blocks_for(4097, 4096), 2);
    }
}
