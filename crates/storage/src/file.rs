//! File handles over a [`StorageDevice`].
//!
//! [`WritableFile`] buffers writes in whole blocks and seals into an
//! [`ImmutableFile`]; the registry tracks which files a component owns so
//! obsolete runs can be garbage-collected after compaction.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::BlockBuf;
use crate::device::StorageDevice;
use crate::error::StorageResult;
use crate::stats::IoCategory;

/// Opaque identifier of a file on a device.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FileId(pub u64);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A file being built: appends are buffered and cut into whole blocks.
pub struct WritableFile {
    device: Arc<dyn StorageDevice>,
    id: FileId,
    buf: BlockBuf,
    blocks_written: u64,
    category: IoCategory,
}

impl WritableFile {
    /// Creates a fresh file on `device`; appended bytes are charged to `category`.
    pub fn create(device: Arc<dyn StorageDevice>, category: IoCategory) -> StorageResult<Self> {
        let id = device.create()?;
        let block_size = device.block_size();
        Ok(WritableFile {
            device,
            id,
            buf: BlockBuf::new(block_size),
            blocks_written: 0,
            category,
        })
    }

    /// This file's id.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Changes the category future appends are charged to. Builders call
    /// this at section boundaries (data → filter → index), after padding
    /// to a block boundary so attribution stays exact.
    pub fn set_category(&mut self, category: IoCategory) {
        self.category = category;
    }

    /// Byte offset the next append will land at.
    pub fn offset(&self) -> u64 {
        self.blocks_written * self.device.block_size() as u64 + self.buf.len() as u64
    }

    /// Appends bytes; full blocks are flushed to the device eagerly.
    pub fn append(&mut self, bytes: &[u8]) -> StorageResult<()> {
        self.buf.put(bytes);
        self.flush_full_blocks()
    }

    /// Pads the current position to the next block boundary with zeros.
    pub fn pad_to_block(&mut self) -> StorageResult<()> {
        let bs = self.device.block_size();
        let rem = self.buf.len() % bs;
        if rem != 0 || (self.buf.is_empty() && self.blocks_written == 0) {
            // only pad when there is a partial block
        }
        if rem != 0 {
            let pad = vec![0u8; bs - rem];
            self.buf.put(&pad);
            self.flush_full_blocks()?;
        }
        Ok(())
    }

    fn flush_full_blocks(&mut self) -> StorageResult<()> {
        let bs = self.device.block_size();
        let full = self.buf.len() / bs;
        if full == 0 {
            return Ok(());
        }
        let taken = std::mem::replace(&mut self.buf, BlockBuf::new(bs));
        let bytes_len = taken.len();
        let (mut bytes, _) = taken.into_padded_blocks();
        let flush_bytes = full * bs;
        let remainder = bytes[flush_bytes..bytes_len.min(bytes.len())].to_vec();
        bytes.truncate(flush_bytes);
        self.device.append(self.id, &bytes, self.category)?;
        self.blocks_written += full as u64;
        // put back the partial tail
        self.buf.put(&remainder[..remainder.len().min(bytes_len.saturating_sub(flush_bytes))]);
        Ok(())
    }

    /// Flushes any tail (zero-padded), seals the file, and returns an
    /// immutable handle.
    pub fn seal(mut self) -> StorageResult<ImmutableFile> {
        self.pad_to_block()?;
        debug_assert_eq!(self.buf.len(), 0);
        self.device.seal(self.id)?;
        Ok(ImmutableFile {
            device: self.device,
            id: self.id,
            len_blocks: self.blocks_written,
        })
    }
}

/// A sealed, immutable file: whole-block random reads only.
#[derive(Clone)]
pub struct ImmutableFile {
    device: Arc<dyn StorageDevice>,
    id: FileId,
    len_blocks: u64,
}

impl ImmutableFile {
    /// Re-opens an already-sealed file (e.g., after recovery).
    pub fn open(device: Arc<dyn StorageDevice>, id: FileId) -> StorageResult<Self> {
        let len_blocks = device.len_blocks(id)?;
        Ok(ImmutableFile {
            device,
            id,
            len_blocks,
        })
    }

    /// This file's id.
    pub fn id(&self) -> FileId {
        self.id
    }

    /// Length in blocks.
    pub fn len_blocks(&self) -> u64 {
        self.len_blocks
    }

    /// Device block size.
    pub fn block_size(&self) -> usize {
        self.device.block_size()
    }

    /// The device's I/O counters — readers report detected corruption here.
    pub fn stats(&self) -> &crate::stats::IoStats {
        self.device.stats()
    }

    /// Reads `nblocks` blocks starting at block `offset`, charged to `cat`.
    pub fn read_blocks(&self, offset: u64, nblocks: u64, cat: IoCategory) -> StorageResult<Vec<u8>> {
        self.device.read(self.id, offset, nblocks, cat)
    }

    /// Reads the byte range `[offset, offset+len)` by fetching the covering
    /// blocks; convenience for footer/metadata decoding.
    pub fn read_bytes(&self, offset: u64, len: usize, cat: IoCategory) -> StorageResult<Vec<u8>> {
        if len == 0 {
            return Ok(Vec::new());
        }
        let bs = self.block_size() as u64;
        let first = offset / bs;
        let last = (offset + len as u64 - 1) / bs;
        let raw = self.read_blocks(first, last - first + 1, cat)?;
        let start = (offset - first * bs) as usize;
        Ok(raw[start..start + len].to_vec())
    }

    /// Deletes the underlying file.
    pub fn delete(self) -> StorageResult<()> {
        self.device.delete(self.id)
    }

    /// Deletes the underlying file without consuming the handle — used by
    /// drop-time garbage collection where only `&self` is available.
    /// Subsequent reads through this handle fail with `UnknownFile`.
    pub fn delete_in_place(&self) -> StorageResult<()> {
        self.device.delete(self.id)
    }
}

/// Tracks which files a component owns, so compaction can retire exactly
/// the runs it replaced.
#[derive(Default)]
pub struct FileRegistry {
    owned: Mutex<BTreeSet<FileId>>,
}

impl FileRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers ownership of `id`.
    pub fn register(&self, id: FileId) {
        self.owned.lock().insert(id);
    }

    /// Releases ownership; returns whether it was owned.
    pub fn release(&self, id: FileId) -> bool {
        self.owned.lock().remove(&id)
    }

    /// Whether `id` is currently owned.
    pub fn contains(&self, id: FileId) -> bool {
        self.owned.lock().contains(&id)
    }

    /// Snapshot of all owned ids.
    pub fn all(&self) -> Vec<FileId> {
        self.owned.lock().iter().copied().collect()
    }

    /// Number of owned files.
    pub fn len(&self) -> usize {
        self.owned.lock().len()
    }

    /// Whether no files are owned.
    pub fn is_empty(&self) -> bool {
        self.owned.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn mem() -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::default_for_tests())
    }

    #[test]
    fn write_seal_read_roundtrip() {
        let dev = mem();
        let mut w = WritableFile::create(dev.clone(), IoCategory::Data).unwrap();
        assert_eq!(w.offset(), 0);
        w.append(b"hello").unwrap();
        assert_eq!(w.offset(), 5);
        w.append(&vec![7u8; 5000]).unwrap();
        let f = w.seal().unwrap();
        assert_eq!(f.len_blocks(), 2);
        let bytes = f.read_bytes(0, 5, IoCategory::Data).unwrap();
        assert_eq!(&bytes, b"hello");
        let tail = f.read_bytes(5, 5000, IoCategory::Data).unwrap();
        assert_eq!(tail, vec![7u8; 5000]);
    }

    #[test]
    fn eager_flush_of_full_blocks() {
        let dev = mem();
        let mut w = WritableFile::create(dev.clone(), IoCategory::Wal).unwrap();
        w.append(&vec![1u8; 4096 * 3 + 10]).unwrap();
        // three full blocks already on the device before sealing
        assert_eq!(dev.len_blocks(w.id()).unwrap(), 3);
        let f = w.seal().unwrap();
        assert_eq!(f.len_blocks(), 4);
    }

    #[test]
    fn read_bytes_spanning_blocks() {
        let dev = mem();
        let mut w = WritableFile::create(dev.clone(), IoCategory::Data).unwrap();
        let payload: Vec<u8> = (0..10000u32).map(|i| (i % 251) as u8).collect();
        w.append(&payload).unwrap();
        let f = w.seal().unwrap();
        let got = f.read_bytes(4000, 300, IoCategory::Data).unwrap();
        assert_eq!(got, &payload[4000..4300]);
    }

    #[test]
    fn read_bytes_empty_is_free() {
        let dev = mem();
        let w = WritableFile::create(dev.clone(), IoCategory::Data).unwrap();
        let f = w.seal().unwrap();
        let got = f.read_bytes(0, 0, IoCategory::Data).unwrap();
        assert!(got.is_empty());
        assert_eq!(dev.stats().snapshot().total_read_blocks(), 0);
    }

    #[test]
    fn reopen_matches_sealed_length() {
        let dev = mem();
        let mut w = WritableFile::create(dev.clone(), IoCategory::Data).unwrap();
        w.append(&vec![2u8; 9000]).unwrap();
        let f = w.seal().unwrap();
        let id = f.id();
        let re = ImmutableFile::open(dev, id).unwrap();
        assert_eq!(re.len_blocks(), f.len_blocks());
    }

    #[test]
    fn delete_frees_space() {
        let dev = mem();
        let mut w = WritableFile::create(dev.clone(), IoCategory::Data).unwrap();
        w.append(&vec![1u8; 4096]).unwrap();
        let f = w.seal().unwrap();
        assert_eq!(dev.live_blocks(), 1);
        f.delete().unwrap();
        assert_eq!(dev.live_blocks(), 0);
    }

    #[test]
    fn registry_tracks_ownership() {
        let r = FileRegistry::new();
        assert!(r.is_empty());
        r.register(FileId(1));
        r.register(FileId(2));
        assert_eq!(r.len(), 2);
        assert!(r.contains(FileId(1)));
        assert!(r.release(FileId(1)));
        assert!(!r.release(FileId(1)));
        assert_eq!(r.all(), vec![FileId(2)]);
    }

    #[test]
    fn file_id_displays_compactly() {
        assert_eq!(FileId(42).to_string(), "f42");
    }
}
