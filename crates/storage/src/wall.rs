//! Wall-clock device latency: a [`StorageDevice`] wrapper that *sleeps*
//! the profiled cost of each I/O instead of (only) advancing the
//! simulated clock.
//!
//! The [`LatencyModel`](crate::LatencyModel) inside every device charges
//! I/O cost to a simulated clock, which keeps experiments fast and
//! deterministic — but it means device time never occupies a real
//! thread. That hides the one effect a serving layer is built to
//! exploit: while one shard's flush or compaction is waiting on its
//! device, *another shard's* threads can run. [`WallLatencyDevice`]
//! restores that overlap by blocking the calling thread for the
//! profiled duration of each append/read, so independent shards on
//! separate devices genuinely overlap their I/O waits (sleeping threads
//! occupy no core) while a single shard's single-compactor invariant
//! serializes its own. `e20_server_throughput` uses it to measure
//! shard-count scaling the way a real disk-backed deployment would
//! exhibit it.
//!
//! The wrapper adds wall time *on top of* whatever the inner device
//! models; pair it with an inner [`DeviceProfile::free`] profile unless
//! you want both clocks to move.

use std::sync::Arc;
use std::time::Duration;

use crate::error::StorageResult;
use crate::file::FileId;
use crate::latency::{DeviceProfile, LatencyModel};
use crate::stats::{IoCategory, IoStats};
use crate::StorageDevice;

/// Wraps a device and sleeps the profiled wall-clock cost of every
/// append and read. See the module docs.
pub struct WallLatencyDevice {
    inner: Arc<dyn StorageDevice>,
    profile: DeviceProfile,
}

impl WallLatencyDevice {
    /// Wraps `inner`; each append/read blocks the caller for
    /// `profile`'s cost of that op.
    pub fn new(inner: Arc<dyn StorageDevice>, profile: DeviceProfile) -> Self {
        WallLatencyDevice { inner, profile }
    }

    fn sleep_ns(ns: u64) {
        if ns > 0 {
            std::thread::sleep(Duration::from_nanos(ns));
        }
    }
}

impl StorageDevice for WallLatencyDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn latency(&self) -> &LatencyModel {
        self.inner.latency()
    }

    fn create(&self) -> StorageResult<FileId> {
        self.inner.create()
    }

    fn append(&self, file: FileId, data: &[u8], cat: IoCategory) -> StorageResult<()> {
        let blocks = (data.len() / self.inner.block_size().max(1)) as u64;
        Self::sleep_ns(self.profile.write_cost_ns(blocks));
        self.inner.append(file, data, cat)
    }

    fn seal(&self, file: FileId) -> StorageResult<()> {
        self.inner.seal(file)
    }

    fn read(
        &self,
        file: FileId,
        offset: u64,
        nblocks: u64,
        cat: IoCategory,
    ) -> StorageResult<Vec<u8>> {
        Self::sleep_ns(self.profile.read_cost_ns(nblocks));
        self.inner.read(file, offset, nblocks, cat)
    }

    fn len_blocks(&self, file: FileId) -> StorageResult<u64> {
        self.inner.len_blocks(file)
    }

    fn delete(&self, file: FileId) -> StorageResult<()> {
        self.inner.delete(file)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.inner.live_files()
    }

    fn live_blocks(&self) -> u64 {
        self.inner.live_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;
    use std::time::Instant;

    fn wrapped(profile: DeviceProfile) -> WallLatencyDevice {
        let inner: Arc<dyn StorageDevice> = Arc::new(MemDevice::new(512, DeviceProfile::free()));
        WallLatencyDevice::new(inner, profile)
    }

    #[test]
    fn io_passes_through_unchanged() {
        let dev = wrapped(DeviceProfile::free());
        let f = dev.create().unwrap();
        dev.append(f, &[7u8; 1024], IoCategory::Data).unwrap();
        assert_eq!(dev.len_blocks(f).unwrap(), 2);
        let back = dev.read(f, 1, 1, IoCategory::Data).unwrap();
        assert_eq!(back, vec![7u8; 512]);
        dev.seal(f).unwrap();
        assert_eq!(dev.live_files(), vec![f]);
        assert_eq!(dev.live_blocks(), 2);
        dev.delete(f).unwrap();
        assert!(dev.live_files().is_empty());
    }

    #[test]
    fn append_blocks_for_the_profiled_cost() {
        let profile = DeviceProfile {
            random_read_ns: 0,
            random_write_ns: 3_000_000, // 3 ms per write op
            read_block_ns: 0,
            write_block_ns: 0,
        };
        let dev = wrapped(profile);
        let f = dev.create().unwrap();
        let t0 = Instant::now();
        dev.append(f, &[0u8; 512], IoCategory::Wal).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(3),
            "append returned before the profiled device time elapsed"
        );
    }

    #[test]
    fn read_blocks_for_the_profiled_cost() {
        let profile = DeviceProfile {
            random_read_ns: 3_000_000,
            random_write_ns: 0,
            read_block_ns: 0,
            write_block_ns: 0,
        };
        let dev = wrapped(profile);
        let f = dev.create().unwrap();
        dev.append(f, &[0u8; 512], IoCategory::Data).unwrap();
        let t0 = Instant::now();
        dev.read(f, 0, 1, IoCategory::Data).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(3));
    }
}
