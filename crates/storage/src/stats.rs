//! Exact, categorized I/O accounting.
//!
//! Every experiment in the suite reports its results in terms of these
//! counters: block reads per lookup, blocks written per ingested byte
//! (write amplification), and the split between data, filter, index, and
//! WAL traffic.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a given I/O was for. Lets experiments separate, e.g., filter-block
/// fetches from data-block fetches when reporting lookup cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IoCategory {
    /// SSTable data blocks.
    Data,
    /// Filter blocks (Bloom/cuckoo/range filters).
    Filter,
    /// Index blocks (fence pointers, learned index payloads).
    Index,
    /// Write-ahead-log traffic.
    Wal,
    /// Value-log traffic (key-value separation).
    ValueLog,
    /// Anything else (manifest, footers).
    Misc,
}

impl IoCategory {
    /// All categories, in display order.
    pub const ALL: [IoCategory; 6] = [
        IoCategory::Data,
        IoCategory::Filter,
        IoCategory::Index,
        IoCategory::Wal,
        IoCategory::ValueLog,
        IoCategory::Misc,
    ];

    fn idx(self) -> usize {
        match self {
            IoCategory::Data => 0,
            IoCategory::Filter => 1,
            IoCategory::Index => 2,
            IoCategory::Wal => 3,
            IoCategory::ValueLog => 4,
            IoCategory::Misc => 5,
        }
    }

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            IoCategory::Data => "data",
            IoCategory::Filter => "filter",
            IoCategory::Index => "index",
            IoCategory::Wal => "wal",
            IoCategory::ValueLog => "vlog",
            IoCategory::Misc => "misc",
        }
    }
}

#[derive(Default)]
struct CategoryCounters {
    read_blocks: AtomicU64,
    written_blocks: AtomicU64,
    read_ops: AtomicU64,
    write_ops: AtomicU64,
}

#[derive(Default)]
struct Counters {
    per_category: [CategoryCounters; 6],
    retries: AtomicU64,
    corruption_detected: AtomicU64,
    write_slowdowns: AtomicU64,
    write_stalls: AtomicU64,
}

/// Thread-safe I/O counters, cheap to clone (shared via `Arc`).
#[derive(Clone, Default)]
pub struct IoStats {
    inner: Arc<Counters>,
}

impl IoStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a read of `blocks` consecutive blocks in `cat`.
    pub fn record_read(&self, cat: IoCategory, blocks: u64) {
        let c = &self.inner.per_category[cat.idx()];
        c.read_blocks.fetch_add(blocks, Ordering::Relaxed);
        c.read_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a write of `blocks` consecutive blocks in `cat`.
    pub fn record_write(&self, cat: IoCategory, blocks: u64) {
        let c = &self.inner.per_category[cat.idx()];
        c.written_blocks.fetch_add(blocks, Ordering::Relaxed);
        c.write_ops.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retry of an I/O op after a transient device error.
    pub fn record_retry(&self) {
        self.inner.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one detected-and-rejected corruption (checksum mismatch,
    /// undecodable frame, torn tail).
    pub fn record_corruption(&self) {
        self.inner.corruption_detected.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write delayed by L0 backpressure (slowdown band).
    pub fn record_write_slowdown(&self) {
        self.inner.write_slowdowns.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one write blocked by L0 backpressure (stall threshold).
    pub fn record_write_stall(&self) {
        self.inner.write_stalls.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> IoStatsSnapshot {
        let mut s = IoStatsSnapshot::default();
        for cat in IoCategory::ALL {
            let c = &self.inner.per_category[cat.idx()];
            let e = &mut s.per_category[cat.idx()];
            e.read_blocks = c.read_blocks.load(Ordering::Relaxed);
            e.written_blocks = c.written_blocks.load(Ordering::Relaxed);
            e.read_ops = c.read_ops.load(Ordering::Relaxed);
            e.write_ops = c.write_ops.load(Ordering::Relaxed);
        }
        s.retries = self.inner.retries.load(Ordering::Relaxed);
        s.corruption_detected = self.inner.corruption_detected.load(Ordering::Relaxed);
        s.write_slowdowns = self.inner.write_slowdowns.load(Ordering::Relaxed);
        s.write_stalls = self.inner.write_stalls.load(Ordering::Relaxed);
        s
    }

    /// Resets every counter to zero.
    pub fn reset(&self) {
        for c in self.inner.per_category.iter() {
            c.read_blocks.store(0, Ordering::Relaxed);
            c.written_blocks.store(0, Ordering::Relaxed);
            c.read_ops.store(0, Ordering::Relaxed);
            c.write_ops.store(0, Ordering::Relaxed);
        }
        self.inner.retries.store(0, Ordering::Relaxed);
        self.inner.corruption_detected.store(0, Ordering::Relaxed);
        self.inner.write_slowdowns.store(0, Ordering::Relaxed);
        self.inner.write_stalls.store(0, Ordering::Relaxed);
    }
}

/// Counters for one [`IoCategory`] inside a snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CategorySnapshot {
    /// Blocks read.
    pub read_blocks: u64,
    /// Blocks written.
    pub written_blocks: u64,
    /// Read calls (a multi-block sequential read is one op).
    pub read_ops: u64,
    /// Write calls.
    pub write_ops: u64,
}

/// Immutable copy of [`IoStats`] at one point in time.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoStatsSnapshot {
    per_category: [CategorySnapshot; 6],
    /// I/O ops retried after a transient device error.
    pub retries: u64,
    /// Corruptions detected and rejected (checksum mismatches, torn tails).
    pub corruption_detected: u64,
    /// Writes delayed by L0 backpressure (slowdown band).
    pub write_slowdowns: u64,
    /// Writes blocked by L0 backpressure (stall threshold).
    pub write_stalls: u64,
}

impl IoStatsSnapshot {
    /// Counters for one category.
    pub fn category(&self, cat: IoCategory) -> CategorySnapshot {
        self.per_category[cat.idx()]
    }

    /// Total blocks read across all categories.
    pub fn total_read_blocks(&self) -> u64 {
        self.per_category.iter().map(|c| c.read_blocks).sum()
    }

    /// Total blocks written across all categories.
    pub fn total_written_blocks(&self) -> u64 {
        self.per_category.iter().map(|c| c.written_blocks).sum()
    }

    /// Total read calls across all categories.
    pub fn total_read_ops(&self) -> u64 {
        self.per_category.iter().map(|c| c.read_ops).sum()
    }

    /// Total write calls across all categories.
    pub fn total_write_ops(&self) -> u64 {
        self.per_category.iter().map(|c| c.write_ops).sum()
    }

}

// Both snapshots share the workspace-wide saturating delta (one
// implementation for IoStats, DbStats, and metrics snapshots alike).
lsm_obs::impl_delta_since!(CategorySnapshot {
    read_blocks,
    written_blocks,
    read_ops,
    write_ops,
});
lsm_obs::impl_delta_since!(IoStatsSnapshot {
    per_category,
    retries,
    corruption_detected,
    write_slowdowns,
    write_stalls,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_snapshot() {
        let s = IoStats::new();
        s.record_read(IoCategory::Data, 3);
        s.record_read(IoCategory::Filter, 1);
        s.record_write(IoCategory::Wal, 2);
        let snap = s.snapshot();
        assert_eq!(snap.category(IoCategory::Data).read_blocks, 3);
        assert_eq!(snap.category(IoCategory::Data).read_ops, 1);
        assert_eq!(snap.category(IoCategory::Filter).read_blocks, 1);
        assert_eq!(snap.category(IoCategory::Wal).written_blocks, 2);
        assert_eq!(snap.total_read_blocks(), 4);
        assert_eq!(snap.total_written_blocks(), 2);
        assert_eq!(snap.total_read_ops(), 2);
        assert_eq!(snap.total_write_ops(), 1);
    }

    #[test]
    fn clone_shares_counters() {
        let a = IoStats::new();
        let b = a.clone();
        b.record_read(IoCategory::Index, 5);
        assert_eq!(a.snapshot().category(IoCategory::Index).read_blocks, 5);
    }

    #[test]
    fn reset_zeroes_everything() {
        let s = IoStats::new();
        s.record_write(IoCategory::Data, 10);
        s.reset();
        assert_eq!(s.snapshot().total_written_blocks(), 0);
        assert_eq!(s.snapshot().total_write_ops(), 0);
    }

    #[test]
    fn delta_since_subtracts() {
        let s = IoStats::new();
        s.record_read(IoCategory::Data, 2);
        let first = s.snapshot();
        s.record_read(IoCategory::Data, 5);
        s.record_write(IoCategory::Misc, 1);
        let second = s.snapshot();
        let d = second.delta_since(&first);
        assert_eq!(d.category(IoCategory::Data).read_blocks, 5);
        assert_eq!(d.category(IoCategory::Misc).written_blocks, 1);
    }

    #[test]
    fn delta_saturates_after_reset() {
        let s = IoStats::new();
        s.record_read(IoCategory::Data, 9);
        let first = s.snapshot();
        s.reset();
        s.record_read(IoCategory::Data, 1);
        let second = s.snapshot();
        let d = second.delta_since(&first);
        assert_eq!(d.category(IoCategory::Data).read_blocks, 0);
    }

    #[test]
    fn retry_and_corruption_counters() {
        let s = IoStats::new();
        s.record_retry();
        s.record_retry();
        s.record_corruption();
        let first = s.snapshot();
        assert_eq!(first.retries, 2);
        assert_eq!(first.corruption_detected, 1);
        s.record_retry();
        let d = s.snapshot().delta_since(&first);
        assert_eq!(d.retries, 1);
        assert_eq!(d.corruption_detected, 0);
        s.reset();
        assert_eq!(s.snapshot().retries, 0);
        assert_eq!(s.snapshot().corruption_detected, 0);
    }

    #[test]
    fn backpressure_counters() {
        let s = IoStats::new();
        s.record_write_slowdown();
        s.record_write_slowdown();
        s.record_write_stall();
        let first = s.snapshot();
        assert_eq!(first.write_slowdowns, 2);
        assert_eq!(first.write_stalls, 1);
        s.record_write_stall();
        let d = s.snapshot().delta_since(&first);
        assert_eq!(d.write_slowdowns, 0);
        assert_eq!(d.write_stalls, 1);
        s.reset();
        assert_eq!(s.snapshot().write_slowdowns, 0);
        assert_eq!(s.snapshot().write_stalls, 0);
    }

    #[test]
    fn categories_have_distinct_labels() {
        let mut labels: Vec<_> = IoCategory::ALL.iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), IoCategory::ALL.len());
    }

    #[test]
    fn concurrent_updates_are_counted() {
        let s = IoStats::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_read(IoCategory::Data, 1);
                    }
                });
            }
        });
        assert_eq!(s.snapshot().category(IoCategory::Data).read_blocks, 4000);
    }
}
