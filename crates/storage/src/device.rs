//! Storage devices: where immutable LSM files live.
//!
//! A device hands out numbered files, accepts whole-block appends until a
//! file is sealed, and serves whole-block reads. Every call is charged to
//! the shared [`IoStats`] and [`LatencyModel`], with an [`IoCategory`]
//! chosen by the caller — an SSTable mixes data, filter, and index blocks
//! within one file, so attribution must be per-access, not per-file.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::error::{StorageError, StorageResult};
use crate::file::FileId;
use crate::latency::{DeviceProfile, LatencyModel};
use crate::stats::{IoCategory, IoStats};

/// A block-granular storage device.
///
/// Implementations must be thread-safe; the engine issues reads from query
/// threads concurrently with compaction writes.
pub trait StorageDevice: Send + Sync {
    /// Block size in bytes; all reads and appends are multiples of this.
    fn block_size(&self) -> usize;

    /// Shared I/O counters.
    fn stats(&self) -> &IoStats;

    /// Shared latency model / simulated clock.
    fn latency(&self) -> &LatencyModel;

    /// Creates a new empty, writable file.
    fn create(&self) -> StorageResult<FileId>;

    /// Appends `data` (a whole number of blocks) to an unsealed file.
    fn append(&self, file: FileId, data: &[u8], cat: IoCategory) -> StorageResult<()>;

    /// Seals a file; it becomes immutable.
    fn seal(&self, file: FileId) -> StorageResult<()>;

    /// Reads `nblocks` blocks starting at block `offset`.
    fn read(&self, file: FileId, offset: u64, nblocks: u64, cat: IoCategory)
        -> StorageResult<Vec<u8>>;

    /// Length of a file in blocks.
    fn len_blocks(&self, file: FileId) -> StorageResult<u64>;

    /// Deletes a file; subsequent access fails with `UnknownFile`.
    fn delete(&self, file: FileId) -> StorageResult<()>;

    /// Ids of all live (non-deleted) files.
    fn live_files(&self) -> Vec<FileId>;

    /// Total blocks occupied by live files — the numerator of space
    /// amplification.
    fn live_blocks(&self) -> u64;
}

fn check_whole_blocks(len: usize, block_size: usize) -> StorageResult<u64> {
    if !len.is_multiple_of(block_size) {
        return Err(StorageError::Corruption(format!(
            "append of {len} bytes is not a whole number of {block_size}-byte blocks"
        )));
    }
    Ok((len / block_size) as u64)
}

// ---------------------------------------------------------------------------
// In-memory device
// ---------------------------------------------------------------------------

struct MemFile {
    data: Vec<u8>,
    sealed: bool,
}

/// An in-memory [`StorageDevice`]. The default substrate for experiments:
/// I/O counts and simulated time are exact and runs are fast and
/// deterministic.
pub struct MemDevice {
    block_size: usize,
    stats: IoStats,
    latency: LatencyModel,
    files: RwLock<BTreeMap<u64, MemFile>>,
    next_id: AtomicU64,
}

impl MemDevice {
    /// Device with the given block size and latency profile.
    pub fn new(block_size: usize, profile: DeviceProfile) -> Self {
        assert!(block_size > 0, "block size must be positive");
        MemDevice {
            block_size,
            stats: IoStats::new(),
            latency: LatencyModel::new(profile),
            files: RwLock::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
        }
    }

    /// 4 KiB blocks, free latency profile.
    pub fn default_for_tests() -> Self {
        MemDevice::new(crate::block::DEFAULT_BLOCK_SIZE, DeviceProfile::free())
    }
}

impl Default for MemDevice {
    fn default() -> Self {
        MemDevice::new(crate::block::DEFAULT_BLOCK_SIZE, DeviceProfile::default())
    }
}

impl StorageDevice for MemDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    fn create(&self) -> StorageResult<FileId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.files.write().insert(
            id,
            MemFile {
                data: Vec::new(),
                sealed: false,
            },
        );
        Ok(FileId(id))
    }

    fn append(&self, file: FileId, data: &[u8], cat: IoCategory) -> StorageResult<()> {
        let blocks = check_whole_blocks(data.len(), self.block_size)?;
        let mut files = self.files.write();
        let f = files.get_mut(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        if f.sealed {
            return Err(StorageError::Sealed(file.0));
        }
        f.data.extend_from_slice(data);
        drop(files);
        self.stats.record_write(cat, blocks);
        self.latency.charge_write(blocks);
        Ok(())
    }

    fn seal(&self, file: FileId) -> StorageResult<()> {
        let mut files = self.files.write();
        let f = files.get_mut(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        f.sealed = true;
        Ok(())
    }

    fn read(
        &self,
        file: FileId,
        offset: u64,
        nblocks: u64,
        cat: IoCategory,
    ) -> StorageResult<Vec<u8>> {
        let files = self.files.read();
        let f = files.get(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        let len = (f.data.len() / self.block_size) as u64;
        if offset + nblocks > len {
            return Err(StorageError::OutOfBounds {
                file: file.0,
                offset,
                blocks: nblocks,
                len,
            });
        }
        let start = offset as usize * self.block_size;
        let end = start + nblocks as usize * self.block_size;
        let out = f.data[start..end].to_vec();
        drop(files);
        self.stats.record_read(cat, nblocks);
        self.latency.charge_read(nblocks);
        Ok(out)
    }

    fn len_blocks(&self, file: FileId) -> StorageResult<u64> {
        let files = self.files.read();
        let f = files.get(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        Ok((f.data.len() / self.block_size) as u64)
    }

    fn delete(&self, file: FileId) -> StorageResult<()> {
        self.files
            .write()
            .remove(&file.0)
            .map(|_| ())
            .ok_or(StorageError::UnknownFile(file.0))
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files.read().keys().map(|&k| FileId(k)).collect()
    }

    fn live_blocks(&self) -> u64 {
        let files = self.files.read();
        files
            .values()
            .map(|f| (f.data.len() / self.block_size) as u64)
            .sum()
    }
}

// ---------------------------------------------------------------------------
// File-backed device
// ---------------------------------------------------------------------------

struct DiskFile {
    path: PathBuf,
    len_blocks: u64,
    sealed: bool,
}

/// A [`StorageDevice`] backed by real files in a directory. Used by the
/// durability/recovery tests and by anyone who wants the engine to persist.
pub struct FileDevice {
    dir: PathBuf,
    block_size: usize,
    stats: IoStats,
    latency: LatencyModel,
    files: RwLock<BTreeMap<u64, DiskFile>>,
    next_id: AtomicU64,
}

impl FileDevice {
    /// Opens (creating if needed) a device rooted at `dir`. Existing
    /// `*.blk` files are re-registered (sealed) so an engine can recover.
    pub fn open(dir: impl Into<PathBuf>, block_size: usize, profile: DeviceProfile) -> StorageResult<Self> {
        assert!(block_size > 0, "block size must be positive");
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut files = BTreeMap::new();
        let mut max_id = 0u64;
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(id) = name
                .strip_prefix('f')
                .and_then(|s| s.strip_suffix(".blk"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                let meta = entry.metadata()?;
                files.insert(
                    id,
                    DiskFile {
                        path: entry.path(),
                        len_blocks: meta.len() / block_size as u64,
                        sealed: true,
                    },
                );
                max_id = max_id.max(id);
            }
        }
        Ok(FileDevice {
            dir,
            block_size,
            stats: IoStats::new(),
            latency: LatencyModel::new(profile),
            files: RwLock::new(files),
            next_id: AtomicU64::new(max_id + 1),
        })
    }
}

impl StorageDevice for FileDevice {
    fn block_size(&self) -> usize {
        self.block_size
    }

    fn stats(&self) -> &IoStats {
        &self.stats
    }

    fn latency(&self) -> &LatencyModel {
        &self.latency
    }

    fn create(&self) -> StorageResult<FileId> {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let path = self.dir.join(format!("f{id}.blk"));
        fs::File::create(&path)?;
        self.files.write().insert(
            id,
            DiskFile {
                path,
                len_blocks: 0,
                sealed: false,
            },
        );
        Ok(FileId(id))
    }

    fn append(&self, file: FileId, data: &[u8], cat: IoCategory) -> StorageResult<()> {
        use std::io::Write;
        let blocks = check_whole_blocks(data.len(), self.block_size)?;
        let mut files = self.files.write();
        let f = files.get_mut(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        if f.sealed {
            return Err(StorageError::Sealed(file.0));
        }
        let mut handle = fs::OpenOptions::new().append(true).open(&f.path)?;
        handle.write_all(data)?;
        f.len_blocks += blocks;
        drop(files);
        self.stats.record_write(cat, blocks);
        self.latency.charge_write(blocks);
        Ok(())
    }

    fn seal(&self, file: FileId) -> StorageResult<()> {
        let mut files = self.files.write();
        let f = files.get_mut(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        let handle = fs::OpenOptions::new().append(true).open(&f.path)?;
        handle.sync_all()?;
        f.sealed = true;
        Ok(())
    }

    fn read(
        &self,
        file: FileId,
        offset: u64,
        nblocks: u64,
        cat: IoCategory,
    ) -> StorageResult<Vec<u8>> {
        #[cfg(unix)]
        use std::os::unix::fs::FileExt;
        let files = self.files.read();
        let f = files.get(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        if offset + nblocks > f.len_blocks {
            return Err(StorageError::OutOfBounds {
                file: file.0,
                offset,
                blocks: nblocks,
                len: f.len_blocks,
            });
        }
        let handle = fs::File::open(&f.path)?;
        let mut buf = vec![0u8; nblocks as usize * self.block_size];
        #[cfg(unix)]
        handle.read_exact_at(&mut buf, offset * self.block_size as u64)?;
        #[cfg(not(unix))]
        {
            use std::io::{Read, Seek, SeekFrom};
            let mut handle = handle;
            handle.seek(SeekFrom::Start(offset * self.block_size as u64))?;
            handle.read_exact(&mut buf)?;
        }
        drop(files);
        self.stats.record_read(cat, nblocks);
        self.latency.charge_read(nblocks);
        Ok(buf)
    }

    fn len_blocks(&self, file: FileId) -> StorageResult<u64> {
        let files = self.files.read();
        let f = files.get(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        Ok(f.len_blocks)
    }

    fn delete(&self, file: FileId) -> StorageResult<()> {
        let mut files = self.files.write();
        let f = files.remove(&file.0).ok_or(StorageError::UnknownFile(file.0))?;
        fs::remove_file(&f.path)?;
        Ok(())
    }

    fn live_files(&self) -> Vec<FileId> {
        self.files.read().keys().map(|&k| FileId(k)).collect()
    }

    fn live_blocks(&self) -> u64 {
        self.files.read().values().map(|f| f.len_blocks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(dev: &dyn StorageDevice) {
        let bs = dev.block_size();
        let id = dev.create().unwrap();
        let blk1 = vec![0xAB; bs];
        let blk2 = vec![0xCD; bs];
        dev.append(id, &blk1, IoCategory::Data).unwrap();
        dev.append(id, &blk2, IoCategory::Filter).unwrap();
        dev.seal(id).unwrap();
        assert_eq!(dev.len_blocks(id).unwrap(), 2);
        let got = dev.read(id, 1, 1, IoCategory::Filter).unwrap();
        assert_eq!(got, blk2);
        let both = dev.read(id, 0, 2, IoCategory::Data).unwrap();
        assert_eq!(&both[..bs], &blk1[..]);
        assert_eq!(&both[bs..], &blk2[..]);
        // sealed file rejects appends
        assert!(matches!(
            dev.append(id, &blk1, IoCategory::Data),
            Err(StorageError::Sealed(_))
        ));
        // out of bounds
        assert!(matches!(
            dev.read(id, 2, 1, IoCategory::Data),
            Err(StorageError::OutOfBounds { .. })
        ));
        // stats attribution
        let snap = dev.stats().snapshot();
        assert_eq!(snap.category(IoCategory::Data).written_blocks, 1);
        assert_eq!(snap.category(IoCategory::Filter).written_blocks, 1);
        assert_eq!(snap.category(IoCategory::Filter).read_blocks, 1);
        assert_eq!(snap.category(IoCategory::Data).read_blocks, 2);
        // delete
        assert_eq!(dev.live_files().len(), 1);
        dev.delete(id).unwrap();
        assert!(dev.live_files().is_empty());
        assert!(matches!(
            dev.read(id, 0, 1, IoCategory::Data),
            Err(StorageError::UnknownFile(_))
        ));
    }

    #[test]
    fn mem_device_roundtrip() {
        roundtrip(&MemDevice::default_for_tests());
    }

    #[test]
    fn file_device_roundtrip() {
        let dir = std::env::temp_dir().join(format!("lsm-storage-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let dev = FileDevice::open(&dir, 512, DeviceProfile::free()).unwrap();
        roundtrip(&dev);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_device_reopens_existing_files() {
        let dir = std::env::temp_dir().join(format!("lsm-storage-reopen-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let id;
        {
            let dev = FileDevice::open(&dir, 512, DeviceProfile::free()).unwrap();
            id = dev.create().unwrap();
            dev.append(id, &vec![9u8; 512], IoCategory::Data).unwrap();
            dev.seal(id).unwrap();
        }
        let dev = FileDevice::open(&dir, 512, DeviceProfile::free()).unwrap();
        assert_eq!(dev.live_files(), vec![id]);
        assert_eq!(dev.len_blocks(id).unwrap(), 1);
        assert_eq!(dev.read(id, 0, 1, IoCategory::Data).unwrap(), vec![9u8; 512]);
        // new ids never collide with recovered ones
        let id2 = dev.create().unwrap();
        assert_ne!(id, id2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn partial_block_append_is_rejected() {
        let dev = MemDevice::default_for_tests();
        let id = dev.create().unwrap();
        let err = dev.append(id, &[1, 2, 3], IoCategory::Data).unwrap_err();
        assert!(matches!(err, StorageError::Corruption(_)));
    }

    #[test]
    fn live_blocks_tracks_space() {
        let dev = MemDevice::default_for_tests();
        let bs = dev.block_size();
        let a = dev.create().unwrap();
        let b = dev.create().unwrap();
        dev.append(a, &vec![0; bs * 3], IoCategory::Data).unwrap();
        dev.append(b, &vec![0; bs], IoCategory::Data).unwrap();
        assert_eq!(dev.live_blocks(), 4);
        dev.delete(a).unwrap();
        assert_eq!(dev.live_blocks(), 1);
    }

    #[test]
    fn latency_clock_advances_on_io() {
        let dev = MemDevice::new(4096, DeviceProfile::nvme_ssd());
        let id = dev.create().unwrap();
        dev.append(id, &vec![0; 4096], IoCategory::Data).unwrap();
        let after_write = dev.latency().clock().now_ns();
        assert!(after_write > 0);
        dev.read(id, 0, 1, IoCategory::Data).unwrap();
        assert!(dev.latency().clock().now_ns() > after_write);
    }

    #[test]
    fn empty_read_of_zero_blocks_is_ok() {
        let dev = MemDevice::default_for_tests();
        let id = dev.create().unwrap();
        let got = dev.read(id, 0, 0, IoCategory::Data).unwrap();
        assert!(got.is_empty());
    }
}
