//! Deterministic fault injection for crash-recovery testing.
//!
//! [`FaultDevice`] wraps any [`StorageDevice`] and injects faults from a
//! scripted schedule keyed by the device-wide I/O ordinal (appends and
//! reads, counted together). Because the engine's I/O sequence is
//! deterministic for a fixed workload, a schedule entry names an exact
//! point in execution — "the 37th I/O" is the same WAL append on every
//! run — which makes every failure reproducible.
//!
//! Four fault shapes cover the recovery paths the engine must survive:
//!
//! - [`FaultKind::Crash`]: the op fails and the device goes dead (every
//!   later op fails too), simulating power loss. [`FaultDevice::heal`]
//!   then models the machine coming back up with whatever had reached
//!   the underlying device.
//! - [`FaultKind::TornWrite`]: an append persists only a prefix of its
//!   blocks, then the device dies — power loss mid-write.
//! - [`FaultKind::BitFlip`]: a read succeeds but returns data with one
//!   bit flipped (position seeded, deterministic) — silent media
//!   corruption that checksums must catch.
//! - [`FaultKind::Transient`]: the op fails with a retryable
//!   [`std::io::ErrorKind::Interrupted`] error and nothing reaches the
//!   device; an identical retry proceeds normally.
//!
//! [`RetryDevice`] is the production-shaped counterpart: it wraps a
//! device and retries transient errors under a bounded exponential
//! backoff ([`RetryPolicy`]), charging backoff to the simulated clock and
//! counting each retry in [`IoStats::record_retry`].

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{StorageError, StorageResult};
use crate::file::FileId;
use crate::latency::LatencyModel;
use crate::stats::{IoCategory, IoStats};
use crate::StorageDevice;

/// One fault shape, scheduled at a specific I/O ordinal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// The op fails and the device goes dead until [`FaultDevice::heal`].
    Crash,
    /// The append persists only its first `keep_blocks` blocks, then the
    /// device goes dead. On a read this degrades to [`FaultKind::Crash`].
    TornWrite {
        /// Blocks of the append that reach the device before the tear.
        keep_blocks: u64,
    },
    /// The read completes but one bit of the returned data is flipped.
    /// On an append this is a no-op (the fault is consumed).
    BitFlip,
    /// The op fails with a retryable I/O error; nothing reaches the
    /// device, and the next attempt is not affected by this entry.
    Transient,
}

/// A scheduled fault: `kind` fires when the device executes its `at`-th
/// append-or-read (0-based, counted across all files and categories).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// I/O ordinal at which the fault fires.
    pub at: u64,
    /// What happens at that ordinal.
    pub kind: FaultKind,
}

struct FaultState {
    schedule: BTreeMap<u64, FaultKind>,
    dead: Option<u64>, // ordinal of the fatal fault, if the device died
}

/// A [`StorageDevice`] wrapper that injects scripted, deterministic
/// faults. See the module docs for the fault model.
pub struct FaultDevice {
    inner: Arc<dyn StorageDevice>,
    seed: u64,
    ops: AtomicU64,
    state: Mutex<FaultState>,
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

fn dead_error(at: u64) -> StorageError {
    StorageError::Io(io::Error::other(format!(
        "fault injection: device dead since I/O #{at}"
    )))
}

impl FaultDevice {
    /// Wraps `inner` with an empty schedule. `seed` determines which bit
    /// each [`FaultKind::BitFlip`] flips.
    pub fn new(inner: Arc<dyn StorageDevice>, seed: u64) -> Self {
        FaultDevice {
            inner,
            seed,
            ops: AtomicU64::new(0),
            state: Mutex::new(FaultState {
                schedule: BTreeMap::new(),
                dead: None,
            }),
        }
    }

    /// Schedules `kind` to fire at I/O ordinal `at`. Replaces any fault
    /// already scheduled there.
    pub fn schedule(&self, at: u64, kind: FaultKind) {
        self.state.lock().schedule.insert(at, kind);
    }

    /// Schedules every spec in `script`.
    pub fn schedule_all(&self, script: impl IntoIterator<Item = FaultSpec>) {
        let mut state = self.state.lock();
        for spec in script {
            state.schedule.insert(spec.at, spec.kind);
        }
    }

    /// Appends and reads executed (or attempted) so far. Run a workload
    /// once fault-free to learn the ordinal space, then schedule faults
    /// inside it.
    pub fn ops_performed(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Whether a fatal fault has taken the device down.
    pub fn is_dead(&self) -> bool {
        self.state.lock().dead.is_some()
    }

    /// Clears the dead state and any unfired schedule entries, modelling
    /// a restart: the data that reached the inner device is intact and
    /// I/O works again. The ordinal counter keeps counting up.
    pub fn heal(&self) {
        let mut state = self.state.lock();
        state.dead = None;
        state.schedule.clear();
    }

    /// Faults scheduled but not yet fired.
    pub fn pending_faults(&self) -> Vec<FaultSpec> {
        self.state
            .lock()
            .schedule
            .iter()
            .map(|(&at, kind)| FaultSpec {
                at,
                kind: kind.clone(),
            })
            .collect()
    }

    /// Fails if dead; otherwise claims the next ordinal and pops the
    /// fault scheduled there, if any.
    fn next_op(&self) -> StorageResult<(u64, Option<FaultKind>)> {
        let mut state = self.state.lock();
        if let Some(at) = state.dead {
            return Err(dead_error(at));
        }
        let op = self.ops.fetch_add(1, Ordering::Relaxed);
        let fault = state.schedule.remove(&op);
        Ok((op, fault))
    }

    /// Metadata ops (create/seal/delete) fail on a dead device but do not
    /// consume an ordinal or fire scheduled faults.
    fn check_alive(&self) -> StorageResult<()> {
        if let Some(at) = self.state.lock().dead {
            return Err(dead_error(at));
        }
        Ok(())
    }

    fn kill(&self, at: u64) {
        self.state.lock().dead = Some(at);
    }
}

impl StorageDevice for FaultDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn latency(&self) -> &LatencyModel {
        self.inner.latency()
    }

    fn create(&self) -> StorageResult<FileId> {
        self.check_alive()?;
        self.inner.create()
    }

    fn append(&self, file: FileId, data: &[u8], cat: IoCategory) -> StorageResult<()> {
        let (op, fault) = self.next_op()?;
        match fault {
            None | Some(FaultKind::BitFlip) => self.inner.append(file, data, cat),
            Some(FaultKind::Transient) => Err(StorageError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("fault injection: transient failure at I/O #{op}"),
            ))),
            Some(FaultKind::Crash) => {
                self.kill(op);
                Err(dead_error(op))
            }
            Some(FaultKind::TornWrite { keep_blocks }) => {
                let bs = self.inner.block_size();
                let keep = (keep_blocks as usize * bs).min(data.len());
                if keep > 0 {
                    self.inner.append(file, &data[..keep], cat)?;
                }
                self.kill(op);
                Err(dead_error(op))
            }
        }
    }

    fn seal(&self, file: FileId) -> StorageResult<()> {
        self.check_alive()?;
        self.inner.seal(file)
    }

    fn read(
        &self,
        file: FileId,
        offset: u64,
        nblocks: u64,
        cat: IoCategory,
    ) -> StorageResult<Vec<u8>> {
        let (op, fault) = self.next_op()?;
        match fault {
            None => self.inner.read(file, offset, nblocks, cat),
            Some(FaultKind::Transient) => Err(StorageError::Io(io::Error::new(
                io::ErrorKind::Interrupted,
                format!("fault injection: transient failure at I/O #{op}"),
            ))),
            Some(FaultKind::Crash) | Some(FaultKind::TornWrite { .. }) => {
                self.kill(op);
                Err(dead_error(op))
            }
            Some(FaultKind::BitFlip) => {
                let mut data = self.inner.read(file, offset, nblocks, cat)?;
                if !data.is_empty() {
                    let r = splitmix64(self.seed ^ op);
                    let byte = (r as usize) % data.len();
                    let bit = (r >> 32) % 8;
                    data[byte] ^= 1 << bit;
                }
                Ok(data)
            }
        }
    }

    fn len_blocks(&self, file: FileId) -> StorageResult<u64> {
        self.check_alive()?;
        self.inner.len_blocks(file)
    }

    fn delete(&self, file: FileId) -> StorageResult<()> {
        self.check_alive()?;
        self.inner.delete(file)
    }

    fn live_files(&self) -> Vec<FileId> {
        self.inner.live_files()
    }

    fn live_blocks(&self) -> u64 {
        self.inner.live_blocks()
    }
}

// ---------------------------------------------------------------------------
// Bounded retry with backoff
// ---------------------------------------------------------------------------

/// Bounded retry-with-backoff policy for transient device errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Simulated backoff before the first retry; doubles per attempt.
    pub base_backoff_ns: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            base_backoff_ns: 100_000, // 100 µs, doubling
        }
    }
}

impl RetryPolicy {
    /// Simulated backoff before retry number `retry` (1-based).
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        self.base_backoff_ns
            .saturating_mul(1u64.checked_shl(retry.saturating_sub(1)).unwrap_or(u64::MAX))
    }
}

/// A [`StorageDevice`] wrapper that retries transient failures.
///
/// An op failing with a transient error ([`StorageError::is_transient`])
/// is retried up to [`RetryPolicy::max_retries`] times; each retry charges
/// exponential backoff to the simulated clock and increments the shared
/// [`IoStats`] retry counter. Retrying assumes a transiently-failed op had
/// no effect on the device, which holds for the errors this layer retries:
/// an interrupted call that persisted data would instead surface as a torn
/// write, which is not transient and is not retried.
pub struct RetryDevice {
    inner: Arc<dyn StorageDevice>,
    policy: RetryPolicy,
}

impl RetryDevice {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: Arc<dyn StorageDevice>, policy: RetryPolicy) -> Self {
        RetryDevice { inner, policy }
    }

    /// The policy in use.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }

    fn with_retries<T>(&self, mut op: impl FnMut() -> StorageResult<T>) -> StorageResult<T> {
        let mut attempt = 0u32;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < self.policy.max_retries => {
                    attempt += 1;
                    self.inner.stats().record_retry();
                    self.inner
                        .latency()
                        .clock()
                        .advance(self.policy.backoff_ns(attempt));
                }
                Err(e) => return Err(e),
            }
        }
    }
}

impl StorageDevice for RetryDevice {
    fn block_size(&self) -> usize {
        self.inner.block_size()
    }

    fn stats(&self) -> &IoStats {
        self.inner.stats()
    }

    fn latency(&self) -> &LatencyModel {
        self.inner.latency()
    }

    fn create(&self) -> StorageResult<FileId> {
        self.with_retries(|| self.inner.create())
    }

    fn append(&self, file: FileId, data: &[u8], cat: IoCategory) -> StorageResult<()> {
        self.with_retries(|| self.inner.append(file, data, cat))
    }

    fn seal(&self, file: FileId) -> StorageResult<()> {
        self.with_retries(|| self.inner.seal(file))
    }

    fn read(
        &self,
        file: FileId,
        offset: u64,
        nblocks: u64,
        cat: IoCategory,
    ) -> StorageResult<Vec<u8>> {
        self.with_retries(|| self.inner.read(file, offset, nblocks, cat))
    }

    fn len_blocks(&self, file: FileId) -> StorageResult<u64> {
        self.with_retries(|| self.inner.len_blocks(file))
    }

    fn delete(&self, file: FileId) -> StorageResult<()> {
        self.with_retries(|| self.inner.delete(file))
    }

    fn live_files(&self) -> Vec<FileId> {
        self.inner.live_files()
    }

    fn live_blocks(&self) -> u64 {
        self.inner.live_blocks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::MemDevice;

    fn mem() -> Arc<dyn StorageDevice> {
        Arc::new(MemDevice::default_for_tests())
    }

    fn one_block(dev: &dyn StorageDevice, byte: u8) -> Vec<u8> {
        vec![byte; dev.block_size()]
    }

    #[test]
    fn no_schedule_is_transparent() {
        let dev = FaultDevice::new(mem(), 1);
        let id = dev.create().unwrap();
        let blk = one_block(&dev, 0x11);
        dev.append(id, &blk, IoCategory::Data).unwrap();
        dev.seal(id).unwrap();
        assert_eq!(dev.read(id, 0, 1, IoCategory::Data).unwrap(), blk);
        assert_eq!(dev.ops_performed(), 2);
        assert!(!dev.is_dead());
    }

    #[test]
    fn crash_kills_device_until_heal() {
        let dev = FaultDevice::new(mem(), 1);
        dev.schedule(1, FaultKind::Crash);
        let id = dev.create().unwrap();
        let blk = one_block(&dev, 0x22);
        dev.append(id, &blk, IoCategory::Data).unwrap(); // op 0
        let err = dev.append(id, &blk, IoCategory::Data).unwrap_err(); // op 1
        assert!(matches!(err, StorageError::Io(_)));
        assert!(dev.is_dead());
        // everything fails while dead, including metadata ops and reads
        assert!(dev.create().is_err());
        assert!(dev.seal(id).is_err());
        assert!(dev.read(id, 0, 1, IoCategory::Data).is_err());
        // heal: data that reached the inner device is intact
        dev.heal();
        assert!(!dev.is_dead());
        assert_eq!(dev.len_blocks(id).unwrap(), 1);
        assert_eq!(dev.read(id, 0, 1, IoCategory::Data).unwrap(), blk);
    }

    #[test]
    fn torn_write_persists_prefix_only() {
        let dev = FaultDevice::new(mem(), 1);
        dev.schedule(0, FaultKind::TornWrite { keep_blocks: 1 });
        let id = dev.create().unwrap();
        let bs = dev.block_size();
        let mut data = vec![0xAA; bs];
        data.extend(vec![0xBB; bs]);
        data.extend(vec![0xCC; bs]);
        assert!(dev.append(id, &data, IoCategory::Wal).is_err());
        assert!(dev.is_dead());
        dev.heal();
        assert_eq!(dev.len_blocks(id).unwrap(), 1);
        assert_eq!(dev.read(id, 0, 1, IoCategory::Wal).unwrap(), vec![0xAA; bs]);
    }

    #[test]
    fn bit_flip_corrupts_exactly_one_bit_deterministically() {
        let inner = mem();
        let dev = FaultDevice::new(Arc::clone(&inner), 42);
        let id = dev.create().unwrap();
        let blk = one_block(&dev, 0x00);
        dev.append(id, &blk, IoCategory::Data).unwrap();
        dev.schedule(1, FaultKind::BitFlip);
        let corrupted = dev.read(id, 0, 1, IoCategory::Data).unwrap();
        let diff_bits: u32 = corrupted
            .iter()
            .zip(&blk)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff_bits, 1);
        // one-shot: the next read is clean
        assert_eq!(dev.read(id, 0, 1, IoCategory::Data).unwrap(), blk);
        let _ = inner;
    }

    #[test]
    fn bit_flip_is_reproducible_for_seed_and_ordinal() {
        let flip_of = |seed: u64| {
            let dev = FaultDevice::new(mem(), seed);
            let id = dev.create().unwrap();
            let blk = one_block(&dev, 0x5A);
            dev.append(id, &blk, IoCategory::Data).unwrap();
            dev.schedule(1, FaultKind::BitFlip);
            dev.read(id, 0, 1, IoCategory::Data).unwrap()
        };
        assert_eq!(flip_of(7), flip_of(7));
        assert_ne!(flip_of(7), flip_of(8));
    }

    #[test]
    fn transient_fails_once_then_succeeds() {
        let dev = FaultDevice::new(mem(), 1);
        dev.schedule(0, FaultKind::Transient);
        let id = dev.create().unwrap();
        let blk = one_block(&dev, 0x33);
        let err = dev.append(id, &blk, IoCategory::Data).unwrap_err();
        assert!(err.is_transient());
        // nothing reached the device
        assert_eq!(dev.len_blocks(id).unwrap(), 0);
        // identical retry succeeds
        dev.append(id, &blk, IoCategory::Data).unwrap();
        assert_eq!(dev.read(id, 0, 1, IoCategory::Data).unwrap(), blk);
    }

    #[test]
    fn retry_device_rides_through_transients() {
        let inner = mem();
        let faulty = Arc::new(FaultDevice::new(Arc::clone(&inner), 1));
        faulty.schedule_all([
            FaultSpec { at: 0, kind: FaultKind::Transient },
            FaultSpec { at: 1, kind: FaultKind::Transient },
        ]);
        let dev = RetryDevice::new(faulty, RetryPolicy::default());
        let id = dev.create().unwrap();
        let blk = vec![0x44; dev.block_size()];
        dev.append(id, &blk, IoCategory::Data).unwrap();
        assert_eq!(dev.read(id, 0, 1, IoCategory::Data).unwrap(), blk);
        let snap = dev.stats().snapshot();
        assert_eq!(snap.retries, 2);
        // backoff was charged to the simulated clock even on a free profile
        assert!(dev.latency().clock().now_ns() >= 2 * 100_000);
    }

    #[test]
    fn retry_budget_is_bounded() {
        let inner = mem();
        let faulty = Arc::new(FaultDevice::new(Arc::clone(&inner), 1));
        // more consecutive transients than the policy tolerates
        faulty.schedule_all((0..10).map(|at| FaultSpec {
            at,
            kind: FaultKind::Transient,
        }));
        let dev = RetryDevice::new(
            faulty,
            RetryPolicy { max_retries: 3, base_backoff_ns: 10 },
        );
        let id = dev.create().unwrap();
        let blk = vec![0x55; dev.block_size()];
        let err = dev.append(id, &blk, IoCategory::Data).unwrap_err();
        assert!(err.is_transient());
        assert_eq!(dev.stats().snapshot().retries, 3);
    }

    #[test]
    fn retry_device_does_not_retry_hard_faults() {
        let inner = mem();
        let faulty = Arc::new(FaultDevice::new(Arc::clone(&inner), 1));
        faulty.schedule(0, FaultKind::Crash);
        let dev = RetryDevice::new(faulty, RetryPolicy::default());
        let id = dev.create().unwrap();
        let blk = vec![0x66; dev.block_size()];
        assert!(dev.append(id, &blk, IoCategory::Data).is_err());
        assert_eq!(dev.stats().snapshot().retries, 0);
    }

    #[test]
    fn heal_clears_pending_schedule() {
        let dev = FaultDevice::new(mem(), 1);
        dev.schedule(5, FaultKind::Crash);
        dev.schedule(9, FaultKind::BitFlip);
        assert_eq!(dev.pending_faults().len(), 2);
        dev.heal();
        assert!(dev.pending_faults().is_empty());
        let id = dev.create().unwrap();
        let blk = one_block(&dev, 0x77);
        for _ in 0..20 {
            dev.append(id, &blk, IoCategory::Data).unwrap();
        }
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let p = RetryPolicy { max_retries: 80, base_backoff_ns: 100 };
        assert_eq!(p.backoff_ns(1), 100);
        assert_eq!(p.backoff_ns(2), 200);
        assert_eq!(p.backoff_ns(3), 400);
        assert_eq!(p.backoff_ns(70), u64::MAX); // shift overflow saturates
    }
}
