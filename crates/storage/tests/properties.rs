//! Property-based invariants for the storage substrate: a file's readable
//! contents always equal the concatenation of its appends (under arbitrary
//! append sizes), and I/O accounting matches the operations issued.

use std::sync::Arc;

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_storage::{
    DeviceProfile, IoCategory, MemDevice, StorageDevice, WritableFile,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever chunking appends arrive in, reading back the sealed file
    /// yields exactly the concatenated bytes (plus zero padding).
    #[test]
    fn writable_file_preserves_byte_stream(
        chunks in vec(vec(any::<u8>(), 0..2000), 0..20),
        block_size_pow in 6u32..11,
    ) {
        let block_size = 1usize << block_size_pow;
        let dev: Arc<dyn StorageDevice> =
            Arc::new(MemDevice::new(block_size, DeviceProfile::free()));
        let mut w = WritableFile::create(Arc::clone(&dev), IoCategory::Data).unwrap();
        let mut expected = Vec::new();
        for c in &chunks {
            w.append(c).unwrap();
            expected.extend_from_slice(c);
            prop_assert_eq!(w.offset() as usize, expected.len());
        }
        let f = w.seal().unwrap();
        let total_blocks = expected.len().div_ceil(block_size);
        prop_assert_eq!(f.len_blocks() as usize, total_blocks);
        if !expected.is_empty() {
            let got = f.read_bytes(0, expected.len(), IoCategory::Data).unwrap();
            prop_assert_eq!(got, expected.clone());
        }
        // random sub-range reads agree too
        if expected.len() > 2 {
            let mid = expected.len() / 2;
            let got = f.read_bytes(1, mid, IoCategory::Data).unwrap();
            prop_assert_eq!(got.as_slice(), &expected[1..1 + mid]);
        }
    }

    /// Write accounting equals the padded block count; deleting frees all
    /// live blocks.
    #[test]
    fn io_accounting_matches_operations(
        sizes in vec(1usize..5000, 1..10),
    ) {
        let dev: Arc<dyn StorageDevice> =
            Arc::new(MemDevice::new(512, DeviceProfile::free()));
        let mut files = Vec::new();
        let mut expected_blocks = 0u64;
        for (i, size) in sizes.iter().enumerate() {
            let cat = if i % 2 == 0 { IoCategory::Data } else { IoCategory::Wal };
            let mut w = WritableFile::create(Arc::clone(&dev), cat).unwrap();
            w.append(&vec![0xAB; *size]).unwrap();
            let f = w.seal().unwrap();
            expected_blocks += (*size as u64).div_ceil(512);
            files.push(f);
        }
        let snap = dev.stats().snapshot();
        prop_assert_eq!(snap.total_written_blocks(), expected_blocks);
        prop_assert_eq!(dev.live_blocks(), expected_blocks);
        for f in files {
            f.delete().unwrap();
        }
        prop_assert_eq!(dev.live_blocks(), 0);
    }
}
