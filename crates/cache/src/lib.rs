//! # lsm-cache
//!
//! Block-level caching for LSM engines (tutorial Module II.1):
//!
//! - eviction policies behind one trait: [`LruShard`], [`LfuShard`],
//!   [`ClockShard`], [`FifoShard`];
//! - a thread-safe [`ShardedCache`] front with hit/miss accounting;
//! - [`PinnedTier`] for filter/index blocks, which production engines pin
//!   separately from data blocks;
//! - a key-range [`HeatMap`] plus a Leaper-style post-compaction
//!   [`prefetch`] planner, addressing the cache-invalidation-by-compaction
//!   problem the tutorial highlights (Leaper, VLDB '20).

pub mod clock;
pub mod fifo;
pub mod heat;
pub mod lfu;
pub mod lru;
pub mod pinning;
pub mod prefetch;
pub mod sharded;
pub mod traits;

pub use clock::ClockShard;
pub use fifo::FifoShard;
pub use heat::HeatMap;
pub use lfu::LfuShard;
pub use lru::LruShard;
pub use pinning::PinnedTier;
pub use prefetch::{plan_prefetch, PrefetchCandidate};
pub use sharded::{CacheStats, ShardStatsSnapshot, ShardedCache};
pub use traits::{CacheKey, CachePolicy, CacheShard};
