//! Thread-safe sharded cache front with hit/miss accounting.
//!
//! Keys are spread across shards by hash so concurrent readers rarely
//! contend on one mutex — the same structure RocksDB's block cache uses.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::clock::ClockShard;
use crate::fifo::FifoShard;
use crate::lfu::LfuShard;
use crate::lru::LruShard;
use crate::traits::{CacheKey, CachePolicy, CacheShard};

/// Hit/miss counters for a cache.
#[derive(Debug, Default)]
pub struct CacheStats {
    hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    evictions: AtomicU64,
}

impl CacheStats {
    /// Lookups that found the block.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Insert operations.
    pub fn inserts(&self) -> u64 {
        self.inserts.load(Ordering::Relaxed)
    }

    /// Entries evicted to make room for inserts.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Hit rate in `[0, 1]`; zero if no lookups yet.
    pub fn hit_rate(&self) -> f64 {
        let h = self.hits() as f64;
        let m = self.misses() as f64;
        if h + m == 0.0 {
            0.0
        } else {
            h / (h + m)
        }
    }

    /// Resets all counters.
    pub fn reset(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.inserts.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of one shard's counters (skew diagnostics: a hot
/// shard shows up as a hit/miss outlier here, invisible in the totals).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStatsSnapshot {
    /// Lookups served by this shard that hit.
    pub hits: u64,
    /// Lookups served by this shard that missed.
    pub misses: u64,
    /// Entries this shard evicted to admit inserts.
    pub evictions: u64,
}

lsm_obs::impl_delta_since!(ShardStatsSnapshot {
    hits,
    misses,
    evictions,
});

#[derive(Debug, Default)]
struct ShardStats {
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

/// A sharded, thread-safe block cache with a pluggable eviction policy.
pub struct ShardedCache<V: Clone + Send> {
    shards: Vec<Mutex<Box<dyn CacheShard<V>>>>,
    stats: CacheStats,
    shard_stats: Vec<ShardStats>,
    mask: u64,
}

impl<V: Clone + Send + 'static> ShardedCache<V> {
    /// Cache of `capacity` charge units split across `num_shards`
    /// (rounded up to a power of two) with the given policy.
    pub fn new(policy: CachePolicy, capacity: usize, num_shards: usize) -> Self {
        let shards_pow2 = num_shards.max(1).next_power_of_two();
        let per_shard = capacity / shards_pow2;
        let shards = (0..shards_pow2)
            .map(|_| {
                let shard: Box<dyn CacheShard<V>> = match policy {
                    CachePolicy::Lru => Box::new(LruShard::new(per_shard)),
                    CachePolicy::Lfu => Box::new(LfuShard::new(per_shard)),
                    CachePolicy::Clock => Box::new(ClockShard::new(per_shard)),
                    CachePolicy::Fifo => Box::new(FifoShard::new(per_shard)),
                };
                Mutex::new(shard)
            })
            .collect();
        ShardedCache {
            shards,
            stats: CacheStats::default(),
            shard_stats: (0..shards_pow2).map(|_| ShardStats::default()).collect(),
            mask: shards_pow2 as u64 - 1,
        }
    }

    fn shard_of(&self, key: &CacheKey) -> usize {
        // mix file and block so consecutive blocks spread across shards
        let h = key
            .file
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(key.block.wrapping_mul(0xC2B2AE3D27D4EB4F));
        ((h >> 32) & self.mask) as usize
    }

    /// Looks up a block, counting the hit or miss (globally and on the
    /// owning shard).
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        let shard = self.shard_of(key);
        let res = self.shards[shard].lock().get(key);
        if res.is_some() {
            self.stats.hits.fetch_add(1, Ordering::Relaxed);
            self.shard_stats[shard].hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.stats.misses.fetch_add(1, Ordering::Relaxed);
            self.shard_stats[shard].misses.fetch_add(1, Ordering::Relaxed);
        }
        res
    }

    /// Inserts a block, counting any evictions it forced.
    pub fn insert(&self, key: CacheKey, value: V, charge: usize) {
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(&key);
        let evicted = self.shards[shard].lock().insert(key, value, charge) as u64;
        if evicted > 0 {
            self.stats.evictions.fetch_add(evicted, Ordering::Relaxed);
            self.shard_stats[shard]
                .evictions
                .fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Removes one block.
    pub fn remove(&self, key: &CacheKey) -> bool {
        self.shards[self.shard_of(key)].lock().remove(key)
    }

    /// Removes every cached block of `file` — called when compaction
    /// deletes the file. Returns how many entries were dropped. This is
    /// the *cache invalidation by compaction* effect Leaper addresses.
    pub fn invalidate_file(&self, file: u64, max_block: u64) -> usize {
        let mut dropped = 0;
        for block in 0..=max_block {
            let key = CacheKey::new(file, block);
            if self.shards[self.shard_of(&key)].lock().remove(&key) {
                dropped += 1;
            }
        }
        dropped
    }

    /// Total resident entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total charge used.
    pub fn used(&self) -> usize {
        self.shards.iter().map(|s| s.lock().used()).sum()
    }

    /// Total configured capacity.
    pub fn capacity(&self) -> usize {
        self.shards.iter().map(|s| s.lock().capacity()).sum()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Per-shard counter snapshots, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStatsSnapshot> {
        self.shard_stats
            .iter()
            .map(|s| ShardStatsSnapshot {
                hits: s.hits.load(Ordering::Relaxed),
                misses: s.misses.load(Ordering::Relaxed),
                evictions: s.evictions.load(Ordering::Relaxed),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn k(f: u64, b: u64) -> CacheKey {
        CacheKey::new(f, b)
    }

    #[test]
    fn all_policies_roundtrip() {
        for policy in CachePolicy::ALL {
            let c: ShardedCache<u64> = ShardedCache::new(policy, 1024, 4);
            for i in 0..100 {
                c.insert(k(1, i), i, 8);
            }
            let mut hits = 0;
            for i in 0..100 {
                if c.get(&k(1, i)).is_some() {
                    hits += 1;
                }
            }
            assert!(hits > 50, "{}: only {hits} hits", policy.label());
            assert!(c.used() <= c.capacity(), "{}", policy.label());
        }
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let c: ShardedCache<u64> = ShardedCache::new(CachePolicy::Lru, 1024, 2);
        c.insert(k(0, 0), 7, 8);
        assert_eq!(c.get(&k(0, 0)), Some(7));
        assert_eq!(c.get(&k(0, 1)), None);
        assert_eq!(c.stats().hits(), 1);
        assert_eq!(c.stats().misses(), 1);
        assert_eq!(c.stats().inserts(), 1);
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
        c.stats().reset();
        assert_eq!(c.stats().hits(), 0);
    }

    #[test]
    fn invalidate_file_drops_all_its_blocks() {
        let c: ShardedCache<u64> = ShardedCache::new(CachePolicy::Lru, 4096, 4);
        for b in 0..20 {
            c.insert(k(7, b), b, 8);
            c.insert(k(8, b), b, 8);
        }
        let dropped = c.invalidate_file(7, 19);
        assert_eq!(dropped, 20);
        for b in 0..20 {
            assert_eq!(c.get(&k(7, b)), None);
            assert!(c.get(&k(8, b)).is_some(), "other file untouched");
        }
    }

    #[test]
    fn concurrent_access_is_safe_and_counted() {
        let c: Arc<ShardedCache<u64>> = Arc::new(ShardedCache::new(CachePolicy::Lru, 8192, 8));
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for i in 0..500 {
                        c.insert(k(t, i), i, 4);
                        c.get(&k(t, i));
                    }
                });
            }
        });
        assert_eq!(c.stats().inserts(), 2000);
        assert!(c.stats().hits() + c.stats().misses() == 2000);
        assert!(c.used() <= c.capacity());
    }

    #[test]
    fn per_shard_stats_sum_to_totals() {
        for policy in CachePolicy::ALL {
            let c: ShardedCache<u64> = ShardedCache::new(policy, 256, 4);
            for i in 0..200 {
                c.insert(k(1, i), i, 8);
                c.get(&k(1, i));
                c.get(&k(9, i)); // never inserted
            }
            let per: Vec<ShardStatsSnapshot> = c.shard_stats();
            let hits: u64 = per.iter().map(|s| s.hits).sum();
            let misses: u64 = per.iter().map(|s| s.misses).sum();
            let evictions: u64 = per.iter().map(|s| s.evictions).sum();
            assert_eq!(hits, c.stats().hits(), "{}", policy.label());
            assert_eq!(misses, c.stats().misses(), "{}", policy.label());
            assert_eq!(evictions, c.stats().evictions(), "{}", policy.label());
            // 200 inserts of charge 8 into 256 bytes must evict
            assert!(evictions > 0, "{}: no evictions counted", policy.label());
        }
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let c: ShardedCache<u8> = ShardedCache::new(CachePolicy::Fifo, 64, 3);
        assert_eq!(c.shards.len(), 4);
    }
}
