//! Key-range heat map: the access-frequency signal behind hotness-aware
//! optimizations (ElasticBF's filter rebalancing, Leaper's prefetching).
//!
//! The u64-mapped key space is split into fixed-width buckets; accesses
//! increment a bucket counter and counters decay exponentially on a
//! configurable epoch so the map tracks the *current* working set.

/// Exponentially-decayed access counts over key-space buckets.
#[derive(Clone, Debug)]
pub struct HeatMap {
    buckets: Vec<f64>,
    /// Domain is partitioned as `[i * width, (i+1) * width)`.
    width: u64,
    accesses_since_decay: u64,
    decay_period: u64,
    decay_factor: f64,
}

impl HeatMap {
    /// Map with `num_buckets` over the full u64 domain; counters halve
    /// every `decay_period` recorded accesses.
    pub fn new(num_buckets: usize, decay_period: u64) -> Self {
        let n = num_buckets.max(1);
        HeatMap {
            buckets: vec![0.0; n],
            width: (u64::MAX / n as u64).saturating_add(1),
            accesses_since_decay: 0,
            decay_period: decay_period.max(1),
            decay_factor: 0.5,
        }
    }

    fn bucket_of(&self, key: u64) -> usize {
        ((key / self.width) as usize).min(self.buckets.len() - 1)
    }

    /// Records one access to `key` (u64-mapped).
    pub fn record(&mut self, key: u64) {
        let b = self.bucket_of(key);
        self.buckets[b] += 1.0;
        self.accesses_since_decay += 1;
        if self.accesses_since_decay >= self.decay_period {
            self.accesses_since_decay = 0;
            for v in &mut self.buckets {
                *v *= self.decay_factor;
            }
        }
    }

    /// Current heat of the bucket containing `key`.
    pub fn heat(&self, key: u64) -> f64 {
        self.buckets[self.bucket_of(key)]
    }

    /// Mean heat of buckets overlapping `[lo, hi]`.
    pub fn range_heat(&self, lo: u64, hi: u64) -> f64 {
        if lo > hi {
            return 0.0;
        }
        let (b_lo, b_hi) = (self.bucket_of(lo), self.bucket_of(hi));
        let slice = &self.buckets[b_lo..=b_hi];
        slice.iter().sum::<f64>() / slice.len() as f64
    }

    /// Heat value at the given hotness percentile (e.g. 0.9 → the heat of
    /// the 90th-percentile bucket); used as a prefetch threshold.
    pub fn percentile(&self, p: f64) -> f64 {
        let mut sorted: Vec<f64> = self.buckets.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((sorted.len() as f64 - 1.0) * p.clamp(0.0, 1.0)).round() as usize;
        sorted[idx]
    }

    /// Number of buckets.
    pub fn num_buckets(&self) -> usize {
        self.buckets.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_range_registers() {
        let mut h = HeatMap::new(64, 1_000_000);
        for _ in 0..100 {
            h.record(u64::MAX / 2);
        }
        assert!(h.heat(u64::MAX / 2) >= 100.0 - 1e-9);
        assert_eq!(h.heat(0), 0.0);
    }

    #[test]
    fn decay_halves_counts() {
        let mut h = HeatMap::new(4, 10);
        for _ in 0..10 {
            h.record(0);
        }
        // the 10th access triggered decay: 10 * 0.5
        assert!((h.heat(0) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn range_heat_averages() {
        let mut h = HeatMap::new(4, 1_000_000);
        let quarter = u64::MAX / 4;
        for _ in 0..8 {
            h.record(0); // bucket 0
        }
        for _ in 0..4 {
            h.record(quarter + 10); // bucket 1
        }
        let avg = h.range_heat(0, quarter + 10);
        assert!((avg - 6.0).abs() < 1e-9, "avg {avg}");
        assert_eq!(h.range_heat(10, 5), 0.0, "inverted range");
    }

    #[test]
    fn percentile_finds_threshold() {
        let mut h = HeatMap::new(10, 1_000_000);
        // one very hot bucket
        for _ in 0..100 {
            h.record(0);
        }
        assert_eq!(h.percentile(0.0), 0.0);
        assert!(h.percentile(1.0) >= 100.0 - 1e-9);
    }

    #[test]
    fn extreme_keys_do_not_panic() {
        let mut h = HeatMap::new(7, 100);
        h.record(u64::MAX);
        h.record(0);
        assert!(h.heat(u64::MAX) > 0.0);
        let _ = h.range_heat(0, u64::MAX);
    }

    #[test]
    fn single_bucket_map() {
        let mut h = HeatMap::new(1, 100);
        h.record(42);
        h.record(u64::MAX / 2);
        assert!((h.heat(7) - 2.0).abs() < 1e-9);
    }
}
