//! Strict LRU shard: O(1) get/insert/evict via an index-linked list over a
//! slab, the same structure RocksDB's `LRUCache` uses (minus the handle
//! refcounting, which our clone-out values make unnecessary).

use std::collections::HashMap;

use crate::traits::{CacheKey, CacheShard};

const NIL: usize = usize::MAX;

struct Entry<V> {
    key: CacheKey,
    value: V,
    charge: usize,
    prev: usize,
    next: usize,
}

/// A least-recently-used cache shard.
pub struct LruShard<V> {
    map: HashMap<CacheKey, usize>,
    slab: Vec<Entry<V>>,
    free: Vec<usize>,
    head: usize, // most recent
    tail: usize, // least recent
    used: usize,
    capacity: usize,
}

impl<V: Clone + Send> LruShard<V> {
    /// Shard with the given capacity in charge units.
    pub fn new(capacity: usize) -> Self {
        LruShard {
            map: HashMap::new(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            used: 0,
            capacity,
        }
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn evict_one(&mut self) -> bool {
        let victim = self.tail;
        if victim == NIL {
            return false;
        }
        self.unlink(victim);
        let key = self.slab[victim].key;
        self.used -= self.slab[victim].charge;
        self.map.remove(&key);
        self.free.push(victim);
        true
    }
}

impl<V: Clone + Send> CacheShard<V> for LruShard<V> {
    fn get(&mut self, key: &CacheKey) -> Option<V> {
        let &idx = self.map.get(key)?;
        self.unlink(idx);
        self.push_front(idx);
        Some(self.slab[idx].value.clone())
    }

    fn insert(&mut self, key: CacheKey, value: V, charge: usize) -> usize {
        if charge > self.capacity {
            // never admit an entry that cannot fit; also drop any stale copy
            self.remove(&key);
            return 0;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.used = self.used - self.slab[idx].charge + charge;
            self.slab[idx].value = value;
            self.slab[idx].charge = charge;
            self.unlink(idx);
            self.push_front(idx);
        } else {
            let idx = if let Some(i) = self.free.pop() {
                self.slab[i] = Entry {
                    key,
                    value,
                    charge,
                    prev: NIL,
                    next: NIL,
                };
                i
            } else {
                self.slab.push(Entry {
                    key,
                    value,
                    charge,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            };
            self.map.insert(key, idx);
            self.push_front(idx);
            self.used += charge;
        }
        let mut evicted = 0;
        while self.used > self.capacity {
            if !self.evict_one() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &CacheKey) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.unlink(idx);
                self.used -= self.slab[idx].charge;
                self.free.push(idx);
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn used(&self) -> usize {
        self.used
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> CacheKey {
        CacheKey::new(0, i)
    }

    #[test]
    fn basic_hit_and_miss() {
        let mut c = LruShard::new(100);
        c.insert(k(1), "a", 10);
        assert_eq!(c.get(&k(1)), Some("a"));
        assert_eq!(c.get(&k(2)), None);
        assert_eq!(c.len(), 1);
        assert_eq!(c.used(), 10);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruShard::new(30);
        c.insert(k(1), 1, 10);
        c.insert(k(2), 2, 10);
        c.insert(k(3), 3, 10);
        // touch 1 so 2 becomes LRU
        c.get(&k(1));
        c.insert(k(4), 4, 10);
        assert_eq!(c.get(&k(2)), None, "2 was LRU");
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
        assert!(c.get(&k(4)).is_some());
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut c = LruShard::new(50);
        for i in 0..100 {
            c.insert(k(i), i, 7);
            assert!(c.used() <= 50, "used {} at i={i}", c.used());
        }
    }

    #[test]
    fn oversized_entry_rejected() {
        let mut c = LruShard::new(10);
        c.insert(k(1), 1, 11);
        assert_eq!(c.len(), 0);
        assert_eq!(c.get(&k(1)), None);
    }

    #[test]
    fn oversized_replacement_drops_stale_copy() {
        let mut c = LruShard::new(10);
        c.insert(k(1), 1, 5);
        c.insert(k(1), 2, 11);
        assert_eq!(c.get(&k(1)), None, "stale value must not survive");
    }

    #[test]
    fn replace_updates_charge() {
        let mut c = LruShard::new(100);
        c.insert(k(1), 1, 10);
        c.insert(k(1), 2, 30);
        assert_eq!(c.used(), 30);
        assert_eq!(c.get(&k(1)), Some(2));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn remove_frees_space() {
        let mut c = LruShard::new(100);
        c.insert(k(1), 1, 40);
        assert!(c.remove(&k(1)));
        assert!(!c.remove(&k(1)));
        assert_eq!(c.used(), 0);
        assert!(c.is_empty());
        // slot is reused
        c.insert(k(2), 2, 40);
        assert_eq!(c.get(&k(2)), Some(2));
    }

    #[test]
    fn eviction_order_is_exact_lru() {
        let mut c = LruShard::new(3);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        c.insert(k(3), 3, 1);
        c.get(&k(2));
        c.get(&k(1));
        // order now (MRU->LRU): 1, 2, 3
        c.insert(k(4), 4, 1); // evicts 3
        assert_eq!(c.get(&k(3)), None);
        c.insert(k(5), 5, 1); // evicts 2
        assert_eq!(c.get(&k(2)), None);
        assert!(c.get(&k(1)).is_some());
    }

    #[test]
    fn zero_capacity_holds_nothing() {
        let mut c = LruShard::new(0);
        c.insert(k(1), 1, 1);
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn churn_reuses_slab_slots() {
        let mut c = LruShard::new(10);
        for round in 0..50u64 {
            for i in 0..10 {
                c.insert(k(round * 10 + i), i, 1);
            }
        }
        // slab should stay bounded near capacity, not grow with churn
        assert!(c.slab.len() <= 21, "slab grew to {}", c.slab.len());
    }
}
