//! CLOCK (second-chance) shard: an LRU approximation that replaces the
//! linked list with a circular scan over reference bits — cheaper
//! bookkeeping per hit (one bit set) at the cost of approximate recency.

use std::collections::HashMap;

use crate::traits::{CacheKey, CacheShard};

struct Slot<V> {
    key: CacheKey,
    value: V,
    charge: usize,
    referenced: bool,
    occupied: bool,
}

/// A CLOCK cache shard.
pub struct ClockShard<V> {
    map: HashMap<CacheKey, usize>,
    slots: Vec<Slot<V>>,
    hand: usize,
    used: usize,
    capacity: usize,
}

impl<V: Clone + Send> ClockShard<V> {
    /// Shard with the given capacity in charge units.
    pub fn new(capacity: usize) -> Self {
        ClockShard {
            map: HashMap::new(),
            slots: Vec::new(),
            hand: 0,
            used: 0,
            capacity,
        }
    }

    fn evict_one(&mut self) -> bool {
        if self.map.is_empty() {
            return false;
        }
        // sweep: clear reference bits until an unreferenced occupied slot
        // is found (guaranteed within two passes)
        for _ in 0..(2 * self.slots.len().max(1)) {
            if self.slots.is_empty() {
                return false;
            }
            let i = self.hand % self.slots.len();
            self.hand = (self.hand + 1) % self.slots.len();
            let slot = &mut self.slots[i];
            if !slot.occupied {
                continue;
            }
            if slot.referenced {
                slot.referenced = false;
            } else {
                slot.occupied = false;
                self.used -= slot.charge;
                self.map.remove(&slot.key);
                return true;
            }
        }
        false
    }

    fn alloc_slot(&mut self, key: CacheKey, value: V, charge: usize) -> usize {
        // reuse a vacant slot if any
        for (i, s) in self.slots.iter().enumerate() {
            if !s.occupied {
                self.slots[i] = Slot {
                    key,
                    value,
                    charge,
                    referenced: false,
                    occupied: true,
                };
                return i;
            }
        }
        self.slots.push(Slot {
            key,
            value,
            charge,
            referenced: false,
            occupied: true,
        });
        self.slots.len() - 1
    }
}

impl<V: Clone + Send> CacheShard<V> for ClockShard<V> {
    fn get(&mut self, key: &CacheKey) -> Option<V> {
        let &idx = self.map.get(key)?;
        self.slots[idx].referenced = true;
        Some(self.slots[idx].value.clone())
    }

    fn insert(&mut self, key: CacheKey, value: V, charge: usize) -> usize {
        if charge > self.capacity {
            self.remove(&key);
            return 0;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.used = self.used - self.slots[idx].charge + charge;
            self.slots[idx].value = value;
            self.slots[idx].charge = charge;
            self.slots[idx].referenced = true;
        } else {
            let idx = self.alloc_slot(key, value, charge);
            self.map.insert(key, idx);
            self.used += charge;
        }
        let mut evicted = 0;
        while self.used > self.capacity {
            if !self.evict_one() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &CacheKey) -> bool {
        match self.map.remove(key) {
            Some(idx) => {
                self.slots[idx].occupied = false;
                self.used -= self.slots[idx].charge;
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn used(&self) -> usize {
        self.used
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> CacheKey {
        CacheKey::new(0, i)
    }

    #[test]
    fn basic_roundtrip() {
        let mut c = ClockShard::new(10);
        c.insert(k(1), "x", 3);
        assert_eq!(c.get(&k(1)), Some("x"));
        assert_eq!(c.get(&k(9)), None);
    }

    #[test]
    fn referenced_entries_get_second_chance() {
        let mut c = ClockShard::new(3);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        c.insert(k(3), 3, 1);
        c.get(&k(1)); // reference 1
        c.insert(k(4), 4, 1);
        // 1 was referenced; the victim must be 2 or 3
        assert!(c.get(&k(1)).is_some(), "referenced entry evicted");
    }

    #[test]
    fn capacity_respected() {
        let mut c = ClockShard::new(20);
        for i in 0..100 {
            c.insert(k(i), i, 3);
            assert!(c.used() <= 20);
        }
    }

    #[test]
    fn remove_then_slot_reused() {
        let mut c = ClockShard::new(5);
        c.insert(k(1), 1, 2);
        c.insert(k(2), 2, 2);
        assert!(c.remove(&k(1)));
        c.insert(k(3), 3, 2);
        assert_eq!(c.slots.len(), 2, "vacant slot must be reused");
        assert!(c.get(&k(3)).is_some());
    }

    #[test]
    fn oversized_rejected() {
        let mut c = ClockShard::new(5);
        c.insert(k(1), 1, 6);
        assert!(c.is_empty());
    }

    #[test]
    fn full_churn_terminates() {
        let mut c = ClockShard::new(4);
        for i in 0..1000 {
            c.insert(k(i % 16), i, 1);
            if i % 3 == 0 {
                c.get(&k(i % 16));
            }
        }
        assert!(c.used() <= 4);
        assert!(c.len() <= 4);
    }
}
