//! FIFO shard: evicts in insertion order, ignoring recency entirely.
//! The baseline that shows what recency/frequency tracking buys.

use std::collections::{HashMap, VecDeque};

use crate::traits::{CacheKey, CacheShard};

struct Entry<V> {
    value: V,
    charge: usize,
    generation: u64,
}

/// A first-in-first-out cache shard.
pub struct FifoShard<V> {
    map: HashMap<CacheKey, Entry<V>>,
    queue: VecDeque<(CacheKey, u64)>,
    used: usize,
    capacity: usize,
    generation: u64,
}

impl<V: Clone + Send> FifoShard<V> {
    /// Shard with the given capacity in charge units.
    pub fn new(capacity: usize) -> Self {
        FifoShard {
            map: HashMap::new(),
            queue: VecDeque::new(),
            used: 0,
            capacity,
            generation: 0,
        }
    }

    fn evict_one(&mut self) -> bool {
        while let Some((key, generation)) = self.queue.pop_front() {
            // skip stale queue entries (replaced or removed keys)
            if let Some(e) = self.map.get(&key) {
                if e.generation == generation {
                    self.used -= e.charge;
                    self.map.remove(&key);
                    return true;
                }
            }
        }
        false
    }
}

impl<V: Clone + Send> CacheShard<V> for FifoShard<V> {
    fn get(&mut self, key: &CacheKey) -> Option<V> {
        self.map.get(key).map(|e| e.value.clone())
    }

    fn insert(&mut self, key: CacheKey, value: V, charge: usize) -> usize {
        if charge > self.capacity {
            self.remove(&key);
            return 0;
        }
        self.generation += 1;
        if let Some(old) = self.map.insert(
            key,
            Entry {
                value,
                charge,
                generation: self.generation,
            },
        ) {
            self.used -= old.charge;
        }
        self.used += charge;
        self.queue.push_back((key, self.generation));
        let mut evicted = 0;
        while self.used > self.capacity {
            if !self.evict_one() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &CacheKey) -> bool {
        match self.map.remove(key) {
            Some(e) => {
                self.used -= e.charge;
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn used(&self) -> usize {
        self.used
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> CacheKey {
        CacheKey::new(0, i)
    }

    #[test]
    fn evicts_in_insertion_order_regardless_of_access() {
        let mut c = FifoShard::new(3);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        c.insert(k(3), 3, 1);
        // touching 1 does not save it under FIFO
        c.get(&k(1));
        c.get(&k(1));
        c.insert(k(4), 4, 1);
        assert_eq!(c.get(&k(1)), None);
        assert!(c.get(&k(2)).is_some());
    }

    #[test]
    fn replacement_refreshes_queue_position() {
        let mut c = FifoShard::new(2);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        c.insert(k(1), 9, 1); // re-inserted: moves to back
        c.insert(k(3), 3, 1); // evicts 2 (now oldest)
        assert_eq!(c.get(&k(2)), None);
        assert_eq!(c.get(&k(1)), Some(9));
    }

    #[test]
    fn capacity_respected() {
        let mut c = FifoShard::new(10);
        for i in 0..50 {
            c.insert(k(i), i, 3);
            assert!(c.used() <= 10);
        }
    }

    #[test]
    fn stale_queue_entries_skipped_after_remove() {
        let mut c = FifoShard::new(3);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        assert!(c.remove(&k(1)));
        c.insert(k(3), 3, 1);
        c.insert(k(4), 4, 1);
        // eviction must pick 2 (oldest live), not choke on removed 1
        c.insert(k(5), 5, 1);
        assert_eq!(c.get(&k(2)), None);
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn oversized_rejected() {
        let mut c = FifoShard::new(2);
        c.insert(k(1), 1, 3);
        assert!(c.is_empty());
    }
}
