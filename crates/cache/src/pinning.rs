//! Pinned tier for filter and index blocks.
//!
//! Production engines (RocksDB's `pin_l0_filter_and_index_blocks`,
//! `cache_index_and_filter_blocks`) treat filter/index blocks differently
//! from data blocks: they are small, touched on *every* lookup, and
//! catastrophically expensive to miss. The pinned tier holds them under
//! its own budget and never evicts while the owning file is live.

use std::collections::HashMap;

use parking_lot::RwLock;

use crate::traits::CacheKey;

/// A never-evicting (budgeted) block tier keyed like the main cache.
pub struct PinnedTier<V: Clone> {
    map: RwLock<HashMap<CacheKey, (V, usize)>>,
    budget: usize,
    used: RwLock<usize>,
}

impl<V: Clone> PinnedTier<V> {
    /// Tier with a byte budget; pins past the budget are refused (the
    /// caller falls back to the evicting cache).
    pub fn new(budget: usize) -> Self {
        PinnedTier {
            map: RwLock::new(HashMap::new()),
            budget,
            used: RwLock::new(0),
        }
    }

    /// Attempts to pin; returns whether the entry is now resident.
    pub fn pin(&self, key: CacheKey, value: V, charge: usize) -> bool {
        let mut used = self.used.write();
        let mut map = self.map.write();
        if let Some((_, old)) = map.get(&key) {
            // replace in place
            let old = *old;
            if *used - old + charge > self.budget {
                return false;
            }
            *used = *used - old + charge;
            map.insert(key, (value, charge));
            return true;
        }
        if *used + charge > self.budget {
            return false;
        }
        *used += charge;
        map.insert(key, (value, charge));
        true
    }

    /// Reads a pinned entry.
    pub fn get(&self, key: &CacheKey) -> Option<V> {
        self.map.read().get(key).map(|(v, _)| v.clone())
    }

    /// Unpins one entry (when its file dies).
    pub fn unpin(&self, key: &CacheKey) -> bool {
        let mut used = self.used.write();
        match self.map.write().remove(key) {
            Some((_, charge)) => {
                *used -= charge;
                true
            }
            None => false,
        }
    }

    /// Unpins every entry belonging to `file`; returns how many.
    pub fn unpin_file(&self, file: u64) -> usize {
        let mut used = self.used.write();
        let mut map = self.map.write();
        let victims: Vec<CacheKey> = map.keys().filter(|k| k.file == file).copied().collect();
        for k in &victims {
            if let Some((_, charge)) = map.remove(k) {
                *used -= charge;
            }
        }
        victims.len()
    }

    /// Bytes currently pinned.
    pub fn used(&self) -> usize {
        *self.used.read()
    }

    /// The configured budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Number of pinned entries.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// Whether nothing is pinned.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(f: u64, b: u64) -> CacheKey {
        CacheKey::new(f, b)
    }

    #[test]
    fn pin_get_unpin() {
        let t: PinnedTier<String> = PinnedTier::new(100);
        assert!(t.pin(k(1, 0), "filter".into(), 40));
        assert_eq!(t.get(&k(1, 0)), Some("filter".into()));
        assert!(t.unpin(&k(1, 0)));
        assert_eq!(t.get(&k(1, 0)), None);
        assert_eq!(t.used(), 0);
    }

    #[test]
    fn budget_is_enforced() {
        let t: PinnedTier<u8> = PinnedTier::new(100);
        assert!(t.pin(k(1, 0), 0, 60));
        assert!(!t.pin(k(1, 1), 0, 60), "over budget must refuse");
        assert_eq!(t.len(), 1);
        assert!(t.pin(k(1, 2), 0, 40));
        assert_eq!(t.used(), 100);
    }

    #[test]
    fn replacement_adjusts_used() {
        let t: PinnedTier<u8> = PinnedTier::new(100);
        assert!(t.pin(k(1, 0), 1, 50));
        assert!(t.pin(k(1, 0), 2, 80));
        assert_eq!(t.used(), 80);
        assert_eq!(t.get(&k(1, 0)), Some(2));
        // replacement that would exceed budget is refused, old stays
        assert!(!t.pin(k(1, 0), 3, 120));
        assert_eq!(t.get(&k(1, 0)), Some(2));
    }

    #[test]
    fn unpin_file_drops_only_that_file() {
        let t: PinnedTier<u8> = PinnedTier::new(1000);
        t.pin(k(1, 0), 0, 10);
        t.pin(k(1, 1), 0, 10);
        t.pin(k(2, 0), 0, 10);
        assert_eq!(t.unpin_file(1), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.used(), 10);
        assert!(t.get(&k(2, 0)).is_some());
    }

    #[test]
    fn unpin_missing_is_false() {
        let t: PinnedTier<u8> = PinnedTier::new(10);
        assert!(!t.unpin(&k(9, 9)));
        assert!(t.is_empty());
    }
}
