//! LFU shard with aging: evicts the entry with the lowest access
//! frequency, breaking ties by insertion age. Periodic halving of all
//! counters ("aging") keeps once-hot-now-cold blocks from squatting — the
//! standard fix for LFU's main pathology.

use std::collections::{BTreeSet, HashMap};

use crate::traits::{CacheKey, CacheShard};

struct Entry<V> {
    value: V,
    charge: usize,
    freq: u64,
    tick: u64,
}

/// A least-frequently-used cache shard with counter aging.
pub struct LfuShard<V> {
    map: HashMap<CacheKey, Entry<V>>,
    /// Eviction order: (freq, tick, key).
    order: BTreeSet<(u64, u64, CacheKey)>,
    used: usize,
    capacity: usize,
    tick: u64,
    ops_since_aging: u64,
    aging_period: u64,
}

impl<V: Clone + Send> LfuShard<V> {
    /// Shard with the given capacity; counters halve every
    /// `4 * capacity_entries_estimate` operations by default.
    pub fn new(capacity: usize) -> Self {
        LfuShard {
            map: HashMap::new(),
            order: BTreeSet::new(),
            used: 0,
            capacity,
            tick: 0,
            ops_since_aging: 0,
            aging_period: 8192,
        }
    }

    /// Overrides the aging period (operations between counter halvings).
    pub fn with_aging_period(mut self, period: u64) -> Self {
        self.aging_period = period.max(1);
        self
    }

    fn bump(&mut self, key: CacheKey) {
        if let Some(e) = self.map.get_mut(&key) {
            self.order.remove(&(e.freq, e.tick, key));
            e.freq += 1;
            self.order.insert((e.freq, e.tick, key));
        }
    }

    fn maybe_age(&mut self) {
        self.ops_since_aging += 1;
        if self.ops_since_aging < self.aging_period {
            return;
        }
        self.ops_since_aging = 0;
        let mut rebuilt = BTreeSet::new();
        for (key, e) in self.map.iter_mut() {
            e.freq /= 2;
            rebuilt.insert((e.freq, e.tick, *key));
        }
        self.order = rebuilt;
    }

    fn evict_one(&mut self) -> bool {
        let Some(&(freq, tick, key)) = self.order.iter().next() else {
            return false;
        };
        self.order.remove(&(freq, tick, key));
        if let Some(e) = self.map.remove(&key) {
            self.used -= e.charge;
        }
        true
    }
}

impl<V: Clone + Send> CacheShard<V> for LfuShard<V> {
    fn get(&mut self, key: &CacheKey) -> Option<V> {
        self.maybe_age();
        let v = self.map.get(key)?.value.clone();
        self.bump(*key);
        Some(v)
    }

    fn insert(&mut self, key: CacheKey, value: V, charge: usize) -> usize {
        self.maybe_age();
        if charge > self.capacity {
            self.remove(&key);
            return 0;
        }
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.used = self.used - e.charge + charge;
            let old = (e.freq, e.tick, key);
            e.value = value;
            e.charge = charge;
            e.freq += 1;
            self.order.remove(&old);
            let freq = e.freq;
            let tick = e.tick;
            self.order.insert((freq, tick, key));
        } else {
            self.map.insert(
                key,
                Entry {
                    value,
                    charge,
                    freq: 1,
                    tick: self.tick,
                },
            );
            self.order.insert((1, self.tick, key));
            self.used += charge;
        }
        let mut evicted = 0;
        while self.used > self.capacity {
            if !self.evict_one() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &CacheKey) -> bool {
        match self.map.remove(key) {
            Some(e) => {
                self.order.remove(&(e.freq, e.tick, *key));
                self.used -= e.charge;
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn used(&self) -> usize {
        self.used
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(i: u64) -> CacheKey {
        CacheKey::new(0, i)
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuShard::new(3);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        c.insert(k(3), 3, 1);
        // heat up 1 and 3
        for _ in 0..5 {
            c.get(&k(1));
            c.get(&k(3));
        }
        c.insert(k(4), 4, 1); // evicts 2 (freq 1)
        assert_eq!(c.get(&k(2)), None);
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
    }

    #[test]
    fn tie_breaks_by_age() {
        let mut c = LfuShard::new(2);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        c.insert(k(3), 3, 1); // both freq 1: evict the older (1)
        assert_eq!(c.get(&k(1)), None);
        assert!(c.get(&k(2)).is_some());
    }

    #[test]
    fn capacity_respected_with_varied_charges() {
        let mut c = LfuShard::new(100);
        for i in 0..50 {
            c.insert(k(i), i, 7 + (i as usize % 13));
            assert!(c.used() <= 100);
        }
    }

    #[test]
    fn aging_lets_new_entries_displace_stale_hot_ones() {
        let mut c = LfuShard::new(2).with_aging_period(8);
        c.insert(k(1), 1, 1);
        for _ in 0..100 {
            c.get(&k(1)); // very hot... long ago (ages along the way)
        }
        c.insert(k(2), 2, 1);
        // access 2 repeatedly; aging halves 1's stale count
        for _ in 0..40 {
            c.get(&k(2));
        }
        c.insert(k(3), 3, 1);
        // 1's aged frequency should have decayed below 2's fresh one
        assert!(c.get(&k(2)).is_some(), "fresh-hot entry must survive");
    }

    #[test]
    fn remove_and_reinsert() {
        let mut c = LfuShard::new(10);
        c.insert(k(1), 1, 5);
        assert!(c.remove(&k(1)));
        assert_eq!(c.used(), 0);
        c.insert(k(1), 9, 5);
        assert_eq!(c.get(&k(1)), Some(9));
    }

    #[test]
    fn oversized_rejected() {
        let mut c = LfuShard::new(4);
        c.insert(k(1), 1, 5);
        assert!(c.is_empty());
    }

    #[test]
    fn replace_bumps_frequency() {
        let mut c = LfuShard::new(2);
        c.insert(k(1), 1, 1);
        c.insert(k(1), 2, 1); // freq 2 now
        c.insert(k(2), 9, 1); // freq 1
        c.insert(k(3), 9, 1); // evicts 2, not 1
        assert!(c.get(&k(1)).is_some());
        assert_eq!(c.get(&k(2)), None);
    }
}
