//! LFU shard with aging: evicts the entry with the lowest access
//! frequency, breaking ties by insertion age. Periodic halving of all
//! counters ("aging") keeps once-hot-now-cold blocks from squatting — the
//! standard fix for LFU's main pathology.
//!
//! A cache **hit** is a counter increment and nothing else. The previous
//! implementation kept a `BTreeSet<(freq, tick, key)>` eviction order and
//! reshuffled it on every hit (~7× an LRU hit's cost); instead, eviction
//! now samples candidates from a probe ring of keys and removes the
//! sampled minimum — the Redis-style approximated LFU. For shards whose
//! live set fits in one sample the scan covers every entry, so eviction
//! is *exactly* min-(freq, tick); larger shards get the usual sampled
//! approximation while hits stay O(1).

use std::collections::{HashMap, HashSet};

use crate::traits::{CacheKey, CacheShard};

/// Eviction candidates examined per eviction. Shards at or below this
/// many entries get exact LFU; above it, sampled LFU.
const EVICTION_SAMPLE: usize = 32;

struct Entry<V> {
    value: V,
    charge: usize,
    freq: u64,
    tick: u64,
}

/// A least-frequently-used cache shard with counter aging.
pub struct LfuShard<V> {
    map: HashMap<CacheKey, Entry<V>>,
    /// Probe ring: keys in insertion order, possibly stale (evicted or
    /// removed keys linger until compaction). Eviction scans from
    /// `cursor` so successive evictions sample different regions.
    probe: Vec<CacheKey>,
    cursor: usize,
    used: usize,
    capacity: usize,
    tick: u64,
    ops_since_aging: u64,
    aging_period: u64,
}

impl<V: Clone + Send> LfuShard<V> {
    /// Shard with the given capacity; counters halve every
    /// `aging_period` operations (default 8192).
    pub fn new(capacity: usize) -> Self {
        LfuShard {
            map: HashMap::new(),
            probe: Vec::new(),
            cursor: 0,
            used: 0,
            capacity,
            tick: 0,
            ops_since_aging: 0,
            aging_period: 8192,
        }
    }

    /// Overrides the aging period (operations between counter halvings).
    pub fn with_aging_period(mut self, period: u64) -> Self {
        self.aging_period = period.max(1);
        self
    }

    fn maybe_age(&mut self) {
        self.ops_since_aging += 1;
        if self.ops_since_aging < self.aging_period {
            return;
        }
        self.ops_since_aging = 0;
        for e in self.map.values_mut() {
            e.freq /= 2;
        }
    }

    /// Drops stale ring slots once they outnumber live entries: keeps
    /// eviction scans proportional to the live set.
    fn maybe_compact(&mut self) {
        if self.probe.len() > 2 * self.map.len() + 8 {
            let map = &self.map;
            let mut seen = HashSet::with_capacity(map.len());
            self.probe.retain(|k| map.contains_key(k) && seen.insert(*k));
            self.cursor = 0;
        }
    }

    fn evict_one(&mut self) -> bool {
        let n = self.probe.len();
        if n == 0 || self.map.is_empty() {
            return false;
        }
        // scan the ring from the cursor, collecting up to EVICTION_SAMPLE
        // live candidates (at most one full lap); keep the (freq, tick)
        // minimum — lowest frequency, oldest insertion on ties
        let mut best: Option<(u64, u64, usize)> = None;
        let mut live = 0usize;
        let mut i = self.cursor % n;
        for _ in 0..n {
            if let Some(e) = self.map.get(&self.probe[i]) {
                let cand = (e.freq, e.tick, i);
                if best.is_none_or(|b| (cand.0, cand.1) < (b.0, b.1)) {
                    best = Some(cand);
                }
                live += 1;
                if live >= EVICTION_SAMPLE {
                    i = (i + 1) % n;
                    break;
                }
            }
            i = (i + 1) % n;
        }
        self.cursor = i;
        let Some((_, _, slot)) = best else {
            // every scanned slot was stale
            self.probe.clear();
            self.cursor = 0;
            return false;
        };
        let key = self.probe.swap_remove(slot);
        if let Some(e) = self.map.remove(&key) {
            self.used -= e.charge;
        }
        self.maybe_compact();
        true
    }
}

impl<V: Clone + Send> CacheShard<V> for LfuShard<V> {
    fn get(&mut self, key: &CacheKey) -> Option<V> {
        self.maybe_age();
        // a hit is one counter bump — no order structure to maintain
        let e = self.map.get_mut(key)?;
        e.freq += 1;
        Some(e.value.clone())
    }

    fn insert(&mut self, key: CacheKey, value: V, charge: usize) -> usize {
        self.maybe_age();
        if charge > self.capacity {
            self.remove(&key);
            return 0;
        }
        self.tick += 1;
        if let Some(e) = self.map.get_mut(&key) {
            self.used = self.used - e.charge + charge;
            e.value = value;
            e.charge = charge;
            e.freq += 1;
        } else {
            self.map.insert(
                key,
                Entry {
                    value,
                    charge,
                    freq: 1,
                    tick: self.tick,
                },
            );
            self.probe.push(key);
            self.used += charge;
        }
        let mut evicted = 0;
        while self.used > self.capacity {
            if !self.evict_one() {
                break;
            }
            evicted += 1;
        }
        evicted
    }

    fn remove(&mut self, key: &CacheKey) -> bool {
        match self.map.remove(key) {
            Some(e) => {
                self.used -= e.charge;
                // the ring slot goes stale; compaction reclaims it
                self.maybe_compact();
                true
            }
            None => false,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn used(&self) -> usize {
        self.used
    }

    fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::LruShard;

    fn k(i: u64) -> CacheKey {
        CacheKey::new(0, i)
    }

    #[test]
    fn evicts_least_frequent() {
        let mut c = LfuShard::new(3);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        c.insert(k(3), 3, 1);
        // heat up 1 and 3
        for _ in 0..5 {
            c.get(&k(1));
            c.get(&k(3));
        }
        c.insert(k(4), 4, 1); // evicts 2 (freq 1)
        assert_eq!(c.get(&k(2)), None);
        assert!(c.get(&k(1)).is_some());
        assert!(c.get(&k(3)).is_some());
    }

    #[test]
    fn tie_breaks_by_age() {
        let mut c = LfuShard::new(2);
        c.insert(k(1), 1, 1);
        c.insert(k(2), 2, 1);
        c.insert(k(3), 3, 1); // both freq 1: evict the older (1)
        assert_eq!(c.get(&k(1)), None);
        assert!(c.get(&k(2)).is_some());
    }

    #[test]
    fn capacity_respected_with_varied_charges() {
        let mut c = LfuShard::new(100);
        for i in 0..50 {
            c.insert(k(i), i, 7 + (i as usize % 13));
            assert!(c.used() <= 100);
        }
    }

    #[test]
    fn aging_lets_new_entries_displace_stale_hot_ones() {
        let mut c = LfuShard::new(2).with_aging_period(8);
        c.insert(k(1), 1, 1);
        for _ in 0..100 {
            c.get(&k(1)); // very hot... long ago (ages along the way)
        }
        c.insert(k(2), 2, 1);
        // access 2 repeatedly; aging halves 1's stale count
        for _ in 0..40 {
            c.get(&k(2));
        }
        c.insert(k(3), 3, 1);
        // 1's aged frequency should have decayed below 2's fresh one
        assert!(c.get(&k(2)).is_some(), "fresh-hot entry must survive");
    }

    #[test]
    fn remove_and_reinsert() {
        let mut c = LfuShard::new(10);
        c.insert(k(1), 1, 5);
        assert!(c.remove(&k(1)));
        assert_eq!(c.used(), 0);
        c.insert(k(1), 9, 5);
        assert_eq!(c.get(&k(1)), Some(9));
    }

    #[test]
    fn oversized_rejected() {
        let mut c = LfuShard::new(4);
        c.insert(k(1), 1, 5);
        assert!(c.is_empty());
    }

    #[test]
    fn replace_bumps_frequency() {
        let mut c = LfuShard::new(2);
        c.insert(k(1), 1, 1);
        c.insert(k(1), 2, 1); // freq 2 now
        c.insert(k(2), 9, 1); // freq 1
        c.insert(k(3), 9, 1); // evicts 2, not 1
        assert!(c.get(&k(1)).is_some());
        assert_eq!(c.get(&k(2)), None);
    }

    #[test]
    fn churn_does_not_leak_ring_slots() {
        let mut c = LfuShard::new(8);
        for i in 0..10_000u64 {
            c.insert(k(i), i, 1);
        }
        assert!(c.len() <= 8);
        // the probe ring must stay proportional to the live set, not the
        // insertion history
        assert!(
            c.probe.len() <= 2 * c.len() + 8 + EVICTION_SAMPLE,
            "ring leaked: {} slots for {} entries",
            c.probe.len(),
            c.len()
        );
    }

    /// Sampled LFU must keep frequency-skewed hit rates at or above LRU's
    /// on a scan-polluted skewed workload — the parity proof that the O(1)
    /// hit path did not cost eviction quality.
    #[test]
    fn hit_rate_parity_with_lru_on_skewed_workload() {
        let cap = 64usize;
        let mut lfu: LfuShard<u64> = LfuShard::new(cap).with_aging_period(512);
        let mut lru: LruShard<u64> = LruShard::new(cap);
        let mut lfu_hits = 0u64;
        let mut lru_hits = 0u64;
        let mut lookups = 0u64;
        let mut x = 0x9E3779B97F4A7C15u64;
        for round in 0..40_000u64 {
            // 80% of traffic over 32 hot keys, 20% a scan over 4096 cold keys
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let key = if x % 10 < 8 {
                k((x >> 32) % 32)
            } else {
                k(1000 + round % 4096)
            };
            lookups += 1;
            if lfu.get(&key).is_some() {
                lfu_hits += 1;
            } else {
                lfu.insert(key, 0, 1);
            }
            if lru.get(&key).is_some() {
                lru_hits += 1;
            } else {
                lru.insert(key, 0, 1);
            }
        }
        let lfu_rate = lfu_hits as f64 / lookups as f64;
        let lru_rate = lru_hits as f64 / lookups as f64;
        assert!(
            lfu_rate >= lru_rate,
            "LFU hit rate {lfu_rate:.3} fell below LRU {lru_rate:.3} on a frequency-skewed workload"
        );
        assert!(lfu_rate > 0.5, "hot set must be cache-resident ({lfu_rate:.3})");
    }
}
