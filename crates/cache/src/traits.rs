//! Cache abstractions shared by all eviction policies.

/// Cache key: a block address `(file_id, block_index)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CacheKey {
    /// File the block belongs to.
    pub file: u64,
    /// Block index within the file.
    pub block: u64,
}

impl CacheKey {
    /// Convenience constructor.
    pub fn new(file: u64, block: u64) -> Self {
        CacheKey { file, block }
    }
}

/// A single-threaded cache shard with byte-charged capacity.
///
/// Contract: `used() <= capacity()` after every call; `get` returns a clone
/// of the cached value and may update recency/frequency state.
pub trait CacheShard<V: Clone>: Send {
    /// Looks up a key, updating replacement state on hit.
    fn get(&mut self, key: &CacheKey) -> Option<V>;

    /// Inserts (or replaces) an entry with the given charge, evicting as
    /// needed. Entries larger than the whole capacity are not admitted.
    /// Returns how many resident entries were evicted to make room.
    fn insert(&mut self, key: CacheKey, value: V, charge: usize) -> usize;

    /// Removes an entry; returns whether it was present. Used when a
    /// compaction deletes a file.
    fn remove(&mut self, key: &CacheKey) -> bool;

    /// Number of resident entries.
    fn len(&self) -> usize;

    /// Whether the shard is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of charges of resident entries.
    fn used(&self) -> usize;

    /// Configured capacity in charge units.
    fn capacity(&self) -> usize;
}

/// Which eviction policy a [`crate::ShardedCache`] uses — one axis of the
/// design space (tutorial Module II.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CachePolicy {
    /// Least-recently-used (the RocksDB default).
    Lru,
    /// Least-frequently-used with aging.
    Lfu,
    /// CLOCK (second chance): LRU approximation with cheaper bookkeeping.
    Clock,
    /// First-in-first-out: no recency tracking at all (baseline).
    Fifo,
}

impl CachePolicy {
    /// All policies, for experiment sweeps.
    pub const ALL: [CachePolicy; 4] = [
        CachePolicy::Lru,
        CachePolicy::Lfu,
        CachePolicy::Clock,
        CachePolicy::Fifo,
    ];

    /// Human-readable label.
    pub fn label(self) -> &'static str {
        match self {
            CachePolicy::Lru => "lru",
            CachePolicy::Lfu => "lfu",
            CachePolicy::Clock => "clock",
            CachePolicy::Fifo => "fifo",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_key_ordering_groups_by_file() {
        let a = CacheKey::new(1, 99);
        let b = CacheKey::new(2, 0);
        assert!(a < b);
    }

    #[test]
    fn labels_distinct() {
        let mut labels: Vec<_> = CachePolicy::ALL.iter().map(|p| p.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), CachePolicy::ALL.len());
    }
}
