//! Leaper-style post-compaction prefetch planning (Yang et al., VLDB '20;
//! tutorial Module II.1).
//!
//! Compaction rewrites hot data into new files, invalidating their cached
//! blocks; until queries fault the new blocks back in, hit rate craters.
//! Leaper predicts which *new* blocks correspond to hot key ranges and
//! warms them into the cache immediately after the compaction commits.
//! Where Leaper trains a gradient-boosted classifier, we use the key-range
//! [`HeatMap`] directly — the same signal, the same
//! code path (see DESIGN.md substitution table).

use crate::heat::HeatMap;
use crate::traits::CacheKey;

/// A block of a newly-written file, described by its key range.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrefetchCandidate {
    /// File the block belongs to.
    pub file: u64,
    /// Block index within the file.
    pub block: u64,
    /// Smallest u64-mapped key in the block.
    pub min_key: u64,
    /// Largest u64-mapped key in the block.
    pub max_key: u64,
}

/// Selects which new blocks to warm: those whose key range's heat is at or
/// above the `hot_percentile` threshold of the current heat map, capped at
/// `max_blocks` (warming everything would just thrash the cache).
/// Returns cache keys ordered hottest-first.
pub fn plan_prefetch(
    heat: &HeatMap,
    candidates: &[PrefetchCandidate],
    hot_percentile: f64,
    max_blocks: usize,
) -> Vec<CacheKey> {
    let threshold = heat.percentile(hot_percentile);
    let mut scored: Vec<(f64, &PrefetchCandidate)> = candidates
        .iter()
        .map(|c| (heat.range_heat(c.min_key, c.max_key), c))
        .filter(|(h, _)| *h >= threshold && *h > 0.0)
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    scored
        .into_iter()
        .take(max_blocks)
        .map(|(_, c)| CacheKey::new(c.file, c.block))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn candidate(file: u64, block: u64, min_key: u64, max_key: u64) -> PrefetchCandidate {
        PrefetchCandidate {
            file,
            block,
            min_key,
            max_key,
        }
    }

    fn heated(hot_lo: u64, hot_hi: u64, hits: usize) -> HeatMap {
        let mut h = HeatMap::new(64, 1_000_000);
        let step = ((hot_hi - hot_lo) / hits as u64).max(1);
        let mut k = hot_lo;
        for _ in 0..hits {
            h.record(k);
            k = k.saturating_add(step).min(hot_hi);
        }
        h
    }

    #[test]
    fn hot_blocks_selected_cold_skipped() {
        let hot_span = u64::MAX / 64; // one bucket
        let heat = heated(0, hot_span - 1, 200);
        let cands = vec![
            candidate(10, 0, 0, hot_span / 2),               // hot
            candidate(10, 1, u64::MAX / 2, u64::MAX / 2 + 5), // cold
        ];
        let plan = plan_prefetch(&heat, &cands, 0.9, 16);
        assert_eq!(plan, vec![CacheKey::new(10, 0)]);
    }

    #[test]
    fn hottest_first_and_capped() {
        let bucket = u64::MAX / 64;
        let mut heat = HeatMap::new(64, 10_000_000);
        for _ in 0..100 {
            heat.record(0);
        }
        for _ in 0..50 {
            heat.record(bucket + 1);
        }
        for _ in 0..10 {
            heat.record(2 * bucket + 1);
        }
        let cands = vec![
            candidate(1, 0, 2 * bucket + 1, 2 * bucket + 2),
            candidate(1, 1, 0, 1),
            candidate(1, 2, bucket + 1, bucket + 2),
        ];
        let plan = plan_prefetch(&heat, &cands, 0.0, 2);
        assert_eq!(plan.len(), 2);
        assert_eq!(plan[0], CacheKey::new(1, 1), "hottest first");
        assert_eq!(plan[1], CacheKey::new(1, 2));
    }

    #[test]
    fn cold_map_prefetches_nothing() {
        let heat = HeatMap::new(64, 100);
        let cands = vec![candidate(1, 0, 0, 100)];
        assert!(plan_prefetch(&heat, &cands, 0.5, 10).is_empty());
    }

    #[test]
    fn empty_candidates() {
        let heat = heated(0, 1000, 50);
        assert!(plan_prefetch(&heat, &[], 0.5, 10).is_empty());
    }
}
