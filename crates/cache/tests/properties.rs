//! Property-based invariants for the cache layer: capacity is never
//! exceeded, removal really removes, and a cached value is always the last
//! value inserted for its key — for every eviction policy.

use proptest::collection::vec;
use proptest::prelude::*;

use lsm_cache::{CacheKey, CachePolicy, PinnedTier, ShardedCache};

#[derive(Clone, Debug)]
enum Op {
    Insert(u8, u8, u8),
    Get(u8, u8),
    Remove(u8, u8),
    InvalidateFile(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (any::<u8>(), any::<u8>(), 1u8..32).prop_map(|(f, b, c)| Op::Insert(f % 4, b, c)),
        3 => (any::<u8>(), any::<u8>()).prop_map(|(f, b)| Op::Get(f % 4, b)),
        1 => (any::<u8>(), any::<u8>()).prop_map(|(f, b)| Op::Remove(f % 4, b)),
        1 => any::<u8>().prop_map(|f| Op::InvalidateFile(f % 4)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_invariants_hold_for_all_policies(
        ops in vec(arb_op(), 1..400),
        policy_idx in 0usize..4,
    ) {
        let policy = CachePolicy::ALL[policy_idx];
        let cache: ShardedCache<(u8, u8, u8)> = ShardedCache::new(policy, 512, 2);
        let mut last: std::collections::HashMap<CacheKey, (u8, u8, u8)> =
            std::collections::HashMap::new();
        for op in &ops {
            match op {
                Op::Insert(f, b, c) => {
                    let k = CacheKey::new(*f as u64, *b as u64);
                    cache.insert(k, (*f, *b, *c), *c as usize);
                    last.insert(k, (*f, *b, *c));
                }
                Op::Get(f, b) => {
                    let k = CacheKey::new(*f as u64, *b as u64);
                    if let Some(v) = cache.get(&k) {
                        // a hit must return the last inserted value
                        prop_assert_eq!(Some(&v), last.get(&k));
                    }
                }
                Op::Remove(f, b) => {
                    let k = CacheKey::new(*f as u64, *b as u64);
                    cache.remove(&k);
                    last.remove(&k);
                }
                Op::InvalidateFile(f) => {
                    cache.invalidate_file(*f as u64, 255);
                    last.retain(|k, _| k.file != *f as u64);
                }
            }
            prop_assert!(
                cache.used() <= cache.capacity(),
                "{}: used {} > capacity {}",
                policy.label(),
                cache.used(),
                cache.capacity()
            );
        }
        // after an invalidate_file, nothing from that file remains
        cache.invalidate_file(0, 255);
        for b in 0..=255u8 {
            prop_assert!(cache.get(&CacheKey::new(0, b as u64)).is_none());
        }
    }

    #[test]
    fn pinned_tier_never_exceeds_budget(
        pins in vec((any::<u8>(), any::<u8>(), 1u8..40), 1..100),
    ) {
        let tier: PinnedTier<u8> = PinnedTier::new(256);
        for (f, b, c) in &pins {
            let _ = tier.pin(CacheKey::new(*f as u64, *b as u64), *f, *c as usize);
            prop_assert!(tier.used() <= tier.budget());
        }
        // unpinning everything returns to zero
        for (f, b, _) in &pins {
            tier.unpin(&CacheKey::new(*f as u64, *b as u64));
        }
        prop_assert_eq!(tier.used(), 0);
        prop_assert!(tier.is_empty());
    }
}

/// Concurrent safety: every key has a single writer thread, so a hit must
/// return *exactly* the value that thread last inserted — any other value
/// means entries bled across keys or shards. Runs under real eviction
/// pressure, with one thread invalidating a shared file the whole time.
mod concurrent {
    use super::*;

    const THREADS: u64 = 8;
    const ROUNDS: u64 = 2_000;
    const BLOCKS_PER_THREAD: u64 = 64;
    /// File id all threads write to (in disjoint block ranges) while
    /// thread 0 keeps invalidating it wholesale.
    const SHARED_FILE: u64 = 99;

    fn encode(file: u64, block: u64, generation: u64) -> u64 {
        (file << 48) | (block << 24) | generation
    }

    #[test]
    fn concurrent_single_writer_keys_never_bleed() {
        for policy in CachePolicy::ALL {
            // capacity well below the working set: eviction is constant
            let cache: ShardedCache<u64> = ShardedCache::new(policy, 4096, 4);
            std::thread::scope(|scope| {
                for t in 0..THREADS {
                    let cache = &cache;
                    scope.spawn(move || {
                        // last value inserted per owned block, private and
                        // shared file alike; None after a remove
                        let mut last = std::collections::HashMap::new();
                        for round in 0..ROUNDS {
                            let block = round % BLOCKS_PER_THREAD;
                            // disjoint block ranges keep the shared file
                            // single-writer per key too
                            let (file, blk) = if round % 3 == 0 {
                                (SHARED_FILE, t * BLOCKS_PER_THREAD + block)
                            } else {
                                (t, block)
                            };
                            let key = CacheKey::new(file, blk);
                            match round % 5 {
                                4 => {
                                    cache.remove(&key);
                                    last.remove(&key);
                                }
                                _ => {
                                    let v = encode(file, blk, round);
                                    cache.insert(key, v, 8);
                                    last.insert(key, v);
                                }
                            }
                            if let Some(got) = cache.get(&key) {
                                // a concurrent invalidate_file may have
                                // dropped the entry (miss), but a hit has
                                // exactly one legal value
                                assert_eq!(
                                    Some(&got),
                                    last.get(&key),
                                    "{}: thread {t} round {round} read a value it never wrote",
                                    policy.label()
                                );
                            }
                            assert!(
                                cache.used() <= cache.capacity(),
                                "{}: capacity exceeded under concurrency",
                                policy.label()
                            );
                            if t == 0 && round % 64 == 63 {
                                cache.invalidate_file(
                                    SHARED_FILE,
                                    THREADS * BLOCKS_PER_THREAD,
                                );
                            }
                        }
                    });
                }
            });
            // single-threaded again: a full invalidate leaves no trace of
            // the shared file, and the cache is still coherent
            cache.invalidate_file(SHARED_FILE, THREADS * BLOCKS_PER_THREAD);
            for blk in 0..THREADS * BLOCKS_PER_THREAD {
                assert_eq!(
                    cache.get(&CacheKey::new(SHARED_FILE, blk)),
                    None,
                    "{}: shared file survived invalidation",
                    policy.label()
                );
            }
            assert!(cache.used() <= cache.capacity(), "{}", policy.label());
        }
    }
}
